#!/usr/bin/env python3
"""Quickstart: the tnum abstract domain in five minutes.

Walks through the paper's own worked examples: constructing tnums,
abstraction/concretization (Fig. 1), the kernel's O(1) addition (Fig. 2),
and the paper's new multiplication (Fig. 3).

Run:  python examples/quickstart.py
"""

from repro.core import (
    Tnum,
    abstract,
    gamma,
    join,
    leq,
    meet,
    our_mul,
    tnum_add,
    tnum_and,
    tnum_sub,
)


def section(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("Constructing tnums")
    # A tnum is (value, mask): value = known-1 bits, mask = unknown bits.
    t = Tnum.from_trits("01µ0", width=4)
    print(f"trits 01µ0       -> value={t.value:#x} mask={t.mask:#x}")
    print(f"gamma(01µ0)      -> {sorted(gamma(t))}   (the set it represents)")
    print(f"cardinality      -> {t.cardinality()}")
    print(f"contains 4? {t.contains(4)}   contains 6? {t.contains(6)}   "
          f"contains 5? {t.contains(5)}")

    section("Paper intro example: x = 01µ0 implies x <= 8")
    print(f"max over gamma   -> {t.max_value()}  (so x <= 8 always holds)")

    section("Abstraction (Fig. 1)")
    exact = abstract([2, 3], width=2)
    lossy = abstract([1, 2, 3], width=2)
    print(f"alpha({{2,3}})     -> {exact}  gamma -> {sorted(gamma(exact))}  (exact)")
    print(f"alpha({{1,2,3}})   -> {lossy}  gamma -> {sorted(gamma(lossy))}  "
          "(over-approximates)")

    section("Lattice operations")
    a = Tnum.from_trits("1µ0", width=3)
    b = Tnum.from_trits("110", width=3)
    print(f"{b} ⊑ {a}?  {leq(b, a)}")
    print(f"join({a}, {b}) = {join(a, b)}")
    print(f"meet({a}, {b}) = {meet(a, b)}")

    section("Kernel tnum addition (Fig. 2) — sound AND optimal, O(1)")
    p = Tnum.from_trits("10µ0", width=5)
    q = Tnum.from_trits("10µ1", width=5)
    r = tnum_add(p, q)
    print(f"{p} + {q} = {r}")
    print(f"gamma(P) = {sorted(gamma(p))}, gamma(Q) = {sorted(gamma(q))}")
    print(f"gamma(R) = {sorted(gamma(r))}   (paper: {{17, 19, 21, 23}})")

    section("The paper's new multiplication (Fig. 3)")
    p = Tnum.from_trits("µ01", width=5)
    q = Tnum.from_trits("µ10", width=5)
    r = our_mul(p, q)
    print(f"{p} * {q} = {r}")
    print(f"gamma(P) = {sorted(gamma(p))}, gamma(Q) = {sorted(gamma(q))}")
    print(f"all concrete products contained? "
          f"{all(r.contains((x * y) & 31) for x in p for y in q)}")

    section("Bitwise ops and masking idioms")
    x = Tnum.unknown(64)  # completely unknown register
    masked = tnum_and(x, Tnum.const(0xFF, 64))
    print(f"unknown & 0xff   -> {masked.to_trits()[-10:]} (low 8 unknown, rest 0)")
    print(f"max_value        -> {masked.max_value()}  (bounded by 255)")
    diff = tnum_sub(Tnum.const(100, 64), Tnum.const(58, 64))
    print(f"100 - 58         -> {diff.value} (constants fold exactly)")


if __name__ == "__main__":
    main()
