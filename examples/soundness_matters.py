#!/usr/bin/env python3
"""Why the paper proves soundness: a buggy tnum_add breaks the sandbox.

The paper's security motivation (§I) is that an unsound abstract operator
in the BPF verifier hands attackers arbitrary kernel read/write — several
CVEs came from exactly such bounds-tracking bugs.  This example makes
that concrete inside the reproduction:

1. take a *plausible-looking but unsound* variant of ``tnum_add`` (it
   forgets to fold the operands' own unknown masks into the result — the
   kind of off-by-one-line bug the SAT pipeline catches instantly);
2. craft a BPF program whose safety proof depends on the addition's
   result mask;
3. show the honest verifier rejects the program, while a verifier built
   on the buggy operator *accepts* it;
4. run the program concretely and watch it access memory out of bounds —
   the sandbox escape the analyzer was supposed to make impossible;
5. show the repository's own verification pipeline (Eqn. 11 via the SAT
   solver) flags the buggy operator as UNSOUND with a counterexample.

Run:  python examples/soundness_matters.py
"""

from unittest import mock

from repro.bpf import CTX_BASE, Machine, assemble
from repro.bpf.interpreter import ExecutionError
from repro.bpf.verifier import Verifier
from repro.core.tnum import Tnum, mask_for_width
from repro.verify.sat.bitvector import BitVecBuilder
from repro.verify.sat.cnf import CNFBuilder
from repro.verify.sat.encode import SymTnum
from repro.verify.sat.solver import Solver

# The attack program. The buggy tnum_add below computes the result mask
# as chi alone, forgetting the operands' own unknown bits — so for two
# values masked to [0, 7] it claims the *low bit of their sum is a known
# zero* (the carries from unknown bits land in chi, but bit 0 has no
# carry-in). The program launders that one wrong trit into an
# out-of-bounds pointer: if bit 0 of r2+r3 were provably 0, the access
# below is the fixed, initialized slot [r10-8]; concretely the sum is
# odd for half the inputs and the access lands 512 bytes below the
# frame. Note the interval half of the reduced product cannot save the
# analyzer here — `and r2, 1` derives its bounds from the (lying) tnum.
ATTACK = """
    ldxb  r2, [r1+0]
    and   r2, 7          ; r2 in [0, 7]
    ldxb  r3, [r1+1]
    and   r3, 7          ; r3 in [0, 7]
    add   r2, r3         ; buggy tnum_add: "bit 0 of the sum is 0"
    and   r2, 1          ; honest: {0, 1}; buggy: constant 0
    lsh   r2, 9          ; honest: {0, 512}; buggy: 0
    mov   r4, r10
    add   r4, -8
    sub   r4, r2         ; honest: fp-8 or fp-520; buggy: always fp-8
    stdw  [r10-8], 0     ; only slot -8 is initialized
    ldxdw r0, [r4+0]     ; buggy verifier "proves" this is [r10-8]
    exit
"""


def buggy_add(p: Tnum, q: Tnum) -> Tnum:
    """tnum_add with the operand masks dropped from eta — UNSOUND."""
    limit = mask_for_width(p.width)
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    sm = (p.mask + q.mask) & limit
    sv = (p.value + q.value) & limit
    sigma = (sv + sm) & limit
    chi = sigma ^ sv
    eta = chi  # BUG: the correct operator uses chi | p.mask | q.mask
    return Tnum(sv & ~eta & limit, eta, p.width)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    program = assemble(ATTACK)

    banner("1. The honest verifier (paper-proven tnum_add)")
    result = Verifier(ctx_size=64).verify(program)
    print("verdict:", "ACCEPTED" if result.ok else "REJECTED")
    for message in result.error_messages():
        print("  ", message)
    assert not result.ok, "the honest verifier must reject this program"

    banner("2. A verifier built on the buggy tnum_add")
    # The product domain routes additions through ScalarValue.add, whose
    # tnum component is repro.domains.product.tnum_add.
    with mock.patch("repro.domains.product.tnum_add", buggy_add):
        buggy_result = Verifier(ctx_size=64).verify(program)
    print("verdict:", "ACCEPTED" if buggy_result.ok else "REJECTED")
    assert buggy_result.ok, "the buggy analyzer is fooled"
    print("  the unsound operator 'proved' bit 0 of r2+r3 is always 0")

    banner("3. Concrete execution escapes the sandbox")
    crashed = 0
    for byte0, byte1 in [(0, 0), (1, 2), (3, 4), (7, 7)]:
        ctx = bytes([byte0, byte1]) + bytes(62)
        odd_sum = ((byte0 & 7) + (byte1 & 7)) & 1
        try:
            outcome = Machine(ctx=ctx).run(program, r1=CTX_BASE)
            note = "in-bounds this time" if not odd_sum else "UNEXPECTED"
            print(f"  ctx=({byte0},{byte1}): r0={outcome.return_value} ({note})")
        except ExecutionError as exc:
            crashed += 1
            print(f"  ctx=({byte0},{byte1}): CRASH — {exc}")
    print(f"  -> {crashed} inputs faulted; a kernel would now be owned")
    assert crashed > 0

    banner("4. The paper's methodology catches the bug automatically")
    cnf = CNFBuilder()
    bb = BitVecBuilder(cnf, 8)
    p = SymTnum(bb.var(), bb.var())
    q = SymTnum(bb.var(), bb.var())
    x, y = bb.var(), bb.var()
    wellformed = lambda t: bb.is_zero(bb.and_(t.v, t.m))
    member = lambda val, t: bb.eq(bb.and_(val, bb.not_(t.m)), t.v)
    cnf.assert_lit(wellformed(p))
    cnf.assert_lit(wellformed(q))
    cnf.assert_lit(member(x, p))
    cnf.assert_lit(member(y, q))
    sv = bb.add(p.v, q.v)
    sm = bb.add(p.m, q.m)
    chi = bb.xor(bb.add(sv, sm), sv)
    r = SymTnum(bb.and_(sv, bb.not_(chi)), chi)  # the buggy circuit
    cnf.assert_lit(-member(bb.add(x, y), r))
    model = Solver(cnf.num_vars, cnf.clauses).solve()
    assert model.sat
    print("  SAT solver verdict: UNSOUND, counterexample:")
    print(f"    P = {Tnum(bb.value_of(p.v, model), bb.value_of(p.m, model), 8)}")
    print(f"    Q = {Tnum(bb.value_of(q.v, model), bb.value_of(q.m, model), 8)}")
    print(f"    x = {bb.value_of(x, model)}, y = {bb.value_of(y, model)}")
    print()
    print("Soundness is not pedantry: one dropped OR in a mask update is")
    print("the whole distance between a sandbox and a kernel exploit.")


if __name__ == "__main__":
    main()
