#!/usr/bin/env python3
"""A realistic workload: an XDP-style packet filter, verified then run.

The paper's introduction motivates tnums with production BPF programs —
XDP DDoS mitigation, load balancers, socket filters — that parse
untrusted packet bytes and must convince the verifier that every access
is in bounds.  This example builds a miniature version of that pipeline:

1. a BPF program parses a synthetic "packet" laid out in the context
   blob: | proto:1 | header_len:1 | payload... | and computes a verdict
   (PASS=1 / DROP=0) plus a checksum over a header whose *length is
   attacker-controlled* — the classic case where masking (`and 15`)
   is what makes the program verifiable;
2. the miniature verifier proves it safe;
3. a concrete fleet of random packets runs through the interpreter, and
   a pure-Python reference implementation cross-checks every verdict.

Run:  python examples/packet_filter.py
"""

import random

from repro.bpf import CTX_BASE, Machine, assemble
from repro.bpf.verifier import Verifier

CTX_SIZE = 64

# Packet layout in the 64-byte ctx: byte 0 = proto, byte 1 = header length
# claim (untrusted!), bytes 2.. = data. The filter:
#   - drops anything that is not proto 6 ("TCP");
#   - masks the claimed header length to at most 15 bytes;
#   - sums header bytes data[0..len) into a checksum;
#   - passes iff checksum != 0.
FILTER = """
    ldxb  r2, [r1+0]          ; proto
    mov   r0, 0               ; default verdict: DROP
    jne   r2, 6, out          ; only proto 6 continues

    ldxb  r3, [r1+1]          ; claimed header length (0..255, untrusted)
    and   r3, 15              ; clamp to 0..15 so reads stay in bounds

    mov   r4, 0               ; checksum accumulator
    mov   r5, 0               ; index

loop_check:
    jeq   r5, 15, done        ; static unrolled bound (no back-edges)
    jge   r5, r3, done        ; dynamic bound: index < clamped length
    mov   r6, r1
    add   r6, r5
    ldxb  r7, [r6+2]          ; data byte at index
    add   r4, r7
    add   r5, 1
    ja    loop_check
done:
    and   r4, 0xff
    mov   r0, 0
    jeq   r4, 0, out          ; zero checksum -> DROP
    mov   r0, 1               ; PASS
out:
    exit
"""


def reference_filter(packet: bytes) -> int:
    """Pure-Python ground truth for the same verdict."""
    if packet[0] != 6:
        return 0
    length = packet[1] & 15
    checksum = sum(packet[2 + i] for i in range(length)) & 0xFF
    return 1 if checksum != 0 else 0


def unroll() -> str:
    """Expand the loop (the classic verifier rejects back-edges).

    Real BPF toolchains unroll bounded loops at compile time (`#pragma
    unroll`); we do the same textually: 15 copies of the body with the
    dynamic bound check.
    """
    body = []
    for i in range(15):
        body.append(f"""
    jge r5, r3, done          ; i={i}
    mov r6, r1
    add r6, r5
    ldxb r7, [r6+2]
    add r4, r7
    add r5, 1
""")
    return f"""
    ldxb  r2, [r1+0]
    mov   r0, 0
    jne   r2, 6, out
    ldxb  r3, [r1+1]
    and   r3, 15
    mov   r4, 0
    mov   r5, 0
{''.join(body)}
done:
    and   r4, 0xff
    mov   r0, 0
    jeq   r4, 0, out
    mov   r0, 1
out:
    exit
"""


def main() -> None:
    text = unroll()  # FILTER above shows the pre-unroll form
    program = assemble(text)
    print(f"filter: {len(program)} instructions after unrolling")

    result = Verifier(ctx_size=CTX_SIZE).verify(program)
    if not result.ok:
        raise SystemExit(f"verifier rejected: {result.error_messages()}")
    print(f"verifier: ACCEPTED ({result.insns_processed} insns analyzed)")

    rng = random.Random(0)
    agree = passed = 0
    trials = 500
    for _ in range(trials):
        packet = bytearray(rng.randrange(256) for _ in range(CTX_SIZE))
        if rng.random() < 0.5:
            packet[0] = 6  # make proto-6 packets common
        verdict = Machine(ctx=bytes(packet)).run(program, r1=CTX_BASE)
        expected = reference_filter(bytes(packet))
        if verdict.return_value == expected:
            agree += 1
        passed += verdict.return_value
    print(f"concrete fleet: {trials} random packets, "
          f"{agree}/{trials} verdicts match the reference, "
          f"{passed} passed the filter")
    if agree != trials:
        raise SystemExit("MISMATCH between BPF filter and reference!")
    print("all verdicts agree with the pure-Python reference ✔")


if __name__ == "__main__":
    main()
