#!/usr/bin/env python3
"""Verify BPF programs with the miniature verifier.

This example exercises the system the paper's domain serves: a static
analyzer that must prove memory safety of untrusted kernel extensions.
Three programs are checked:

1. a packet-bounds filter that is safe thanks to tnum-based masking
   (the `x & 7` idiom from the paper's introduction);
2. the same filter without the mask — rejected for a possible
   out-of-bounds access;
3. a program that would leak a kernel pointer — rejected.

Each accepted program is also executed concretely on random inputs to
demonstrate the abstract results really do over-approximate reality.

Run:  python examples/verify_bpf_program.py
"""

import random

from repro.bpf import CTX_BASE, Machine, assemble
from repro.bpf.verifier import Verifier

SAFE_FILTER = """
; r1 = ctx pointer (64-byte blob). Read a length byte, mask it, and use
; it as an index into an 8-slot table kept on the stack.
    stdw  [r10-8],  0
    stdw  [r10-16], 0
    stdw  [r10-24], 0
    stdw  [r10-32], 0
    stdw  [r10-40], 0
    stdw  [r10-48], 0
    stdw  [r10-56], 0
    stdw  [r10-64], 0
    ldxb  r2, [r1+0]      ; untrusted byte from ctx
    and   r2, 7           ; tnum: 00000µµµ -> provably < 8
    lsh   r2, 3           ; *8 -> provably 8-aligned, <= 56
    mov   r3, r10
    add   r3, -64         ; base of the table
    add   r3, r2          ; variable, but bounded + aligned
    ldxdw r0, [r3+0]      ; verifier must prove this safe
    exit
"""

UNSAFE_FILTER = """
; identical, but the mask is missing: r2 may be up to 255, so the access
; can run past the frame.
    stdw  [r10-8],  0
    stdw  [r10-64], 0
    ldxb  r2, [r1+0]
    lsh   r2, 3
    mov   r3, r10
    add   r3, -64
    add   r3, r2
    ldxdw r0, [r3+0]
    exit
"""

POINTER_LEAK = """
; tries to return the frame pointer to userspace via r0.
    mov r0, r10
    exit
"""


def banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def check(name: str, text: str) -> None:
    banner(name)
    program = assemble(text)
    result = Verifier(ctx_size=64).verify(program)
    if result.ok:
        print(f"ACCEPTED ({result.insns_processed} instructions analyzed)")
        # Differential sanity run: execute on random contexts.
        rng = random.Random(0)
        for _ in range(5):
            ctx = bytes(rng.randrange(256) for _ in range(64))
            outcome = Machine(ctx=ctx).run(program, r1=CTX_BASE)
            print(f"  concrete run: ctx[0]={ctx[0]:3d} -> r0={outcome.return_value}")
    else:
        print("REJECTED:")
        for message in result.error_messages():
            print(f"  {message}")


def main() -> None:
    check("1. masked table lookup (safe: tnum proves bounds + alignment)",
          SAFE_FILTER)
    check("2. unmasked table lookup (unsafe: index up to 255*8)",
          UNSAFE_FILTER)
    check("3. pointer leak via r0 (unsafe)", POINTER_LEAK)


if __name__ == "__main__":
    main()
