#!/usr/bin/env python3
"""Mini precision study: Figure 4 and Table I at laptop scale.

Enumerates every tnum pair at a configurable width, runs the three
multiplication algorithms, and prints the paper-style comparison plus an
ASCII CDF of the log2 set-size ratios.

Run:  python examples/precision_study.py [width]
Width defaults to 5 (59,049 pairs ≈ a few seconds); the paper uses 8.
"""

import sys

from repro.eval import (
    compare_precision,
    precision_cdf,
    precision_trend,
    render_comparison,
    render_fig4,
    render_table1,
)


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    print(f"Precision study at width {width} "
          f"({3 ** (2 * width):,} tnum pairs)\n")

    kern = compare_precision("our_mul", "kern_mul", width)
    bitw = compare_precision("our_mul", "bitwise_mul", width)

    print(render_comparison(kern))
    print()
    print(render_comparison(bitw))
    print()
    print(render_fig4(
        {
            "kern_mul": precision_cdf(kern),
            "bitwise_mul": precision_cdf(bitw),
        },
        width,
    ))

    print()
    print(f"Table I trend (widths 5..{width}):")
    rows = precision_trend(range(5, width + 1))
    print(render_table1(rows))


if __name__ == "__main__":
    main()
