#!/usr/bin/env python3
"""Bounded verification of tnum operators, three ways (§III-A).

Reproduces the paper's verification campaign with the in-repo substrate:

1. **SAT pipeline** — the soundness formula (Eqn. 11) bit-blasted and
   discharged by the CDCL solver (the offline stand-in for Z3);
2. **exhaustive enumeration** — all tnum pairs at small widths, including
   the *optimality* of add/sub the paper proves analytically;
3. **randomized testing** — 64-bit spot checks, the paper's harness for
   validating its SMT encodings.

Also rediscovers the paper's three algebraic observations by witness
search.

Run:  python examples/solver_verification.py
"""

import time

from repro.verify import (
    check_operator_soundness,
    check_optimality,
    check_soundness,
    find_nonassociative_add,
    find_noncommutative_mul,
    find_noninverse_add_sub,
    random_check_operator,
)


def main() -> None:
    print("1. SAT-based bounded verification (Eqn. 11 -> CNF -> CDCL)")
    print("-" * 66)
    for op, width in [
        ("add", 16), ("sub", 16), ("and", 16), ("or", 16), ("xor", 16),
        ("lsh", 8), ("rsh", 8), ("arsh", 8),
        ("mul", 5), ("kern_mul", 4), ("bitwise_mul", 4),
    ]:
        t0 = time.perf_counter()
        report = check_operator_soundness(op, width)
        print(f"  {report}  [{time.perf_counter() - t0:.2f}s]")

    print()
    print("2. Exhaustive verification at width 4 (all 6561 tnum pairs)")
    print("-" * 66)
    for op in ("add", "sub", "mul", "and", "or", "xor"):
        print(f"  {check_soundness(op, 4)}")
    print(f"  {check_optimality('add', 4)}")
    print(f"  {check_optimality('sub', 4)}")
    print(f"  {check_optimality('mul', 4)}   <- our_mul is sound but NOT optimal")

    print()
    print("3. Randomized 64-bit soundness (the kernel's real width)")
    print("-" * 66)
    for op in ("add", "sub", "mul", "and", "or", "xor", "lsh", "rsh", "arsh"):
        print(f"  {random_check_operator(op, trials=2000)}")

    print()
    print("4. The paper's algebraic observations (witness search)")
    print("-" * 66)
    print(f"  {find_nonassociative_add()}")
    print(f"  {find_noninverse_add_sub()}")
    print(f"  {find_noncommutative_mul()}")


if __name__ == "__main__":
    main()
