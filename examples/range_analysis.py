#!/usr/bin/env python3
"""Cooperating abstract domains: tnum × interval reduced product.

The BPF verifier keeps *both* a tnum and unsigned/signed ranges per
register because each domain proves facts the other cannot:

* intervals know ``x in [3, 5]`` but their best tnum is ``0µµ`` ⊇ {0..7};
* tnums know ``x & 8 == 8`` (bit 3 set) but as a range that is just
  ``[8, 15]`` — the tnum additionally excludes 12 when bit 2 is known 0.

This example shows the reduction in both directions, the LLVM KnownBits
view of the same information, and a small dataflow walk through a
compiler-style peephole: proving ``(x & 0xF0) >> 4 < 16`` and that
``x - x == 0`` even for unknown ``x``.

Run:  python examples/range_analysis.py
"""

from repro.core import Tnum
from repro.domains import Interval, KnownBits, ScalarValue


def show(label: str, value) -> None:
    print(f"  {label:<34} {value}")


def main() -> None:
    print("1. Interval -> tnum reduction")
    iv = Interval(3, 5, width=8)
    show("interval [3,5]", iv)
    show("tightest tnum (tnum_range)", iv.to_tnum())
    show("gamma of that tnum", sorted(iv.to_tnum().concretize()))

    print()
    print("2. Tnum -> interval reduction")
    t = Tnum.from_trits("0000µ0µ0", width=8)
    show("tnum 0000µ0µ0", t)
    show("derived bounds", Interval.from_tnum(t))
    show("gamma", sorted(t.concretize()))

    print()
    print("3. The reduced product sharpens both components")
    sv = ScalarValue.make(Tnum.from_trits("0000µµµ0", width=8).cast(64),
                          Interval(4, 9, width=64))
    show("tnum component after reduce", sv.tnum.cast(8))
    show("interval component after reduce", sv.interval)

    print()
    print("4. KnownBits is the same lattice, LLVM-flavoured")
    kb = KnownBits.from_tnum(t)
    show("zeros mask", f"{kb.zeros:#010b}")
    show("ones mask", f"{kb.ones:#010b}")
    show("min leading zeros", kb.count_min_leading_zeros())
    show("round-trips to the same tnum", kb.to_tnum() == t)

    print()
    print("5. Peephole-style facts on an unknown 64-bit x")
    x = ScalarValue.top()
    masked = x.and_(ScalarValue.const(0xF0))
    shifted = masked.rshift(4)
    show("(x & 0xF0) >> 4 bounds", shifted.interval)
    show("provably < 16", shifted.umax() < 16)
    diff = x.sub(x)
    show("x - x (tnum alone, imprecise!)", diff.tnum.cast(8))
    print()
    print("  Note: x - x is NOT provably 0 in the tnum domain — each")
    print("  occurrence of x abstracts independently (no relational info).")
    print("  The paper's domain is non-relational; the kernel handles this")
    print("  with instruction-level patterns, not the domain itself.")


if __name__ == "__main__":
    main()
