#!/usr/bin/env python3
"""Run a differential fuzzing campaign and dissect what it does.

Three demonstrations:

1. a clean campaign — random verifier-plausible programs, each executed
   concretely on many inputs with every register checked against the
   verifier's abstract state (0 violations expected);
2. the same campaign with a *deliberately broken* transfer function
   (abstract addition claiming its result is always even) — the oracle
   catches the lie, and delta-debugging shrinks the counterexample to a
   few instructions;
3. corpus persistence — the failure round-trips through JSON so it can
   be replayed by a later build.

Run:  python examples/fuzz_campaign.py
"""

from repro.core.tnum import Tnum
from repro.fuzz import CampaignConfig, Corpus, run_campaign


def clean_campaign() -> None:
    print("=== 1. clean campaign (budget 200, seed 42) ===")
    result = run_campaign(CampaignConfig(budget=200, seed=42))
    print(result.stats.summary())
    assert result.ok, "the shipped verifier should be sound"
    print()


def broken_verifier_campaign() -> Corpus:
    print("=== 2. campaign against a broken abstract addition ===")
    import repro.domains.product as product

    real_add = product.tnum_add

    def buggy_add(p: Tnum, q: Tnum) -> Tnum:
        t = real_add(p, q)
        if t.is_bottom():
            return t
        # Claim the low bit of every sum is known-zero.  Unsound: odd
        # concrete sums now escape the abstract value.
        return Tnum(t.value & ~1, t.mask & ~1, t.width)

    product.tnum_add = buggy_add
    try:
        corpus = Corpus()
        result = run_campaign(
            CampaignConfig(budget=60, seed=0, profile="alu"), corpus
        )
    finally:
        product.tnum_add = real_add

    print(result.stats.summary())
    assert not result.ok, "the injected bug must be caught"
    entry = corpus.violations()[0]
    print(f"\nfirst violation: {entry.violation['message']}")
    shrunk = entry.shrunk_program()
    print(f"shrunk witness ({len(shrunk)} instructions):")
    for line in shrunk.disassemble().splitlines():
        print(f"    {line}")
    print()
    return corpus


def corpus_roundtrip(corpus: Corpus) -> None:
    print("=== 3. corpus persistence ===")
    text = corpus.to_json()
    reloaded = Corpus.from_json(text)
    replay = reloaded.violations()[0].shrunk_program()
    print(f"corpus JSON: {len(text)} bytes, {len(reloaded)} entries")
    print(f"replayed witness still {len(replay)} instructions — "
          "bit-exact through the kernel wire format")


def main() -> None:
    clean_campaign()
    corpus = broken_verifier_campaign()
    corpus_roundtrip(corpus)


if __name__ == "__main__":
    main()
