"""Corpus persistence: every entry kind survives JSON with wire equality."""

import pytest

from repro.bpf import isa
from repro.bpf.insn import Instruction
from repro.bpf.program import Program
from repro.fuzz import Corpus, generate_program

U64 = (1 << 64) - 1

MOV_R0 = isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K
LDDW = isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM
JA = isa.CLS_JMP | isa.JMP_JA
JEQ_K = isa.CLS_JMP | isa.JMP_JEQ | isa.SRC_K
EXIT = isa.CLS_JMP | isa.JMP_EXIT


def roundtrip(corpus: Corpus, tmp_path) -> Corpus:
    path = tmp_path / "corpus.json"
    corpus.save(path)
    return Corpus.load(path)


def extreme_imm_program() -> Program:
    """Max-size immediates at every boundary the wire format encodes."""
    return Program([
        Instruction(LDDW, dst=1, imm=U64),                   # all-ones imm64
        Instruction(LDDW, dst=2, imm=-(1 << 63)),            # most-negative
        Instruction(MOV_R0, dst=0, imm=-(1 << 31)),          # s32 min
        Instruction(MOV_R0, dst=3, imm=(1 << 31) - 1),       # s32 max
        Instruction(EXIT),
    ])


def negative_offset_program() -> Program:
    """Backward branches: negative offsets must survive the wire format."""
    return Program([
        Instruction(MOV_R0, dst=0, imm=0),
        Instruction(JEQ_K, dst=0, imm=1, off=1),   # skip the back-jump
        Instruction(JA, off=-3),                   # back to insn 0
        Instruction(EXIT),
    ])


class TestEveryKindRoundTrips:
    def test_violation_interesting_and_seed_entries(self, tmp_path):
        gp = generate_program(1)
        shrunk = generate_program(2).program
        corpus = Corpus()
        corpus.add_violation(
            gp.program, seed=1, profile="mixed",
            violation={"kind": "containment", "message": "x", "pc": 3},
            shrunk=shrunk, note="original",
        )
        corpus.add_interesting(gp.program, seed=1, profile="alu",
                               note="accepted")
        corpus.add_seed(shrunk, seed=2, profile="mixed", note="near-miss")

        loaded = roundtrip(corpus, tmp_path)
        assert loaded.to_json() == corpus.to_json()
        assert [e.kind for e in loaded.entries] == \
            ["violation", "interesting", "seed"]
        for original, reloaded in zip(corpus.entries, loaded.entries):
            assert reloaded.program().to_bytes() == \
                original.program().to_bytes()
        assert loaded.entries[0].shrunk_program().to_bytes() == \
            shrunk.to_bytes()
        assert loaded.seeds()[0].note == "near-miss"

    def test_kind_accessors(self):
        corpus = Corpus()
        gp = generate_program(3)
        corpus.add_seed(gp.program, seed=3, profile="mixed")
        assert len(corpus.seeds()) == 1
        assert corpus.violations() == []


class TestWireFormatExtremes:
    def test_max_size_immediates_survive(self, tmp_path):
        program = extreme_imm_program()
        corpus = Corpus()
        corpus.add_seed(program, seed=0, profile="mixed")
        loaded = roundtrip(corpus, tmp_path)
        replayed = loaded.entries[0].program()
        assert replayed.to_bytes() == program.to_bytes()
        assert replayed.insns[0].imm & U64 == U64
        assert replayed.insns[1].imm & U64 == 1 << 63
        assert replayed.insns[2].imm == -(1 << 31)
        assert replayed.insns[3].imm == (1 << 31) - 1

    def test_negative_branch_offsets_survive(self, tmp_path):
        program = negative_offset_program()
        corpus = Corpus()
        corpus.add_violation(
            program, seed=0, profile="mixed",
            violation={"kind": "containment", "message": "loop"},
        )
        loaded = roundtrip(corpus, tmp_path)
        replayed = loaded.entries[0].program()
        assert replayed.to_bytes() == program.to_bytes()
        assert replayed.insns[2].off == -3
        # Slot addressing still resolves the backward target.
        assert replayed.jump_target_slot(2) == 0

    def test_extreme_offset_boundaries(self, tmp_path):
        # s16 extremes are encodable even if the targets are nonsense for
        # a *jump*; store offsets use the full range.
        stx = isa.CLS_STX | isa.SZ_DW | isa.MODE_MEM
        program = Program([
            Instruction(MOV_R0, dst=0, imm=0),
            Instruction(stx, dst=10, src=0, off=-(1 << 15)),
            Instruction(stx, dst=10, src=0, off=(1 << 15) - 1),
            Instruction(EXIT),
        ])
        corpus = Corpus()
        corpus.add_interesting(program, seed=5, profile="memory")
        loaded = roundtrip(corpus, tmp_path)
        replayed = loaded.entries[0].program()
        assert replayed.to_bytes() == program.to_bytes()
        assert replayed.insns[1].off == -(1 << 15)
        assert replayed.insns[2].off == (1 << 15) - 1

    def test_bad_version_still_rejected(self):
        with pytest.raises(ValueError):
            Corpus.from_json('{"format_version": 2, "entries": []}')
