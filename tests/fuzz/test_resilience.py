"""Leased batches, crash recovery, and chaos-parity of campaign reports.

The batch tasks here are module-level on purpose: they cross the process
boundary by name (fork or spawn), exactly like the campaign's own
``_fuzz_batch``.
"""

import json
import os
import time

import pytest

from repro import faults
from repro.fuzz import CampaignConfig, CampaignSpec, run_campaign
from repro.fuzz.campaign import run_precision_campaign
from repro.fuzz.resilience import (
    QuarantinedBatch,
    RetryPolicy,
    batch_indices,
    lease_expired,
    run_leased_batches,
)


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _echo_task(indices, attempt, inject):
    return [{"index": i, "attempt": attempt} for i in indices]


def _crash_first_attempt_task(indices, attempt, inject):
    if attempt == 0:
        os._exit(faults.WORKER_CRASH_EXIT_CODE)
    return [{"index": i, "attempt": attempt} for i in indices]


def _always_crash_task(indices, attempt, inject):
    os._exit(faults.WORKER_CRASH_EXIT_CODE)


def _soft_error_task(indices, attempt, inject):
    if attempt == 0:
        raise ValueError("flaky once")
    return [{"index": i} for i in indices]


def _hang_task(indices, attempt, inject):
    if attempt == 0:
        time.sleep(60)
    return [{"index": i} for i in indices]


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_max_s=0.35, jitter=0.0
        )
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.35)   # capped

    def test_jitter_stays_inside_the_window_and_desynchronizes(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=10.0,
                             jitter=0.5, seed=42)
        delays = [policy.backoff_s(2, key=(b,)) for b in range(32)]
        # Every delay lands in [delay * (1 - jitter), delay] ...
        assert all(0.1 <= d <= 0.2 for d in delays)
        # ... and distinct batches land at distinct points (no storm).
        assert len(set(delays)) > 16

    def test_jitter_is_deterministic_per_seed_and_key(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        assert a.backoff_s(3, key=(5,)) == b.backoff_s(3, key=(5,))
        assert a.backoff_s(3, key=(5,)) != c.backoff_s(3, key=(5,))
        assert a.backoff_s(3, key=(5,)) != a.backoff_s(3, key=(6,))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(lease_timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestBatchIndices:
    def test_covers_every_index_once(self):
        batches = batch_indices(range(100), workers=4)
        flat = [i for batch in batches for i in batch]
        assert flat == list(range(100))

    def test_small_rounds_still_batch(self):
        assert batch_indices(range(3), workers=8) == [[0], [1], [2]]


class TestLeaseRunner:
    def test_happy_path(self):
        batches = batch_indices(range(20), workers=2)
        out = run_leased_batches(batches, _echo_task, workers=2)
        assert sorted(r["index"] for r in out.results) == list(range(20))
        assert not out.quarantined and out.retries == 0

    def test_crash_retries_and_recovers(self):
        out = run_leased_batches(
            [[0, 1], [2, 3]], _crash_first_attempt_task, workers=2,
            policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        assert sorted(r["index"] for r in out.results) == [0, 1, 2, 3]
        assert out.crashes >= 2 and out.retries >= 2
        assert not out.quarantined

    def test_unrecoverable_batch_quarantines(self):
        out = run_leased_batches(
            [[0, 1]], _always_crash_task, workers=1,
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        assert out.results == []
        assert len(out.quarantined) == 1
        batch = out.quarantined[0]
        assert batch.indices == [0, 1] and batch.attempts == 2
        assert all(fp["kind"] == "crash" for fp in batch.fingerprints)
        payload = batch.to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_soft_error_retries(self):
        out = run_leased_batches(
            [[0], [1]], _soft_error_task, workers=2,
            policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        assert sorted(r["index"] for r in out.results) == [0, 1]
        assert out.errors == 2 and not out.quarantined

    def test_lease_timeout_kills_and_retries(self):
        out = run_leased_batches(
            [[0]], _hang_task, workers=1,
            policy=RetryPolicy(
                max_attempts=2, lease_timeout_s=0.5, backoff_base_s=0.01,
            ),
        )
        assert [r["index"] for r in out.results] == [0]
        assert out.timeouts == 1 and out.retries == 1

    def test_empty_batches(self):
        out = run_leased_batches([], _echo_task, workers=2)
        assert out.results == [] and not out.quarantined


def _report_bytes(result):
    return json.dumps(result.report.to_dict(), sort_keys=True)


class TestChaosParity:
    """Injected worker crashes must not change the campaign's output."""

    SPEC = dict(budget=24, rounds=2, seed=42, max_insns=12,
                inputs_per_program=4, shrink=False)

    @pytest.fixture(scope="class")
    def baseline(self):
        return _report_bytes(
            run_precision_campaign(CampaignSpec(workers=1, **self.SPEC))
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_report_byte_identical_under_crashes(self, workers, baseline):
        faults.arm("seed=7,campaign.worker.crash=0.5")
        result = run_precision_campaign(
            CampaignSpec(workers=workers, **self.SPEC),
            retry_policy=RetryPolicy(backoff_base_s=0.01),
        )
        assert result.stats.retries > 0          # chaos actually happened
        assert result.stats.quarantined == 0     # ...and was fully absorbed
        assert _report_bytes(result) == baseline

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_resume_mid_campaign_under_crashes(
        self, workers, baseline, tmp_path
    ):
        """Kill-and-resume: one round, stop, resume under injected crashes."""
        faults.arm("seed=7,campaign.worker.crash=0.4")
        state = tmp_path / f"state-{workers}"
        spec = CampaignSpec(workers=workers, **self.SPEC)
        policy = RetryPolicy(backoff_base_s=0.01)
        first = run_precision_campaign(
            spec, state_dir=state, stop_after_rounds=1, retry_policy=policy,
        )
        assert first.stats.rounds_completed == 1
        resumed = run_precision_campaign(
            spec, state_dir=state, retry_policy=policy,
        )
        assert resumed.stats.rounds_completed == spec.rounds
        assert _report_bytes(resumed) == baseline

    def test_corrupt_shards_never_change_the_report(self, baseline, tmp_path):
        from repro.bpf.canon import VerdictCache

        faults.arm("seed=7,campaign.shard.corrupt=1")
        cache = VerdictCache()
        result = run_precision_campaign(
            CampaignSpec(workers=2, **self.SPEC), verdict_cache=cache,
        )
        assert _report_bytes(result) == baseline
        # Every shard was corrupt, so nothing was absorbed.
        assert len(cache) == 0


class TestQuarantineArtifacts:
    def test_poison_batches_written_and_reported(self, tmp_path):
        faults.arm("seed=7,campaign.worker.crash=1")
        spec = CampaignSpec(
            budget=8, rounds=1, seed=1, workers=2, max_insns=8,
            inputs_per_program=2, shrink=False,
        )
        # No fault-free last attempt: every batch crashes to exhaustion.
        result = run_precision_campaign(
            spec, state_dir=tmp_path / "state",
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.01,
                fault_free_final_attempt=False,
            ),
        )
        assert result.stats.quarantined == len(result.quarantined) > 0
        assert not result.ok
        poison = sorted((tmp_path / "state" / "poison").glob("*.json"))
        assert len(poison) == len(result.quarantined)
        payload = json.loads(poison[0].read_text())
        assert payload["attempts"] == 2
        assert payload["fingerprints"][0]["kind"] == "crash"
        assert payload["programs"], "poison batch must name its programs"
        for program in payload["programs"]:
            assert set(program) >= {"index", "seed", "origin", "bytecode_hex"}


class TestDriverChaos:
    def test_fuzz_driver_recovers_and_matches(self):
        config = dict(budget=30, seed=3, max_insns=10, shrink=False)
        base = run_campaign(CampaignConfig(workers=1, **config))
        faults.arm("seed=5,campaign.worker.crash=0.5")
        chaos = run_campaign(
            CampaignConfig(workers=2, **config),
            retry_policy=RetryPolicy(backoff_base_s=0.01),
        )
        assert chaos.stats.retries > 0
        assert chaos.stats.quarantined == 0
        for field in ("executed", "accepted", "rejected", "rejected_clean",
                      "violations", "containment_checks"):
            assert getattr(chaos.stats, field) == getattr(base.stats, field)


class TestLeaseExpiry:
    """The boundary both lease schedulers share: expiry is strictly
    *after* the deadline (a result landing exactly at the deadline is
    still inside the lease).  The distributed coordinator pins the same
    semantics end to end in tests/fuzz/test_dist.py."""

    def test_no_deadline_never_expires(self):
        assert not lease_expired(None, 1e12)

    def test_before_the_deadline(self):
        assert not lease_expired(100.0, 99.999)

    def test_exactly_at_the_deadline_is_not_expired(self):
        assert not lease_expired(100.0, 100.0)

    def test_just_after_the_deadline_is_expired(self):
        assert lease_expired(100.0, 100.001)
