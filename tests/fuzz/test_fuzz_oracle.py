"""Differential-oracle behaviour: clean programs, rejections, injected bugs."""

import pytest

from repro.bpf import assemble
from repro.core.tnum import Tnum
from repro.fuzz import DifferentialOracle, generate_program

SAFE = """
    mov   r0, 0
    ldxw  r2, [r1+0]
    and   r2, 63
    stxdw [r10-8], r2
    ldxdw r3, [r10-8]
    add   r0, r3
    exit
"""

UNINIT_STACK = """
    ldxdw r0, [r10-8]
    exit
"""

OOB_STORE = """
    mov   r1, 5
    stxdw [r10+8], r1
    mov   r0, 0
    exit
"""


class TestAcceptedPrograms:
    def test_safe_program_is_clean(self):
        oracle = DifferentialOracle(inputs_per_program=6)
        report = oracle.check_program(assemble(SAFE), input_seed_base=1)
        assert report.verdict == "accepted"
        assert report.ok
        assert report.runs == 6
        assert report.checks > 0

    def test_generated_programs_are_clean(self):
        oracle = DifferentialOracle(inputs_per_program=4)
        for seed in range(40):
            gp = generate_program(seed)
            report = oracle.check_program(gp.program, input_seed_base=seed)
            assert report.ok, (
                f"seed {seed}: {[str(v) for v in report.violations]}"
            )

    def test_input_streams_are_deterministic(self):
        oracle = DifferentialOracle(inputs_per_program=4)
        prog = assemble(SAFE)
        a = oracle.check_program(prog, input_seed_base=9)
        b = oracle.check_program(prog, input_seed_base=9)
        assert (a.checks, a.runs, a.violations) == (
            b.checks, b.runs, b.violations
        )


class TestRejectedPrograms:
    def test_rejection_with_clean_replay_is_not_a_violation(self):
        # The interpreter zero-fills the stack, so this runs fine; the
        # verifier's rejection is conservatism, not unsoundness.
        report = DifferentialOracle().check_program(assemble(UNINIT_STACK))
        assert report.verdict == "rejected"
        assert report.ok
        assert report.rejected_but_clean is True
        assert "uninitialized" in report.reject_reason

    def test_rejection_confirmed_by_crash(self):
        report = DifferentialOracle().check_program(assemble(OOB_STORE))
        assert report.verdict == "rejected"
        assert report.ok
        assert report.rejected_but_clean is False


class TestInjectedBugs:
    def test_unsound_add_is_caught(self, monkeypatch):
        """Clearing the LSB of every abstract sum must trip containment."""
        import repro.domains.product as product

        real_add = product.tnum_add

        def buggy_add(p: Tnum, q: Tnum) -> Tnum:
            t = real_add(p, q)
            if t.is_bottom():
                return t
            return Tnum(t.value & ~1, t.mask & ~1, t.width)

        monkeypatch.setattr(product, "tnum_add", buggy_add)

        # The operand must be abstractly unknown: const + const folds
        # concretely (exact on singletons), bypassing the tnum transfer.
        program = assemble("ldxb r2, [r1+0]\nmov r0, 3\nadd r0, r2\nexit")
        report = DifferentialOracle(inputs_per_program=8).check_program(
            program
        )
        assert report.verdict == "accepted"
        assert not report.ok
        assert report.violations[0].kind == "containment"
        assert report.violations[0].register == 0

    def test_disabled_bounds_check_is_caught(self, monkeypatch):
        """An accepted program that crashes concretely is a violation."""
        import repro.bpf.verifier.absint as absint

        monkeypatch.setattr(
            absint, "check_mem_access", lambda *a, **k: None
        )
        report = DifferentialOracle(inputs_per_program=1).check_program(
            assemble(OOB_STORE)
        )
        assert report.verdict == "accepted"
        assert not report.ok
        assert report.violations[0].kind == "accepted_crash"


class TestRegression32BitAlu:
    """The fuzzer's first catch: 32-bit div/mod/shifts must truncate
    their *operands*, not just the result (truncation does not commute
    with those operations)."""

    @pytest.mark.parametrize("text,expected", [
        # -1 (64-bit) seen as 0xFFFFFFFF by the 32-bit divide.
        ("mov r0, 1\nneg r0\nmov r3, 268914504\ndiv32 r0, r3\nexit", 15),
        # mod32 likewise works on the subregister.
        ("mov r0, 0\nxor32 r0, -1\nadd r0, r0\nmod32 r0, 1750065495\nexit",
         794836304),
    ])
    def test_witnesses_stay_sound(self, text, expected):
        from repro.bpf import Machine
        program = assemble(text)
        assert Machine().run(program).return_value == expected
        report = DifferentialOracle(inputs_per_program=2).check_program(
            program
        )
        assert report.verdict == "accepted"
        assert report.ok, [str(v) for v in report.violations]

    def test_arsh32_containment(self):
        program = assemble(
            "mov r0, 1\nlsh r0, 31\narsh32 r0, 4\nexit"
        )
        from repro.bpf import Machine
        assert Machine().run(program).return_value == 0xF800_0000
        report = DifferentialOracle(inputs_per_program=1).check_program(
            program
        )
        assert report.ok, [str(v) for v in report.violations]
