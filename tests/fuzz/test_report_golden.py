"""Golden test: the decode-once pipeline must not move campaign results.

The committed golden was produced by the pre-compiled-pipeline oracle
(step-decoding interpreter, per-replay ``Machine`` construction,
``ScalarValue.contains`` containment checks, frozen-dataclass domains).
A fixed-seed campaign re-run through the current pipeline must serialize
a byte-identical :class:`PrecisionReport` — the determinism guarantee
campaigns have carried since PR 2, now doubling as a regression harness
for the performance work: any semantic drift in the interpreter, the
oracle's replay batching, or the domain interning shows up here as a
diff, not as a silently different campaign.
"""

from pathlib import Path

from repro.fuzz import CampaignSpec, run_precision_campaign

GOLDEN = Path(__file__).parent / "golden" / "precision-seed42-b40.json"


def test_fixed_seed_campaign_report_byte_identical():
    # Mutation feedback deliberately left on (the default): the round-2
    # program stream then depends on round-1 verdicts, shrinking, and
    # pool admission order, so this exercises the whole loop — not just
    # the generator.
    result = run_precision_campaign(CampaignSpec(budget=40, rounds=2, seed=42))
    assert result.stats.violations == 0
    assert result.report.to_json() + "\n" == GOLDEN.read_text(), (
        "fixed-seed campaign report diverged from the pre-refactor golden; "
        "the execution pipeline changed observable semantics"
    )
