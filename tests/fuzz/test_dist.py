"""Distributed campaigns: protocol, coordinator semantics, HTTP parity.

The contract under test is the acceptance bar: the merged distributed
``PrecisionReport`` is byte-identical to a single-machine fault-free
campaign — under any worker count, duplicated result submissions, lease
expiry and re-issue, and a coordinator killed and resumed mid-round.
Coordinator unit tests drive an injectable clock so expiry and
staleness never sleep.
"""

import json
import shutil
import threading
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.fuzz.campaign import (
    CampaignSpec,
    _fuzz_batch,
    _record_quarantine,
    _set_worker_state,
    run_precision_campaign,
)
from repro.fuzz.dist import (
    Coordinator,
    CoordinatorConfig,
    batch_fingerprint,
    campaign_id,
    run_worker,
    slice_batches,
    validate_batch_results,
)
from repro.fuzz.resilience import QuarantinedBatch, RetryPolicy
from repro.api.dist import CoordinatorApi


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


SPEC = dict(budget=24, rounds=2, seed=42, max_insns=12,
            inputs_per_program=4, shrink=False)
#: Lighter spec for lease-mechanics tests that never compare reports.
SMALL = dict(budget=8, rounds=1, seed=7, max_insns=8,
             inputs_per_program=2, shrink=False)


def _report_bytes(result):
    return json.dumps(result.report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline():
    return _report_bytes(
        run_precision_campaign(CampaignSpec(workers=1, **SPEC))
    )


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _execute(coordinator, grant, worker="w"):
    """Compute one granted batch exactly as a remote worker would."""
    info = coordinator.round_info()
    _set_worker_state(CampaignSpec(**info["spec"]), tuple(info["pool"]))
    batch = grant["batch"]
    payload = {
        "schema_version": 1,
        "campaign_id": grant["campaign_id"],
        "worker": worker,
        "round": grant["round"],
        "batch_id": batch["batch_id"],
        "fingerprint": batch["fingerprint"],
        "attempt": batch["attempt"],
        "ok": True,
        "results": _fuzz_batch(
            batch["indices"], batch["attempt"], batch["inject"]
        ),
    }
    return json.loads(json.dumps(payload))   # faithful to the wire


def _drive(coordinator, clock, worker="w"):
    """Single in-process worker loop until the campaign finishes."""
    while not coordinator.finished:
        grant = coordinator.lease(worker)
        if grant.get("done"):
            break
        if "batch" not in grant:
            clock.advance(grant["wait"] + 0.01)   # retry backoff windows
            continue
        coordinator.ingest(_execute(coordinator, grant, worker))


class TestProtocol:
    def test_campaign_id_excludes_worker_count(self):
        a = CampaignSpec(workers=1, **SPEC)
        b = CampaignSpec(workers=8, **SPEC)
        assert campaign_id(a) == campaign_id(b)
        assert campaign_id(a) != campaign_id(
            CampaignSpec(workers=1, **{**SPEC, "seed": 43})
        )

    def test_fingerprint_excludes_attempt_but_scopes_everything_else(self):
        fp = batch_fingerprint("cid", 0, 1, [4, 5, 6])
        assert fp == batch_fingerprint("cid", 0, 1, [4, 5, 6])
        assert fp != batch_fingerprint("cid", 1, 1, [4, 5, 6])
        assert fp != batch_fingerprint("cid", 0, 2, [4, 5, 6])
        assert fp != batch_fingerprint("cid", 0, 1, [4, 5])
        assert fp != batch_fingerprint("other", 0, 1, [4, 5, 6])

    def test_slice_batches(self):
        assert slice_batches(range(7), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert slice_batches([], 3) == []
        with pytest.raises(ValueError):
            slice_batches(range(4), 0)

    def test_validate_batch_results(self):
        good = [{"index": 2, "x": 1}, {"index": 1, "x": 2}]
        assert validate_batch_results([1, 2], good) is good
        with pytest.raises(ValueError):
            validate_batch_results([1, 2], [{"index": 1}])       # missing
        with pytest.raises(ValueError):
            validate_batch_results([1], [{"index": 1}, {"index": 1}])
        with pytest.raises(ValueError):
            validate_batch_results([1], [{"no_index": True}])
        with pytest.raises(ValueError):
            validate_batch_results([1], {"index": 1})            # not a list


class TestCoordinatorParity:
    def test_report_byte_identical_to_single_machine(
        self, baseline, tmp_path
    ):
        clock = FakeClock()
        coordinator = Coordinator(
            CampaignSpec(workers=1, **SPEC), tmp_path / "state",
            config=CoordinatorConfig(batch_size=5), clock=clock,
        )
        _drive(coordinator, clock)
        assert coordinator.finished
        assert _report_bytes(coordinator.result()) == baseline

    def test_duplicate_ingest_is_counted_and_changes_nothing(
        self, baseline, tmp_path
    ):
        clock = FakeClock()
        coordinator = Coordinator(
            CampaignSpec(workers=1, **SPEC), tmp_path / "state",
            config=CoordinatorConfig(batch_size=4), clock=clock,
        )
        while not coordinator.finished:
            grant = coordinator.lease("w")
            if grant.get("done"):
                break
            if "batch" not in grant:
                clock.advance(grant["wait"] + 0.01)
                continue
            payload = _execute(coordinator, grant)
            assert coordinator.ingest(payload)["status"] == "accepted"
            # Every result reported twice: the second must dedupe (or,
            # when the first one settled the round, go stale against
            # the next round's ledger — either way it merges nothing).
            assert coordinator.ingest(payload)["status"] in (
                "duplicate", "stale",
            )
        stats = coordinator.stats_payload()
        assert stats["counters"]["results_duplicate"] > 0
        assert _report_bytes(coordinator.result()) == baseline

    def test_expired_lease_reissues_and_first_report_wins(
        self, baseline, tmp_path
    ):
        """The re-issue race: the 'dead' worker's late result lands
        first and wins; the re-issued worker's report is the duplicate.
        Report bytes stay identical throughout."""
        clock = FakeClock()
        coordinator = Coordinator(
            CampaignSpec(workers=1, **SPEC), tmp_path / "state",
            config=CoordinatorConfig(
                batch_size=4, lease_timeout_s=10.0,
                retry=RetryPolicy(backoff_base_s=0.01),
            ),
            clock=clock,
        )
        raced = 0
        while not coordinator.finished:
            grant = coordinator.lease("w1")
            if grant.get("done"):
                break
            if "batch" not in grant:
                clock.advance(grant["wait"] + 0.01)
                continue
            late = _execute(coordinator, grant, worker="w1")
            clock.advance(10.01)   # w1 'dies'; its lease expires
            coordinator.tick()     # expiry noticed, attempt charged
            clock.advance(1.0)     # past the retry backoff window
            regrant = coordinator.lease("w2")
            assert regrant["batch"]["fingerprint"] == \
                grant["batch"]["fingerprint"]
            assert regrant["batch"]["attempt"] == \
                grant["batch"]["attempt"] + 1
            duplicate = _execute(coordinator, regrant, worker="w2")
            # The original worker's late report arrives first and wins;
            # the re-issued worker's is the counted duplicate.
            assert coordinator.ingest(late)["status"] == "accepted"
            assert coordinator.ingest(duplicate)["status"] in (
                "duplicate", "stale",
            )
            raced += 1
        assert raced > 0
        counters = coordinator.stats_payload()["counters"]
        assert counters["leases_expired"] == raced
        assert coordinator.result().stats.retries == raced
        assert _report_bytes(coordinator.result()) == baseline

    def test_kill_and_resume_mid_round_matches(self, baseline, tmp_path):
        """SIGKILL-shaped resume: drop coordinator A mid-round (no
        cleanup), bring up B on the same state dir, finish, compare."""
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SPEC)
        config = CoordinatorConfig(batch_size=4, lease_timeout_s=30.0)
        a = Coordinator(spec, tmp_path / "state", config=config, clock=clock)
        # Complete two batches, leave a third leased-but-unreported,
        # then "crash" (drop every in-memory structure on the floor).
        for _ in range(2):
            grant = a.lease("w1")
            a.ingest(_execute(a, grant, worker="w1"))
        dangling = a.lease("w1")
        assert "batch" in dangling
        del a

        b = Coordinator(spec, tmp_path / "state", config=config, clock=clock)
        # The dangling lease survived the restart: it is NOT re-granted
        # before its (epoch) deadline passes...
        early = b.lease("w2")
        if "batch" in early:   # a different, still-pending batch is fine
            assert early["batch"]["fingerprint"] != \
                dangling["batch"]["fingerprint"]
            b.ingest(_execute(b, early, worker="w2"))
        clock.advance(30.01)
        # ...and is re-issued after it.
        _drive(b, clock, worker="w2")
        assert b.finished
        assert _report_bytes(b.result()) == baseline
        # Done batches were preserved, not re-executed: only the
        # dangling lease was ever reclaimed.
        assert b.stats_payload()["counters"]["leases_expired"] == 1

    def test_resume_is_deterministic_from_a_state_snapshot(
        self, baseline, tmp_path
    ):
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SPEC)
        config = CoordinatorConfig(batch_size=6)
        a = Coordinator(spec, tmp_path / "a", config=config, clock=clock)
        grant = a.lease("w")
        a.ingest(_execute(a, grant))
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        _drive(a, clock)
        clock_b = FakeClock(clock.t)
        b = Coordinator(spec, tmp_path / "b", config=config, clock=clock_b)
        _drive(b, clock_b, worker="other")
        assert _report_bytes(a.result()) == baseline
        assert _report_bytes(b.result()) == baseline


class TestLeaseBoundary:
    """Expiry is strictly *after* the deadline — shared with the
    resilience runner via ``lease_expired`` (see test_resilience)."""

    def _one_batch(self, tmp_path, clock, **overrides):
        options = dict(
            batch_size=SMALL["budget"],   # the whole round, one lease
            lease_timeout_s=10.0,
        )
        options.update(overrides)
        return Coordinator(
            CampaignSpec(workers=1, **SMALL), tmp_path / "state",
            config=CoordinatorConfig(**options), clock=clock,
        )

    def test_result_exactly_at_deadline_is_inside_the_lease(self, tmp_path):
        clock = FakeClock()
        coordinator = self._one_batch(tmp_path, clock)
        grant = coordinator.lease("w1")
        payload = _execute(coordinator, grant, worker="w1")
        clock.advance(10.0)   # now == deadline, to the tick
        assert coordinator.ingest(payload)["status"] == "accepted"
        assert coordinator.result().stats.retries == 0

    def test_lease_not_reissued_exactly_at_deadline(self, tmp_path):
        clock = FakeClock()
        coordinator = self._one_batch(
            tmp_path, clock, retry=RetryPolicy(backoff_base_s=0.0)
        )
        granted = coordinator.lease("w1")
        clock.advance(10.0)
        # Exactly at the deadline the lease still stands: w2 waits.
        assert "batch" not in coordinator.lease("w2")
        clock.advance(0.01)
        regrant = coordinator.lease("w2")
        assert regrant["batch"]["fingerprint"] == \
            granted["batch"]["fingerprint"]
        assert regrant["batch"]["attempt"] == 1

    def test_result_just_after_expiry_still_accepted(self, tmp_path):
        """Late-but-valid work is never thrown away: after expiry (and
        after the failed attempt was recorded) the first report wins."""
        clock = FakeClock()
        coordinator = self._one_batch(
            tmp_path, clock, retry=RetryPolicy(backoff_base_s=5.0)
        )
        grant = coordinator.lease("w1")
        payload = _execute(coordinator, grant, worker="w1")
        clock.advance(10.02)
        coordinator.tick()   # expiry noticed, batch back to pending
        assert coordinator.stats_payload()["counters"]["leases_expired"] == 1
        assert coordinator.ingest(payload)["status"] == "accepted"
        assert coordinator.finished

    def test_stale_heartbeat_reissues_before_lease_expiry(self, tmp_path):
        clock = FakeClock()
        coordinator = self._one_batch(
            tmp_path, clock,
            lease_timeout_s=1000.0, heartbeat_timeout_s=5.0,
            retry=RetryPolicy(backoff_base_s=0.0),
        )
        coordinator.lease("w1")
        clock.advance(6.0)    # way inside the lease, way past heartbeats
        regrant = coordinator.lease("w2")
        assert regrant["batch"]["attempt"] == 1
        counters = coordinator.stats_payload()["counters"]
        assert counters["heartbeats_stale"] == 1
        assert counters.get("leases_expired", 0) == 0

    def test_failure_report_for_superseded_attempt_is_stale(self, tmp_path):
        clock = FakeClock()
        coordinator = self._one_batch(
            tmp_path, clock, retry=RetryPolicy(backoff_base_s=0.0)
        )
        grant = coordinator.lease("w1")
        clock.advance(10.01)
        regrant = coordinator.lease("w2")   # reclaim + re-grant
        assert regrant["batch"]["attempt"] == 1
        late_error = {
            "worker": "w1",
            "fingerprint": grant["batch"]["fingerprint"],
            "attempt": grant["batch"]["attempt"],
            "ok": False, "error": "ValueError('flaky')",
        }
        # w1's late failure refers to attempt 0 — it must not clobber
        # w2's live lease.
        assert coordinator.ingest(late_error)["status"] == "stale"
        assert coordinator.stats_payload()["batches"]["leased"] == 1


class TestCoordinatorFailureHandling:
    def test_invalid_result_set_charges_an_attempt(self, tmp_path):
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SMALL)
        coordinator = Coordinator(
            spec, tmp_path / "state",
            config=CoordinatorConfig(
                batch_size=SMALL["budget"],
                retry=RetryPolicy(backoff_base_s=0.01),
            ),
            clock=clock,
        )
        grant = coordinator.lease("w1")
        bad = _execute(coordinator, grant, worker="w1")
        bad["results"] = bad["results"][:-1]   # truncated POST
        assert coordinator.ingest(bad)["status"] == "retrying"
        assert coordinator.stats_payload()["counters"]["results_rejected"] == 1
        clock.advance(1.0)
        regrant = coordinator.lease("w2")
        assert regrant["batch"]["attempt"] == 1
        coordinator.ingest(_execute(coordinator, regrant, worker="w2"))
        assert coordinator.finished
        assert coordinator.result().stats.quarantined == 0

    def test_repeated_failure_quarantines_with_attempt_suffix(
        self, tmp_path
    ):
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SMALL)
        coordinator = Coordinator(
            spec, tmp_path / "state",
            config=CoordinatorConfig(
                batch_size=SMALL["budget"], lease_timeout_s=10.0,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            ),
            clock=clock,
        )
        for _ in range(2):        # two grants, two expiries -> quarantine
            clock.advance(1.0)    # past any retry backoff
            grant = coordinator.lease("w1")
            assert "batch" in grant
            clock.advance(10.01)  # the lease expires
            coordinator.tick()
        assert coordinator.finished   # round completed *without* the batch
        result = coordinator.result()
        assert result.stats.quarantined == 1
        assert not result.ok
        assert result.quarantined[0]["fingerprints"][0]["kind"] == "timeout"
        poison = sorted((tmp_path / "state" / "poison").glob("*.json"))
        assert [p.name for p in poison] == ["round-000-batch-000-a02.json"]
        payload = json.loads(poison[0].read_text())
        assert payload["attempts"] == 2
        assert payload["programs"]

        # A resumed coordinator sees the quarantine in its saved stats
        # and leaves the artifact alone.
        resumed = Coordinator(
            spec, tmp_path / "state", clock=FakeClock(clock.t)
        )
        assert resumed.finished
        assert resumed.result().stats.quarantined == 1
        assert sorted(
            (tmp_path / "state" / "poison").glob("*.json")
        ) == poison

    def test_resume_recounts_open_quarantine_without_new_artifacts(
        self, tmp_path
    ):
        """Crash while the quarantining round is still open: the resume
        re-counts the quarantine from the ledger without re-writing (or
        suffix-bumping) the poison artifact."""
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SMALL)
        config = CoordinatorConfig(
            batch_size=4, lease_timeout_s=10.0,
            retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0),
        )
        a = Coordinator(spec, tmp_path / "state", config=config, clock=clock)
        a.lease("w1")
        clock.advance(10.01)
        a.tick()   # single allowed attempt -> straight to quarantine
        assert a.result().stats.quarantined == 1
        assert not a.finished
        del a
        poison = sorted((tmp_path / "state" / "poison").glob("*.json"))
        assert [p.name for p in poison] == ["round-000-batch-000-a01.json"]

        b = Coordinator(spec, tmp_path / "state", config=config, clock=clock)
        assert b.result().stats.quarantined == 1
        assert len(b.result().quarantined) == 1
        assert sorted(
            (tmp_path / "state" / "poison").glob("*.json")
        ) == poison
        _drive(b, clock, worker="w2")   # the surviving batch completes
        assert b.finished
        assert not b.result().ok

    def test_requarantine_never_overwrites_poison_artifacts(self, tmp_path):
        """The attempt-count suffix plus collision bump: one file per
        quarantine event, even for the same batch at the same attempt."""
        spec = CampaignSpec(workers=1, **SMALL)
        batch = QuarantinedBatch(
            batch_id=0, indices=[0, 1], attempts=2,
            fingerprints=[{"kind": "crash", "detail": "x"}] * 2,
        )
        for _ in range(3):
            _record_quarantine(tmp_path, 0, spec, (), [batch])
        names = sorted(p.name for p in tmp_path.glob("poison/*.json"))
        assert names == [
            "round-000-batch-000-a02.2.json",
            "round-000-batch-000-a02.3.json",
            "round-000-batch-000-a02.json",
        ]

    def test_stale_round_results_are_ignored(self, tmp_path):
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SPEC)
        coordinator = Coordinator(
            spec, tmp_path / "state",
            config=CoordinatorConfig(batch_size=SPEC["budget"]),
            clock=clock,
        )
        grant = coordinator.lease("w1")
        payload = _execute(coordinator, grant, worker="w1")
        assert coordinator.ingest(payload)["status"] == "accepted"
        # Round 0 merged; round 1 is live.  The same fingerprint again:
        assert coordinator.ingest(payload)["status"] == "stale"
        assert coordinator.stats_payload()["counters"]["results_stale"] == 1

    def test_corrupt_round_ledger_is_rebuilt(self, tmp_path):
        clock = FakeClock()
        spec = CampaignSpec(workers=1, **SMALL)
        a = Coordinator(spec, tmp_path / "state", clock=clock)
        a.lease("w1")
        (tmp_path / "state" / "round.json").write_text("{torn")
        b = Coordinator(spec, tmp_path / "state", clock=clock)
        # Rebuilt from scratch: the old lease is forgotten (deterministic
        # work re-runs; reports cannot change), and a fresh ledger is
        # immediately grantable.
        assert "batch" in b.lease("w2")


class TestCoordinatorHttp:
    def _serve(self, tmp_path, spec=None, **config):
        coordinator = Coordinator(
            spec or CampaignSpec(workers=1, **SPEC),
            tmp_path / "state",
            config=CoordinatorConfig(**config),
        )
        api = CoordinatorApi(coordinator).start()
        return coordinator, api

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=30) as response:
            return json.loads(response.read().decode())

    def _post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read().decode())

    def test_workers_over_http_match_baseline_under_duplicates(
        self, baseline, tmp_path
    ):
        # Every result POST is sent twice: idempotent ingest must hold
        # end to end, over real sockets.
        faults.arm("seed=7,dist.result.duplicate=1")
        coordinator, api = self._serve(tmp_path, batch_size=4)
        try:
            stop = threading.Event()
            threads = [
                threading.Thread(
                    target=run_worker, args=(api.url,),
                    kwargs=dict(name=f"w{i}", stop=stop),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            stop.set()
            assert not any(t.is_alive() for t in threads)
        finally:
            api.stop()
        assert coordinator.finished
        counters = coordinator.stats_payload()["counters"]
        assert counters["results_duplicate"] > 0
        assert _report_bytes(coordinator.result()) == baseline

    def test_healthz_and_stats_echo_the_fault_plan(self, tmp_path):
        faults.arm("seed=9,dist.result.duplicate=0.5")
        coordinator, api = self._serve(
            tmp_path, spec=CampaignSpec(workers=1, **SMALL)
        )
        try:
            health = self._get(api.url + "/healthz")
            assert health["status"] == "ok"
            assert health["campaign_id"] == coordinator.cid
            assert health["faults"] == {
                "spec": "seed=9,dist.result.duplicate=0.5", "seed": 9,
            }
            stats = self._get(api.url + "/stats")
            assert stats["faults"]["seed"] == 9
            assert stats["batches"]["pending"] > 0
            faults.disarm()
            assert "faults" not in self._get(api.url + "/healthz")
        finally:
            api.stop()

    def test_wrong_campaign_is_a_structured_409(self, tmp_path):
        coordinator, api = self._serve(
            tmp_path, spec=CampaignSpec(workers=1, **SMALL)
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(api.url + "/lease", {
                    "worker": "w1", "campaign_id": "someone-else",
                })
            assert err.value.code == 409
            body = json.loads(err.value.read().decode())
            assert body["error"]["code"] == "wrong-campaign"
            # The coordinator never saw it as a protocol event.
            assert "leases_granted" not in \
                coordinator.stats_payload()["counters"]
        finally:
            api.stop()

    def test_worker_rides_out_dropped_posts(self, baseline, tmp_path):
        # POSTs "drop" until the bounded retry loop forces them through
        # — the campaign still completes and still matches.
        faults.arm("seed=3,dist.result.drop=0.7")
        coordinator, api = self._serve(tmp_path, batch_size=6)
        try:
            out = run_worker(
                api.url, name="w1",
                policy=RetryPolicy(backoff_base_s=0.01),
            )
        finally:
            api.stop()
        assert out["batches"] > 0
        assert coordinator.finished
        assert _report_bytes(coordinator.result()) == baseline
