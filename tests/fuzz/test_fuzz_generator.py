"""Generator properties: determinism, validity, verifier plausibility."""

import pytest

from repro.bpf import Machine, isa
from repro.bpf.interpreter import ExecutionError
from repro.bpf.verifier import verify_program
from repro.fuzz import PROFILES, ProgramGenerator, generate_program


class TestDeterminism:
    def test_same_seed_same_bytecode(self):
        a = generate_program(1234).program.to_bytes()
        b = generate_program(1234).program.to_bytes()
        assert a == b

    def test_different_seeds_differ(self):
        outs = {generate_program(s).program.to_bytes() for s in range(20)}
        assert len(outs) > 15  # overwhelmingly distinct

    def test_profile_and_size_are_recorded(self):
        gp = generate_program(7, profile="alu", max_insns=16)
        assert gp.profile == "alu"
        assert gp.seed == 7
        assert gp.max_insns == 16


class TestStructure:
    @pytest.mark.parametrize("seed", range(25))
    def test_programs_build_and_terminate(self, seed):
        gp = generate_program(seed)
        assert len(gp.program) <= gp.max_insns + 8
        machine = Machine(ctx=bytes(64))
        try:
            result = machine.run(gp.program)
        except ExecutionError:
            pytest.fail("generated program crashed concretely")
        # Acyclic programs execute at most one visit per instruction.
        assert result.steps <= len(gp.program)

    def test_ends_with_exit(self):
        for seed in range(10):
            insns = generate_program(seed).program.insns
            assert insns[-1].is_exit()

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            ProgramGenerator(0, profile="nope")

    @pytest.mark.parametrize("ctx_size", [0, 1, 4, 7])
    def test_tiny_ctx_sizes_generate_cleanly(self, ctx_size):
        # ctx loads must clamp (or skip) rather than draw an empty range.
        for seed in range(8):
            gp = generate_program(seed, profile="memory", ctx_size=ctx_size)
            for insn in gp.program:
                if insn.is_load() and insn.src == 1:
                    assert insn.size_bytes() <= ctx_size


class TestVerifierPlausibility:
    def test_high_acceptance_rate(self):
        accepted = sum(
            bool(verify_program(generate_program(s).program).ok)
            for s in range(60)
        )
        assert accepted >= 45  # the typed generator mostly passes

    def test_alu_profile_emits_no_memory_ops(self):
        for seed in range(10):
            gp = generate_program(seed, profile="alu")
            for insn in gp.program:
                assert not insn.is_load() and not insn.is_store()

    def test_memory_profile_touches_memory(self):
        touched = 0
        for seed in range(10):
            gp = generate_program(seed, profile="memory")
            touched += any(
                i.is_load() or i.is_store() for i in gp.program
            )
        assert touched >= 8

    def test_branchy_profile_branches(self):
        branchy = 0
        for seed in range(10):
            gp = generate_program(seed, profile="branchy")
            branchy += any(i.is_cond_jump() for i in gp.program)
        assert branchy >= 8

    def test_all_profiles_generate(self):
        for name in PROFILES:
            gp = generate_program(3, profile=name)
            assert gp.program.insns[-1].is_exit()

    def test_never_writes_r10(self):
        for seed in range(20):
            for insn in generate_program(seed).program:
                if insn.is_alu() or insn.is_lddw() or insn.is_load():
                    assert insn.dst != isa.FP_REG
