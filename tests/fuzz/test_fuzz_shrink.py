"""Shrinker: jump retargeting, minimization quality, end-to-end use."""

from repro.bpf import assemble, isa
from repro.bpf.builder import ProgramBuilder
from repro.bpf.program import Program
from repro.core.tnum import Tnum
from repro.fuzz import DifferentialOracle, generate_program, shrink_program
from repro.fuzz.shrink import rebuild_without


def contains_op(program: Program, op: int) -> bool:
    return any(
        insn.is_alu() and isa.BPF_OP(insn.opcode) == op
        for insn in program.insns
    )


class TestRebuildWithout:
    def test_deleting_straightline_instruction(self):
        program = assemble("mov r0, 1\nmov r1, 2\nadd r0, r1\nexit")
        candidate = rebuild_without(
            list(program.insns), [0, 2, 3]
        )
        assert candidate is not None
        assert len(candidate) == 3

    def test_jump_is_retargeted_across_deletion(self):
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.jmp_imm("jeq", 0, 0, "done")
        b.alu_imm("add", 0, 1)   # will be deleted
        b.alu_imm("add", 0, 2)
        b.label("done")
        b.exit_()
        program = b.build()
        candidate = rebuild_without(list(program.insns), [0, 1, 3, 4])
        assert candidate is not None
        # Jump still lands on exit: executing yields r0 == 0.
        from repro.bpf import Machine
        assert Machine().run(candidate).return_value == 0

    def test_jump_to_deleted_target_falls_through(self):
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.jmp_imm("jeq", 0, 0, "target")
        b.alu_imm("add", 0, 1)
        b.label("target")
        b.alu_imm("add", 0, 2)   # delete the jump target itself
        b.exit_()
        program = b.build()
        candidate = rebuild_without(list(program.insns), [0, 1, 2, 4])
        assert candidate is not None  # retargeted to the next survivor

    def test_lddw_slot_accounting_survives(self):
        b = ProgramBuilder()
        b.ld_imm64(0, 1 << 40)
        b.jmp_imm("jne", 0, 0, "end")
        b.mov_imm(0, 7)
        b.label("end")
        b.exit_()
        program = b.build()
        candidate = rebuild_without(list(program.insns), [1, 2, 3])
        assert candidate is not None


class TestShrinkEdgeCases:
    def test_branch_to_final_instruction_survives_deletion(self):
        """A jump targeting the trailing exit stays valid as the body
        between jump and exit is deleted."""
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.jmp_imm("jeq", 0, 0, "end")
        b.alu_imm("add", 0, 1)
        b.alu_imm("add", 0, 2)
        b.label("end")
        b.exit_()
        program = b.build()
        candidate = rebuild_without(list(program.insns), [0, 1, 4])
        assert candidate is not None
        # The retargeted jump must still land exactly on the exit.
        assert candidate.insns[1].is_cond_jump()
        assert candidate.index_at_slot(candidate.jump_target_slot(1)) == 2
        from repro.bpf import Machine
        assert Machine().run(candidate).return_value == 0

    def test_deleting_the_final_jump_target_is_rejected(self):
        """When a jump's target (the last instruction) is deleted, no
        survivor lies at-or-after it; the candidate must be discarded,
        not mis-built."""
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.jmp_imm("jeq", 0, 0, "end")
        b.alu_imm("add", 0, 1)
        b.label("end")
        b.exit_()
        program = b.build()
        candidate = rebuild_without(list(program.insns), [0, 1, 2])
        assert candidate is None

    def test_already_minimal_single_insn_witness(self):
        """A 1-instruction program shrinks to itself and terminates."""
        program = assemble("exit")
        assert len(program) == 1
        shrunk, stats = shrink_program(program, lambda p: True)
        assert shrunk.to_bytes() == program.to_bytes()
        assert stats.initial_insns == stats.final_insns == 1

    def test_predicate_only_true_for_original_returns_input(self):
        """Shrinking terminates unchanged when nothing smaller fails."""
        program = assemble("mov r0, 7\nmov r1, 9\nadd r0, r1\nexit")
        original = program.to_bytes()
        shrunk, stats = shrink_program(
            program, lambda p: p.to_bytes() == original
        )
        assert shrunk.to_bytes() == original
        assert stats.candidates_tried > 0
        assert stats.candidates_failing == 0

    def test_branch_skipping_to_exit_minimizes_cleanly(self):
        """End-to-end: predicate keeps the branch, body gets deleted and
        the jump is retargeted to the surviving exit."""
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.jmp_imm("jne", 0, 5, "end")
        for _ in range(6):
            b.alu_imm("add", 0, 3)
        b.label("end")
        b.exit_()
        program = b.build()

        def has_cond_jump(p: Program) -> bool:
            return any(insn.is_cond_jump() for insn in p.insns)

        shrunk, _ = shrink_program(program, has_cond_jump)
        assert has_cond_jump(shrunk)
        assert len(shrunk) <= 3  # jump + exit (+ maybe one mov)
        jump_idx = next(
            i for i, insn in enumerate(shrunk.insns) if insn.is_cond_jump()
        )
        target = shrunk.index_at_slot(shrunk.jump_target_slot(jump_idx))
        assert 0 <= target < len(shrunk)


class TestShrinkQuality:
    def test_structural_predicate_shrinks_to_core(self):
        # "Still contains a mul" as stand-in for "still fails".
        gp = generate_program(5, profile="alu", max_insns=40)
        if not contains_op(gp.program, isa.ALU_MUL):
            gp = next(
                g for g in (generate_program(s, profile="alu", max_insns=40)
                            for s in range(6, 40))
                if contains_op(g.program, isa.ALU_MUL)
            )
        shrunk, stats = shrink_program(
            gp.program, lambda p: contains_op(p, isa.ALU_MUL)
        )
        assert contains_op(shrunk, isa.ALU_MUL)
        assert len(shrunk) <= 2
        assert stats.final_insns <= stats.initial_insns

    def test_oracle_predicate_end_to_end(self, monkeypatch):
        """Acceptance criterion: a deliberate transfer-function bug
        yields a shrunk counterexample of at most 8 instructions."""
        import repro.domains.product as product

        real_add = product.tnum_add

        def buggy_add(p: Tnum, q: Tnum) -> Tnum:
            t = real_add(p, q)
            if t.is_bottom():
                return t
            return Tnum(t.value & ~1, t.mask & ~1, t.width)

        monkeypatch.setattr(product, "tnum_add", buggy_add)

        oracle = DifferentialOracle(inputs_per_program=4)

        failing = None
        # Wide enough a search: constant subexpressions fold concretely
        # in the product domain now, so programs where every add has a
        # const result cannot expose an injected tnum_add bug.
        for seed in range(400):
            gp = generate_program(seed, profile="alu")
            if not oracle.check_program(gp.program, input_seed_base=seed).ok:
                failing = (gp.program, seed)
                break
        assert failing is not None, "bugged verifier never tripped"

        program, seed = failing
        predicate = lambda p: not oracle.check_program(
            p, input_seed_base=seed
        ).ok
        shrunk, stats = shrink_program(program, predicate)
        assert predicate(shrunk)
        assert len(shrunk) <= 8
        assert stats.candidates_failing > 0
