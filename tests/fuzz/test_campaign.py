"""Precision campaign: determinism, telemetry, mutation feedback, resume."""

import json
from dataclasses import replace

import pytest

from repro.bpf.canon import VerdictCache
from repro.core.tnum import Tnum
from repro.eval.precision import REJECT_COST_BITS, PrecisionReport
from repro.fuzz import CampaignSpec, run_precision_campaign


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(budget=40, rounds=2, seed=7)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestSpec:
    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            CampaignSpec(profile="bogus")

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(rounds=0)

    def test_bad_mutate_fraction_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(mutate_fraction=1.5)


class TestCrossWorkerDeterminism:
    def test_merged_report_byte_identical_across_1_2_4_workers(self):
        """Same campaign seed, 1/2/4 workers: byte-identical report JSON."""
        spec = small_spec()
        reference = run_precision_campaign(spec)
        for workers in (2, 4):
            result = run_precision_campaign(replace(spec, workers=workers))
            assert result.report.to_json() == reference.report.to_json()
            assert result.corpus.to_json() == reference.corpus.to_json()
            assert result.pool == reference.pool

    def test_same_seed_reproducible(self):
        spec = small_spec(seed=11)
        a = run_precision_campaign(spec)
        b = run_precision_campaign(spec)
        assert a.report.to_json() == b.report.to_json()

    def test_different_seed_differs(self):
        a = run_precision_campaign(small_spec(seed=1))
        b = run_precision_campaign(small_spec(seed=2))
        assert a.report.to_json() != b.report.to_json()


class TestTelemetry:
    def test_operators_observed(self):
        result = run_precision_campaign(small_spec())
        report = result.report
        assert report.programs == 40
        assert report.operators, "no transfer functions observed"
        for stats in report.operators.values():
            assert stats.occurrences >= 0
            assert sum(stats.gamma_hist.values()) == stats.occurrences
            assert stats.imprecision_mass == (
                stats.tightness_sum + REJECT_COST_BITS * stats.rejected_clean
            )

    def test_rejections_attributed_exactly_once(self):
        result = run_precision_campaign(
            small_spec(budget=60, profile="memory")
        )
        report = result.report
        assert sum(s.rejections for s in report.operators.values()) == \
            report.rejected
        assert sum(s.rejected_clean for s in report.operators.values()) == \
            report.rejected_clean

    def test_ranking_sorted_by_mass(self):
        result = run_precision_campaign(small_spec())
        ranked = result.report.ranked()
        masses = [s.imprecision_mass for s in ranked]
        assert masses == sorted(masses, reverse=True)

    def test_json_round_trip(self):
        result = run_precision_campaign(small_spec())
        reloaded = PrecisionReport.from_json(result.report.to_json())
        assert reloaded.to_json() == result.report.to_json()


class TestMutationFeedback:
    def test_mutants_fuzzed_after_round_one(self):
        result = run_precision_campaign(
            small_spec(budget=60, mutate_fraction=1.0)
        )
        assert result.stats.mutants > 0
        assert result.report.mutants == result.stats.mutants
        assert result.pool, "no mutation seeds admitted"
        assert result.corpus.seeds(), "mutation seeds missing from corpus"

    def test_no_mutation_with_zero_fraction(self):
        result = run_precision_campaign(small_spec(mutate_fraction=0.0))
        assert result.stats.mutants == 0

    def test_pool_respects_limit(self):
        result = run_precision_campaign(
            small_spec(budget=80, rounds=4, pool_limit=3,
                       mutate_fraction=1.0)
        )
        assert len(result.pool) <= 3

    def test_seed_admissions_respect_per_round_cap(self):
        spec = small_spec(budget=80, rounds=2, seeds_per_round=1,
                          tightness_seed_threshold=4)
        result = run_precision_campaign(spec)
        assert result.stats.seeds_pooled <= spec.rounds * spec.seeds_per_round


class TestResume:
    def test_round_checkpoint_resume_matches_single_run(self, tmp_path):
        spec = small_spec(seed=9)
        reference = run_precision_campaign(spec)
        partial = run_precision_campaign(
            spec, state_dir=tmp_path, stop_after_rounds=1
        )
        assert partial.stats.rounds_completed == 1
        resumed = run_precision_campaign(spec, state_dir=tmp_path)
        assert resumed.stats.rounds_completed == spec.rounds
        assert resumed.report.to_json() == reference.report.to_json()
        assert resumed.corpus.to_json() == reference.corpus.to_json()

    def test_completed_campaign_rerun_is_idempotent(self, tmp_path):
        spec = small_spec(seed=9)
        first = run_precision_campaign(spec, state_dir=tmp_path)
        again = run_precision_campaign(spec, state_dir=tmp_path)
        assert again.report.to_json() == first.report.to_json()
        assert again.stats.executed == first.stats.executed

    def test_mismatched_spec_rejected(self, tmp_path):
        run_precision_campaign(small_spec(), state_dir=tmp_path)
        with pytest.raises(ValueError):
            run_precision_campaign(small_spec(seed=99), state_dir=tmp_path)

    def test_resume_with_different_worker_count_allowed(self, tmp_path):
        spec = small_spec(seed=9)
        run_precision_campaign(spec, state_dir=tmp_path, stop_after_rounds=1)
        resumed = run_precision_campaign(
            replace(spec, workers=2), state_dir=tmp_path
        )
        reference = run_precision_campaign(spec)
        assert resumed.report.to_json() == reference.report.to_json()

    def test_elapsed_accumulates_across_resume(self, tmp_path):
        # Pins the checkpoint timing contract: elapsed_s in state.json is
        # the campaign's *cumulative* wall time, and programs_per_s
        # derives from the cumulative totals — a resume must not reset
        # either to the last session's clock.
        spec = small_spec(seed=9)
        run_precision_campaign(spec, state_dir=tmp_path, stop_after_rounds=1)
        first = json.loads((tmp_path / "state.json").read_text())
        assert first["elapsed_s"] > 0
        resumed = run_precision_campaign(spec, state_dir=tmp_path)
        final = json.loads((tmp_path / "state.json").read_text())
        assert final["elapsed_s"] >= first["elapsed_s"]
        assert resumed.stats.elapsed_seconds >= first["elapsed_s"]
        assert final["elapsed_s"] == round(resumed.stats.elapsed_seconds, 3)
        assert final["programs_per_s"] == round(
            resumed.stats.executed / resumed.stats.elapsed_seconds, 1
        )


class TestVerdictCacheIntegration:
    def test_report_identical_with_cache_at_any_worker_count(self):
        spec = small_spec(seed=11)
        reference = run_precision_campaign(spec)
        inline_cache = VerdictCache()
        inline = run_precision_campaign(spec, verdict_cache=inline_cache)
        mp_cache = VerdictCache()
        mp = run_precision_campaign(
            replace(spec, workers=2), verdict_cache=mp_cache
        )
        assert inline.report.to_json() == reference.report.to_json()
        assert mp.report.to_json() == reference.report.to_json()
        # Same entry *set* whatever the worker count (hit/miss counts are
        # timing-like and may differ).
        inline_keys = {
            (e[0], e[1]) for e in inline_cache.to_payload()["entries"]
        }
        mp_keys = {(e[0], e[1]) for e in mp_cache.to_payload()["entries"]}
        assert inline_keys == mp_keys
        assert inline_cache.misses == spec.budget

    def test_warm_cache_hits_and_keeps_report_identical(self):
        spec = small_spec(seed=11)
        reference = run_precision_campaign(spec)
        cache = VerdictCache()
        run_precision_campaign(spec, verdict_cache=cache)
        warm = run_precision_campaign(spec, verdict_cache=cache)
        assert warm.report.to_json() == reference.report.to_json()
        assert cache.hits > 0


class TestSoundnessStillChecked:
    def test_injected_bug_caught_and_shrunk(self, monkeypatch):
        import repro.domains.product as product

        real_add = product.tnum_add

        def buggy_add(p: Tnum, q: Tnum) -> Tnum:
            t = real_add(p, q)
            if t.is_bottom():
                return t
            return Tnum(t.value & ~1, t.mask & ~1, t.width)

        monkeypatch.setattr(product, "tnum_add", buggy_add)
        result = run_precision_campaign(
            CampaignSpec(budget=40, rounds=1, seed=0, profile="alu")
        )
        assert not result.ok
        assert result.report.violations > 0
        entry = result.corpus.violations()[0]
        assert entry.violation["kind"] == "containment"
        assert entry.shrunk_program() is not None
