"""Mutation engine: determinism, structural validity, operator families."""

import random

from repro.bpf import isa
from repro.bpf.program import Program
from repro.fuzz import generate_program
from repro.fuzz.mutate import (
    MUTATION_KINDS,
    _constant_nudge,
    _opcode_tweak,
    _splice,
    mutate_program,
)


def programs(seed_a: int = 1, seed_b: int = 2):
    return (
        generate_program(seed_a).program,
        generate_program(seed_b).program,
    )


class TestDeterminism:
    def test_same_rng_seed_same_mutant(self):
        base, donor = programs()
        a = mutate_program(base, donor, random.Random(5))
        b = mutate_program(base, donor, random.Random(5))
        assert a.to_bytes() == b.to_bytes()

    def test_different_rng_usually_differs(self):
        base, donor = programs()
        mutants = {
            mutate_program(base, donor, random.Random(s)).to_bytes()
            for s in range(10)
        }
        assert len(mutants) > 1


class TestStructuralValidity:
    def test_many_mutants_are_valid_programs(self):
        rng = random.Random(0)
        for seed in range(100):
            base = generate_program(seed).program
            donor = generate_program(seed + 1000).program
            mutant = mutate_program(base, donor, rng)
            # Re-encoding through the wire format re-validates structure.
            round_tripped = Program.from_bytes(mutant.to_bytes())
            assert round_tripped.insns[-1].is_exit()
            assert len(round_tripped) <= 33  # max_insns + forced exit

    def test_mutant_respects_max_insns(self):
        rng = random.Random(3)
        base = generate_program(8, max_insns=40).program
        donor = generate_program(9, max_insns=40).program
        mutant = mutate_program(base, donor, rng, max_insns=16)
        assert len(mutant) <= 17


class TestIndividualMutations:
    def test_splice_joins_prefix_and_suffix(self):
        base, donor = programs()
        mutant = _splice(base, donor, random.Random(1), max_insns=64)
        assert mutant is not None
        assert mutant.insns[-1].is_exit()

    def test_opcode_tweak_stays_in_family(self):
        base, _ = programs()
        mutant = _opcode_tweak(base, random.Random(2), max_insns=64)
        assert mutant is not None
        # Same instruction count, every ALU op still a scalar ALU op.
        assert len(mutant) == len(base)
        for insn in mutant.insns:
            if insn.is_alu():
                assert isa.BPF_OP(insn.opcode) in isa.ALU_OP_NAMES

    def test_constant_nudge_changes_only_an_immediate(self):
        base, _ = programs()
        for seed in range(10):
            mutant = _constant_nudge(base, random.Random(seed), max_insns=64)
            assert mutant is not None
            assert len(mutant) == len(base)
            diffs = [
                (a, b) for a, b in zip(base.insns, mutant.insns) if a != b
            ]
            assert len(diffs) <= 1
            for a, b in diffs:
                assert (a.opcode, a.dst, a.src, a.off) == \
                    (b.opcode, b.dst, b.src, b.off)
                assert a.imm != b.imm

    def test_kinds_catalogued(self):
        assert set(MUTATION_KINDS) == {"splice", "opcode", "constant"}
