"""Campaign driver: determinism, parallelism, corpus, CLI integration."""

import json

import pytest

from repro.cli import main
from repro.core.tnum import Tnum
from repro.fuzz import (
    CampaignConfig,
    Corpus,
    generate_program,
    run_campaign,
)


def stats_key(stats):
    return (
        stats.executed, stats.accepted, stats.rejected,
        stats.rejected_clean, stats.violations, stats.containment_checks,
    )


class TestCampaign:
    def test_clean_campaign(self):
        result = run_campaign(CampaignConfig(budget=60, seed=42))
        assert result.ok
        assert result.stats.executed == 60
        assert result.stats.violations == 0
        assert result.stats.programs_per_second > 0

    def test_deterministic_across_runs(self):
        config = CampaignConfig(budget=40, seed=11)
        a = run_campaign(config)
        b = run_campaign(config)
        assert stats_key(a.stats) == stats_key(b.stats)
        assert a.corpus.to_json() == b.corpus.to_json()

    def test_deterministic_across_worker_counts(self):
        base = CampaignConfig(budget=30, seed=3)
        parallel = CampaignConfig(budget=30, seed=3, workers=2)
        a = run_campaign(base)
        b = run_campaign(parallel)
        assert stats_key(a.stats) == stats_key(b.stats)

    def test_keep_interesting_populates_corpus(self):
        result = run_campaign(
            CampaignConfig(budget=20, seed=5, keep_interesting=5)
        )
        kinds = {e.kind for e in result.corpus.entries}
        assert kinds == {"interesting"}
        assert len(result.corpus) == 4  # indices 0, 5, 10, 15

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            CampaignConfig(profile="bogus")

    def test_injected_bug_produces_shrunk_corpus_entry(self, monkeypatch):
        import repro.domains.product as product

        real_add = product.tnum_add

        def buggy_add(p: Tnum, q: Tnum) -> Tnum:
            t = real_add(p, q)
            if t.is_bottom():
                return t
            return Tnum(t.value & ~1, t.mask & ~1, t.width)

        monkeypatch.setattr(product, "tnum_add", buggy_add)
        result = run_campaign(
            CampaignConfig(budget=40, seed=0, profile="alu")
        )
        assert not result.ok
        entry = result.corpus.violations()[0]
        assert entry.violation["kind"] == "containment"
        shrunk = entry.shrunk_program()
        assert shrunk is not None
        assert len(shrunk) <= 8


class TestCorpusPersistence:
    def test_roundtrip(self, tmp_path):
        corpus = Corpus()
        gp = generate_program(1)
        corpus.add_interesting(gp.program, seed=1, profile="mixed")
        corpus.add_violation(
            gp.program, seed=1, profile="mixed",
            violation={"kind": "containment", "message": "x"},
        )
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded) == 2
        assert loaded.to_json() == corpus.to_json()
        assert loaded.entries[0].program().to_bytes() == \
            gp.program.to_bytes()

    def test_bad_format_version_rejected(self):
        with pytest.raises(ValueError):
            Corpus.from_json(json.dumps(
                {"format_version": 99, "entries": []}
            ))


class TestFuzzCli:
    def test_clean_run_exit_zero(self, capsys):
        assert main(["fuzz", "--budget", "25", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "programs/sec" in out
        assert "violations: 0" in out

    def test_corpus_file_written(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main([
            "fuzz", "--budget", "10", "--seed", "1",
            "--corpus", str(path), "--max-insns", "16",
        ]) == 0
        assert path.exists()
        Corpus.load(path)  # parses

    def test_violation_run_exit_one(self, capsys, monkeypatch):
        import repro.domains.product as product

        real_add = product.tnum_add

        def buggy_add(p: Tnum, q: Tnum) -> Tnum:
            t = real_add(p, q)
            if t.is_bottom():
                return t
            return Tnum(t.value & ~1, t.mask & ~1, t.width)

        monkeypatch.setattr(product, "tnum_add", buggy_add)
        assert main([
            "fuzz", "--budget", "40", "--seed", "0", "--profile", "alu",
        ]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "shrunk witness" in out

    def test_check_op_seed_flag(self, capsys):
        assert main([
            "check-op", "add", "--method", "random",
            "--trials", "200", "--seed", "9",
        ]) == 0
        assert "seed 9" in capsys.readouterr().out
