"""End-to-end HTTP tests against a live ApiServer on an ephemeral port.

Response-shape assertions here are deliberately *tolerant*: they check
the required keys and their types and ignore anything extra, so the
service can grow additive fields without breaking clients (or these
tests).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import ApiServer, VerificationService
from repro.bpf import assemble

ACCEPTED = "mov r0, 7\nadd r0, 3\nexit"
REJECTED = "ldxdw r0, [r10-8]\nexit"


@pytest.fixture
def server():
    service = VerificationService(workers=2)
    api = ApiServer(service)
    api.start()
    yield api
    api.stop()
    service.close()


def post_json(server, payload, path="/verify"):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return _send(request)


def post_wire(server, data, path="/verify"):
    request = urllib.request.Request(
        server.url + path,
        data=data,
        headers={"Content-Type": "application/octet-stream"},
        method="POST",
    )
    return _send(request)


def get(server, path):
    return _send(urllib.request.Request(server.url + path))


def _send(request):
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def hex_payload(text, **extra):
    payload = {"program_hex": assemble(text).to_bytes().hex()}
    payload.update(extra)
    return payload


def assert_verdict_shape(body):
    """Required keys and types only — additive fields are fine."""
    assert isinstance(body["schema_version"], int)
    assert isinstance(body["canonical_hash"], str)
    assert len(body["canonical_hash"]) == 64
    assert isinstance(body["ctx_size"], int)
    assert body["verdict"] in ("accept", "reject")
    assert isinstance(body["ok"], bool)
    assert isinstance(body["insns_processed"], int)
    assert isinstance(body["cached"], bool)
    if body["verdict"] == "reject":
        error = body["error"]
        assert isinstance(error["index"], int)
        assert isinstance(error["reason"], str) and error["reason"]


def assert_error_shape(body):
    error = body["error"]
    assert isinstance(error["code"], str) and error["code"]
    assert isinstance(error["message"], str) and error["message"]


class TestVerifyEndpoint:
    def test_json_accept(self, server):
        status, body = post_json(server, hex_payload(ACCEPTED))
        assert status == 200
        assert_verdict_shape(body)
        assert body["verdict"] == "accept" and body["ok"] is True

    def test_json_reject_is_still_200(self, server):
        status, body = post_json(server, hex_payload(REJECTED))
        assert status == 200
        assert_verdict_shape(body)
        assert body["verdict"] == "reject" and body["ok"] is False

    def test_octet_stream_body(self, server):
        status, body = post_wire(server, assemble(ACCEPTED).to_bytes())
        assert status == 200
        assert_verdict_shape(body)
        assert body["verdict"] == "accept"

    def test_warm_repeat_is_cached(self, server):
        _, cold = post_json(server, hex_payload(ACCEPTED))
        _, warm = post_json(server, hex_payload(ACCEPTED))
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["canonical_hash"] == cold["canonical_hash"]

    def test_states_and_precision_flags(self, server):
        status, body = post_json(
            server, hex_payload(ACCEPTED, states=True, precision=True)
        )
        assert status == 200
        assert isinstance(body["states"], dict) and body["states"]
        assert all(isinstance(v, str) for v in body["states"].values())
        assert body["precision"]["transfers"] > 0

    def test_wire_query_flags(self, server):
        status, body = post_wire(
            server,
            assemble(ACCEPTED).to_bytes(),
            path="/verify?ctx_size=32&precision=1",
        )
        assert status == 200
        assert body["ctx_size"] == 32
        assert body["precision"]["transfers"] > 0


class TestRejections:
    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/verify",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        status, body = _send(request)
        assert status == 400
        assert_error_shape(body)
        assert body["error"]["code"] == "bad-json"

    def test_truncated_wire_is_400(self, server):
        status, body = post_wire(server, b"\xde\xad\xbe\xef")
        assert status == 400
        assert_error_shape(body)
        assert body["error"]["code"] == "bad-wire-format"

    def test_empty_wire_is_422(self, server):
        status, body = post_wire(server, b"")
        assert status in (400, 422)   # empty body: missing/empty program
        assert_error_shape(body)

    def test_missing_program_key_is_400(self, server):
        status, body = post_json(server, {"ctx_size": 64})
        assert status == 400
        assert_error_shape(body)
        assert body["error"]["code"] == "missing-program"

    def test_bad_ctx_size_is_422(self, server):
        status, body = post_json(
            server, hex_payload(ACCEPTED, ctx_size="enormous")
        )
        assert status == 422
        assert_error_shape(body)
        assert body["error"]["code"] == "bad-ctx-size"

    def test_rejections_counted_in_stats(self, server):
        post_wire(server, b"\x01\x02\x03")
        _, stats = get(server, "/stats")
        assert stats["service"]["rejections"] >= 1

    def test_unknown_path_is_404(self, server):
        status, body = get(server, "/nope")
        assert status == 404
        assert_error_shape(body)


class TestReadEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_verdict_lookup_hit(self, server):
        _, verdict = post_json(server, hex_payload(ACCEPTED))
        status, body = get(
            server, f"/verdict/{verdict['canonical_hash']}"
        )
        assert status == 200
        assert_verdict_shape(body)
        assert body["cached"] is True

    def test_verdict_lookup_miss_is_404(self, server):
        status, body = get(server, "/verdict/" + "0" * 64)
        assert status == 404
        assert_error_shape(body)
        assert body["error"]["code"] == "unknown-verdict"

    def test_stats_counts_cache_hits(self, server):
        post_json(server, hex_payload(ACCEPTED))
        post_json(server, hex_payload(ACCEPTED))
        status, stats = get(server, "/stats")
        assert status == 200
        service_stats = stats["service"]
        assert service_stats["requests"] >= 2
        assert service_stats["verifications"] == 1
        assert service_stats["cache"]["hits"] >= 1

    def test_metrics_exposition(self, server):
        post_json(server, hex_payload(ACCEPTED))
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode()
        assert "repro_api_requests_total" in text
        assert "repro_api_cache_hits_total" in text


class TestFaultsEcho:
    """An armed chaos plan is visible on the service surface: operators
    must be able to tell a chaos run from an outage at a glance."""

    @pytest.fixture(autouse=True)
    def disarmed(self):
        from repro import faults
        faults.disarm()
        yield
        faults.disarm()

    def test_healthz_and_stats_echo_the_armed_plan(self, server):
        from repro import faults
        faults.arm("seed=11,service.verify.hang=0.25:0.1")
        _, health = get(server, "/healthz")
        assert health["faults"] == {
            "spec": "seed=11,service.verify.hang=0.25:0.1", "seed": 11,
        }
        _, stats = get(server, "/stats")
        assert stats["faults"]["seed"] == 11

    def test_no_echo_when_disarmed(self, server):
        _, health = get(server, "/healthz")
        assert "faults" not in health
        _, stats = get(server, "/stats")
        assert "faults" not in stats
