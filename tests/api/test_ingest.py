"""The shared ingestion layer: one decode path, structured rejections."""

import pytest

from repro.api.ingest import (
    MAX_CTX_SIZE,
    MAX_WIRE_BYTES,
    IngestError,
    parse_ctx_size,
    program_from_hex,
    program_from_json_payload,
    program_from_wire,
    program_to_hex,
)
from repro.bpf import assemble

GOOD = "mov r0, 0\nexit"


def good_bytes() -> bytes:
    return assemble(GOOD).to_bytes()


class TestWireDecoding:
    def test_round_trip(self):
        program = program_from_wire(good_bytes())
        assert len(program) == 2

    def test_hex_round_trip(self):
        program = assemble(GOOD)
        assert program_from_hex(program_to_hex(program)).to_bytes() == (
            program.to_bytes()
        )

    def test_empty_is_422(self):
        with pytest.raises(IngestError) as exc:
            program_from_wire(b"")
        assert exc.value.status == 422
        assert exc.value.code == "empty-program"

    def test_truncated_is_400(self):
        with pytest.raises(IngestError) as exc:
            program_from_wire(good_bytes()[:-3])
        assert exc.value.status == 400
        assert exc.value.code == "bad-wire-format"

    def test_truncated_lddw_is_400(self):
        data = assemble("lddw r0, 0x1122334455667788\nexit").to_bytes()
        with pytest.raises(IngestError) as exc:
            program_from_wire(data[:8])   # first half of the lddw pair
        assert exc.value.status == 400

    def test_oversize_is_422(self):
        with pytest.raises(IngestError) as exc:
            program_from_wire(b"\x00" * (MAX_WIRE_BYTES + 8))
        assert exc.value.status == 422
        assert exc.value.code == "program-too-large"

    def test_bad_jump_target_is_422(self):
        # `ja +7` past the end decodes instruction-by-instruction but is
        # structurally invalid as a program.
        data = bytes.fromhex("0500070000000000") + good_bytes()
        with pytest.raises(IngestError) as exc:
            program_from_wire(data)
        assert exc.value.status == 422
        assert exc.value.code == "invalid-program"

    def test_bad_hex_is_400(self):
        with pytest.raises(IngestError) as exc:
            program_from_hex("zz" * 8)
        assert exc.value.status == 400
        assert exc.value.code == "bad-encoding"

    def test_non_string_hex_is_400(self):
        with pytest.raises(IngestError) as exc:
            program_from_hex(1234)
        assert exc.value.status == 400

    def test_ingest_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            program_from_hex("odd")

    def test_error_payload_shape(self):
        try:
            program_from_wire(b"")
        except IngestError as exc:
            payload = exc.to_payload()
        assert set(payload) == {"code", "message"}
        assert isinstance(payload["code"], str)
        assert isinstance(payload["message"], str)


class TestJsonPayload:
    def test_program_hex_key(self):
        payload = {"program_hex": good_bytes().hex()}
        assert len(program_from_json_payload(payload)) == 2

    def test_corpus_style_bytecode_hex_key(self):
        payload = {"bytecode_hex": good_bytes().hex(), "kind": "seed",
                   "seed": 7, "profile": "mixed", "note": ""}
        assert len(program_from_json_payload(payload)) == 2

    def test_missing_program_is_400(self):
        with pytest.raises(IngestError) as exc:
            program_from_json_payload({"ctx_size": 64})
        assert exc.value.status == 400
        assert exc.value.code == "missing-program"

    def test_non_object_is_400(self):
        with pytest.raises(IngestError) as exc:
            program_from_json_payload(["not", "an", "object"])
        assert exc.value.status == 400


class TestCtxSize:
    def test_default(self):
        assert parse_ctx_size(None, default=64) == 64

    def test_int_and_string(self):
        assert parse_ctx_size(128) == 128
        assert parse_ctx_size("128") == 128

    @pytest.mark.parametrize("bad", [-1, MAX_CTX_SIZE + 1, "huge", 1.5,
                                     True, [64]])
    def test_bad_values_are_422(self, bad):
        with pytest.raises(IngestError) as exc:
            parse_ctx_size(bad)
        assert exc.value.status == 422
        assert exc.value.code == "bad-ctx-size"
