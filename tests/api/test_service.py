"""The service core: caching, single-flight dedup, persistence."""

import json
import threading

import pytest

from repro.api import VerificationService, VerifyRequest
from repro.bpf import assemble
from repro.bpf.canon import VerdictCache

ACCEPTED = "mov r0, 7\nadd r0, 3\nexit"
REJECTED = "ldxdw r0, [r10-8]\nexit"


def request_for(text, **payload_extra):
    program = assemble(text)
    payload = {"program_hex": program.to_bytes().hex()}
    payload.update(payload_extra)
    return VerifyRequest.from_json_payload(payload)


@pytest.fixture
def service():
    svc = VerificationService(workers=4)
    yield svc
    svc.close()


class TestVerify:
    def test_accept(self, service):
        verdict = service.verify(request_for(ACCEPTED))
        assert verdict.ok and verdict.verdict == "accept"
        assert not verdict.cached
        assert service.stats()["verifications"] == 1

    def test_reject_with_error_detail(self, service):
        verdict = service.verify(request_for(REJECTED))
        assert not verdict.ok
        assert verdict.error is not None
        assert "uninitialized" in verdict.error.reason

    def test_repeat_submission_is_a_cache_hit(self, service):
        cold = service.verify(request_for(ACCEPTED))
        warm = service.verify(request_for(ACCEPTED))
        assert not cold.cached and warm.cached
        assert cold.canonical_hash == warm.canonical_hash
        assert cold.ok == warm.ok
        assert cold.insns_processed == warm.insns_processed
        stats = service.stats()
        assert stats["verifications"] == 1
        assert stats["cache"]["hits"] == 1

    def test_structurally_identical_spellings_share_a_verdict(self, service):
        # -1 and 0xFFFFFFFFFFFFFFFF are the same canonical immediate.
        a = service.verify(request_for("mov r0, -1\nexit"))
        b = request_for("mov r0, -1\nexit")
        assert service.verify(b).cached
        assert a.canonical_hash == b.program.canonical_hash()

    def test_distinct_ctx_sizes_verify_separately(self, service):
        service.verify(request_for(ACCEPTED))
        other = request_for(ACCEPTED, ctx_size=32)
        assert not service.verify(other).cached
        assert service.stats()["verifications"] == 2

    def test_rejects_are_cached_too(self, service):
        service.verify(request_for(REJECTED))
        warm = service.verify(request_for(REJECTED))
        assert warm.cached and not warm.ok
        assert warm.error is not None and warm.error.reason

    def test_precision_summary_on_hit_and_miss(self, service):
        cold = service.verify(request_for(ACCEPTED, precision=True))
        warm = service.verify(request_for(ACCEPTED, precision=True))
        assert cold.precision == warm.precision
        assert cold.precision["transfers"] > 0

    def test_states_bypass_the_cache(self, service):
        service.verify(request_for(ACCEPTED))
        with_states = service.verify(request_for(ACCEPTED, states=True))
        assert not with_states.cached
        assert with_states.states    # reached indices rendered
        assert all(isinstance(v, str) for v in with_states.states.values())
        assert service.stats()["verifications"] == 2

    def test_lookup(self, service):
        verdict = service.verify(request_for(ACCEPTED))
        found = service.lookup(verdict.canonical_hash, verdict.ctx_size)
        assert found is not None and found.cached and found.ok
        assert service.lookup("0" * 64, 64) is None


class TestSingleFlight:
    def test_concurrent_identical_posts_verify_once(self):
        svc = VerificationService(workers=4)
        n = 8
        arrived = threading.Event()
        release = threading.Event()
        inner = svc._verify_miss

        def slow_miss(key, request):
            # Leader announces the in-flight walk, then blocks so the
            # followers pile up on the flight before it resolves.
            arrived.set()
            release.wait(timeout=10)
            return inner(key, request)

        svc._verify_miss = slow_miss
        verdicts = [None] * n
        errors = []

        def worker(i):
            try:
                verdicts[i] = svc.verify(request_for(ACCEPTED))
            except Exception as exc:   # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        assert arrived.wait(timeout=10)   # leader is inside the walk
        # Followers never call _verify_miss — whether they join the
        # flight or land after the store, the walk count stays 1.
        release.set()
        for t in threads:
            t.join(timeout=30)
        svc.close()

        assert not errors
        assert all(v is not None and v.ok for v in verdicts)
        stats = svc.stats()
        assert stats["verifications"] == 1
        assert sum(1 for v in verdicts if not v.cached) == 1
        assert sum(1 for v in verdicts if v.cached) == n - 1
        assert stats["cache"]["hits"] >= n - 1

    def test_single_flight_counts_followers_as_hits(self):
        svc = VerificationService(workers=2)
        n = 6
        started = threading.Barrier(n)
        inner = svc._verify_miss
        entered = threading.Event()
        block = threading.Event()

        def slow_miss(key, request):
            entered.set()
            block.wait(timeout=10)
            return inner(key, request)

        svc._verify_miss = slow_miss

        def worker():
            started.wait(timeout=10)
            svc.verify(request_for(ACCEPTED))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        entered.wait(timeout=10)
        block.set()
        for t in threads:
            t.join(timeout=30)
        svc.close()
        stats = svc.stats()
        assert stats["verifications"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == n - 1


class TestPersistence:
    def test_store_round_trip(self, tmp_path):
        path = str(tmp_path / "verdicts.json")
        with VerificationService(cache_path=path) as svc:
            svc.verify(request_for(ACCEPTED))
        # close() saved; a new service answers from the store.
        with VerificationService(cache_path=path) as warm:
            verdict = warm.verify(request_for(ACCEPTED))
            assert verdict.cached
            assert warm.stats()["verifications"] == 0

    def test_corrupt_store_is_a_clear_error(self, tmp_path):
        path = tmp_path / "verdicts.json"
        with VerificationService(cache_path=str(path)) as svc:
            svc.verify(request_for(ACCEPTED))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])   # partially written file
        with pytest.raises(ValueError) as exc:
            VerificationService(cache_path=str(path))
        message = str(exc.value)
        assert "corrupt or truncated" in message
        assert str(path) in message

    def test_cache_size_bounds_entries(self):
        svc = VerificationService(cache_size=1, workers=1)
        svc.verify(request_for(ACCEPTED))
        svc.verify(request_for(REJECTED))
        stats = svc.stats()
        assert stats["cache"]["entries"] == 1
        assert stats["cache"]["evictions"] == 1
        svc.close()


class TestStatsShape:
    def test_stats_payload_keys(self, service):
        service.verify(request_for(ACCEPTED))
        stats = service.stats()
        for key in ("requests", "verifications", "rejections", "inflight",
                    "workers", "uptime_s", "cache"):
            assert key in stats
        for key in ("hits", "misses", "evictions", "entries",
                    "max_entries", "hit_rate"):
            assert key in stats["cache"]
        json.dumps(stats)   # must be JSON-serializable as-is

    def test_healthz(self, service):
        payload = service.healthz()
        assert payload["status"] == "ok"
        json.dumps(payload)
