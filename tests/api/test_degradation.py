"""Service degradation: load shedding (503), deadlines (504), liveness.

Injected hangs come from the ``service.verify.hang`` fault site, so
every scenario here is deterministic — no reliance on real slow
programs.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.api import ApiServer, VerificationService, VerifyRequest
from repro.api.service import DeadlineExceeded, ServiceOverloaded
from repro.bpf import assemble


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


def request_for(text, **extra):
    payload = {"program_hex": assemble(text).to_bytes().hex()}
    payload.update(extra)
    return VerifyRequest.from_json_payload(payload)


def distinct_program(i):
    return f"mov r0, {i}\nadd r0, 1\nexit"


class TestServiceDeadline:
    def test_hung_verification_raises_deadline(self):
        faults.arm("seed=1,service.verify.hang=1:2")
        with VerificationService(workers=1, request_timeout_s=0.2) as svc:
            with pytest.raises(DeadlineExceeded):
                svc.verify(request_for(distinct_program(0)))
            stats = svc.stats()
            assert stats["timeouts"] >= 1
            # Nothing was cached for the timed-out request.
            assert stats["cache"]["entries"] == 0

    def test_followers_inherit_the_leader_timeout(self):
        faults.arm("seed=1,service.verify.hang=1:2")
        with VerificationService(workers=2, request_timeout_s=0.3) as svc:
            request = request_for(distinct_program(1))
            outcomes = []

            def submit():
                try:
                    svc.verify(request)
                    outcomes.append("ok")
                except DeadlineExceeded:
                    outcomes.append("timeout")

            threads = [threading.Thread(target=submit) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert outcomes == ["timeout"] * 3

    def test_no_deadline_means_no_timeout(self):
        with VerificationService(workers=1) as svc:
            verdict = svc.verify(request_for(distinct_program(2)))
            assert verdict.ok
            assert svc.stats()["timeouts"] == 0

    def test_verifier_watchdog_bounds_the_walk(self):
        # The in-walk hang (not the service-level one) also surfaces as
        # a deadline: the compiled walk's own watchdog stops it.
        faults.arm("seed=1,verify.hang=1:0.5")
        with VerificationService(workers=1, request_timeout_s=0.2) as svc:
            with pytest.raises(DeadlineExceeded):
                svc.verify(request_for(distinct_program(3)))

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            VerificationService(max_queue=0)
        with pytest.raises(ValueError):
            VerificationService(request_timeout_s=0)


class TestServiceShedding:
    def test_full_queue_sheds_with_retry_after(self):
        faults.arm("seed=1,service.verify.hang=1:1")
        with VerificationService(workers=1, max_queue=1) as svc:
            started = threading.Event()
            done = []

            def occupy():
                started.set()
                done.append(svc.verify(request_for(distinct_program(10))))

            thread = threading.Thread(target=occupy)
            thread.start()
            started.wait()
            # Let the first request reach the pool before probing.
            deadline = 50
            shed = None
            for _ in range(deadline):
                try:
                    if svc.stats()["queued"] >= 1:
                        svc.verify(request_for(distinct_program(11)))
                        break
                except ServiceOverloaded as exc:
                    shed = exc
                    break
                threading.Event().wait(0.05)
            thread.join(timeout=15)
            assert shed is not None
            assert shed.retry_after_s >= 1
            assert svc.stats()["shed"] == 1
            assert done and done[0].ok   # the occupying request finished

    def test_cache_hits_are_never_shed(self):
        with VerificationService(workers=1, max_queue=1) as svc:
            request = request_for(distinct_program(12))
            assert svc.verify(request).ok
            with svc._lock:
                svc._queued = 5   # simulate a saturated queue
            # A repeat submission answers from the cache, not the pool.
            assert svc.verify(request).cached


@pytest.fixture
def chaos_server():
    faults.arm("seed=1,service.verify.hang=1:1.5")
    service = VerificationService(
        workers=1, max_queue=1, request_timeout_s=0.4
    )
    api = ApiServer(service).start()
    yield api, service
    api.stop()
    service.close()
    faults.disarm()


def _post(url, payload, timeout=15):
    request = urllib.request.Request(
        url + "/verify",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def _get(url, path, timeout=5):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestHttpDegradation:
    def test_504_is_structured_and_healthz_stays_live(self, chaos_server):
        api, service = chaos_server
        payload = {"program_hex": assemble(distinct_program(20))
                   .to_bytes().hex()}
        status, _, body = _post(api.url, payload)
        assert status == 504
        assert body["error"]["code"] == "deadline-exceeded"
        assert "schema_version" in body
        # Liveness is isolated from the saturated verification pool.
        status, health = _get(api.url, "/healthz")
        assert status == 200 and health["status"] == "ok"

    def test_503_carries_retry_after(self, chaos_server):
        api, service = chaos_server
        statuses = {}
        lock = threading.Lock()

        def submit(i):
            payload = {"program_hex": assemble(distinct_program(30 + i))
                       .to_bytes().hex()}
            status, headers, body = _post(api.url, payload)
            with lock:
                statuses[i] = (status, headers, body)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        codes = sorted(s for s, _, _ in statuses.values())
        assert 503 in codes, codes
        for status, headers, body in statuses.values():
            if status == 503:
                assert body["error"]["code"] == "overloaded"
                assert int(headers["Retry-After"]) >= 1
            else:
                assert status == 504   # the rest ran into the deadline

    def test_metrics_expose_shed_and_timeouts(self, chaos_server):
        api, service = chaos_server
        payload = {"program_hex": assemble(distinct_program(40))
                   .to_bytes().hex()}
        _post(api.url, payload)   # one 504
        with urllib.request.urlopen(api.url + "/metrics", timeout=5) as r:
            body = r.read().decode()
        assert "repro_api_timeouts_total" in body
        assert "repro_api_shed_total" in body
        status, stats = _get(api.url, "/stats")
        assert status == 200
        assert stats["service"]["timeouts"] >= 1
        assert stats["service"]["max_queue"] == 1
