"""Request parsing and the repo-wide verdict shape."""

import pytest

from repro.api import (
    API_SCHEMA_VERSION,
    IngestError,
    Verdict,
    VerifyRequest,
    precision_summary,
)
from repro.bpf import assemble
from repro.bpf.verifier import Verifier

ACCEPTED = "mov r0, 7\nadd r0, 3\nexit"
REJECTED = "ldxdw r0, [r10-8]\nexit"   # uninitialized stack read


def _verify(text, ctx_size=64, **kwargs):
    program = assemble(text)
    events = []
    verifier = Verifier(
        ctx_size=ctx_size,
        on_transfer=lambda i, label, s: events.append((i, label, s)),
    )
    result = verifier.verify(program)
    return program, result, events


class TestVerifyRequest:
    def test_from_json_payload(self):
        program = assemble(ACCEPTED)
        request = VerifyRequest.from_json_payload({
            "program_hex": program.to_bytes().hex(),
            "ctx_size": 32,
            "states": True,
            "precision": True,
        })
        assert request.ctx_size == 32
        assert request.want_states and request.want_precision
        assert request.program.to_bytes() == program.to_bytes()

    def test_unknown_fields_ignored(self):
        program = assemble(ACCEPTED)
        request = VerifyRequest.from_json_payload({
            "program_hex": program.to_bytes().hex(),
            "future_field": {"anything": 1},
        })
        assert request.ctx_size == 64

    def test_non_bool_flag_is_422(self):
        program = assemble(ACCEPTED)
        with pytest.raises(IngestError) as exc:
            VerifyRequest.from_json_payload({
                "program_hex": program.to_bytes().hex(),
                "states": "yes",
            })
        assert exc.value.status == 422

    def test_from_wire_with_query(self):
        program = assemble(ACCEPTED)
        request = VerifyRequest.from_wire(
            program.to_bytes(), {"ctx_size": "16", "precision": "1"}
        )
        assert request.ctx_size == 16
        assert request.want_precision and not request.want_states


class TestVerdictShape:
    def test_accept_payload(self):
        program, result, _ = _verify(ACCEPTED)
        verdict = Verdict.from_result(
            result, program.canonical_hash(), 64
        )
        payload = verdict.to_payload()
        assert payload["schema_version"] == API_SCHEMA_VERSION
        assert payload["verdict"] == "accept"
        assert payload["ok"] is True
        assert payload["cached"] is False
        assert payload["canonical_hash"] == program.canonical_hash()
        assert payload["insns_processed"] == result.insns_processed
        assert "error" not in payload

    def test_reject_payload_carries_error(self):
        program, result, _ = _verify(REJECTED)
        payload = Verdict.from_result(
            result, program.canonical_hash(), 64
        ).to_payload()
        assert payload["verdict"] == "reject"
        assert payload["ok"] is False
        error = payload["error"]
        assert isinstance(error["index"], int)
        assert isinstance(error["reason"], str) and error["reason"]
        assert isinstance(error["structural"], bool)

    def test_states_render_with_string_keys(self):
        program, result, _ = _verify(ACCEPTED)
        verdict = Verdict.from_result(
            result, program.canonical_hash(), 64,
            states={0: "{} stack{}", 2: "{r0=7} stack{}"},
        )
        assert verdict.to_payload()["states"] == {
            "0": "{} stack{}", "2": "{r0=7} stack{}",
        }

    def test_summary_lines_match_cli_text(self):
        program, result, _ = _verify(REJECTED)
        verdict = Verdict.from_result(result, program.canonical_hash(), 64)
        (line,) = verdict.summary_lines()
        assert line.startswith("REJECTED: insn 0:")


class TestPrecisionSummary:
    def test_aggregates_transfer_stream(self):
        _, _, events = _verify(ACCEPTED)
        summary = precision_summary(events)
        assert summary["transfers"] == len(events) > 0
        assert "add64" in summary["operators"]
        entry = summary["operators"]["add64"]
        assert entry["count"] >= 1
        assert entry["gamma_bits_max"] == 0   # constant-folded result

    def test_empty_stream(self):
        assert precision_summary([]) == {"transfers": 0, "operators": {}}
