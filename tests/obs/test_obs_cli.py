"""The --obs-* flags and the ``repro stats`` subcommand, end to end."""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.obs import HeartbeatWriter


@pytest.fixture
def obs_dir(tmp_path, capsys):
    """A populated --obs-dir from a tiny real campaign run."""
    target = tmp_path / "obs"
    rc = main([
        "campaign", "--budget", "10", "--rounds", "2", "--seed", "4",
        "--obs-dir", str(target), "--obs-sample", "1.0",
    ])
    assert rc == 0
    capsys.readouterr()
    return target


def test_campaign_obs_dir_writes_all_artifacts(obs_dir):
    assert (obs_dir / "trace.jsonl").exists()
    assert (obs_dir / "metrics.json").exists()
    assert (obs_dir / "heartbeat.json").exists()


def test_stats_renders_tables_and_validates(obs_dir, capsys):
    rc = main(["stats", str(obs_dir), "--validate"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "heartbeat:" in out and "phase=done" in out
    assert "oracle.programs" in out
    assert "verifier time by operator" in out
    assert "campaign.round" in out
    assert "schema-valid" in out


def test_stats_json_payload(obs_dir, capsys):
    rc = main(["stats", str(obs_dir), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["counters"]["oracle.programs"] >= 10
    assert payload["heartbeat"]["phase"] == "done"


def test_stats_validate_fails_on_corrupt_trace(obs_dir, capsys):
    with open(obs_dir / "trace.jsonl", "a") as handle:
        handle.write(json.dumps({"v": 1, "kind": "bogus"}) + "\n")
    rc = main(["stats", str(obs_dir), "--validate"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "invalid record" in captured.err


def test_stats_warns_on_stale_heartbeat(tmp_path, capsys):
    HeartbeatWriter(tmp_path / "heartbeat.json", interval_s=0.05).publish(
        {"phase": "campaign", "round": 1}, force=True
    )
    time.sleep(0.15)
    rc = main(["stats", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "WARN:" in out and "stale" in out


def test_stats_rejects_missing_directory(tmp_path, capsys):
    rc = main(["stats", str(tmp_path / "nope")])
    assert rc == 2
    assert "not a directory" in capsys.readouterr().err


def test_fuzz_obs_dir(tmp_path, capsys):
    target = tmp_path / "obs"
    rc = main([
        "fuzz", "--budget", "8", "--seed", "2",
        "--obs-dir", str(target),
    ])
    assert rc == 0
    heartbeat = json.loads((target / "heartbeat.json").read_text())
    assert heartbeat["phase"] == "done"
    assert heartbeat["executed"] == 8
    metrics = json.loads((target / "metrics.json").read_text())
    assert metrics["counters"]["oracle.programs"] >= 8


def test_bench_json_embeds_stage_histograms(capsys):
    rc = main([
        "bench", "--budget", "4", "--campaign-budget", "4",
        "--repeats", "1", "--json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 1
    stages = payload["stages_obs"]
    assert set(payload["metrics"]) == set(stages)
    for summary in stages.values():
        assert summary["count"] == 1.0
        assert {"sum", "mean", "p50", "p90", "p99"} <= set(summary)


def test_bench_obs_dir_mirrors_stage_histograms(tmp_path, capsys):
    target = tmp_path / "obs"
    rc = main([
        "bench", "--budget", "4", "--campaign-budget", "4",
        "--repeats", "1", "--obs-dir", str(target),
    ])
    assert rc == 0
    metrics = json.loads((target / "metrics.json").read_text())
    assert any(
        name.startswith("bench.") and name.endswith(".seconds")
        for name in metrics["histograms"]
    )
