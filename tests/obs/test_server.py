"""The /metrics and /stats endpoints, served from a background thread."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import HeartbeatWriter, Registry, StatsServer


@pytest.fixture
def registry() -> Registry:
    reg = Registry()
    reg.counter("oracle.programs").inc(12)
    reg.add_op_time("verifier", "mul64", 2_000_000)
    return reg


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


def test_metrics_endpoint_serves_prometheus_text(registry):
    server = StatsServer(lambda: registry).start()
    try:
        body = _get(server.url + "/metrics")
    finally:
        server.stop()
    assert "repro_oracle_programs_total 12" in body
    assert 'repro_verifier_op_seconds_total{op="mul64"} 0.002' in body


def test_stats_endpoint_embeds_heartbeat_and_staleness(tmp_path, registry):
    HeartbeatWriter(tmp_path / "heartbeat.json", interval_s=0.05).publish(
        {"phase": "campaign", "round": 1}, force=True
    )
    time.sleep(0.15)   # > 2x the declared interval: snapshot is now stale
    server = StatsServer(lambda: registry, obs_dir=tmp_path).start()
    try:
        payload = json.loads(_get(server.url + "/stats"))
    finally:
        server.stop()
    assert payload["metrics"]["counters"]["oracle.programs"] == 12
    assert payload["heartbeat"]["phase"] == "campaign"
    assert "stale" in payload


def test_unknown_route_is_404(registry):
    server = StatsServer(lambda: registry).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
    finally:
        server.stop()


def test_live_registry_mutations_are_visible(registry):
    # registry_fn is consulted per request, not captured at start().
    server = StatsServer(lambda: registry).start()
    try:
        registry.counter("oracle.programs").inc(8)
        body = _get(server.url + "/metrics")
    finally:
        server.stop()
    assert "repro_oracle_programs_total 20" in body
