"""Metrics registry: bucket edges, merge associativity, serialization."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, Registry


# -- histogram bucket semantics ------------------------------------------------


def test_histogram_bucket_edges_are_inclusive_upper():
    hist = Histogram(bounds=[1.0, 2.0, 5.0])
    hist.observe(0.5)    # <= 1.0
    hist.observe(1.0)    # == 1.0 lands in the 1.0 bucket (Prometheus le)
    hist.observe(1.0001)  # first value above 1.0 spills to the 2.0 bucket
    hist.observe(5.0)    # == 5.0 still inside the last bounded bucket
    hist.observe(7.0)    # above every bound: overflow slot
    assert hist.counts == [2, 1, 1, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(0.5 + 1.0 + 1.0001 + 5.0 + 7.0)


def test_histogram_percentiles_report_bucket_upper_bounds():
    hist = Histogram(bounds=[1.0, 2.0, 5.0])
    for value in (0.5,) * 5 + (1.5,) * 4 + (4.0,):
        hist.observe(value)
    assert hist.percentile(50) == 1.0
    assert hist.percentile(90) == 2.0
    assert hist.percentile(99) == 5.0
    summary = hist.summary()
    assert summary["count"] == 10
    assert summary["p50"] == 1.0
    assert summary["p99"] == 5.0


def test_histogram_overflow_percentile_is_inf():
    hist = Histogram(bounds=[1.0])
    hist.observe(10.0)
    assert hist.percentile(50) == float("inf")


def test_histogram_overflow_summary_is_finite_json():
    # Regression: mass in the overflow bucket used to put float("inf")
    # into summary(), which json.dumps renders as the non-standard
    # ``Infinity`` token — strict parsers of bench --json and /stats
    # output reject it.  The summary renders a finite sentinel instead.
    import json

    hist = Histogram(bounds=[1.0, 10.0])
    hist.observe(50.0)
    summary = hist.summary()
    assert summary["p50"] == ">10"
    assert summary["p99"] == ">10"
    text = json.dumps(summary)
    assert "Infinity" not in text
    assert json.loads(text)["p90"] == ">10"


def test_histogram_summary_stays_numeric_in_range():
    hist = Histogram(bounds=[1.0, 10.0])
    hist.observe(0.5)
    summary = hist.summary()
    assert summary["p50"] == 1.0 and isinstance(summary["p99"], float)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=[])
    with pytest.raises(ValueError):
        Histogram(bounds=[2.0, 1.0])


def test_histogram_merge_requires_equal_bounds():
    a = Histogram(bounds=[1.0, 2.0])
    b = Histogram(bounds=[1.0, 3.0])
    with pytest.raises(ValueError):
        a.merge(b)


def test_empty_histogram_summary_is_zero():
    summary = Histogram(bounds=[1.0]).summary()
    assert summary["count"] == 0
    assert summary["mean"] == 0.0
    assert summary["p50"] == 0.0


# -- scalar metrics ------------------------------------------------------------


def test_counter_and_gauge_merge():
    a, b = Counter(3), Counter(4)
    a.merge(b)
    assert a.value == 7
    lo, hi = Gauge(1.0), Gauge(9.0)
    lo.merge(hi)
    assert lo.value == 9.0
    hi.merge(Gauge(1.0))   # max-merge: order-independent
    assert hi.value == 9.0


# -- registry merge ------------------------------------------------------------


def _shard(seed: int) -> Registry:
    reg = Registry()
    reg.counter("oracle.programs").inc(seed + 1)
    reg.counter(f"shard.{seed % 2}").inc(seed)
    reg.gauge("pool.size").set(float(seed))
    # Power-of-two observations keep the float ``sum`` exactly
    # associative, so fold-shape equality below is exact, not approximate.
    hist = reg.histogram("verify.seconds", bounds=[0.25, 1.0, 4.0])
    for i in range(seed + 1):
        hist.observe(0.25 * (i + 1))
    reg.add_op_time("verifier", "add64", 100 * (seed + 1))
    reg.add_op_time("verifier", f"op{seed}", 10)
    return reg


def test_registry_merge_is_associative_across_worker_splits():
    """Any fold shape over worker shards yields the identical registry —
    the property that makes campaign metrics worker-count independent."""
    shards = [_shard(i) for i in range(4)]

    left = Registry()                      # ((0+1)+2)+3
    for shard in shards:
        left.merge(shard)

    right = Registry()                     # 0+(1+(2+3))
    inner = Registry()
    for shard in shards[1:]:
        inner.merge(shard)
    right.merge(shards[0])
    right.merge(inner)

    pairs = Registry()                     # (0+2)+(1+3), via dicts
    a, b = Registry(), Registry()
    a.merge_dict(shards[0].to_dict())
    a.merge_dict(shards[2].to_dict())
    b.merge_dict(shards[1].to_dict())
    b.merge_dict(shards[3].to_dict())
    pairs.merge(a)
    pairs.merge(b)

    assert left.to_dict() == right.to_dict() == pairs.to_dict()


def test_registry_dict_round_trip():
    reg = _shard(2)
    clone = Registry.from_dict(reg.to_dict())
    assert clone.to_dict() == reg.to_dict()


def test_top_timers_orders_by_total_then_label():
    reg = Registry()
    reg.add_op_time("verifier", "mul64", 500)
    reg.add_op_time("verifier", "add64", 100)
    reg.add_op_time("verifier", "aaa", 100)
    reg.add_op_time("interp", "huge", 10_000)   # other component: excluded
    top = reg.top_timers("verifier", 2)
    assert [label for label, _ in top] == ["mul64", "aaa"]
    assert top[0][1].total_ns == 500


def test_render_prometheus_exposition():
    reg = Registry()
    reg.counter("oracle.replays").inc(7)
    reg.gauge("pool.size").set(3.0)
    reg.histogram("verify.seconds", bounds=[0.01]).observe(0.005)
    reg.add_op_time("verifier", "add64", 1_000_000)
    text = reg.render_prometheus()
    assert "repro_oracle_replays_total 7" in text
    assert "repro_pool_size 3.0" in text
    assert 'repro_verify_seconds_bucket{le="0.01"} 1' in text
    assert 'repro_verifier_op_seconds_total{op="add64"} 0.001' in text
    assert text.endswith("\n")
