"""Observability threaded through the real stack, without changing it.

The contract under test: enabling obs may only *add* metrics, spans, and
heartbeats — verifier verdicts, per-instruction states, telemetry
streams, campaign reports, and checkpoint goldens are identical with obs
on or off, for any worker count.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.bpf import assemble
from repro.bpf.verifier import Verifier
from repro.fuzz import (
    CampaignConfig,
    CampaignSpec,
    run_campaign,
    run_precision_campaign,
)
from repro.fuzz.oracle import DifferentialOracle


PROGRAM_TEXT = """
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    and r2, 0xff
    mul r2, r3
    rsh r2, 4
    jgt r2, 100, big
    mov r0, r2
    exit
big:
    mov r0, 0
    exit
"""


def _verify_snapshot():
    stream = []
    verifier = Verifier(
        ctx_size=64, collect_states=True,
        on_transfer=lambda idx, label, scalar: stream.append(
            (idx, label, str(scalar))
        ),
    )
    result = verifier.verify(assemble(PROGRAM_TEXT))
    states = {idx: str(state) for idx, state in verifier.states_at.items()}
    return result.ok, result.insns_processed, result.error_messages(), \
        states, stream


def test_verifier_output_identical_with_obs_enabled():
    baseline = _verify_snapshot()
    obs.enable()
    instrumented = _verify_snapshot()
    assert instrumented == baseline
    # ... and the instrumented pass actually attributed time per op.
    timers = obs.default_registry().timers
    assert ("verifier", "mul64") in timers
    assert timers[("verifier", "mul64")].count >= 1
    obs.reset()
    assert _verify_snapshot() == baseline


def test_compiled_programs_are_keyed_on_obs_state():
    program = assemble(PROGRAM_TEXT)
    pristine = program.compiled_verifier(64)
    assert program.compiled_verifier(64) is pristine   # cached
    obs.enable()
    instrumented = program.compiled_verifier(64)
    assert instrumented is not pristine                # recompiled
    obs.disable()
    # Disabled again: tag 0 resolves back to the pristine compile.
    assert program.compiled_verifier(64) is pristine


def test_oracle_counts_replays_and_verdicts():
    obs.enable()
    oracle = DifferentialOracle(ctx_size=64, inputs_per_program=4)
    report = oracle.check_program(
        assemble(PROGRAM_TEXT), input_seed_base=11
    )
    counters = obs.default_registry().counters
    assert counters["oracle.programs"].value == 1
    assert counters[f"oracle.{report.verdict}"].value == 1
    assert counters["oracle.replays"].value == report.runs
    assert counters["oracle.containment_checks"].value == report.checks


def test_driver_metrics_are_worker_count_independent():
    config1 = CampaignConfig(budget=14, seed=5, workers=1, shrink=False)
    obs.enable()
    run_campaign(config1)
    solo = obs.default_registry().to_dict()

    obs.reset()
    obs.enable()
    run_campaign(CampaignConfig(budget=14, seed=5, workers=2, shrink=False))
    split = obs.default_registry().to_dict()

    # Counters and histogram counts merge associatively, so the shard
    # fold is invisible; timer *durations* are wall-clock and may differ,
    # but their call counts must not.
    assert split["counters"] == solo["counters"]
    assert {k: v["count"] for k, v in split["timers"].items()} == \
        {k: v["count"] for k, v in solo["timers"].items()}


def test_campaign_smoke_with_memory_sink_and_identical_report():
    spec = CampaignSpec(budget=16, rounds=2, seed=3, workers=1)
    baseline = run_precision_campaign(spec).report.to_json()

    sink = obs.MemorySink()
    obs.set_tracer(obs.Tracer(sink, sample=1.0))
    obs.enable()
    result = run_precision_campaign(spec)

    assert result.report.to_json() == baseline
    names = {event["name"] for event in sink.events}
    assert "campaign.round" in names
    assert "oracle.check_program" in names
    assert all(obs.validate_event(e) == [] for e in sink.events)
    rounds = [e for e in sink.events if e["name"] == "campaign.round"]
    assert [e["attrs"]["round"] for e in rounds] == [0, 1]
    # Per-operator verifier attribution reached the default registry.
    assert obs.default_registry().top_timers("verifier", 1)


def test_campaign_checkpoint_records_wall_clock(tmp_path):
    spec = CampaignSpec(budget=8, rounds=2, seed=1)
    run_precision_campaign(spec, state_dir=tmp_path)
    payload = json.loads((tmp_path / "state.json").read_text())
    assert payload["elapsed_s"] >= 0
    assert payload["programs_per_s"] >= 0
    # Timing stays off the deterministic report (golden byte-equality).
    assert "elapsed_s" not in payload["report"]
    assert "programs_per_s" not in payload["report"]


def test_campaign_resume_accepts_checkpoint_with_wall_clock(tmp_path):
    spec = CampaignSpec(budget=8, rounds=2, seed=1)
    first = run_precision_campaign(spec, state_dir=tmp_path,
                                   stop_after_rounds=1)
    assert first.stats.rounds_completed == 1
    resumed = run_precision_campaign(spec, state_dir=tmp_path)
    assert resumed.stats.rounds_completed == 2
    assert resumed.report.to_json() == run_precision_campaign(
        spec
    ).report.to_json()


def test_session_writes_all_artifacts_and_final_heartbeat(tmp_path):
    with obs.configure(obs_dir=tmp_path, sample=1.0):
        assert obs.enabled()
        run_precision_campaign(CampaignSpec(budget=8, rounds=1, seed=2))
    assert not obs.enabled()

    heartbeat = obs.read_heartbeat(tmp_path / "heartbeat.json")
    assert heartbeat["phase"] == "done"
    assert heartbeat["executed"] == 8       # close keeps the last snapshot
    assert heartbeat["seq"] >= 2

    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics["counters"]["oracle.programs"] >= 8

    events = list(obs.read_trace(tmp_path / "trace.jsonl"))
    assert events
    assert all(obs.validate_event(e) == [] for e in events)


def test_scoped_registry_isolates_and_restores():
    obs.enable()
    outer = obs.default_registry()
    outer.counter("outer").inc()
    with obs.scoped_registry() as inner:
        obs.default_registry().counter("inner").inc()
        assert obs.default_registry() is inner
    assert obs.default_registry() is outer
    assert "inner" not in outer.counters
    assert inner.counters["inner"].value == 1


def test_worker_init_state_round_trip():
    assert obs.worker_init_state() is None
    obs.enable()
    state = obs.worker_init_state()
    assert state is not None
    obs.reset()
    obs.init_worker(state)
    assert obs.enabled()
    assert obs.compile_tag() == state[1]
    obs.init_worker(None)
    assert not obs.enabled()


@pytest.mark.parametrize("workers", [1, 2])
def test_precision_report_identical_with_obs_for_any_workers(workers):
    spec = CampaignSpec(budget=12, rounds=1, seed=9, workers=workers)
    baseline = run_precision_campaign(spec).report.to_json()
    obs.enable()
    assert run_precision_campaign(spec).report.to_json() == baseline
