"""Observability-suite fixtures.

Every test in this package runs against pristine ``repro.obs`` state:
observability disabled, a fresh default registry, and the null tracer.
The reset also runs *after* each test so an enabled run can never leak
instrumented compiled closures into unrelated suites.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _pristine_obs():
    obs.reset()
    yield
    obs.reset()
