"""Span tracing: JSONL round-trip, nesting, sampling, schema validation."""

from __future__ import annotations

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
    aggregate_spans,
    read_trace,
    validate_event,
)


def test_span_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path), sample=1.0)
    with tracer.span("campaign.round", round=1):
        with tracer.span("oracle.check_program", insns=7):
            pass
    tracer.event("violation", kind="value_escape")
    tracer.close()

    events = list(read_trace(path))
    assert len(events) == 3
    for event in events:
        assert validate_event(event) == []

    # Inner span completes (and serializes) first; the event is last.
    inner, outer, point = events
    assert inner["name"] == "oracle.check_program"
    assert inner["attrs"] == {"insns": 7}
    assert inner["parent_id"] == outer["span_id"]
    assert outer["parent_id"] is None
    assert outer["dur_s"] >= inner["dur_s"] >= 0
    assert point["kind"] == "event"
    assert point["attrs"] == {"kind": "value_escape"}
    assert all(e["v"] == TRACE_SCHEMA_VERSION for e in events)


def test_sampled_span_keeps_every_nth():
    sink = MemorySink()
    tracer = Tracer(sink, sample=0.5)
    for _ in range(10):
        with tracer.sampled_span("oracle.check_program"):
            pass
    assert len(sink.events) == 5

    full = MemorySink()
    tracer = Tracer(full, sample=1.0)
    for _ in range(4):
        with tracer.sampled_span("x"):
            pass
    assert len(full.events) == 4

    none = MemorySink()
    tracer = Tracer(none, sample=0.0)
    for _ in range(4):
        with tracer.sampled_span("x"):
            pass
    assert none.events == []


def test_unsampled_spans_always_emit():
    sink = MemorySink()
    tracer = Tracer(sink, sample=0.0)
    with tracer.span("campaign.round"):   # structural span: never sampled out
        pass
    assert len(sink.events) == 1


def test_null_tracer_is_inert():
    tracer = NullTracer()
    with tracer.span("x"):
        with tracer.sampled_span("y"):
            tracer.event("z")
    tracer.flush()
    tracer.close()


def test_validate_event_rejects_malformed_records():
    valid = {
        "v": TRACE_SCHEMA_VERSION, "kind": "span", "name": "x",
        "ts": 1.0, "dur_s": 0.1, "pid": 1, "span_id": 1,
        "parent_id": None, "attrs": {},
    }
    assert validate_event(valid) == []
    assert validate_event("not a dict")
    assert validate_event({**valid, "v": 99})
    assert validate_event({**valid, "kind": "trace"})
    assert validate_event({**valid, "name": ""})
    assert validate_event({**valid, "attrs": []})
    missing_parent = dict(valid)
    del missing_parent["parent_id"]
    assert validate_event(missing_parent)
    span_without_duration = dict(valid)
    del span_without_duration["dur_s"]
    assert validate_event(span_without_duration)
    # Point events carry no duration — that is valid.
    event = dict(span_without_duration, kind="event")
    assert validate_event(event) == []


def test_aggregate_spans_folds_per_name():
    events = [
        {"kind": "span", "name": "a", "dur_s": 1.0},
        {"kind": "span", "name": "a", "dur_s": 3.0},
        {"kind": "span", "name": "b", "dur_s": 0.5},
        {"kind": "event", "name": "a"},   # events are skipped
    ]
    spans = aggregate_spans(events)
    assert spans["a"] == {"count": 2, "total_s": 4.0, "max_s": 3.0}
    assert spans["b"]["count"] == 1
