"""Heartbeat snapshots: sequencing, rate limiting, staleness detection."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatWriter,
    read_heartbeat,
    staleness_warning,
)


def test_publish_carries_seq_pid_and_interval(tmp_path):
    path = tmp_path / "heartbeat.json"
    writer = HeartbeatWriter(path, interval_s=0.5)
    assert writer.publish({"phase": "campaign", "round": 1}, force=True)
    first = read_heartbeat(path)
    assert first["schema_version"] == HEARTBEAT_SCHEMA_VERSION
    assert first["seq"] == 1
    assert first["pid"] == os.getpid()
    assert first["interval_s"] == 0.5
    assert first["phase"] == "campaign"

    assert writer.publish({"phase": "campaign", "round": 2}, force=True)
    second = read_heartbeat(path)
    assert second["seq"] == 2           # monotonic across publishes
    assert second["round"] == 2


def test_publish_is_rate_limited_without_force(tmp_path):
    path = tmp_path / "heartbeat.json"
    writer = HeartbeatWriter(path, interval_s=3600.0)
    assert writer.publish({"round": 1})
    assert not writer.publish({"round": 2})   # coalesced: inside interval
    assert read_heartbeat(path)["round"] == 1
    assert writer.publish({"round": 3}, force=True)
    assert read_heartbeat(path)["round"] == 3


def test_publish_never_leaves_a_torn_file(tmp_path):
    path = tmp_path / "heartbeat.json"
    writer = HeartbeatWriter(path)
    writer.publish({"phase": "x"}, force=True)
    # The write-then-rename protocol leaves no .tmp behind.
    assert list(tmp_path.iterdir()) == [path]


def test_read_heartbeat_rejects_unknown_schema(tmp_path):
    path = tmp_path / "heartbeat.json"
    path.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ValueError):
        read_heartbeat(path)


def test_staleness_warning_after_twice_the_interval():
    payload = {"interval_s": 2.0, "ts": 1000.0, "pid": 7, "seq": 3}
    assert staleness_warning(payload, now=1003.9) is None
    warning = staleness_warning(payload, now=1004.1)
    assert warning is not None
    assert "stale" in warning
    assert "pid 7" in warning and "seq 3" in warning


def test_staleness_needs_a_declared_interval():
    # No interval declared (hand-written file): no liveness contract.
    assert staleness_warning({"ts": 0.0}, now=1e9) is None
