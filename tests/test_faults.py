"""repro.faults: the deterministic fault-injection plan and its plumbing."""

import os
import subprocess
import sys

import pytest

from repro import faults
from repro.bpf.canon import VerdictCache


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with no armed plan."""
    faults.disarm()
    yield
    faults.disarm()


class TestSpecGrammar:
    def test_parse_and_round_trip(self):
        spec = "seed=42,campaign.worker.crash=0.5,verify.hang=1:0.05"
        plan = faults.FaultPlan.parse(spec)
        assert plan.seed == 42
        assert plan.rules["campaign.worker.crash"].p == 0.5
        assert plan.rules["verify.hang"].arg == 0.05
        assert faults.FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()

    def test_unknown_site_is_an_error(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultPlan.parse("seed=1,campain.worker.crash=0.5")

    @pytest.mark.parametrize("bad", [
        "campaign.worker.crash",           # no '='
        "campaign.worker.crash=notaprob",  # bad probability
        "seed=x",                          # bad seed
        "campaign.worker.crash=1.5",       # out of range
    ])
    def test_bad_entries_are_errors(self, bad):
        with pytest.raises(ValueError):
            faults.FaultPlan.parse(bad)

    def test_empty_entries_ignored(self):
        plan = faults.FaultPlan.parse("seed=3,,verify.hang=0.1,")
        assert plan.seed == 3 and set(plan.rules) == {"verify.hang"}


class TestDeterminism:
    def test_fire_is_a_pure_function_of_seed_site_key(self):
        a = faults.FaultPlan.parse("seed=7,campaign.worker.crash=0.5")
        b = faults.FaultPlan.parse("seed=7,campaign.worker.crash=0.5")
        keys = [(i, attempt) for i in range(64) for attempt in range(3)]
        assert [a.fire("campaign.worker.crash", k) for k in keys] == \
               [b.fire("campaign.worker.crash", k) for k in keys]

    def test_different_seeds_differ(self):
        a = faults.FaultPlan.parse("seed=1,campaign.worker.crash=0.5")
        b = faults.FaultPlan.parse("seed=2,campaign.worker.crash=0.5")
        keys = [(i,) for i in range(256)]
        assert [a.fire("campaign.worker.crash", k) for k in keys] != \
               [b.fire("campaign.worker.crash", k) for k in keys]

    def test_rate_roughly_matches_probability(self):
        plan = faults.FaultPlan.parse("seed=9,campaign.worker.crash=0.25")
        fired = sum(
            plan.fire("campaign.worker.crash", (i,)) for i in range(2000)
        )
        assert 350 < fired < 650   # 0.25 ± wide tolerance

    def test_keyless_calls_use_a_counter(self):
        a = faults.FaultPlan.parse("seed=5,cache.save.slow=0.5")
        b = faults.FaultPlan.parse("seed=5,cache.save.slow=0.5")
        assert [a.fire("cache.save.slow") for _ in range(100)] == \
               [b.fire("cache.save.slow") for _ in range(100)]

    def test_edge_probabilities(self):
        plan = faults.FaultPlan.parse(
            "seed=1,verify.hang=0,service.verify.hang=1"
        )
        assert not any(plan.fire("verify.hang", (i,)) for i in range(50))
        assert all(plan.fire("service.verify.hang", (i,)) for i in range(50))


class TestArming:
    def test_disarmed_by_default(self):
        assert not faults.enabled()
        assert not faults.fire("verify.hang")
        assert faults.active_plan() is None

    def test_arm_from_spec_string(self):
        plan = faults.arm("seed=3,verify.hang=1:0.01")
        assert faults.enabled()
        assert faults.active_plan() is plan
        assert faults.fire("verify.hang", (0,))
        assert faults.arg("verify.hang") == 0.01

    def test_default_args(self):
        faults.arm("seed=0,verify.hang=1")
        assert faults.arg("verify.hang") == 0.05   # site default

    def test_worker_state_round_trip(self):
        faults.arm("seed=11,campaign.shard.corrupt=0.5")
        state = faults.worker_init_state()
        faults.disarm()
        faults.init_worker(state)
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 11
        faults.init_worker(None)
        assert not faults.enabled()

    def test_env_arming_in_a_subprocess(self):
        code = (
            "from repro import faults; "
            "plan = faults.active_plan(); "
            "assert plan is not None and plan.seed == 77, plan; "
            "print('armed')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(
                os.environ,
                REPRO_FAULTS="seed=77,campaign.worker.crash=0.1",
                PYTHONPATH="src",
            ),
            cwd="/root/repo",
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "armed" in out.stdout


class TestCorruptPayload:
    def test_absorb_rejects_whole_shard(self):
        cache = VerdictCache()
        shard = faults.corrupt_payload({"hits": 3})
        with pytest.raises((ValueError, KeyError, TypeError)):
            cache.absorb(shard)
        # All-or-nothing: nothing leaked into the cache.
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
