"""Tests for the signed interval domain and bounds deduction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tnum import Tnum
from repro.domains.interval import Interval
from repro.domains.signed_interval import SignedInterval, deduce_bounds
from tests.conftest import tnums

W = 8
svals = st.integers(-128, 127)


def sintervals():
    return st.builds(
        lambda a, b: SignedInterval(min(a, b), max(a, b), W), svals, svals
    )


class TestConstruction:
    def test_const_wraps_unsigned_input(self):
        si = SignedInterval.const(0xFF, W)
        assert si.smin == si.smax == -1

    def test_top_bottom(self):
        assert SignedInterval.top(W).cardinality() == 256
        assert SignedInterval.bottom(W).is_bottom()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SignedInterval(-200, 0, W)

    def test_contains_uses_signed_view(self):
        si = SignedInterval(-5, 5, W)
        assert si.contains(0xFF)  # -1
        assert si.contains(5)
        assert not si.contains(100)


class TestFromTnum:
    @given(tnums(W))
    def test_sound(self, t):
        si = SignedInterval.from_tnum(t)
        for c in t.concretize():
            assert si.contains(c), (t, c)

    def test_known_negative_sign(self):
        t = Tnum.from_trits("1000000µ", width=W)
        si = SignedInterval.from_tnum(t)
        assert (si.smin, si.smax) == (-128, -127)

    def test_unknown_sign_covers_both_halves(self):
        t = Tnum.from_trits("µ0000001", width=W)
        si = SignedInterval.from_tnum(t)
        assert si.smin == -127 and si.smax == 1


class TestLattice:
    @given(sintervals(), sintervals())
    def test_join_meet_bounds(self, a, b):
        j = a.join(b)
        m = a.meet(b)
        assert a.leq(j) and b.leq(j)
        assert m.leq(a) and m.leq(b)

    def test_meet_disjoint_bottom(self):
        assert SignedInterval(-10, -5, W).meet(SignedInterval(5, 10, W)).is_bottom()


class TestTransformers:
    @given(sintervals(), sintervals())
    def test_add_sound(self, a, b):
        r = a.add(b)
        for x in (a.smin, a.smax):
            for y in (b.smin, b.smax):
                assert r.contains((x + y) & 0xFF)

    def test_add_overflow_tops(self):
        r = SignedInterval(100, 127, W).add(SignedInterval(100, 127, W))
        assert (r.smin, r.smax) == (-128, 127)

    def test_sub_sound(self):
        a = SignedInterval(-10, 10, W)
        b = SignedInterval(1, 5, W)
        r = a.sub(b)
        assert r.contains((-10 - 5) & 0xFF) and r.contains((10 - 1) & 0xFF)

    def test_neg(self):
        assert SignedInterval(-5, 3, W).neg() == SignedInterval(-3, 5, W)

    def test_neg_int_min_tops(self):
        r = SignedInterval(-128, 0, W).neg()
        assert (r.smin, r.smax) == (-128, 127)

    def test_arshift_preserves_order(self):
        r = SignedInterval(-16, 16, W).arshift(2)
        assert (r.smin, r.smax) == (-4, 4)


class TestRefinement:
    def test_slt_sge_window(self):
        si = SignedInterval.top(W).refine_sge(-4).refine_slt(5)
        assert (si.smin, si.smax) == (-4, 4)

    def test_sgt_at_max_is_bottom(self):
        assert SignedInterval.top(W).refine_sgt(127).is_bottom()

    def test_sle(self):
        assert SignedInterval.top(W).refine_sle(-1).smax == -1

    @given(sintervals(), svals)
    def test_refinements_sound(self, si, bound):
        lo = max(si.smin, -120)
        hi = min(si.smax, 120)
        for x in range(lo, hi + 1):
            if x < bound:
                assert si.refine_slt(bound).contains(x & 0xFF)
            if x >= bound:
                assert si.refine_sge(bound).contains(x & 0xFF)


class TestConversions:
    def test_nonnegative_roundtrip(self):
        si = SignedInterval(3, 100, W)
        iv = si.to_unsigned()
        assert (iv.umin, iv.umax) == (3, 100)

    def test_all_negative_maps_to_high_range(self):
        si = SignedInterval(-4, -1, W)
        iv = si.to_unsigned()
        assert (iv.umin, iv.umax) == (0xFC, 0xFF)

    def test_straddling_gives_top(self):
        assert SignedInterval(-1, 1, W).to_unsigned().is_top()

    def test_from_unsigned(self):
        si = SignedInterval.from_unsigned(Interval(0xF0, 0xFF, W))
        assert (si.smin, si.smax) == (-16, -1)


class TestDeduceBounds:
    def test_tnum_tightens_signed(self):
        # tnum says sign bit is 1: signed view must become negative.
        t = Tnum.from_trits("1µµµµµµµ", width=W)
        tt, iv, si = deduce_bounds(
            t, Interval.top(W), SignedInterval.top(W)
        )
        assert si.smax <= -1

    def test_signed_tightens_unsigned(self):
        # signed [-4, -1] forces unsigned [0xFC, 0xFF].
        tt, iv, si = deduce_bounds(
            Tnum.unknown(W), Interval.top(W), SignedInterval(-4, -1, W)
        )
        assert (iv.umin, iv.umax) == (0xFC, 0xFF)
        # ...which in turn makes the tnum's high bits known 1.
        assert tt.trit(7) == "1" and tt.trit(2) == "1"

    def test_contradiction_collapses_to_bottom(self):
        tt, iv, si = deduce_bounds(
            Tnum.const(5, W), Interval.top(W), SignedInterval(-4, -1, W)
        )
        assert tt.is_bottom() and iv.is_bottom() and si.is_bottom()

    @given(tnums(W))
    def test_deduction_is_sound(self, t):
        tt, iv, si = deduce_bounds(
            t, Interval.top(W), SignedInterval.top(W)
        )
        for c in t.concretize():
            assert tt.contains(c) and iv.contains(c) and si.contains(c)
