"""Soundness and optimality of the dedicated interval transfer functions.

Mirrors the tnum verify harness (:mod:`repro.verify.exhaustive`): the
small widths are checked *exhaustively* — every interval pair, every
concrete operand pair — and 8/64-bit behaviour is covered by randomized
and hypothesis-driven sampling with full concrete enumeration over
bounded ranges.  The bitwise bounds (Hacker's Delight §4-3) and the
division bounds are additionally pinned as *optimal* (equal to the
brute-force hull) where that holds: and/or/xor/udiv everywhere, umod on
the measured fraction of width-4 pairs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains.interval import Interval
from repro.domains.product import ScalarValue

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1


def concrete_ops(limit):
    """name -> width-masked concrete semantics (BPF zero-divisor rules)."""
    return {
        "and_": lambda x, y: x & y,
        "or_": lambda x, y: x | y,
        "xor": lambda x, y: x ^ y,
        "udiv": lambda x, y: 0 if y == 0 else x // y,
        "umod": lambda x, y: x if y == 0 else x % y,
        "add": lambda x, y: (x + y) & limit,
        "sub": lambda x, y: (x - y) & limit,
    }


def all_intervals(width):
    limit = (1 << width) - 1
    return [
        Interval(lo, hi, width)
        for lo in range(limit + 1)
        for hi in range(lo, limit + 1)
    ]


def brute_hull(p, q, cop):
    values = [
        cop(x, y)
        for x in range(p.umin, p.umax + 1)
        for y in range(q.umin, q.umax + 1)
    ]
    return min(values), max(values)


class TestExhaustiveWidth4:
    """Every interval pair × every concrete pair at width 4."""

    WIDTH = 4

    @pytest.fixture(scope="class")
    def intervals(self):
        return all_intervals(self.WIDTH)

    @pytest.mark.parametrize(
        "name", ["and_", "or_", "xor", "udiv", "umod", "add", "sub"]
    )
    def test_soundness(self, intervals, name):
        cop = concrete_ops((1 << self.WIDTH) - 1)[name]
        for p in intervals:
            for q in intervals:
                r = getattr(p, name)(q)
                lo, hi = brute_hull(p, q, cop)
                assert r.umin <= lo and hi <= r.umax, (name, p, q, r)

    @pytest.mark.parametrize("name", ["and_", "or_", "xor", "udiv"])
    def test_optimality(self, intervals, name):
        """Bitwise and division bounds equal the brute-force hull."""
        cop = concrete_ops((1 << self.WIDTH) - 1)[name]
        for p in intervals:
            for q in intervals:
                r = getattr(p, name)(q)
                assert (r.umin, r.umax) == brute_hull(p, q, cop), (
                    name, p, q, r,
                )

    def test_umod_optimality_gap(self, intervals):
        """umod is inexact only where the lower bound clamps to 0.

        The exact-pair count and the total gap (in span bits) are pinned
        so the gap can only shrink without this test noticing — any
        widening is a regression.
        """
        cop = concrete_ops((1 << self.WIDTH) - 1)["umod"]
        exact = 0
        gap_bits = 0
        total = 0
        for p in intervals:
            for q in intervals:
                total += 1
                r = p.umod(q)
                lo, hi = brute_hull(p, q, cop)
                if (r.umin, r.umax) == (lo, hi):
                    exact += 1
                gap_bits += (
                    (r.umax - r.umin).bit_length()
                    - (hi - lo).bit_length()
                )
        assert total == 18496
        assert exact >= 16769
        assert gap_bits <= 1789

    def test_neg_soundness_and_shifts(self, intervals):
        limit = (1 << self.WIDTH) - 1
        for p in intervals:
            values = [(-x) & limit for x in range(p.umin, p.umax + 1)]
            r = p.neg()
            assert r.umin <= min(values) and max(values) <= r.umax
            for shift in range(self.WIDTH):
                rs = p.rshift(shift)
                shifted = [x >> shift for x in range(p.umin, p.umax + 1)]
                # Logical right shift is monotone, so exact.
                assert (rs.umin, rs.umax) == (min(shifted), max(shifted))
                ls = p.lshift(shift)
                for x in range(p.umin, p.umax + 1):
                    assert ls.contains((x << shift) & limit)


class TestSampled8Bit:
    """Randomized 8-bit pairs with full concrete enumeration.

    Interval cardinality is capped so each pair brute-forces at most
    64×64 concrete operations; the seed is fixed for reproducibility.
    """

    WIDTH = 8
    SAMPLES = 1500
    MAX_CARD = 64

    def _random_interval(self, rng):
        span = rng.randrange(self.MAX_CARD)
        lo = rng.randrange((1 << self.WIDTH) - span)
        return Interval(lo, lo + span, self.WIDTH)

    def test_soundness_all_ops(self):
        rng = random.Random(1234)
        ops = concrete_ops((1 << self.WIDTH) - 1)
        for _ in range(self.SAMPLES):
            p = self._random_interval(rng)
            q = self._random_interval(rng)
            for name, cop in ops.items():
                r = getattr(p, name)(q)
                lo, hi = brute_hull(p, q, cop)
                assert r.umin <= lo and hi <= r.umax, (name, p, q, r)

    def test_bitwise_exactness(self):
        rng = random.Random(99)
        ops = concrete_ops((1 << self.WIDTH) - 1)
        for _ in range(self.SAMPLES):
            p = self._random_interval(rng)
            q = self._random_interval(rng)
            for name in ("and_", "or_", "xor", "udiv"):
                r = getattr(p, name)(q)
                assert (r.umin, r.umax) == brute_hull(p, q, ops[name])


def bounded_interval_64(draw):
    lo = draw(st.integers(min_value=0, max_value=U64 - 16))
    hi = draw(st.integers(min_value=lo, max_value=min(U64, lo + 16)))
    return Interval(lo, hi, 64)


@st.composite
def intervals64(draw):
    return bounded_interval_64(draw)


class TestHypothesis64Bit:
    @given(intervals64(), intervals64())
    @settings(max_examples=200)
    def test_soundness_64(self, p, q):
        ops = concrete_ops(U64)
        for name, cop in ops.items():
            r = getattr(p, name)(q)
            for x in range(p.umin, p.umax + 1):
                for y in range(q.umin, q.umax + 1):
                    assert r.contains(cop(x, y)), (name, p, q, x, y)


class TestDivModByZero:
    """BPF zero-divisor semantics (x/0 == 0, x%0 == x) at both widths."""

    @pytest.mark.parametrize("width", [32, 64])
    def test_const_zero_divisor(self, width):
        dividend = Interval(10, 20, width)
        zero = Interval.const(0, width)
        assert dividend.udiv(zero) == Interval.const(0, width)
        assert dividend.umod(zero) == dividend

    @pytest.mark.parametrize("width", [32, 64])
    def test_maybe_zero_divisor(self, width):
        dividend = Interval(10, 20, width)
        divisor = Interval(0, 3, width)
        d = dividend.udiv(divisor)
        m = dividend.umod(divisor)
        for x in range(10, 21):
            for y in range(4):
                assert d.contains(0 if y == 0 else x // y)
                assert m.contains(x if y == 0 else x % y)
        # The zero divisor forces 0 into the quotient and keeps the
        # dividend reachable in the remainder.
        assert d.umin == 0
        assert m.umax == 20

    @pytest.mark.parametrize("width", [32, 64])
    def test_nonzero_divisor_caps_mod(self, width):
        dividend = Interval.top(width)
        divisor = Interval(1, 16, width)
        assert dividend.umod(divisor).umax == 15
        assert dividend.udiv(divisor).umax == (1 << width) - 1

    def test_product_div_mod_by_maybe_zero(self):
        # Through the reduced product: divisor ⊤ may be zero, so the
        # quotient keeps 0 and the remainder keeps the dividend.
        dividend = ScalarValue.from_range(100, 200)
        top = ScalarValue.top()
        d = dividend.div(top)
        m = dividend.mod(top)
        assert d.contains(0) and d.contains(200)
        assert d.umax() == 200
        assert m.umax() == 200
        for y in (0, 1, 3, 7, 250):
            assert d.contains(0 if y == 0 else 150 // y)
            assert m.contains(150 if y == 0 else 150 % y)

    def test_product_mod_keeps_dividend_range(self):
        # The regression the campaign charged to mod64: the old
        # tnum-derived fallback forgot the dividend's bounds entirely.
        dividend = ScalarValue.from_range(10, 20)
        m = dividend.mod(ScalarValue.top())
        assert m.umax() == 20


class TestProductBitwisePrecision:
    """The reduced product meets native interval and tnum results."""

    def test_and_keeps_range_knowledge(self):
        # [10, 20] & ⊤ stays below 21; the tnum alone only knows the
        # five low bits may be set (bound 31).
        x = ScalarValue.from_range(10, 20)
        r = x.and_(ScalarValue.top())
        assert r.umax() == 20

    def test_or_lower_bound_from_operands(self):
        x = ScalarValue.from_range(10, 20)
        r = x.or_(ScalarValue.top())
        assert r.umin() == 10

    def test_xor_unaligned_range(self):
        # [3, 5] ^ 8 = [11, 13]: the range tnum 0µµµ ^ 8 only gives
        # [8, 15], so the native interval transfer is strictly tighter.
        x = ScalarValue.from_range(3, 5)
        r = x.xor(ScalarValue.const(8))
        assert (r.umin(), r.umax()) == (11, 13)
        for a in (3, 4, 5):
            assert r.contains(a ^ 8)

    def test_sub_guaranteed_wrap(self):
        small = ScalarValue.from_range(0, 3)
        big = ScalarValue.from_range(8, 9)
        r = small.sub(big)
        assert r.umin() == U64 - 8  # 0 - 9 + 2^64
        assert r.umax() == U64 - 4  # 3 - 8 + 2^64
        for x in range(4):
            for y in (8, 9):
                assert r.contains(x - y)

    def test_arshift_routes_through_signed(self):
        # Non-negative range: arsh behaves like rsh and keeps bounds.
        x = ScalarValue.from_range(64, 127)
        r = x.arshift(3)
        assert (r.umin(), r.umax()) == (8, 15)
        # Negative range (high half): sign bits replicate.
        neg = ScalarValue.from_range(U64 - 7, U64)  # [-8, -1]
        rn = neg.arshift(1)
        for v in range(-8, 0):
            assert rn.contains((v >> 1) & U64)
        assert (rn.umin(), rn.umax()) == (U64 - 3, U64)
