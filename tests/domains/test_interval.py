"""Tests for the unsigned interval domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains.interval import Interval, signed_bounds, to_signed, to_unsigned
from repro.core.tnum import Tnum

W = 8
vals = st.integers(0, 255)


def intervals():
    return st.builds(
        lambda a, b: Interval(min(a, b), max(a, b), W), vals, vals
    )


class TestConstruction:
    def test_const(self):
        iv = Interval.const(5, W)
        assert iv.is_const() and iv.contains(5) and not iv.contains(6)

    def test_top_bottom(self):
        assert Interval.top(W).cardinality() == 256
        assert Interval.bottom(W).is_bottom()
        assert Interval.bottom(W).cardinality() == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 256, W)

    def test_from_tnum(self):
        t = Tnum.from_trits("10µ0", width=W)
        iv = Interval.from_tnum(t)
        assert (iv.umin, iv.umax) == (8, 10)


class TestSignedView:
    def test_non_negative_range(self):
        assert signed_bounds(3, 100, 8) == (3, 100)

    def test_all_negative_range(self):
        assert signed_bounds(0x80, 0xFF, 8) == (-128, -1)

    def test_straddling_range_widens(self):
        assert signed_bounds(100, 200, 8) == (-128, 127)

    def test_to_signed_roundtrip(self):
        for x in (0, 1, 127, 128, 255):
            assert to_unsigned(to_signed(x, 8), 8) == x

    def test_interval_smin_smax(self):
        assert Interval(0xF0, 0xFF, 8).smin() == -16
        assert Interval(0, 5, 8).smax() == 5


class TestLattice:
    @given(intervals(), intervals())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(intervals(), intervals())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.leq(a) and m.leq(b)

    def test_meet_disjoint_is_bottom(self):
        assert Interval(0, 3, W).meet(Interval(10, 20, W)).is_bottom()

    @given(intervals())
    def test_bottom_below_all(self, a):
        assert Interval.bottom(W).leq(a)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            Interval(0, 1, 8).join(Interval(0, 1, 16))


class TestTransformers:
    @given(intervals(), intervals())
    def test_add_sound(self, a, b):
        r = a.add(b)
        for x in (a.umin, a.umax):
            for y in (b.umin, b.umax):
                assert r.contains((x + y) & 255)

    def test_add_guaranteed_overflow_wraps_exactly(self):
        # [300, 355] mod 256 stays contiguous: every pair overflows.
        assert Interval(200, 255, W).add(Interval(100, 100, W)) == Interval(
            44, 99, W
        )

    def test_add_possible_overflow_widens_to_top(self):
        assert Interval(0, 255, W).add(Interval(100, 100, W)).is_top()

    @given(intervals(), intervals())
    def test_sub_sound(self, a, b):
        r = a.sub(b)
        for x in (a.umin, a.umax):
            for y in (b.umin, b.umax):
                assert r.contains((x - y) & 255)

    def test_sub_possible_underflow_widens_to_top(self):
        assert Interval(0, 5, W).sub(Interval(3, 3, W)).is_top()

    def test_sub_guaranteed_underflow_wraps_exactly(self):
        # Every pair borrows: [0-5, 3-4] + 256 = [251, 255].
        assert Interval(0, 3, W).sub(Interval(4, 5, W)) == Interval(
            251, 255, W
        )

    @given(intervals(), intervals())
    def test_mul_sound(self, a, b):
        r = a.mul(b)
        for x in (a.umin, a.umax):
            for y in (b.umin, b.umax):
                assert r.contains((x * y) & 255)

    def test_neg_const_exact(self):
        assert Interval.const(1, W).neg() == Interval.const(255, W)

    def test_bottom_propagates(self):
        b = Interval.bottom(W)
        assert b.add(Interval.const(1, W)).is_bottom()
        assert Interval.const(1, W).sub(b).is_bottom()


class TestRefinement:
    def test_ult(self):
        iv = Interval.top(W).refine_ult(10)
        assert (iv.umin, iv.umax) == (0, 9)

    def test_ult_zero_is_bottom(self):
        assert Interval.top(W).refine_ult(0).is_bottom()

    def test_ugt_max_is_bottom(self):
        assert Interval.top(W).refine_ugt(255).is_bottom()

    def test_uge_ule(self):
        iv = Interval.top(W).refine_uge(5).refine_ule(10)
        assert (iv.umin, iv.umax) == (5, 10)

    def test_eq(self):
        assert Interval(0, 9, W).refine_eq(4) == Interval.const(4, W)

    def test_eq_outside_is_bottom(self):
        assert Interval(0, 3, W).refine_eq(9).is_bottom()

    def test_ne_shrinks_edges_only(self):
        assert Interval(3, 9, W).refine_ne(3) == Interval(4, 9, W)
        assert Interval(3, 9, W).refine_ne(9) == Interval(3, 8, W)
        assert Interval(3, 9, W).refine_ne(5) == Interval(3, 9, W)

    def test_ne_const_is_bottom(self):
        assert Interval.const(4, W).refine_ne(4).is_bottom()

    @given(intervals(), vals)
    def test_refinements_sound(self, iv, bound):
        # Every member satisfying the predicate must survive refinement.
        for x in range(iv.umin, min(iv.umax + 1, iv.umin + 16)):
            if x < bound:
                assert iv.refine_ult(bound).contains(x)
            if x >= bound:
                assert iv.refine_uge(bound).contains(x)
            if x != bound:
                assert iv.refine_ne(bound).contains(x)


class TestTnumConversion:
    def test_to_tnum_sound(self):
        iv = Interval(3, 12, W)
        t = iv.to_tnum()
        for c in range(3, 13):
            assert t.contains(c)

    def test_const_roundtrip(self):
        assert Interval.const(9, W).to_tnum() == Tnum.const(9, W)
