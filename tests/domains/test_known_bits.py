"""Tests for the LLVM KnownBits view of the tnum lattice."""

import pytest
from hypothesis import given

from repro.core.arithmetic import tnum_add
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum
from repro.domains.known_bits import KnownBits
from tests.conftest import tnums

W = 8


class TestIsomorphism:
    @given(tnums(W))
    def test_roundtrip_from_tnum(self, t):
        assert KnownBits.from_tnum(t).to_tnum() == t

    def test_encoding_of_trits(self):
        t = Tnum.from_trits("10µ", width=3)
        kb = KnownBits.from_tnum(t)
        assert kb.ones == 0b100
        assert kb.zeros == 0b010
        assert kb.unknown_bits() == 0b001

    def test_bottom_maps_to_conflict(self):
        kb = KnownBits.from_tnum(Tnum.bottom(4))
        assert kb.has_conflict()
        assert kb.to_tnum().is_bottom()

    def test_const_helpers(self):
        kb = KnownBits.const(0b1010, 4)
        assert kb.is_constant() and kb.get_constant() == 0b1010
        assert not KnownBits.unknown(4).is_constant()

    def test_get_constant_raises_when_unknown(self):
        with pytest.raises(ValueError):
            KnownBits.unknown(4).get_constant()


class TestQueries:
    def test_count_min_leading_zeros(self):
        kb = KnownBits.from_tnum(Tnum.from_trits("0000µµ10", width=8))
        assert kb.count_min_leading_zeros() == 4
        assert kb.count_max_active_bits() == 4

    def test_leading_zeros_of_constant(self):
        assert KnownBits.const(1, 8).count_min_leading_zeros() == 7
        assert KnownBits.const(0, 8).count_min_leading_zeros() == 8


class TestTransformers:
    @given(tnums(W), tnums(W))
    def test_add_matches_tnum_add(self, p, q):
        got = KnownBits.from_tnum(p).add(KnownBits.from_tnum(q))
        assert got.to_tnum() == tnum_add(p, q)

    @given(tnums(W), tnums(W))
    def test_mul_matches_our_mul(self, p, q):
        got = KnownBits.from_tnum(p).mul(KnownBits.from_tnum(q))
        assert got.to_tnum() == our_mul(p, q)

    def test_and_or_xor_constants(self):
        a = KnownBits.const(0b1100, 4)
        b = KnownBits.const(0b1010, 4)
        assert a.and_(b).get_constant() == 0b1000
        assert a.or_(b).get_constant() == 0b1110
        assert a.xor(b).get_constant() == 0b0110

    def test_sub_sound(self):
        a = KnownBits.from_tnum(Tnum.from_trits("1µ00", width=8))
        b = KnownBits.from_tnum(Tnum.from_trits("001µ", width=8))
        result = a.sub(b).to_tnum()
        for x in Tnum.from_trits("1µ00", width=8).concretize():
            for y in Tnum.from_trits("001µ", width=8).concretize():
                assert result.contains((x - y) & 0xFF)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            KnownBits.const(0, 4).add(KnownBits.const(0, 8))

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            KnownBits(256, 0, 8)
