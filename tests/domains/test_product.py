"""Tests for the tnum × interval reduced product (ScalarValue)."""

import random

import pytest

from repro.core.tnum import Tnum
from repro.domains.interval import Interval
from repro.domains.product import ScalarValue

W = 64


def members_of(sv: ScalarValue, count: int = 8):
    """Sample concrete members of the product (both components agree)."""
    rng = random.Random(0)
    out = []
    tries = 0
    while len(out) < count and tries < 200:
        tries += 1
        fill = rng.getrandbits(64) & sv.tnum.mask
        c = sv.tnum.value | fill
        if sv.interval.contains(c):
            out.append(c)
    return out


class TestReduction:
    def test_range_tightens_tnum(self):
        # x unknown but in [0, 7]: reduction must learn the high 61 zeros.
        sv = ScalarValue.make(Tnum.unknown(64), Interval(0, 7, 64))
        assert sv.tnum.mask == 0b111

    def test_tnum_tightens_range(self):
        t = Tnum.from_trits("1µ0", width=3).cast(64)
        sv = ScalarValue.make(t, Interval.top(64))
        assert (sv.umin(), sv.umax()) == (4, 6)

    def test_contradiction_is_bottom(self):
        sv = ScalarValue.make(Tnum.const(8, 64), Interval(0, 3, 64))
        assert sv.is_bottom()

    def test_const_from_either_side(self):
        sv = ScalarValue.make(Tnum.unknown(64), Interval(9, 9, 64))
        assert sv.is_const() and sv.const_value() == 9

    def test_const_value_raises_on_non_const(self):
        with pytest.raises(ValueError):
            ScalarValue.top().const_value()

    def test_from_range(self):
        sv = ScalarValue.from_range(16, 31)
        assert sv.tnum.trit(4) == "1"  # shared prefix bit is known


class TestLattice:
    def test_join_contains_both(self):
        a = ScalarValue.const(3)
        b = ScalarValue.const(12)
        j = a.join(b)
        assert j.contains(3) and j.contains(12)

    def test_meet_of_overlapping(self):
        a = ScalarValue.from_range(0, 10)
        b = ScalarValue.from_range(5, 20)
        m = a.meet(b)
        assert (m.umin(), m.umax()) == (5, 10)

    def test_leq(self):
        small = ScalarValue.const(4)
        big = ScalarValue.from_range(0, 7)
        assert small.leq(big)
        assert not big.leq(small)


class TestTransformers:
    @pytest.mark.parametrize(
        "method,cop",
        [
            ("add", lambda x, y: x + y),
            ("sub", lambda x, y: x - y),
            ("mul", lambda x, y: x * y),
            ("and_", lambda x, y: x & y),
            ("or_", lambda x, y: x | y),
            ("xor", lambda x, y: x ^ y),
        ],
    )
    def test_binary_sound(self, method, cop):
        a = ScalarValue.make(
            Tnum.from_trits("µ01", width=3).cast(64), Interval.top(64)
        )
        b = ScalarValue.from_range(2, 5)
        r = getattr(a, method)(b)
        for x in members_of(a):
            for y in members_of(b):
                z = cop(x, y) & ((1 << 64) - 1)
                assert r.contains(z), (method, x, y, z)

    def test_shifts_sound(self):
        a = ScalarValue.from_range(8, 15)
        assert a.lshift(2).contains(32)
        assert a.rshift(2).contains(2)
        assert (a.rshift(2).umin(), a.rshift(2).umax()) == (2, 3)

    def test_and_bounds_via_tnum(self):
        r = ScalarValue.top().and_(ScalarValue.const(0xFF))
        assert r.umax() == 0xFF

    def test_div_mod_conservative_but_sound(self):
        a = ScalarValue.from_range(10, 20)
        b = ScalarValue.const(3)
        assert a.div(b).contains(10 // 3)
        assert a.mod(b).contains(20 % 3)

    def test_neg_const(self):
        assert ScalarValue.const(1).neg().const_value() == (1 << 64) - 1

    def test_bottom_propagates(self):
        assert ScalarValue.bottom().add(ScalarValue.const(1)).is_bottom()


class TestRefinement:
    def test_ult_then_mask_composes(self):
        x = ScalarValue.top().refine_ult(100)
        assert x.umax() == 99
        y = x.and_(ScalarValue.const(0xF))
        assert y.umax() == 0xF

    def test_eq_refines_tnum_too(self):
        x = ScalarValue.top().refine_eq(42)
        assert x.is_const() and x.tnum == Tnum.const(42, 64)

    def test_ne_on_const_is_bottom(self):
        assert ScalarValue.const(5).refine_ne(5).is_bottom()

    def test_uge_ule_window(self):
        x = ScalarValue.top().refine_uge(10).refine_ule(20)
        assert (x.umin(), x.umax()) == (10, 20)

    def test_refinement_is_sound(self):
        x = ScalarValue.from_range(0, 255)
        refined = x.refine_ult(128)
        for c in (0, 64, 127):
            assert refined.contains(c)
        assert not refined.contains(128)
