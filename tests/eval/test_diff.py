"""Tests for the campaign precision diff and its CI gate."""

import pytest

from repro.eval.diff import diff_reports, render_diff, render_diff_markdown
from repro.eval.precision import PrecisionReport


def report(ops, violations=0, rejected_clean=0, programs=100):
    r = PrecisionReport(
        programs=programs,
        accepted=programs - rejected_clean,
        rejected=rejected_clean,
        rejected_clean=rejected_clean,
        violations=violations,
    )
    for op, tightness, rej_clean in ops:
        stats = r.operator(op)
        stats.occurrences = 10
        stats.tightness_sum = tightness
        stats.tightness_count = 10
        stats.rejections = rej_clean
        stats.rejected_clean = rej_clean
    return r


class TestDiffReports:
    def test_operator_union_and_order(self):
        base = report([("mod64", 900, 0), ("sub64", 500, 0)])
        new = report([("sub64", 450, 0), ("xor64", 30, 0)])
        diff = diff_reports(base, new)
        assert [d.op for d in diff.operators] == ["mod64", "sub64", "xor64"]
        mod = diff.operators[0]
        assert (mod.base_mass, mod.new_mass, mod.mass_delta) == (900, 0, -900)

    def test_totals(self):
        base = report([("a", 100, 0), ("b", 50, 0)])
        new = report([("a", 80, 0), ("b", 40, 0)])
        diff = diff_reports(base, new)
        assert (diff.base_mass, diff.new_mass, diff.mass_delta) == (
            150, 120, -30,
        )
        assert diff.mass_regression == pytest.approx(-0.2)

    def test_rejected_clean_priced_into_mass(self):
        base = report([("a", 0, 0)])
        new = report([("a", 0, 2)], rejected_clean=2)
        diff = diff_reports(base, new)
        # REJECT_COST_BITS = 8 per rejected-but-clean event.
        assert diff.new_mass == 16
        assert diff.operators[0].rejected_clean_delta == 2


class TestGate:
    def test_passes_on_improvement(self):
        diff = diff_reports(report([("a", 100, 0)]), report([("a", 10, 0)]))
        assert diff.gate_failures() == []

    def test_passes_within_threshold(self):
        diff = diff_reports(report([("a", 100, 0)]), report([("a", 104, 0)]))
        assert diff.gate_failures(max_regression=0.05) == []

    def test_fails_beyond_threshold(self):
        diff = diff_reports(report([("a", 100, 0)]), report([("a", 106, 0)]))
        failures = diff.gate_failures(max_regression=0.05)
        assert len(failures) == 1 and "tightness mass" in failures[0]

    def test_fails_on_new_violations(self):
        diff = diff_reports(
            report([("a", 100, 0)]), report([("a", 10, 0)], violations=1)
        )
        failures = diff.gate_failures()
        assert len(failures) == 1 and "soundness violation" in failures[0]

    def test_zero_baseline_mass(self):
        clean = diff_reports(report([]), report([]))
        assert clean.mass_regression == 0.0
        appeared = diff_reports(report([]), report([("a", 1, 0)]))
        assert appeared.mass_regression == float("inf")
        assert appeared.gate_failures()

    def test_violation_and_regression_both_reported(self):
        diff = diff_reports(
            report([("a", 100, 0)]), report([("a", 200, 0)], violations=2)
        )
        assert len(diff.gate_failures()) == 2


class TestRenderers:
    def test_text_mentions_totals_and_movers(self):
        diff = diff_reports(
            report([("mod64", 900, 0)]), report([("mod64", 255, 0)])
        )
        text = render_diff(diff)
        assert "900 -> 255" in text
        assert "mod64" in text and "-645" in text

    def test_markdown_table(self):
        diff = diff_reports(
            report([("mod64", 900, 0)], violations=0),
            report([("mod64", 255, 0)], violations=0),
        )
        md = render_diff_markdown(diff)
        assert "| `mod64` |" in md
        assert "Per-operator deltas" in md

    def test_top_limits_rows(self):
        base = report([(f"op{i}", 10 + i, 0) for i in range(20)])
        new = report([(f"op{i}", i, 0) for i in range(20)])
        text = render_diff(diff_reports(base, new), top=5)
        assert len(text.splitlines()) == 4 + 5  # header block + 5 rows


class TestRoundTrip:
    def test_diff_of_serialized_reports(self):
        base = report([("mod64", 900, 1)], rejected_clean=1)
        new = report([("mod64", 255, 0)])
        base2 = PrecisionReport.from_json(base.to_json())
        new2 = PrecisionReport.from_json(new.to_json())
        d1 = diff_reports(base, new)
        d2 = diff_reports(base2, new2)
        assert render_diff(d1) == render_diff(d2)
