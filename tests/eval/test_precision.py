"""Tests for the precision-evaluation harness (Fig. 4 / Table I)."""


import pytest

from repro.core.lattice import enumerate_tnums
from repro.eval.precision import (
    MUL_ALGORITHMS,
    compare_precision,
    precision_cdf,
    precision_trend,
)


class TestCompareKernVsOur:
    @pytest.fixture(scope="class")
    def width5(self):
        return compare_precision("our_mul", "kern_mul", 5)

    def test_totals_consistent(self, width5):
        c = width5
        assert c.total_pairs == 3 ** 10  # all ordered pairs at width 5
        assert c.equal + c.different == c.total_pairs
        assert c.comparable <= c.different
        assert c.a_more_precise + c.b_more_precise == c.comparable
        assert len(c.log2_ratios) == c.comparable

    def test_matches_paper_table1_row5_ratios(self, width5):
        # Paper (n=5): 8 differing unordered pairs, all comparable, with
        # our_mul more precise in 75% and kern_mul in 25%.  We count
        # ordered pairs, so the differing count doubles to 16 while every
        # percentage of the differing set is unchanged.
        c = width5
        assert c.different == 16
        assert c.comparable == c.different  # 100% comparable
        assert c.a_more_precise / c.comparable == pytest.approx(0.75)
        assert c.b_more_precise / c.comparable == pytest.approx(0.25)
        assert c.pct(c.equal) == pytest.approx(99.973, abs=0.01)

    def test_ratio_signs_match_winners(self, width5):
        # log2 ratio > 0 <=> algorithm A (our_mul) strictly more precise.
        c = width5
        positive = sum(1 for r in c.log2_ratios if r > 0)
        negative = sum(1 for r in c.log2_ratios if r < 0)
        assert positive == c.a_more_precise
        assert negative == c.b_more_precise

    def test_ratios_are_integers(self, width5):
        # Cardinalities are powers of two, so log2 ratios are integral.
        assert all(r == int(r) for r in width5.log2_ratios)


class TestCompareBitwiseVsOur:
    def test_our_mul_never_loses_at_width4(self):
        c = compare_precision("our_mul", "bitwise_mul", 4)
        assert c.b_more_precise == 0
        assert c.a_more_precise > 0  # our_mul strictly wins somewhere

    def test_sampled_pairs_mode(self):
        ts = enumerate_tnums(3)
        pairs = [(p, q) for p in ts[:5] for q in ts[:5]]
        c = compare_precision("our_mul", "kern_mul", 3, pairs=pairs)
        assert c.total_pairs == 25


class TestCdf:
    def test_cdf_of_comparison(self):
        c = compare_precision("our_mul", "bitwise_mul", 4)
        points = precision_cdf(c)
        assert points, "expected differing outputs at width 4"
        assert points[-1][1] == 1.0


class TestTrend:
    def test_trend_rows(self):
        rows = precision_trend([4, 5])
        assert [r.width for r in rows] == [4, 5]
        r4, r5 = rows
        # Width 4: identical algorithms.
        assert r4.different == 0
        assert r4.equal_pct == 100.0
        # Width 5: the paper's percentages.
        assert r5.our_pct == pytest.approx(75.0)
        assert r5.kern_pct == pytest.approx(25.0)

    def test_trend_percentage_of_equal_decreases_with_width(self):
        # Paper Table I observation (1).
        rows = precision_trend([4, 5, 6])
        pcts = [r.equal_pct for r in rows]
        assert pcts[0] >= pcts[1] >= pcts[2]

    def test_our_share_grows_with_width(self):
        # Paper Table I observation (4): our_mul wins a growing share.
        rows = precision_trend([5, 6])
        assert rows[1].our_pct >= rows[0].our_pct


class TestRegistry:
    def test_algorithms_present(self):
        assert set(MUL_ALGORITHMS) == {"our_mul", "kern_mul", "bitwise_mul"}
