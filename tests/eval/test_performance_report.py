"""Tests for the performance harness (Fig. 5) and the report renderers."""

import pytest

from repro.eval.performance import (
    PERF_ALGORITHMS,
    ThroughputReport,
    generate_pairs,
    measure_fuzz_throughput,
    speedup_summary,
    time_algorithms,
)
from repro.eval.precision import compare_precision, precision_cdf
from repro.eval.report import (
    render_cdf_ascii,
    render_comparison,
    render_fig4,
    render_fig5,
    render_table1,
)
from repro.eval.precision import precision_trend


class TestWorkloadGeneration:
    def test_pair_count_and_width(self):
        pairs = generate_pairs(10, width=64, seed=1)
        assert len(pairs) == 10
        assert all(p.width == 64 and q.width == 64 for p, q in pairs)

    def test_deterministic(self):
        assert generate_pairs(5, seed=3) == generate_pairs(5, seed=3)

    def test_different_seeds_differ(self):
        assert generate_pairs(5, seed=1) != generate_pairs(5, seed=2)


class TestTiming:
    @pytest.fixture(scope="class")
    def results(self):
        return time_algorithms(generate_pairs(40, seed=0), trials=3)

    def test_all_algorithms_timed(self, results):
        assert set(results) == set(PERF_ALGORITHMS)
        for result in results.values():
            assert len(result.per_pair_ns) == 40
            assert all(t > 0 for t in result.per_pair_ns)

    def test_summary_and_cdf(self, results):
        for result in results.values():
            s = result.summary()
            assert s["min"] <= s["p50"] <= s["max"]
            cdf = result.cdf()
            assert cdf[-1][1] == 1.0

    def test_speedup_summary_keys(self, results):
        s = speedup_summary(results)
        assert set(s) == {"kern_mul", "bitwise_mul"}
        for v in s.values():
            assert -5.0 < v < 1.0  # a fraction, not a percentage

    def test_include_naive(self):
        results = time_algorithms(
            generate_pairs(5, seed=0), trials=1, include_naive=True
        )
        assert "bitwise_mul_naive" in results


class TestThroughputReport:
    def _report(self, **metrics):
        return ThroughputReport(budget=10, seed=42, repeats=1,
                                metrics=metrics)

    def test_json_round_trip(self):
        report = self._report(driver_mixed=123.4, campaign_telemetry=99.9)
        loaded = ThroughputReport.from_json(report.to_json())
        assert loaded == report

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ThroughputReport.from_json('{"schema_version": 99}')

    def test_compare_flags_only_regressions(self):
        baseline = self._report(driver_mixed=100.0, driver_alu=100.0)
        current = self._report(driver_mixed=80.0, driver_alu=95.0)
        warnings = current.compare(baseline, max_regression=0.15)
        assert len(warnings) == 1
        assert warnings[0].startswith("driver_mixed")

    def test_compare_skips_metrics_missing_from_baseline(self):
        baseline = self._report(driver_mixed=100.0)
        current = self._report(driver_mixed=100.0, campaign_feedback=1.0)
        assert current.compare(baseline) == []

    def test_measure_covers_all_stages(self):
        report = measure_fuzz_throughput(
            budget=3, repeats=1, profiles=("mixed",), campaign_budget=3
        )
        assert set(report.metrics) == {
            "driver_mixed", "verify_mixed", "verify_repeat",
            "campaign_telemetry", "campaign_feedback",
        }
        assert all(v > 0 for v in report.metrics.values())

    def test_summary_lists_every_metric(self):
        report = self._report(driver_mixed=1.0, campaign_feedback=2.0)
        text = report.summary()
        assert "driver_mixed" in text and "campaign_feedback" in text


class TestRenderers:
    def test_table1(self):
        text = render_table1(precision_trend([4]))
        assert "bitwidth" in text
        assert "our more %" in text
        assert "4" in text

    def test_cdf_ascii(self):
        points = [(0.0, 0.2), (1.0, 0.5), (2.0, 1.0)]
        text = render_cdf_ascii(points, "demo", x_label="units")
        assert "demo" in text and "units" in text and "*" in text

    def test_cdf_ascii_empty(self):
        assert "(no data)" in render_cdf_ascii([], "empty")

    def test_fig4(self):
        c = compare_precision("our_mul", "bitwise_mul", 4)
        text = render_fig4({"bitwise_mul": precision_cdf(c)}, 4)
        assert "Figure 4" in text and "bitwise_mul" in text

    def test_fig5(self):
        results = time_algorithms(generate_pairs(10, seed=0), trials=1)
        text = render_fig5(results)
        assert "Figure 5" in text
        assert "our_mul" in text and "mean ns" in text

    def test_comparison_renderer(self):
        c = compare_precision("our_mul", "kern_mul", 4)
        text = render_comparison(c)
        assert "our_mul vs kern_mul" in text
        assert "equal outputs" in text
