"""Tests for the domain-precision ablation harness."""

import random


from repro.eval.domain_ablation import (
    Expression,
    ablation_study,
    evaluate_domains,
    random_expression,
)


class TestExpression:
    def test_concrete_evaluation(self):
        # (x & 0xF0) >> 4
        expr = Expression(
            "rsh",
            left=Expression(
                "and",
                left=Expression("leaf_input", 0),
                right=Expression("leaf_const", 0xF0),
            ),
            right=Expression("leaf_const", 4),
        )
        assert expr.concrete([0xAB, 0]) == 0xA
        assert expr.size() == 5

    def test_random_expression_deterministic(self):
        a = random_expression(random.Random(5))
        b = random_expression(random.Random(5))
        assert a.concrete([7, 9]) == b.concrete([7, 9])

    def test_shift_amounts_are_constants(self):
        rng = random.Random(0)
        for _ in range(50):
            expr = random_expression(rng, depth=3)

            def walk(e):
                if e.kind in ("lsh", "rsh"):
                    assert e.right.kind == "leaf_const"
                if e.left:
                    walk(e.left)
                if e.right:
                    walk(e.right)

            walk(expr)


class TestEvaluateDomains:
    def test_all_domains_sound_on_sample(self):
        rng = random.Random(1)
        for _ in range(40):
            expr = random_expression(rng, depth=3)
            _, _, _, sound = evaluate_domains(expr, rng)
            assert sound

    def test_bitwise_expression_favours_tnum(self):
        # x & 0x0F: tnum nails 16 values; pure interval knows nothing
        # beyond [0, 255] -> top after the and.
        expr = Expression(
            "and",
            left=Expression("leaf_input", 0),
            right=Expression("leaf_const", 0x0F),
        )
        rng = random.Random(0)
        t_card, iv_card, sv_card, sound = evaluate_domains(expr, rng)
        assert sound
        assert t_card == 16
        assert iv_card > t_card
        assert sv_card <= t_card

    def test_additive_expression_favours_interval(self):
        # x + y: interval gets [0, 510]; tnum smears carries.
        expr = Expression(
            "add",
            left=Expression("leaf_input", 0),
            right=Expression("leaf_input", 1),
        )
        rng = random.Random(0)
        t_card, iv_card, sv_card, sound = evaluate_domains(expr, rng)
        assert sound
        assert iv_card == 511
        assert t_card > iv_card
        assert sv_card <= iv_card


class TestStudy:
    def test_product_dominates(self):
        result = ablation_study(count=150, seed=3)
        assert result.unsound == 0
        # The reduced product must never be worse than min(components):
        # encoded in the harness itself; here check it strictly wins on a
        # meaningful share against each individual domain.
        assert result.product_vs_interval_wins > 0
        assert result.mean_log2["product"] <= result.mean_log2["tnum"]
        assert result.mean_log2["product"] <= result.mean_log2["interval"]

    def test_both_components_contribute(self):
        result = ablation_study(count=200, seed=3)
        # Some expressions favour tnum, some favour intervals — the
        # justification for running a product at all.
        assert result.tnum_vs_interval_wins > 0
        assert result.interval_vs_tnum_wins > 0
