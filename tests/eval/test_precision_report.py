"""PrecisionReport: merging, ranking, serialization, rendering."""

import pytest

from repro.domains.product import ScalarValue
from repro.eval import (
    REJECT_COST_BITS,
    OperatorStats,
    PrecisionReport,
    gamma_bits,
    render_precision_markdown,
    render_precision_report,
)


def make_stats(op, tight=0, clean=0, occurrences=1, hist=None):
    return OperatorStats(
        op=op,
        occurrences=occurrences,
        gamma_hist=dict(hist or {0: occurrences}),
        tightness_sum=tight,
        tightness_count=1 if tight else 0,
        tightness_max=tight,
        rejections=clean,
        rejected_clean=clean,
    )


class TestGammaBits:
    def test_constant_is_zero_bits(self):
        assert gamma_bits(ScalarValue.const(42)) == 0

    def test_byte_range_is_eight_bits(self):
        assert gamma_bits(ScalarValue.from_range(0, 255)) == 8

    def test_top_is_sixty_four_bits(self):
        assert gamma_bits(ScalarValue.top()) == 64

    def test_bottom_is_zero(self):
        assert gamma_bits(ScalarValue.bottom()) == 0

    def test_tnum_bound_wins_over_interval_span(self):
        # One unknown bit at position 63: span says 64 bits, tnum says 1.
        from repro.core.tnum import Tnum
        from repro.domains.interval import Interval

        value = ScalarValue.make(
            Tnum(0, 1 << 63, 64), Interval(0, 1 << 63, 64)
        )
        assert gamma_bits(value) == 1


class TestOperatorStats:
    def test_imprecision_mass_prices_clean_rejections(self):
        stats = make_stats("div64", tight=10, clean=3)
        assert stats.imprecision_mass == 10 + REJECT_COST_BITS * 3

    def test_merge_sums_and_maxes(self):
        a = make_stats("mul64", tight=5, occurrences=2, hist={3: 2})
        b = make_stats("mul64", tight=9, occurrences=1, hist={3: 1, 7: 0})
        a.merge(b)
        assert a.occurrences == 3
        assert a.gamma_hist == {3: 3, 7: 0}
        assert a.tightness_sum == 14
        assert a.tightness_max == 9

    def test_dict_round_trip(self):
        stats = make_stats("arsh32", tight=4, clean=1, hist={2: 1})
        assert OperatorStats.from_dict(stats.to_dict()) == stats


class TestPrecisionReport:
    def test_ranked_orders_by_mass_then_name(self):
        report = PrecisionReport()
        report.operators["a_light"] = make_stats("a_light", tight=1)
        report.operators["z_heavy"] = make_stats("z_heavy", tight=100)
        report.operators["b_tied"] = make_stats("b_tied", tight=1)
        assert [s.op for s in report.ranked()] == \
            ["z_heavy", "a_light", "b_tied"]

    def test_merge_accumulates(self):
        a = PrecisionReport(programs=2, accepted=1, rejected=1,
                            rejected_clean=1)
        a.operators["mod64"] = make_stats("mod64", tight=3)
        b = PrecisionReport(programs=3, accepted=3, mutants=2)
        b.operators["mod64"] = make_stats("mod64", tight=4)
        b.operators["xor64"] = make_stats("xor64", tight=1)
        a.merge(b)
        assert a.programs == 5
        assert a.mutants == 2
        assert a.operators["mod64"].tightness_sum == 7
        assert "xor64" in a.operators

    def test_json_round_trip_is_byte_stable(self):
        report = PrecisionReport(programs=4, accepted=3, rejected=1)
        report.operators["lsh64"] = make_stats("lsh64", tight=6, hist={5: 1})
        text = report.to_json()
        assert PrecisionReport.from_json(text).to_json() == text

    def test_json_ranking_matches_ranked(self):
        report = PrecisionReport()
        report.operators["a"] = make_stats("a", tight=1)
        report.operators["b"] = make_stats("b", tight=5)
        assert report.to_dict()["ranking"] == ["b", "a"]

    def test_bad_format_version_rejected(self):
        with pytest.raises(ValueError):
            PrecisionReport.from_dict({"format_version": 99})


class TestRendering:
    def make_report(self):
        report = PrecisionReport(programs=10, accepted=8, rejected=2,
                                 rejected_clean=1, mutants=3)
        report.operators["mul64"] = make_stats("mul64", tight=12)
        report.operators["jset64"] = make_stats("jset64", clean=1)
        return report

    def test_text_table_lists_worst_first(self):
        text = render_precision_report(self.make_report())
        assert "operator" in text
        assert text.index("mul64") < text.index("jset64")

    def test_markdown_has_table_and_headline(self):
        text = render_precision_markdown(self.make_report())
        assert text.startswith("# Campaign precision report")
        assert "| `mul64` |" in text
        assert "rejected-but-clean" in text

    def test_top_limits_rows(self):
        text = render_precision_report(self.make_report(), top=1)
        assert "mul64" in text
        assert "jset64" not in text
