"""Tests for the statistics helpers."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.stats import cdf_points, log2_ratio, percentile, summarize


class TestCdf:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_single_value(self):
        assert cdf_points([5.0]) == [(5.0, 1.0)]

    def test_monotone_nondecreasing(self):
        points = cdf_points([3.0, 1.0, 2.0, 2.0, 10.0])
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_downsampling(self):
        points = cdf_points(list(range(10_000)), max_points=100)
        assert len(points) <= 102
        assert points[-1][0] == 9999

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_last_point_is_max(self, values):
        points = cdf_points(values)
        assert points[-1][0] == max(values)

    def test_duplicated_max_terminates_at_one(self):
        # Regression: when the maximum value is duplicated, a downsampled
        # step can land on the max *value* at a cumulative fraction < 1,
        # and the old value-based closing check then skipped the final
        # (max, 1.0) point — the rendered CDF stopped below 1.0.
        points = cdf_points([1.0, 3.0, 3.0, 3.0, 3.0, 3.0], max_points=3)
        assert points[-1] == (3.0, 1.0)

    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_terminates_at_fraction_one(self, values, max_points):
        assert cdf_points(values, max_points)[-1][1] == 1.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_extremes(self):
        data = list(range(1, 101))
        assert percentile(data, 1) == 1
        assert percentile(data, 100) == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] in (2.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestLog2Ratio:
    def test_equal_sets_give_zero(self):
        assert log2_ratio(8, 8) == 0.0

    def test_one_extra_unknown_trit_is_one_unit(self):
        # Doubling the set size = exactly one more µ trit.
        assert log2_ratio(16, 8) == 1.0

    def test_negative_when_denominator_larger(self):
        assert log2_ratio(8, 16) == -1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_ratio(0, 8)
        with pytest.raises(ValueError):
            log2_ratio(8, 0)
