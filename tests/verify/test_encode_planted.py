"""Additional planted-bug detection tests for the SAT pipeline.

A verification pipeline is only trustworthy if it *finds* bugs; each test
here breaks one operator in a specific, historically-plausible way (the
kinds of mask mistakes the BPF verifier CVEs came from) and checks the
solver produces a genuine counterexample.
"""


from repro.core.tnum import Tnum
from repro.verify.sat.bitvector import BitVecBuilder
from repro.verify.sat.cnf import CNFBuilder
from repro.verify.sat.encode import SymTnum
from repro.verify.sat.solver import Solver

W = 6
MASK = (1 << W) - 1


def _soundness_query(abstract_builder, concrete_builder):
    """Build Eqn. 11's negation for a given abstract-op circuit."""
    cnf = CNFBuilder()
    bb = BitVecBuilder(cnf, W)
    p = SymTnum(bb.var(), bb.var())
    q = SymTnum(bb.var(), bb.var())
    x, y = bb.var(), bb.var()

    def wellformed(t):
        return bb.is_zero(bb.and_(t.v, t.m))

    def member(val, t):
        return bb.eq(bb.and_(val, bb.not_(t.m)), t.v)

    cnf.assert_lit(wellformed(p))
    cnf.assert_lit(wellformed(q))
    cnf.assert_lit(member(x, p))
    cnf.assert_lit(member(y, q))
    r = abstract_builder(bb, p, q)
    z = concrete_builder(bb, x, y)
    cnf.assert_lit(-member(z, r))
    result = Solver(cnf.num_vars, cnf.clauses).solve()
    return result, bb, p, q, x, y, r


def _check_genuine_cex(result, bb, p, q, x, y, r, concrete):
    """The model must be a real violation, not solver noise."""
    P = Tnum(bb.value_of(p.v, result), bb.value_of(p.m, result), W)
    Q = Tnum(bb.value_of(q.v, result), bb.value_of(q.m, result), W)
    cx = bb.value_of(x, result)
    cy = bb.value_of(y, result)
    assert P.contains(cx) and Q.contains(cy)
    rv = bb.value_of(r.v, result)
    rm = bb.value_of(r.m, result)
    z = concrete(cx, cy) & MASK
    assert (z & ~rm) & MASK != rv  # genuinely outside γ(R)


class TestPlantedBugs:
    def test_sub_missing_operand_masks(self):
        def buggy_sub(bb, p, q):
            dv = bb.sub(p.v, q.v)
            alpha = bb.add(dv, p.m)
            beta = bb.sub(dv, q.m)
            chi = bb.xor(alpha, beta)
            eta = chi  # BUG: drops | P.m | Q.m
            return SymTnum(bb.and_(dv, bb.not_(eta)), eta)

        result, *rest = _soundness_query(buggy_sub, lambda bb, x, y: bb.sub(x, y))
        assert result.sat
        _check_genuine_cex(result, *rest, concrete=lambda a, b: a - b)

    def test_and_using_or_of_values(self):
        def buggy_and(bb, p, q):
            # BUG: treats unknown bits as certain ones.
            v = bb.and_(bb.or_(p.v, p.m), bb.or_(q.v, q.m))
            return SymTnum(v, bb.const(0))

        result, *rest = _soundness_query(buggy_and, lambda bb, x, y: bb.and_(x, y))
        assert result.sat
        _check_genuine_cex(result, *rest, concrete=lambda a, b: a & b)

    def test_add_swapped_sigma(self):
        def buggy_add(bb, p, q):
            sv = bb.add(p.v, q.v)
            sm = bb.add(p.m, q.m)
            sigma = bb.add(sv, sm)
            chi = bb.xor(sigma, sm)  # BUG: xor with sm, not sv
            eta = bb.or_(bb.or_(chi, p.m), q.m)
            return SymTnum(bb.and_(sv, bb.not_(eta)), eta)

        result, *rest = _soundness_query(buggy_add, lambda bb, x, y: bb.add(x, y))
        assert result.sat
        _check_genuine_cex(result, *rest, concrete=lambda a, b: a + b)

    def test_mul_dropping_mask_accumulator(self):
        def buggy_mul(bb, p, q):
            # BUG: pretend the product of values covers everything.
            return SymTnum(bb.mul(p.v, q.v), bb.const(0))

        result, *rest = _soundness_query(buggy_mul, lambda bb, x, y: bb.mul(x, y))
        assert result.sat
        _check_genuine_cex(result, *rest, concrete=lambda a, b: a * b)

    def test_correct_operators_stay_unsat(self):
        # Control: the real add circuit has no counterexample at this
        # width (sanity that the harness isn't trivially SAT).
        from repro.verify.sat.encode import _sym_tnum_add

        result, *_ = _soundness_query(
            _sym_tnum_add, lambda bb, x, y: bb.add(x, y)
        )
        assert not result.sat
