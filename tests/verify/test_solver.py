"""CDCL SAT solver tests, including differential testing vs brute force."""

import itertools
import random

import pytest

from repro.verify.sat.solver import SatResult, Solver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver(0, []).solve().sat

    def test_single_unit(self):
        r = Solver(1, [[1]]).solve()
        assert r.sat and r.value(1) is True

    def test_contradicting_units(self):
        assert not Solver(1, [[1], [-1]]).solve().sat

    def test_simple_implication_chain(self):
        # 1, 1->2, 2->3 forces all true.
        r = Solver(3, [[1], [-1, 2], [-2, 3]]).solve()
        assert r.sat and r.value(3)

    def test_tautology_ignored(self):
        assert Solver(2, [[1, -1], [2]]).solve().sat

    def test_duplicate_literals_handled(self):
        assert Solver(1, [[1, 1, 1]]).solve().sat

    def test_model_satisfies_formula(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        r = Solver(3, clauses).solve()
        assert r.sat
        for clause in clauses:
            assert any(r.value(abs(l)) == (l > 0) for l in clause)


class TestUnsatCores:
    def test_pigeonhole_3_into_2(self):
        nv = 0
        var = {}
        clauses = []
        for p in range(3):
            row = []
            for h in range(2):
                nv += 1
                var[(p, h)] = nv
                row.append(nv)
            clauses.append(row)
        for h in range(2):
            for p1, p2 in itertools.combinations(range(3), 2):
                clauses.append([-var[(p1, h)], -var[(p2, h)]])
        assert not Solver(nv, clauses).solve().sat

    def test_pigeonhole_5_into_4(self):
        nv = 0
        var = {}
        clauses = []
        for p in range(5):
            row = []
            for h in range(4):
                nv += 1
                var[(p, h)] = nv
                row.append(nv)
            clauses.append(row)
        for h in range(4):
            for p1, p2 in itertools.combinations(range(5), 2):
                clauses.append([-var[(p1, h)], -var[(p2, h)]])
        assert not Solver(nv, clauses).solve().sat

    def test_xor_chain_unsat(self):
        # x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsatisfiable.
        clauses = [
            [1, 2], [-1, -2],
            [2, 3], [-2, -3],
            [1, 3], [-1, -3],
        ]
        assert not Solver(3, clauses).solve().sat


class TestDifferentialRandom3SAT:
    @pytest.mark.parametrize("seed", range(30))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(3, 30)
        clauses = []
        for _ in range(num_clauses):
            k = rng.randint(1, 3)
            clause = [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(k)
            ]
            clauses.append(clause)
        expected = brute_force_sat(num_vars, clauses)
        result = Solver(num_vars, clauses).solve()
        assert result.sat == expected
        if result.sat:
            for clause in clauses:
                assert any(result.value(abs(l)) == (l > 0) for l in clause)


class TestBudget:
    def test_conflict_budget_raises(self):
        # A hard formula with a 1-conflict budget must time out.
        nv = 0
        var = {}
        clauses = []
        for p in range(7):
            row = []
            for h in range(6):
                nv += 1
                var[(p, h)] = nv
                row.append(nv)
            clauses.append(row)
        for h in range(6):
            for p1, p2 in itertools.combinations(range(7), 2):
                clauses.append([-var[(p1, h)], -var[(p2, h)]])
        with pytest.raises(TimeoutError):
            Solver(nv, clauses).solve(max_conflicts=1)


class TestSatResult:
    def test_bool_protocol(self):
        assert SatResult(True)
        assert not SatResult(False)

    def test_value_default(self):
        assert SatResult(True, {1: True}).value(2) is False
