"""Tests for exhaustive and randomized verification pipelines."""


import pytest

from repro.core.tnum import Tnum
from repro.verify.exhaustive import (
    check_optimality,
    check_shift_soundness,
    check_soundness,
    check_unary_soundness,
    verify_all_operators,
)
from repro.verify.random_check import (
    random_check_all,
    random_check_operator,
    random_member,
    random_tnum,
)


class TestExhaustive:
    def test_full_verification_table_width3(self):
        reports = verify_all_operators(width=3)
        for name, report in reports.items():
            assert report.holds, f"{name}: {report}"

    def test_add_sub_optimal_width4(self):
        assert check_optimality("add", 4).holds
        assert check_optimality("sub", 4).holds

    def test_mul_not_optimal(self):
        report = check_optimality("mul", 3, stop_at_first=True)
        assert not report.holds
        assert report.counterexample is not None

    def test_bitwise_optimal_width3(self):
        for op in ("and", "or", "xor"):
            assert check_optimality(op, 3).holds

    def test_div_mod_sound_but_not_optimal(self):
        assert check_soundness("div", 3).holds
        assert check_soundness("mod", 3).holds
        assert not check_optimality("div", 3).holds

    def test_report_rendering(self):
        report = check_soundness("add", 3)
        text = str(report)
        assert "soundness" in text and "add@3bit" in text and "holds" in text

    def test_counts(self):
        report = check_soundness("add", 2)
        assert report.pairs_checked == 81  # 9 tnums squared

    def test_unary_and_shift(self):
        assert check_unary_soundness("neg", 4).holds
        assert check_unary_soundness("not", 4).holds
        for op in ("lsh", "rsh", "arsh"):
            assert check_shift_soundness(op, 4).holds


class TestRandomGeneration:
    def test_random_tnum_always_well_formed(self, rng):
        for _ in range(500):
            t = random_tnum(rng)
            assert t.value & t.mask == 0
            assert not t.is_bottom()

    def test_random_tnum_covers_space(self, rng):
        # At width 2 all 9 tnums should appear in a modest sample.
        seen = {random_tnum(rng, 2) for _ in range(500)}
        assert len(seen) == 9

    def test_random_member_is_member(self, rng):
        for _ in range(200):
            t = random_tnum(rng, 16)
            assert t.contains(random_member(rng, t))

    def test_random_member_of_bottom_raises(self, rng):
        with pytest.raises(ValueError):
            random_member(rng, Tnum.bottom(8))


class TestRandomChecks:
    def test_all_operators_pass_at_64bit(self):
        reports = random_check_all(trials=300, seed=42)
        for name, report in reports.items():
            assert report.passed, f"{name}: {report}"

    def test_deterministic_given_seed(self):
        a = random_check_operator("mul", trials=50, seed=9)
        b = random_check_operator("mul", trials=50, seed=9)
        assert a.trials == b.trials and a.failures == b.failures

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            random_check_operator("nope")

    def test_detects_planted_unsoundness(self, monkeypatch):
        # Swap mul's abstract op for one that drops the mask: must fail.
        from repro.core import ops as ops_mod
        from repro.core.ops import OpSpec
        from repro.core.tnum import Tnum as T

        def bogus_mul(p, q):
            return T.const((p.value * q.value) & ((1 << p.width) - 1), p.width)

        broken = dict(ops_mod.BINARY_OPS)
        broken["mul"] = OpSpec(
            "mul", 2, bogus_mul, ops_mod.BINARY_OPS["mul"].concrete
        )
        monkeypatch.setattr(
            "repro.verify.random_check.BINARY_OPS", broken
        )
        report = random_check_operator("mul", trials=300, seed=0)
        assert not report.passed
        assert report.counterexample is not None
