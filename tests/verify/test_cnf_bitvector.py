"""Tests for the CNF gate encodings and bit-vector circuits."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.sat.bitvector import BitVecBuilder
from repro.verify.sat.cnf import CNFBuilder
from repro.verify.sat.solver import Solver


def solve(cnf):
    return Solver(cnf.num_vars, cnf.clauses).solve()


def enumerate_gate(gate_builder, arity):
    """Evaluate a fresh gate over every input combination via the solver."""
    results = {}
    for inputs in itertools.product([False, True], repeat=arity):
        cnf = CNFBuilder()
        in_lits = cnf.new_vars(arity)
        out = gate_builder(cnf, *in_lits)
        for lit, val in zip(in_lits, inputs):
            cnf.assert_lit(lit if val else -lit)
        cnf.assert_lit(out)
        results[inputs] = bool(solve(cnf).sat)
    return results


class TestGates:
    def test_and_truth_table(self):
        table = enumerate_gate(lambda c, a, b: c.gate_and(a, b), 2)
        assert table == {
            (False, False): False, (False, True): False,
            (True, False): False, (True, True): True,
        }

    def test_or_truth_table(self):
        table = enumerate_gate(lambda c, a, b: c.gate_or(a, b), 2)
        assert table[(False, False)] is False
        assert all(table[k] for k in table if any(k))

    def test_xor_truth_table(self):
        table = enumerate_gate(lambda c, a, b: c.gate_xor(a, b), 2)
        for a, b in table:
            assert table[(a, b)] == (a != b)

    def test_ite(self):
        table = enumerate_gate(lambda c, s, t, e: c.gate_ite(s, t, e), 3)
        for s, t, e in table:
            assert table[(s, t, e)] == (t if s else e)

    def test_iff(self):
        table = enumerate_gate(lambda c, a, b: c.gate_iff(a, b), 2)
        for a, b in table:
            assert table[(a, b)] == (a == b)

    def test_and_many(self):
        table = enumerate_gate(lambda c, *ls: c.gate_and_many(ls), 3)
        for key in table:
            assert table[key] == all(key)

    def test_or_many(self):
        table = enumerate_gate(lambda c, *ls: c.gate_or_many(ls), 3)
        for key in table:
            assert table[key] == any(key)

    def test_constant_folding(self):
        cnf = CNFBuilder()
        a = cnf.new_var()
        assert cnf.gate_and(cnf.true_lit, a) == a
        assert cnf.gate_and(cnf.false_lit, a) == cnf.false_lit
        assert cnf.gate_xor(cnf.true_lit, a) == -a
        assert cnf.gate_or(cnf.false_lit, a) == a

    def test_empty_clause_rejected(self):
        cnf = CNFBuilder()
        with pytest.raises(ValueError):
            cnf.add_clause([])

    def test_dimacs_output(self):
        cnf = CNFBuilder()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, -b])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf")
        assert f"{a} {-b} 0" in text


W = 6
MASK = (1 << W) - 1
small = st.integers(0, MASK)


def eval_circuit(build, *concrete):
    """Build a circuit over constants and read back its value via SAT."""
    cnf = CNFBuilder()
    bb = BitVecBuilder(cnf, W)
    consts = [bb.const(c) for c in concrete]
    out = build(bb, *consts)
    model = solve(cnf)
    assert model.sat
    return bb.value_of(out, model)


class TestArithmeticCircuits:
    @settings(max_examples=60)
    @given(small, small)
    def test_add(self, a, b):
        assert eval_circuit(lambda bb, x, y: bb.add(x, y), a, b) == (a + b) & MASK

    @settings(max_examples=60)
    @given(small, small)
    def test_sub(self, a, b):
        assert eval_circuit(lambda bb, x, y: bb.sub(x, y), a, b) == (a - b) & MASK

    @settings(max_examples=40)
    @given(small, small)
    def test_mul(self, a, b):
        assert eval_circuit(lambda bb, x, y: bb.mul(x, y), a, b) == (a * b) & MASK

    @settings(max_examples=30)
    @given(small)
    def test_neg(self, a):
        assert eval_circuit(lambda bb, x: bb.neg(x), a) == (-a) & MASK

    @settings(max_examples=40)
    @given(small, small)
    def test_bitwise(self, a, b):
        assert eval_circuit(lambda bb, x, y: bb.and_(x, y), a, b) == a & b
        assert eval_circuit(lambda bb, x, y: bb.or_(x, y), a, b) == a | b
        assert eval_circuit(lambda bb, x, y: bb.xor(x, y), a, b) == a ^ b

    @settings(max_examples=30)
    @given(small, st.integers(0, W - 1))
    def test_shifts(self, a, k):
        assert eval_circuit(lambda bb, x: bb.shl_const(x, k), a) == (a << k) & MASK
        assert eval_circuit(lambda bb, x: bb.shr_const(x, k), a) == a >> k
        signed = a - (1 << W) if a & (1 << (W - 1)) else a
        assert eval_circuit(
            lambda bb, x: bb.ashr_const(x, k), a
        ) == (signed >> k) & MASK

    def test_add_with_carries(self):
        # 0b0111 + 0b0001: carries in at bits 1, 2, 3.
        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, 4)
        total, carries = bb.add_with_carries(bb.const(0b0111), bb.const(0b0001))
        model = solve(cnf)
        assert bb.value_of(total, model) == 0b1000
        assert bb.value_of(carries, model) == 0b1110


class TestPredicates:
    @settings(max_examples=40)
    @given(small, small)
    def test_eq_and_ult(self, a, b):
        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, W)
        eq = bb.eq(bb.const(a), bb.const(b))
        lt = bb.ult(bb.const(a), bb.const(b))
        cnf.assert_lit(eq if a == b else -eq)
        cnf.assert_lit(lt if a < b else -lt)
        assert solve(cnf).sat

    def test_is_zero(self):
        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, W)
        z = bb.is_zero(bb.const(0))
        nz = bb.is_zero(bb.const(5))
        cnf.assert_lit(z)
        cnf.assert_lit(-nz)
        assert solve(cnf).sat

    def test_symbolic_solving(self):
        # Find x with x + 3 == 10.
        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, W)
        x = bb.var()
        cnf.assert_lit(bb.eq(bb.add(x, bb.const(3)), bb.const(10)))
        model = solve(cnf)
        assert model.sat
        assert bb.value_of(x, model) == 7
