"""Tests for the algebraic-property witnesses and predicates (§III-A)."""

from repro.core.arithmetic import tnum_add, tnum_sub
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum
from repro.verify.properties import (
    find_nonassociative_add,
    find_noncommutative_mul,
    find_noninverse_add_sub,
    is_optimal_on,
    is_sound_on,
)


class TestPredicates:
    def test_is_sound_on_add(self):
        p = Tnum.from_trits("1µ0", width=4)
        q = Tnum.from_trits("0µ1", width=4)
        assert is_sound_on(tnum_add, lambda x, y: x + y, p, q)

    def test_is_sound_on_detects_bug(self):
        def bogus(p, q):
            return Tnum.const(0, p.width)

        p = Tnum.const(1, 4)
        q = Tnum.const(2, 4)
        assert not is_sound_on(bogus, lambda x, y: x + y, p, q)

    def test_is_optimal_on_add(self):
        p = Tnum.from_trits("µ01", width=4)
        q = Tnum.from_trits("01µ", width=4)
        assert is_optimal_on(tnum_add, lambda x, y: x + y, p, q)

    def test_is_optimal_on_detects_slack(self):
        def sloppy(p, q):
            return Tnum.unknown(p.width)

        p = Tnum.const(1, 4)
        q = Tnum.const(2, 4)
        assert is_sound_on(sloppy, lambda x, y: x + y, p, q)
        assert not is_optimal_on(sloppy, lambda x, y: x + y, p, q)

    def test_optimality_on_bottom(self):
        assert is_optimal_on(
            tnum_add, lambda x, y: x + y, Tnum.bottom(4), Tnum.const(0, 4)
        )


class TestObservationWitnesses:
    """The three §III-A observations, rediscovered."""

    def test_add_not_associative(self):
        witness = find_nonassociative_add()
        assert witness is not None
        a, b, c = witness.tnums
        assert tnum_add(tnum_add(a, b), c) != tnum_add(a, tnum_add(b, c))

    def test_add_sub_not_inverses(self):
        witness = find_noninverse_add_sub()
        assert witness is not None
        a, b = witness.tnums
        assert tnum_sub(tnum_add(a, b), b) != a

    def test_mul_not_commutative(self):
        witness = find_noncommutative_mul()
        assert witness is not None
        a, b = witness.tnums
        assert our_mul(a, b) != our_mul(b, a)

    def test_witness_rendering(self):
        witness = find_nonassociative_add()
        text = str(witness)
        assert "not associative" in text
        assert "->" in text
