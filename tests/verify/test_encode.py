"""Tests for the SAT soundness encoding (Eqn. 11) — §III-A reproduced."""

import pytest

from repro.core.tnum import Tnum
from repro.verify.sat import SUPPORTED_OPERATORS, check_operator_soundness
from repro.verify.sat.bitvector import BitVecBuilder
from repro.verify.sat.cnf import CNFBuilder
from repro.verify.sat.encode import SymTnum, _sym_tnum_add, _sym_our_mul
from repro.verify.sat.solver import Solver


class TestSoundOperators:
    """Every operator the paper verified must come back SOUND."""

    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor"])
    def test_linear_ops_sound_at_width8(self, op):
        report = check_operator_soundness(op, 8)
        assert report.sound, report

    @pytest.mark.parametrize("op", ["lsh", "rsh", "arsh"])
    def test_shifts_sound_all_amounts_width6(self, op):
        report = check_operator_soundness(op, 6)
        assert report.sound, report

    def test_shift_with_fixed_amount(self):
        report = check_operator_soundness("lsh", 8, shift_amount=3)
        assert report.sound

    @pytest.mark.parametrize("op", ["mul", "kern_mul", "bitwise_mul"])
    def test_multiplications_sound_at_width4(self, op):
        report = check_operator_soundness(op, 4)
        assert report.sound, report

    def test_report_string(self):
        report = check_operator_soundness("add", 4)
        assert "SOUND" in str(report)
        assert report.num_vars > 0 and report.num_clauses > 0

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            check_operator_soundness("bogus", 4)

    def test_supported_list(self):
        assert "add" in SUPPORTED_OPERATORS
        assert "mul" in SUPPORTED_OPERATORS
        assert "arsh" in SUPPORTED_OPERATORS


class TestPlantedBugs:
    """The pipeline must *find* unsoundness, not just bless everything."""

    def test_broken_add_detected(self):
        # An "add" that drops the operand masks from eta is unsound.
        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, 6)
        p = SymTnum(bb.var(), bb.var())
        q = SymTnum(bb.var(), bb.var())
        x, y = bb.var(), bb.var()

        def wellformed(t):
            return bb.is_zero(bb.and_(t.v, t.m))

        def member(val, t):
            return bb.eq(bb.and_(val, bb.not_(t.m)), t.v)

        cnf.assert_lit(wellformed(p))
        cnf.assert_lit(wellformed(q))
        cnf.assert_lit(member(x, p))
        cnf.assert_lit(member(y, q))

        # Buggy abstract add: mask = chi only (forgets P.m | Q.m).
        sv = bb.add(p.v, q.v)
        sm = bb.add(p.m, q.m)
        sigma = bb.add(sv, sm)
        chi = bb.xor(sigma, sv)
        eta = chi  # BUG: should be chi | P.m | Q.m
        r = SymTnum(bb.and_(sv, bb.not_(eta)), eta)
        z = bb.add(x, y)
        cnf.assert_lit(-member(z, r))

        result = Solver(cnf.num_vars, cnf.clauses).solve()
        assert result.sat, "planted bug must yield a counterexample"

        # And the counterexample must be a genuine soundness violation.
        pv = bb.value_of(p.v, result)
        pm = bb.value_of(p.m, result)
        qv = bb.value_of(q.v, result)
        qm = bb.value_of(q.m, result)
        cx = bb.value_of(x, result)
        cy = bb.value_of(y, result)
        P = Tnum(pv, pm, 6)
        Q = Tnum(qv, qm, 6)
        assert P.contains(cx) and Q.contains(cy)
        rv = bb.value_of(r.v, result)
        rm = bb.value_of(r.m, result)
        z_val = (cx + cy) & 0x3F
        assert (z_val & ~rm) & 0x3F != rv  # not a member: genuinely unsound

    def test_circuits_agree_with_python_implementation(self):
        # Cross-validate the symbolic tnum_add against the Python one on
        # fixed inputs pushed through the solver.
        from repro.core.arithmetic import tnum_add

        p = Tnum.from_trits("10µ0", width=5)
        q = Tnum.from_trits("10µ1", width=5)
        expected = tnum_add(p, q)

        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, 5)
        sp = SymTnum(bb.const(p.value), bb.const(p.mask))
        sq = SymTnum(bb.const(q.value), bb.const(q.mask))
        sr = _sym_tnum_add(bb, sp, sq)
        model = Solver(cnf.num_vars, cnf.clauses).solve()
        assert model.sat
        assert bb.value_of(sr.v, model) == expected.value
        assert bb.value_of(sr.m, model) == expected.mask

    def test_our_mul_circuit_agrees_with_python(self):
        from repro.core.multiply import our_mul

        p = Tnum.from_trits("µ01", width=5)
        q = Tnum.from_trits("µ10", width=5)
        expected = our_mul(p, q)

        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, 5)
        sp = SymTnum(bb.const(p.value), bb.const(p.mask))
        sq = SymTnum(bb.const(q.value), bb.const(q.mask))
        sr = _sym_our_mul(bb, sp, sq)
        model = Solver(cnf.num_vars, cnf.clauses).solve()
        assert model.sat
        assert bb.value_of(sr.v, model) == expected.value
        assert bb.value_of(sr.m, model) == expected.mask
