"""Meta-test: the three verification pipelines agree with each other.

For correct operators all three (exhaustive, randomized, SAT) say sound;
for a family of deliberately broken operators all three find the bug.
Cross-pipeline agreement is what justifies trusting the 64-bit random
checks where SAT and enumeration cannot reach.
"""

import random

import pytest

from repro.core.ops import BINARY_OPS
from repro.core.tnum import Tnum, mask_for_width
from repro.verify.exhaustive import check_soundness
from repro.verify.random_check import random_member, random_tnum

W = 5
LIMIT = mask_for_width(W)


def _broken_add_drops_masks(p: Tnum, q: Tnum) -> Tnum:
    """tnum_add without | p.mask | q.mask in eta (claims even sums)."""
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    limit = mask_for_width(p.width)
    sv = (p.value + q.value) & limit
    sm = (p.mask + q.mask) & limit
    chi = ((sv + sm) & limit) ^ sv
    return Tnum(sv & ~chi & limit, chi, p.width)


def _broken_and_overclaims(p: Tnum, q: Tnum) -> Tnum:
    """AND that treats µ bits as certain 1s."""
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    return Tnum.const((p.value | p.mask) & (q.value | q.mask), p.width)

def _broken_mul_value_only(p: Tnum, q: Tnum) -> Tnum:
    """Multiplication that ignores all uncertainty."""
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    return Tnum.const((p.value * q.value) & mask_for_width(p.width), p.width)


BROKEN = {
    "add": _broken_add_drops_masks,
    "and": _broken_and_overclaims,
    "mul": _broken_mul_value_only,
}


def _random_pipeline_flags(name: str, abstract, trials: int = 4000) -> bool:
    """Randomized soundness check against the op's true concrete model."""
    spec = BINARY_OPS[name]
    rng = random.Random(0)
    for _ in range(trials):
        p = random_tnum(rng, W)
        q = random_tnum(rng, W)
        r = abstract(p, q)
        for _ in range(3):
            x = random_member(rng, p)
            y = random_member(rng, q)
            if not r.contains(spec.concrete(x, y, W) & LIMIT):
                return True
    return False


def _exhaustive_flags(name: str, abstract) -> bool:
    spec = BINARY_OPS[name]
    from repro.core.lattice import enumerate_tnums

    for p in enumerate_tnums(W):
        gp = list(p.concretize())
        for q in enumerate_tnums(W):
            r = abstract(p, q)
            for x in gp[:4]:
                for y in list(q.concretize())[:4]:
                    if not r.contains(spec.concrete(x, y, W) & LIMIT):
                        return True
    return False


@pytest.mark.parametrize("name", sorted(BROKEN))
class TestBrokenOperatorsFlaggedEverywhere:
    def test_random_pipeline_finds_bug(self, name):
        assert _random_pipeline_flags(name, BROKEN[name])

    def test_exhaustive_pipeline_finds_bug(self, name):
        assert _exhaustive_flags(name, BROKEN[name])


@pytest.mark.parametrize("name", ["add", "and", "mul"])
class TestCorrectOperatorsPassEverywhere:
    def test_random_pipeline_passes(self, name):
        assert not _random_pipeline_flags(
            name, BINARY_OPS[name].abstract, trials=1500
        )

    def test_exhaustive_pipeline_passes(self, name):
        report = check_soundness(name, 3)
        assert report.holds


class TestSatAgreesOnBrokenAdd:
    def test_sat_counterexample_matches_python_model(self):
        # The SAT pipeline's counterexample for the mask-dropping add must
        # falsify the *Python* broken implementation too — tying the
        # symbolic circuits to the executable semantics.
        from repro.verify.sat.bitvector import BitVecBuilder
        from repro.verify.sat.cnf import CNFBuilder
        from repro.verify.sat.encode import SymTnum
        from repro.verify.sat.solver import Solver

        cnf = CNFBuilder()
        bb = BitVecBuilder(cnf, W)
        p = SymTnum(bb.var(), bb.var())
        q = SymTnum(bb.var(), bb.var())
        x, y = bb.var(), bb.var()
        wf = lambda t: bb.is_zero(bb.and_(t.v, t.m))
        member = lambda v, t: bb.eq(bb.and_(v, bb.not_(t.m)), t.v)
        cnf.assert_lit(wf(p))
        cnf.assert_lit(wf(q))
        cnf.assert_lit(member(x, p))
        cnf.assert_lit(member(y, q))
        sv = bb.add(p.v, q.v)
        sm = bb.add(p.m, q.m)
        chi = bb.xor(bb.add(sv, sm), sv)
        r = SymTnum(bb.and_(sv, bb.not_(chi)), chi)
        cnf.assert_lit(-member(bb.add(x, y), r))
        model = Solver(cnf.num_vars, cnf.clauses).solve()
        assert model.sat

        P = Tnum(bb.value_of(p.v, model), bb.value_of(p.m, model), W)
        Q = Tnum(bb.value_of(q.v, model), bb.value_of(q.m, model), W)
        cx = bb.value_of(x, model)
        cy = bb.value_of(y, model)
        broken_result = _broken_add_drops_masks(P, Q)
        assert not broken_result.contains((cx + cy) & LIMIT)
