"""Tests for the pre-paper kernel multiplication (kern_mul, Listing 2)."""

import pytest
from hypothesis import given

from repro.baselines.kernel_mul import hma, kern_mul
from repro.core.lattice import enumerate_tnums, leq
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestSoundness:
    @given(tnums(W), tnums(W))
    def test_sound_random(self, p, q):
        r = kern_mul(p, q)
        for x in list(p.concretize())[:6]:
            for y in list(q.concretize())[:6]:
                assert r.contains((x * y) & LIMIT)

    def test_sound_exhaustive_width4(self):
        # The paper verified kern_mul to 8 bits via SMT; width 4
        # exhaustively here keeps the suite fast.
        for p in enumerate_tnums(4):
            gp = list(p.concretize())
            for q in enumerate_tnums(4):
                r = kern_mul(p, q)
                for x in gp:
                    for y in q.concretize():
                        assert r.contains((x * y) & 0xF)

    def test_constants_fold(self):
        assert kern_mul(Tnum.const(6, W), Tnum.const(7, W)) == Tnum.const(42, W)

    def test_bottom(self):
        assert kern_mul(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            kern_mul(Tnum.const(0, 4), Tnum.const(0, 8))


class TestHma:
    def test_zero_y_is_identity(self):
        acc = Tnum.from_trits("1µ0", width=W)
        assert hma(acc, 0b101, 0) == acc

    def test_accumulates_shifted_masks(self):
        # hma(0, x=1, y=0b11) adds masks 1 then 2: join-like growth.
        r = hma(Tnum.const(0, W), 1, 0b11)
        assert r.value == 0
        assert r.mask == 0b11

    def test_x_wraps_at_width(self):
        # Shifting x past the word must truncate, as in the kernel.
        r = hma(Tnum.const(0, 4), 0b1000, 0b11)
        assert r.mask <= 0xF


class TestRelationToOurMul:
    def test_identical_at_width4(self):
        # Divergence between kern_mul and our_mul starts at width 5; at
        # width 4 they agree on every input pair.
        ts = enumerate_tnums(4)
        assert all(kern_mul(p, q) == our_mul(p, q) for p in ts for q in ts)

    def test_width5_differences_match_paper_table1(self):
        # Paper Table I at n=5 (unordered pairs): 8 differing, of which
        # our_mul is more precise in 6 (75%) and kern_mul in 2 (25%).
        # Over ordered pairs the counts double; the ratios are identical.
        ts = enumerate_tnums(5)
        differ = our_better = kern_better = 0
        for p in ts:
            for q in ts:
                rk, ro = kern_mul(p, q), our_mul(p, q)
                if rk == ro:
                    continue
                differ += 1
                if leq(ro, rk):
                    our_better += 1
                elif leq(rk, ro):
                    kern_better += 1
        assert differ == 16
        assert our_better == 12
        assert kern_better == 4
        # All differing outputs are comparable at this width (paper: 100%).
        assert our_better + kern_better == differ
