"""Tests for the ripple-carry O(n) baseline.

The paper (§II) describes the Regehr–Duongsaa transformers as *sound but
not optimal*; the kernel's O(1) operators are optimal.  So the ripple
results must always over-approximate the kernel's (never be more
precise), and there exist inputs where they are strictly worse.
"""

import pytest
from hypothesis import given

from repro.baselines.ripple import (
    ripple_add,
    ripple_sub,
    trit_and,
    trit_not,
    trit_or,
    trit_xor,
)
from repro.core.arithmetic import tnum_add, tnum_sub
from repro.core.lattice import enumerate_tnums, leq, lt
from repro.core.tnum import Tnum
from tests.conftest import tnums

W = 8

ZERO, ONE, MU = (0, 0), (1, 0), (0, 1)
TRITS = [ZERO, ONE, MU]


class TestTritOps:
    def test_xor_truth_table(self):
        assert trit_xor(ZERO, ZERO) == ZERO
        assert trit_xor(ONE, ZERO) == ONE
        assert trit_xor(ONE, ONE) == ZERO
        assert trit_xor(MU, ZERO) == MU
        assert trit_xor(MU, ONE) == MU
        assert trit_xor(MU, MU) == MU

    def test_and_truth_table(self):
        assert trit_and(ZERO, MU) == ZERO  # known 0 annihilates
        assert trit_and(ONE, ONE) == ONE
        assert trit_and(ONE, MU) == MU
        assert trit_and(MU, MU) == MU

    def test_or_truth_table(self):
        assert trit_or(ONE, MU) == ONE  # known 1 absorbs
        assert trit_or(ZERO, ZERO) == ZERO
        assert trit_or(ZERO, MU) == MU
        assert trit_or(MU, MU) == MU

    def test_not_truth_table(self):
        assert trit_not(ZERO) == ONE
        assert trit_not(ONE) == ZERO
        assert trit_not(MU) == MU

    def test_ops_closed_over_trits(self):
        for a in TRITS:
            for b in TRITS:
                assert trit_xor(a, b) in TRITS
                assert trit_and(a, b) in TRITS
                assert trit_or(a, b) in TRITS


class TestSoundness:
    def test_add_sound_exhaustive_width4(self):
        for p in enumerate_tnums(4):
            gp = list(p.concretize())
            for q in enumerate_tnums(4):
                r = ripple_add(p, q)
                for x in gp:
                    for y in q.concretize():
                        assert r.contains((x + y) & 0xF), (p, q)

    def test_sub_sound_exhaustive_width4(self):
        for p in enumerate_tnums(4):
            gp = list(p.concretize())
            for q in enumerate_tnums(4):
                r = ripple_sub(p, q)
                for x in gp:
                    for y in q.concretize():
                        assert r.contains((x - y) & 0xF), (p, q)


class TestRelationToKernelOps:
    """Ripple is sound but not optimal: always ⊒ tnum_add, sometimes ⊐."""

    @given(tnums(W), tnums(W))
    def test_add_never_more_precise_than_kernel(self, p, q):
        assert leq(tnum_add(p, q), ripple_add(p, q))

    @given(tnums(W), tnums(W))
    def test_sub_never_more_precise_than_kernel(self, p, q):
        assert leq(tnum_sub(p, q), ripple_sub(p, q))

    def test_strictly_less_precise_witness(self):
        # 011 + 0µ1: concrete sums are {4, 6} = 1µ0; the composed
        # three-valued carry majority cannot see maj(1, µ, 1) = 1 and
        # reports µµ0.
        p = Tnum.from_trits("011")
        q = Tnum.from_trits("0µ1")
        assert tnum_add(p, q) == Tnum.from_trits("1µ0")
        assert ripple_add(p, q) == Tnum.from_trits("µµ0")
        assert lt(tnum_add(p, q), ripple_add(p, q))

    def test_agreement_on_constants(self):
        for x in (0, 1, 7, 15):
            for y in (0, 3, 15):
                p, q = Tnum.const(x, 4), Tnum.const(y, 4)
                assert ripple_add(p, q) == tnum_add(p, q)
                assert ripple_sub(p, q) == tnum_sub(p, q)


class TestEdgeCases:
    def test_bottom(self):
        assert ripple_add(Tnum.bottom(W), Tnum.const(0, W)).is_bottom()
        assert ripple_sub(Tnum.const(0, W), Tnum.bottom(W)).is_bottom()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            ripple_add(Tnum.const(0, 4), Tnum.const(0, 8))
        with pytest.raises(ValueError):
            ripple_sub(Tnum.const(0, 4), Tnum.const(0, 8))

    def test_carry_chain_full_length(self):
        # 1111 + 0001 carries through every position.
        assert ripple_add(Tnum.const(0xFF, W), Tnum.const(1, W)) == Tnum.const(0, W)

    def test_uncertain_carry_propagates(self):
        # 111µ + 0001: the µ decides whether the carry ripples, so all
        # bits of the result become unknown except none are certain.
        p = Tnum.from_trits("111µ", width=4)
        r = ripple_add(p, Tnum.const(1, 4))
        assert r == tnum_add(p, Tnum.const(1, 4))
        assert r.unknown_count() == 4
