"""Tests for Regehr–Duongsaa bitwise multiplication (Listing 5)."""

import pytest
from hypothesis import given, settings

from repro.baselines.bitwise_mul import (
    bitwise_mul_naive,
    bitwise_mul_opt,
    multiply_bit_naive,
)
from repro.core.lattice import enumerate_tnums
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestMultiplyBit:
    def test_certain_zero_gives_zero(self):
        p = Tnum.from_trits("µ0µ", width=4)
        assert multiply_bit_naive(p, Tnum.unknown(4), 1) == Tnum.const(0, 4)

    def test_certain_one_gives_q(self):
        p = Tnum.from_trits("µ1µ", width=4)
        q = Tnum.from_trits("10µ0", width=4)
        assert multiply_bit_naive(p, q, 1) == q

    def test_unknown_kills_certain_ones(self):
        # q = 1µ10 has certain 1s at bits 3 and 1 and µ at bit 2; killing
        # the certain 1s gives mask 1110 (bit 0 stays a certain 0).
        p = Tnum.from_trits("µ", width=4)
        q = Tnum.from_trits("1µ10", width=4)
        killed = multiply_bit_naive(p, q, 0)
        assert killed == Tnum(0, 0b1110, 4)
        assert killed == Tnum(0, (q.value | q.mask), 4)


class TestEquivalenceOfVariants:
    """The paper's machine-arithmetic rewrite must not change results."""

    def test_exhaustive_width3(self):
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                assert bitwise_mul_naive(p, q) == bitwise_mul_opt(p, q)

    @settings(max_examples=200)
    @given(tnums(W), tnums(W))
    def test_random_width8(self, p, q):
        assert bitwise_mul_naive(p, q) == bitwise_mul_opt(p, q)


class TestSoundness:
    @given(tnums(W), tnums(W))
    def test_opt_sound_random(self, p, q):
        r = bitwise_mul_opt(p, q)
        for x in list(p.concretize())[:6]:
            for y in list(q.concretize())[:6]:
                assert r.contains((x * y) & LIMIT)

    def test_sound_exhaustive_width4(self):
        for p in enumerate_tnums(4):
            gp = list(p.concretize())
            for q in enumerate_tnums(4):
                r = bitwise_mul_opt(p, q)
                for x in gp:
                    for y in q.concretize():
                        assert r.contains((x * y) & 0xF)

    def test_constants_fold(self):
        assert bitwise_mul_opt(Tnum.const(6, W), Tnum.const(7, W)) == Tnum.const(42, W)

    def test_bottom(self):
        assert bitwise_mul_opt(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()
        assert bitwise_mul_naive(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            bitwise_mul_opt(Tnum.const(0, 4), Tnum.const(0, 8))

    def test_known_noncommutative_witness(self):
        # Found during development at width 5: P=00011, Q=0011µ.
        p = Tnum.from_trits("00011", width=5)
        q = Tnum.from_trits("0011µ", width=5)
        assert bitwise_mul_opt(p, q) != bitwise_mul_opt(q, p)
