"""Differential testing: concrete execution vs abstract interpretation.

The fundamental soundness property of the whole analyzer: for any program
the verifier accepts, every concretely-reachable register value at every
instruction must be contained in the verifier's abstract value at that
point.  We generate random straight-line and branching programs, verify
them, execute them on random inputs, and check containment instruction by
instruction.
"""

import random

import pytest

from repro.bpf import CTX_BASE, Machine, assemble, isa
from repro.bpf.verifier import Verifier
from repro.bpf.verifier.state import RegKind

U64 = (1 << 64) - 1

ALU_OPS = ["add", "sub", "mul", "and", "or", "xor", "lsh", "rsh", "arsh",
           "div", "mod"]


def random_program(rng: random.Random, length: int = 12) -> str:
    """A random scalar program reading some ctx bytes then mixing rs."""
    lines = [
        "ldxdw r2, [r1+0]",
        "ldxdw r3, [r1+8]",
        "mov r4, 12345",
    ]
    live = ["r2", "r3", "r4"]
    for _ in range(length):
        op = rng.choice(ALU_OPS)
        dst = rng.choice(live)
        if op in ("lsh", "rsh", "arsh"):
            src = str(rng.randrange(0, 64))
        elif rng.random() < 0.5:
            src = rng.choice(live)
        else:
            src = str(rng.randint(-100, 100))
        lines.append(f"{op} {dst}, {src}")
    lines.append("mov r0, r2")
    lines.append("exit")
    return "\n".join(lines)


def random_branchy_program(rng: random.Random) -> str:
    """A random program with one conditional branch and a merge."""
    cond = rng.choice(["jeq", "jne", "jlt", "jle", "jgt", "jge",
                       "jsgt", "jsge", "jslt", "jsle", "jset"])
    bound = rng.randint(0, 255)
    op1 = rng.choice(["add", "and", "or", "xor"])
    op2 = rng.choice(["sub", "and", "mul", "xor"])
    return f"""
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        {cond} r2, {bound}, taken
        {op1} r2, r3
        ja merge
    taken:
        {op2} r2, 17
    merge:
        and r2, 0xffff
        mov r0, r2
        exit
    """


def check_containment(text: str, rng: random.Random, runs: int = 5) -> None:
    program = assemble(text)
    verifier = Verifier(ctx_size=64, collect_states=True)
    result = verifier.verify(program)
    assert result.ok, result.error_messages()

    for _ in range(runs):
        ctx = bytes(rng.randrange(256) for _ in range(64))
        machine = Machine(ctx=ctx, record_trace=True)
        machine.run(program, r1=CTX_BASE)

        # Replay: execute again and capture register state per insn.
        machine2 = Machine(ctx=bytes(ctx))
        machine2.regs = [0] * isa.MAX_REG
        machine2.regs[1] = CTX_BASE
        machine2.regs[isa.FP_REG] = 0x1000_0000 + isa.STACK_SIZE
        pc_slot = 0
        steps = 0
        while steps < 10_000:
            steps += 1
            idx = program.index_at_slot(pc_slot)
            insn = program.insns[idx]
            # Check containment of every *scalar* abstract register against
            # the concrete register value at this instruction entry.
            state = verifier.states_at.get(idx)
            assert state is not None, f"no abstract state at insn {idx}"
            for reg in range(isa.MAX_REG):
                abstate = state.regs[reg]
                if abstate.kind == RegKind.SCALAR:
                    concrete = machine2.regs[reg]
                    assert abstate.scalar.contains(concrete), (
                        f"insn {idx} r{reg}: concrete {concrete:#x} not in "
                        f"{abstate.scalar}"
                    )
            if insn.is_exit():
                break
            next_slot = pc_slot + insn.slots()
            pc_slot = machine2._step(program, idx, insn, next_slot)


def random_memory_program(rng: random.Random) -> str:
    """A random program that spills/fills through the stack."""
    op1 = rng.choice(["add", "xor", "and", "or"])
    op2 = rng.choice(["sub", "mul", "add"])
    slot1 = -8 * rng.randint(1, 4)
    slot2 = -8 * rng.randint(5, 8)
    k = rng.randint(0, 255)
    return f"""
        ldxdw r2, [r1+0]
        {op1} r2, {k}
        stxdw [r10{slot1}], r2
        ldxdw r3, [r1+8]
        stxdw [r10{slot2}], r3
        ldxdw r4, [r10{slot1}]
        ldxdw r5, [r10{slot2}]
        {op2} r4, r5
        stb [r10-33], {k & 0x7f}
        ldxb r6, [r10-33]
        add r4, r6
        mov r0, r4
        exit
    """


def random_jmp32_program(rng: random.Random) -> str:
    """A random program using 32-bit compares on provably-small values."""
    cond = rng.choice(["jeq32", "jlt32", "jge32", "jne32"])
    bound = rng.randint(1, 200)
    return f"""
        ldxb r2, [r1+0]
        mov r0, 0
        {cond} r2, {bound}, taken
        add r2, 1
        ja merge
    taken:
        add r2, 2
    merge:
        mov r0, r2
        exit
    """


class TestDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_straight_line_programs(self, seed):
        rng = random.Random(seed)
        check_containment(random_program(rng), rng)

    @pytest.mark.parametrize("seed", range(20))
    def test_branching_programs(self, seed):
        rng = random.Random(1000 + seed)
        check_containment(random_branchy_program(rng), rng)

    @pytest.mark.parametrize("seed", range(15))
    def test_memory_programs(self, seed):
        rng = random.Random(2000 + seed)
        check_containment(random_memory_program(rng), rng)

    @pytest.mark.parametrize("seed", range(15))
    def test_jmp32_programs(self, seed):
        rng = random.Random(3000 + seed)
        check_containment(random_jmp32_program(rng), rng)

    def test_return_value_contained(self):
        # End-to-end: the abstract r0 at exit contains every concrete r0.
        text = """
            ldxdw r2, [r1+0]
            and r2, 0xff
            mul r2, 3
            add r2, 7
            mov r0, r2
            exit
        """
        program = assemble(text)
        verifier = Verifier(ctx_size=64, collect_states=True)
        assert verifier.verify(program).ok
        exit_idx = len(program) - 1
        exit_state = verifier.states_at[exit_idx]
        rng = random.Random(0)
        for _ in range(50):
            ctx = bytes(rng.randrange(256) for _ in range(64))
            r0 = Machine(ctx=ctx).run(program).return_value
            assert exit_state.regs[0].scalar.contains(r0)
