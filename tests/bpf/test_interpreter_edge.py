"""Interpreter edge semantics the differential oracle depends on.

The fuzz oracle treats the interpreter as ground truth, so BPF's defined
corner cases must hold exactly: division by zero yields 0, modulo by
zero yields the dividend, 32-bit subregister ops zero-extend into the
full register, and out-of-bounds stack accesses fault.
"""

import pytest

from repro.bpf import ExecutionError, Machine, assemble
from repro.bpf.builder import ProgramBuilder

U32 = (1 << 32) - 1
U64 = (1 << 64) - 1


def run(text: str) -> int:
    return Machine().run(assemble(text)).return_value


class TestDivisionByZero:
    def test_div64_by_zero_register_is_zero(self):
        assert run("mov r0, 5\nmov r1, 0\ndiv r0, r1\nexit") == 0

    def test_div32_by_zero_register_is_zero(self):
        assert run("mov r0, 77\nmov r1, 0\ndiv32 r0, r1\nexit") == 0

    def test_mod64_by_zero_keeps_dividend(self):
        assert run("mov r0, 5\nmov r1, 0\nmod r0, r1\nexit") == 5

    def test_mod32_by_zero_keeps_truncated_dividend(self):
        # x % 0 == x, but the 32-bit op still zero-extends the subregister.
        b = ProgramBuilder()
        b.ld_imm64(0, (7 << 32) | 9)   # high bits must be cleared
        b.mov_imm(1, 0)
        b.alu_reg("mod", 0, 1, is64=False)
        b.exit_()
        assert Machine().run(b.build()).return_value == 9

    def test_div64_nonzero_still_divides(self):
        assert run("mov r0, 42\nmov r1, 5\ndiv r0, r1\nexit") == 8


class TestSubregisterZeroExtension:
    def test_alu32_add_zero_extends(self):
        b = ProgramBuilder()
        b.ld_imm64(0, U64)             # all ones
        b.alu_imm("add", 0, 1, is64=False)  # 32-bit add wraps to 0
        b.exit_()
        assert Machine().run(b.build()).return_value == 0

    def test_mov32_clears_high_bits(self):
        b = ProgramBuilder()
        b.ld_imm64(1, U64)
        b.mov_reg(0, 1, is64=False)
        b.exit_()
        assert Machine().run(b.build()).return_value == U32

    def test_alu32_xor_zero_extends(self):
        b = ProgramBuilder()
        b.ld_imm64(0, (0xAB << 32) | 0xF0)
        b.alu_imm("xor", 0, 0x0F, is64=False)
        b.exit_()
        assert Machine().run(b.build()).return_value == 0xFF

    def test_arsh32_sign_bit_is_bit31(self):
        b = ProgramBuilder()
        b.ld_imm64(0, 0x8000_0000)     # bit 31 set, bit 63 clear
        b.alu_imm("arsh", 0, 1, is64=False)
        b.exit_()
        # 32-bit arithmetic shift replicates bit 31 then zero-extends.
        assert Machine().run(b.build()).return_value == 0xC000_0000


class TestOutOfBoundsStack:
    def test_store_above_frame_top_faults(self):
        with pytest.raises(ExecutionError):
            run("mov r1, 1\nstxdw [r10+8], r1\nmov r0, 0\nexit")

    def test_store_below_frame_faults(self):
        with pytest.raises(ExecutionError):
            run("mov r1, 1\nstxdw [r10-520], r1\nmov r0, 0\nexit")

    def test_load_below_frame_faults(self):
        with pytest.raises(ExecutionError):
            run("ldxdw r0, [r10-520]\nexit")

    def test_straddling_frame_top_faults(self):
        # 8-byte access starting 4 below the top crosses the boundary.
        with pytest.raises(ExecutionError):
            run("mov r1, 1\nstxdw [r10-4], r1\nmov r0, 0\nexit")

    def test_boundary_access_is_fine(self):
        assert run(
            "mov r1, 9\nstxdw [r10-512], r1\nldxdw r0, [r10-512]\nexit"
        ) == 9
