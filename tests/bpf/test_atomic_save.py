"""VerdictCache.save atomicity and the verifier's wall-clock watchdog."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.bpf import assemble
from repro.bpf.canon import VerdictCache
from repro.bpf.verifier import Verifier

ACCEPTED = "mov r0, 7\nadd r0, 3\nexit"


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _store_with_entry(path):
    cache = VerdictCache()
    result = Verifier(verdict_cache=cache).verify(assemble(ACCEPTED))
    assert result.ok and len(cache) == 1
    cache.save(path)
    return path.read_text()


class TestAtomicSave:
    def test_save_round_trips(self, tmp_path):
        store = tmp_path / "verdicts.json"
        _store_with_entry(store)
        assert len(VerdictCache.load(store)) == 1
        # No temp litter after a clean save.
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_sigkill_mid_save_keeps_the_old_store(self, tmp_path):
        """A saver killed mid-write must not cost the previous store."""
        store = tmp_path / "verdicts.json"
        original = _store_with_entry(store)

        # The child re-saves the store; the armed cache.save.slow fault
        # makes it sleep 30s between the two write halves, so the parent
        # can SIGKILL it squarely inside the write window.
        code = (
            "import sys\n"
            "from repro.bpf.canon import VerdictCache\n"
            "cache = VerdictCache.load(sys.argv[1])\n"
            "print('ready', flush=True)\n"
            "cache.save(sys.argv[1])\n"
            "print('saved', flush=True)\n"
        )
        child = subprocess.Popen(
            [sys.executable, "-c", code, str(store)],
            env=dict(
                os.environ,
                REPRO_FAULTS="seed=1,cache.save.slow=1:30",
                PYTHONPATH="src",
            ),
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            time.sleep(0.3)   # well inside the 30s mid-write sleep
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == -signal.SIGKILL
        # The target was never touched: the write happened on a temp
        # file and the rename never ran.
        assert store.read_text() == original
        assert len(VerdictCache.load(store)) == 1
        # The partial temp file is the only debris.
        leftovers = list(tmp_path.glob("verdicts.json.tmp.*"))
        assert len(leftovers) == 1

    def test_torn_save_fault_preserves_existing_store(self, tmp_path):
        store = tmp_path / "verdicts.json"
        original = _store_with_entry(store)
        cache = VerdictCache.load(store)
        Verifier(verdict_cache=cache).verify(assemble("mov r0, 1\nexit"))
        faults.arm("seed=1,cache.save.torn=1")
        cache.save(store)   # dies after the half-write, before the rename
        faults.disarm()
        assert store.read_text() == original
        assert len(VerdictCache.load(store)) == 1


class TestVerifierWatchdog:
    def test_no_deadline_by_default(self):
        result = Verifier().verify(assemble(ACCEPTED))
        assert result.ok and not result.timed_out

    def test_generous_deadline_is_invisible(self):
        result = Verifier(deadline_s=60.0).verify(assemble(ACCEPTED))
        assert result.ok and not result.timed_out

    def test_deadline_surfaces_as_structured_timeout(self):
        faults.arm("seed=1,verify.hang=1:0.05")
        result = Verifier(deadline_s=0.01).verify(assemble(ACCEPTED))
        assert not result.ok
        assert result.timed_out
        error = result.errors[0]
        assert error.timeout and "deadline" in error.reason

    def test_timeouts_are_never_cached(self):
        cache = VerdictCache()
        faults.arm("seed=1,verify.hang=1:0.05")
        timed = Verifier(
            verdict_cache=cache, deadline_s=0.01
        ).verify(assemble(ACCEPTED))
        assert timed.timed_out and len(cache) == 0
        faults.disarm()
        # The next submission pays a full walk and gets the real verdict.
        fresh = Verifier(verdict_cache=cache).verify(assemble(ACCEPTED))
        assert fresh.ok and len(cache) == 1
