"""Verifier accept/reject tests: the safety policy in action."""


from repro.bpf import assemble
from repro.bpf.verifier import Verifier, verify_program


def verify(text: str, ctx_size: int = 64):
    return Verifier(ctx_size=ctx_size).verify(assemble(text))


class TestAccepts:
    def test_trivial(self):
        assert verify("mov r0, 0\nexit").ok

    def test_arithmetic_chain(self):
        assert verify("""
            mov r0, 1
            add r0, 2
            mul r0, 3
            sub r0, 4
            exit
        """).ok

    def test_stack_spill_fill(self):
        assert verify("""
            mov r2, 7
            stxdw [r10-8], r2
            ldxdw r0, [r10-8]
            exit
        """).ok

    def test_ctx_read_write(self):
        assert verify("""
            ldxw r2, [r1+0]
            stxw [r1+4], r2
            mov r0, 0
            exit
        """).ok

    def test_branching_merge(self):
        assert verify("""
            ldxw r2, [r1+0]
            mov r0, 0
            jeq r2, 0, end
            mov r0, 1
        end:
            exit
        """).ok

    def test_bounds_refinement_enables_ctx_access(self):
        # r2 < 8 on the taken path makes [r1 + r2*4] provably in-bounds.
        assert verify("""
            ldxw r2, [r1+0]
            jge r2, 8, out
            lsh r2, 2
            add r1, r2
            ldxw r0, [r1+0]
            exit
        out:
            mov r0, 0
            exit
        """).ok

    def test_masking_enables_access_without_branch(self):
        # The paper's intro idiom: x & 7 bounds x without a branch.
        assert verify("""
            ldxw r2, [r1+0]
            and r2, 7
            lsh r2, 3
            mov r3, r10
            add r3, -64
            add r3, r2
            stdw [r10-8],  0
            stdw [r10-16], 0
            stdw [r10-24], 0
            stdw [r10-32], 0
            stdw [r10-40], 0
            stdw [r10-48], 0
            stdw [r10-56], 0
            stdw [r10-64], 0
            ldxdw r0, [r3+0]
            exit
        """).ok

    def test_pointer_spill_and_reload(self):
        assert verify("""
            stxdw [r10-8], r1
            ldxdw r2, [r10-8]
            ldxw r0, [r2+0]
            exit
        """).ok

    def test_helper_call(self):
        assert verify("""
            mov r1, 1
            call 1
            exit
        """).ok

    def test_dead_branch_not_analyzed(self):
        # The taken edge contradicts itself (r2 == 0 and r2 == 1); only
        # the feasible path must verify.
        assert verify("""
            mov r2, 0
            jne r2, 0, dead
            mov r0, 0
            exit
        dead:
            ldxdw r0, [r10-8]
            exit
        """).ok


class TestRejects:
    def test_uninitialized_register_read(self):
        res = verify("mov r0, r5\nexit")
        assert not res.ok
        assert "uninitialized register r5" in res.errors[0].reason

    def test_uninitialized_r0_at_exit(self):
        res = verify("""
            ldxw r2, [r1+0]
            jeq r2, 0, end
            mov r0, 1
        end:
            exit
        """)
        assert not res.ok
        assert "r0" in res.errors[0].reason

    def test_pointer_leak_via_r0(self):
        res = verify("mov r0, r10\nexit")
        assert not res.ok
        assert "leak" in res.errors[0].reason

    def test_pointer_store_to_ctx(self):
        res = verify("""
            stxdw [r1+0], r10
            mov r0, 0
            exit
        """)
        assert not res.ok
        assert "leak" in res.errors[0].reason

    def test_stack_oob_constant(self):
        res = verify("ldxdw r0, [r10-520]\nexit")
        assert not res.ok
        assert "stack" in res.errors[0].reason

    def test_stack_above_frame(self):
        res = verify("ldxdw r0, [r10+8]\nexit")
        assert not res.ok

    def test_ctx_oob(self):
        res = verify("ldxdw r0, [r1+60]\nexit")
        assert not res.ok
        assert "ctx" in res.errors[0].reason

    def test_unbounded_ctx_index(self):
        res = verify("""
            ldxw r2, [r1+0]
            add r1, r2
            ldxw r0, [r1+0]
            exit
        """)
        assert not res.ok

    def test_misaligned_variable_stack_access(self):
        res = verify("""
            stdw [r10-8],  0
            stdw [r10-16], 0
            ldxw r2, [r1+0]
            and r2, 7
            mov r3, r10
            add r3, -16
            add r3, r2
            ldxdw r0, [r3+0]
            exit
        """)
        assert not res.ok
        assert "misaligned" in res.errors[0].reason

    def test_read_uninitialized_stack(self):
        res = verify("ldxdw r0, [r10-8]\nexit")
        assert not res.ok
        assert "uninitialized stack" in res.errors[0].reason

    def test_variable_read_touching_uninitialized_slot(self):
        res = verify("""
            stdw [r10-8], 0
            ldxw r2, [r1+0]
            and r2, 15
            mov r3, r10
            add r3, -16
            add r3, r2
            ldxb r0, [r3+0]
            exit
        """)
        assert not res.ok

    def test_write_to_frame_pointer(self):
        res = verify("mov r10, 0\nmov r0, 0\nexit")
        assert not res.ok
        assert "r10" in res.errors[0].reason

    def test_pointer_addition_of_two_pointers(self):
        res = verify("""
            mov r2, r10
            add r2, r1
            mov r0, 0
            exit
        """)
        assert not res.ok

    def test_32bit_op_on_pointer(self):
        res = verify("""
            mov r2, r10
            add32 r2, 4
            mov r0, 0
            exit
        """)
        assert not res.ok

    def test_mul_on_pointer(self):
        res = verify("""
            mov r2, r10
            mul r2, 2
            mov r0, 0
            exit
        """)
        assert not res.ok

    def test_loop_rejected(self):
        res = verify("""
        top:
            add r0, 1
            jne r0, 10, top
            exit
        """)
        assert not res.ok
        assert "control flow" in res.errors[0].reason

    def test_partial_overwrite_of_spilled_pointer(self):
        res = verify("""
            stxdw [r10-8], r1
            stb [r10-8], 0
            ldxdw r2, [r10-8]
            ldxw r0, [r2+0]
            exit
        """)
        assert not res.ok

    def test_cross_region_pointer_subtraction(self):
        res = verify("""
            mov r2, r10
            sub r2, r1
            mov r0, 0
            exit
        """)
        assert not res.ok


class TestRefinementPrecision:
    def test_jlt_bounds_are_used(self):
        assert verify("""
            ldxw r2, [r1+0]
            jlt r2, 56, small
            mov r0, 0
            exit
        small:
            and r2, -8
            mov r3, r10
            add r3, -64
            add r3, r2
            stdw [r10-8],  0
            stdw [r10-16], 0
            stdw [r10-24], 0
            stdw [r10-32], 0
            stdw [r10-40], 0
            stdw [r10-48], 0
            stdw [r10-56], 0
            stdw [r10-64], 0
            ldxdw r0, [r3+0]
            exit
        """).ok

    def test_jeq_makes_register_constant(self):
        assert verify("""
            ldxw r2, [r1+0]
            jeq r2, 4, known
            mov r0, 0
            exit
        known:
            add r1, r2
            ldxw r0, [r1+0]
            exit
        """).ok

    def test_same_program_without_refinement_rejected(self):
        res = verify("""
            ldxw r2, [r1+0]
            add r1, r2
            ldxw r0, [r1+0]
            exit
        """)
        assert not res.ok

    def test_jset_fallthrough_clears_bits(self):
        # !(r2 & ~7) means r2 <= 7: enough to bound a stack index.
        assert verify("""
            ldxw r2, [r1+0]
            jset r2, -8, out
            lsh r2, 3
            mov r3, r10
            add r3, -64
            add r3, r2
            stdw [r10-8],  0
            stdw [r10-16], 0
            stdw [r10-24], 0
            stdw [r10-32], 0
            stdw [r10-40], 0
            stdw [r10-48], 0
            stdw [r10-56], 0
            stdw [r10-64], 0
            ldxdw r0, [r3+0]
            exit
        out:
            mov r0, 0
            exit
        """).ok


class TestMirroredRefinement:
    def test_const_on_left_refines_register(self):
        # `jgt r2, r3, ...` with r2 == 8 constant means on the taken edge
        # 8 > r3, i.e. r3 < 8 — enough to bound the ctx access.
        assert verify("""
            mov r2, 8
            ldxw r3, [r1+0]
            jgt r2, r3, small
            mov r0, 0
            exit
        small:
            add r1, r3
            ldxb r0, [r1+0]
            exit
        """).ok

    def test_const_left_jle_fallthrough(self):
        # Fall-through of `jle r2(=55), r3` means 55 > r3, so r3 <= 55
        # and the ctx window [r3, r3+4) fits in 64 bytes... wait 55+4=59.
        assert verify("""
            mov r2, 55
            ldxw r3, [r1+0]
            jle r2, r3, big
            add r1, r3
            ldxb r0, [r1+0]
            exit
        big:
            mov r0, 0
            exit
        """).ok


class TestSignedRefinement:
    def test_signed_window_bounds_index(self):
        # jsge 0 + jslt 8 on a 64-bit scalar pins it to [0, 7] even though
        # the unsigned view alone couldn't use the signed lower bound.
        assert verify("""
            ldxdw r2, [r1+0]
            jsge r2, 0, nonneg
            mov r0, 0
            exit
        nonneg:
            jsge r2, 8, out
            lsh r2, 3
            mov r3, r10
            add r3, -64
            add r3, r2
            stdw [r10-8],  0
            stdw [r10-16], 0
            stdw [r10-24], 0
            stdw [r10-32], 0
            stdw [r10-40], 0
            stdw [r10-48], 0
            stdw [r10-56], 0
            stdw [r10-64], 0
            ldxdw r0, [r3+0]
            exit
        out:
            mov r0, 0
            exit
        """).ok

    def test_signed_refinement_infeasible_edge_pruned(self):
        # r2 == 5 then jslt r2, 0 can never be taken; the dead edge must
        # not poison the analysis.
        assert verify("""
            mov r2, 5
            jslt r2, 0, dead
            mov r0, 0
            exit
        dead:
            ldxdw r0, [r10-8]
            exit
        """).ok

    def test_signed_upper_bound_alone_insufficient(self):
        # Only jslt (no lower bound): r2 may be negative -> huge unsigned.
        res = verify("""
            ldxdw r2, [r1+0]
            jsge r2, 8, out
            lsh r2, 3
            mov r3, r10
            add r3, -64
            add r3, r2
            stdw [r10-64], 0
            ldxdw r0, [r3+0]
            exit
        out:
            mov r0, 0
            exit
        """)
        assert not res.ok


class TestStateCollection:
    def test_states_recorded(self):
        v = Verifier(ctx_size=64, collect_states=True)
        res = v.verify(assemble("""
            mov r2, 5
            and r2, 3
            mov r0, 0
            exit
        """))
        assert res.ok
        # After `mov r2, 5`, entry of insn 1 should know r2 == 5.
        state = v.states_at[1]
        assert state.regs[2].scalar.const_value() == 5

    def test_insns_processed_counted(self):
        res = verify_program(assemble("mov r0, 0\nexit"))
        assert res.insns_processed == 2


class TestSubregTruncation:
    """The 32-bit subregister view keeps 64-bit interval knowledge
    whenever the low words provably do not wrap."""

    U32 = (1 << 32) - 1

    def _subreg(self, lo, hi):
        from repro.domains.product import ScalarValue

        return Verifier._subreg(ScalarValue.from_range(lo, hi))

    def test_fits_in_32_bits(self):
        r = self._subreg(10, 20)
        assert (r.umin(), r.umax()) == (10, 20)

    def test_high_range_preserves_low_word(self):
        base = 5 << 32
        r = self._subreg(base + 5, base + 10)
        assert (r.umin(), r.umax()) == (5, 10)

    def test_wrapping_low_word_falls_back(self):
        # [2^32 - 2, 2^32 + 1]: low words wrap 0xFFFFFFFE -> 1.
        r = self._subreg((1 << 32) - 2, (1 << 32) + 1)
        assert r.umin() == 0
        for v in (self.U32 - 1, self.U32, 0, 1):
            assert r.contains(v)

    def test_huge_span_falls_back(self):
        r = self._subreg(0, 1 << 40)
        assert (r.umin(), r.umax()) == (0, self.U32)

    def test_mod32_keeps_dividend_bounds(self):
        # End to end through the 32-bit ALU path: even with an unknown,
        # possibly-zero divisor the remainder never exceeds the
        # (subregister) dividend bound.
        v = Verifier(ctx_size=64, collect_states=True)
        res = v.verify(assemble("""
            ldxw r2, [r1+0]
            ldxw r3, [r1+4]
            and r2, 15
            mod32 r2, r3
            mov r0, r2
            exit
        """))
        assert res.ok
        state = v.states_at[4]
        assert state.regs[2].scalar.umax() <= 15
