"""Assembler and disassembler tests, including full round-trips."""

import pytest

from repro.bpf import isa
from repro.bpf.assembler import AssemblyError, assemble
from repro.bpf.disassembler import format_instruction, format_program


class TestBasicAssembly:
    def test_mov_imm(self):
        prog = assemble("mov r1, 42\nexit")
        insn = prog[0]
        assert insn.opcode == isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K
        assert insn.dst == 1 and insn.imm == 42

    def test_mov_reg(self):
        insn = assemble("mov r1, r2\nexit")[0]
        assert insn.opcode == isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_X
        assert (insn.dst, insn.src) == (1, 2)

    def test_mov32(self):
        insn = assemble("mov32 r1, 5\nexit")[0]
        assert insn.cls() == isa.CLS_ALU

    def test_all_alu_mnemonics(self):
        text = "\n".join(
            f"{name} r1, 3" for name in
            ("add", "sub", "mul", "div", "or", "and", "lsh", "rsh",
             "mod", "xor", "arsh")
        ) + "\nneg r1\nexit"
        prog = assemble(text)
        assert len(prog) == 13

    def test_hex_and_negative_immediates(self):
        prog = assemble("mov r1, 0xff\nmov r2, -5\nexit")
        assert prog[0].imm == 255
        assert prog[1].imm == -5

    def test_lddw(self):
        insn = assemble("lddw r3, 0x1122334455667788\nexit")[0]
        assert insn.is_lddw() and insn.imm == 0x1122334455667788

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        ; leading comment
        mov r0, 1   ; trailing
        # hash comment
        exit
        """)
        assert len(prog) == 2


class TestMemoryOps:
    def test_load(self):
        insn = assemble("ldxdw r1, [r10-8]\nexit")[0]
        assert insn.cls() == isa.CLS_LDX
        assert (insn.dst, insn.src, insn.off) == (1, 10, -8)
        assert insn.size_bytes() == 8

    def test_all_sizes(self):
        for suffix, size in (("b", 1), ("h", 2), ("w", 4), ("dw", 8)):
            insn = assemble(f"ldx{suffix} r1, [r2+0]\nexit")[0]
            assert insn.size_bytes() == size

    def test_store_reg(self):
        insn = assemble("stxw [r10-4], r2\nexit")[0]
        assert insn.cls() == isa.CLS_STX
        assert (insn.dst, insn.src, insn.off) == (10, 2, -4)

    def test_store_imm(self):
        insn = assemble("stdw [r10-16], 99\nexit")[0]
        assert insn.cls() == isa.CLS_ST
        assert insn.imm == 99

    def test_spaces_in_memory_operand(self):
        insn = assemble("ldxdw r1, [ r10 - 8 ]\nexit")[0]
        assert insn.off == -8


class TestJumps:
    def test_label_forward(self):
        prog = assemble("""
            jeq r1, 0, done
            mov r0, 1
        done:
            exit
        """)
        assert prog[0].off == 1  # skip one insn

    def test_label_backward_rejected_by_cfg_but_assembles(self):
        prog = assemble("""
        top:
            mov r0, 0
            ja top
        """)
        assert prog[1].off == -2

    def test_relative_offsets(self):
        prog = assemble("jne r1, r2, +1\nexit\nexit")
        assert prog[0].off == 1

    def test_lddw_occupies_two_slots_for_labels(self):
        prog = assemble("""
            ja end
            lddw r1, 5
        end:
            exit
        """)
        # end is at slot 3 (ja=0, lddw=1-2), so offset = 3 - 1 = 2.
        assert prog[0].off == 2

    def test_jump32(self):
        insn = assemble("jeq32 r1, 5, +1\nexit\nexit")[0]
        assert insn.cls() == isa.CLS_JMP32

    def test_call_and_exit(self):
        prog = assemble("call 7\nexit")
        assert isa.BPF_OP(prog[0].opcode) == isa.JMP_CALL
        assert prog[0].imm == 7
        assert prog[1].is_exit()

    def test_signed_jumps(self):
        for name in ("jsgt", "jsge", "jslt", "jsle", "jset"):
            prog = assemble(f"{name} r1, 0, +1\nexit\nexit")
            assert prog[0].is_cond_jump()


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("ja nowhere\nexit")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nexit\na:\nexit")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("mov r11, 0\nexit")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects 2"):
            assemble("mov r1\nexit")

    def test_bad_integer(self):
        with pytest.raises(AssemblyError, match="expected integer"):
            assemble("mov r1, xyz\nexit")

    def test_error_carries_line_number(self):
        try:
            assemble("mov r0, 0\nbogus r1\nexit")
        except AssemblyError as e:
            assert e.line_no == 2
        else:
            pytest.fail("expected AssemblyError")


ROUNDTRIP_PROGRAM = """
entry:
    mov r0, 0
    mov32 r2, 10
    lddw r3, 0xdeadbeefcafebabe
    add r2, r3
    neg r2
    stxdw [r10-8], r2
    ldxdw r4, [r10-8]
    stb [r10-9], 1
    jset r4, 4, entry2
    ja end
entry2:
    arsh r4, 2
    jsge32 r4, r2, end
    mov r0, 1
end:
    exit
"""


class TestRoundTrip:
    def test_assemble_disassemble_assemble(self):
        prog1 = assemble(ROUNDTRIP_PROGRAM)
        text = format_program(prog1)
        prog2 = assemble(text)
        assert prog1.insns == prog2.insns

    def test_bytes_roundtrip(self):
        prog1 = assemble(ROUNDTRIP_PROGRAM)
        from repro.bpf.program import Program

        prog2 = Program.from_bytes(prog1.to_bytes())
        assert prog1.insns == prog2.insns

    def test_format_instruction_str(self):
        insn = assemble("add r1, r2\nexit")[0]
        assert format_instruction(insn) == "add r1, r2"
        assert str(insn) == "add r1, r2"
