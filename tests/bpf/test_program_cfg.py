"""Program container and CFG construction tests."""

import pytest

from repro.bpf.assembler import assemble
from repro.bpf.cfg import CFGError, build_cfg
from repro.bpf.program import Program, ProgramError
from repro.bpf.insn import Instruction
from repro.bpf import isa


class TestProgram:
    def test_slot_accounting_with_lddw(self):
        prog = assemble("mov r0, 0\nlddw r1, 5\nexit")
        assert prog.slot_of(0) == 0
        assert prog.slot_of(1) == 1
        assert prog.slot_of(2) == 3  # lddw took slots 1-2
        assert prog.total_slots == 4

    def test_index_at_mid_lddw_rejected(self):
        prog = assemble("lddw r1, 5\nexit")
        with pytest.raises(ProgramError):
            prog.index_at_slot(1)

    def test_jump_target_validation(self):
        bad = [
            Instruction(isa.CLS_JMP | isa.JMP_JA, off=5),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ]
        with pytest.raises(ProgramError, match="jump target"):
            Program(bad)

    def test_size_limit(self):
        insns = [
            Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, dst=0, imm=0)
        ] * (isa.MAX_INSNS + 1)
        with pytest.raises(ProgramError, match="too large"):
            Program(insns)

    def test_label_at(self):
        prog = assemble("start:\nmov r0, 0\nexit")
        assert prog.label_at(0) == "start"
        assert prog.label_at(1) is None

    def test_len_iter_getitem(self):
        prog = assemble("mov r0, 0\nexit")
        assert len(prog) == 2
        assert prog[1].is_exit()
        assert [i.opcode for i in prog]


class TestCFG:
    def test_straight_line_is_one_block(self):
        prog = assemble("mov r0, 0\nadd r0, 1\nexit")
        cfg = build_cfg(prog)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_diamond(self):
        prog = assemble("""
            mov r0, 0
            jeq r1, 0, left
            mov r0, 1
            ja end
        left:
            mov r0, 2
        end:
            exit
        """)
        cfg = build_cfg(prog)
        # entry, fall-through, taken, merge.
        assert len(cfg.blocks) == 4
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2
        merge = cfg.blocks[-1]
        assert sorted(merge.predecessors) == sorted(
            [b.block_id for b in cfg.blocks if merge.block_id in b.successors]
        )

    def test_loop_rejected(self):
        prog = assemble("""
        top:
            add r0, 1
            jne r0, 10, top
            exit
        """)
        with pytest.raises(CFGError, match="back-edge"):
            build_cfg(prog)

    def test_self_loop_rejected(self):
        prog = assemble("""
        top:
            ja top
        """)
        with pytest.raises(CFGError, match="back-edge"):
            build_cfg(prog)

    def test_unreachable_rejected(self):
        prog = assemble("""
            mov r0, 0
            exit
            mov r1, 1
            exit
        """)
        with pytest.raises(CFGError, match="unreachable"):
            build_cfg(prog)

    def test_fall_off_end_rejected(self):
        prog = assemble("mov r0, 0\nadd r0, 1")
        with pytest.raises(CFGError):
            build_cfg(prog)

    def test_cond_jump_last_insn_rejected(self):
        # Conditional jump whose fall-through runs off the end.
        prog = assemble("""
            jeq r1, 0, end
        end:
            exit
        """)
        # This one is fine (fall-through is `exit`)...
        build_cfg(prog)
        from repro.bpf.insn import Instruction
        from repro.bpf import isa
        from repro.bpf.program import Program

        bad = Program([
            Instruction(isa.CLS_JMP | isa.JMP_JEQ | isa.SRC_K, dst=1, imm=0, off=-1),
        ])
        with pytest.raises(CFGError):
            build_cfg(bad)

    def test_empty_program_rejected(self):
        with pytest.raises(CFGError, match="empty"):
            build_cfg(Program([]))

    def test_reverse_post_order_starts_at_entry(self):
        prog = assemble("""
            jeq r1, 0, a
            ja b
        a:
            ja b
        b:
            exit
        """)
        cfg = build_cfg(prog)
        order = cfg.reverse_post_order()
        assert order[0] == 0
        # every block appears exactly once
        assert sorted(order) == [b.block_id for b in cfg.blocks]
        # merge block comes after both predecessors
        merge = cfg.block_containing(len(prog) - 1).block_id
        assert order.index(merge) == len(order) - 1

    def test_block_containing(self):
        prog = assemble("mov r0, 0\nmov r1, 1\nexit")
        cfg = build_cfg(prog)
        assert cfg.block_containing(0) is cfg.blocks[0]
        assert cfg.block_containing(2) is cfg.blocks[0]
