"""Edge-path tests for verifier state machinery (slots, joins, errors)."""


from repro.bpf import assemble
from repro.bpf.verifier import Verifier
from repro.bpf.verifier.state import (
    AbstractState,
    RegKind,
    RegState,
    Region,
    StackSlot,
)


def verify(text: str):
    return Verifier(ctx_size=64).verify(assemble(text))


class TestRegStateJoin:
    def test_scalar_join_scalar(self):
        a = RegState.const(3)
        b = RegState.const(12)
        j = a.join(b)
        assert j.is_scalar()
        assert j.scalar.contains(3) and j.scalar.contains(12)

    def test_scalar_join_pointer_is_unusable(self):
        j = RegState.const(0).join(RegState.stack_ptr())
        assert j.kind == RegKind.NOT_INIT

    def test_pointer_join_different_regions_unusable(self):
        j = RegState.stack_ptr().join(RegState.ctx_ptr())
        assert j.kind == RegKind.NOT_INIT

    def test_pointer_join_same_region_joins_offsets(self):
        a = RegState.stack_ptr(-8)
        b = RegState.stack_ptr(-16)
        j = a.join(b)
        assert j.is_ptr() and j.region == Region.STACK
        assert j.offset.contains((-8) & ((1 << 64) - 1))
        assert j.offset.contains((-16) & ((1 << 64) - 1))

    def test_not_init_join_anything(self):
        assert RegState.not_init().join(RegState.const(1)).kind == RegKind.NOT_INIT

    def test_leq_not_init_is_top(self):
        assert RegState.const(5).leq(RegState.not_init())
        assert not RegState.not_init().leq(RegState.const(5))

    def test_str_forms(self):
        assert str(RegState.not_init()) == "?"
        assert "scalar" in str(RegState.const(1))
        assert "stack" in str(RegState.stack_ptr())


class TestStackSlotLattice:
    def test_spill_join_spill(self):
        a = StackSlot.spill(RegState.const(1))
        b = StackSlot.spill(RegState.const(3))
        j = a.join(b)
        assert j.kind == StackSlot.SPILL
        assert j.value.scalar.contains(1) and j.value.scalar.contains(3)

    def test_unwritten_dominates_join(self):
        # Joining with unwritten must stay unwritten (a path on which the
        # slot was never written forbids reads after the merge).
        j = StackSlot.spill(RegState.const(1)).join(StackSlot.unwritten())
        assert j.kind == StackSlot.UNWRITTEN

    def test_spill_join_misc(self):
        j = StackSlot.spill(RegState.const(1)).join(StackSlot.misc())
        assert j.kind == StackSlot.MISC

    def test_leq(self):
        spill = StackSlot.spill(RegState.const(1))
        assert spill.leq(StackSlot.misc())
        assert spill.leq(StackSlot.unwritten())
        assert not StackSlot.misc().leq(spill)

    def test_str(self):
        assert "spill" in str(StackSlot.spill(RegState.const(1)))
        assert str(StackSlot.misc()) == "misc"


class TestStateJoinThroughVerifier:
    def test_merge_of_pointer_and_scalar_register_rejected_on_use(self):
        res = verify("""
            ldxb r3, [r1+0]
            jeq r3, 0, other
            mov r2, r10
            ja merge
        other:
            mov r2, 5
        merge:
            mov r0, r2       ; r2 unusable after mixed-kind merge
            exit
        """)
        assert not res.ok
        assert "uninitialized" in res.errors[0].reason

    def test_merge_of_slot_written_on_one_path_only(self):
        res = verify("""
            ldxb r3, [r1+0]
            mov r0, 0
            jeq r3, 0, skip
            stdw [r10-8], 1
        skip:
            ldxdw r0, [r10-8]
            exit
        """)
        assert not res.ok
        assert "uninitialized stack" in res.errors[0].reason

    def test_pointer_spill_partial_store_rejected(self):
        # A 4-byte store of a *pointer* value cannot be tracked.
        res = verify("""
            stxw [r10-8], r1
            mov r0, 0
            exit
        """)
        assert not res.ok
        assert "partial-width" in res.errors[0].reason or "pointer" in res.errors[0].reason


class TestAbstractStateStr:
    def test_renders_initialized_regs(self):
        state = AbstractState.entry_state()
        text = str(state)
        assert "r1" in text and "r10" in text and "r5" not in text
