"""Tests for the path-sensitive verifier and its relation to the join engine."""

import pytest

from repro.bpf import assemble
from repro.bpf.verifier import PathSensitiveVerifier, Verifier

def _both(text: str):
    prog = assemble(text)
    return (
        Verifier(ctx_size=64).verify(prog),
        PathSensitiveVerifier(ctx_size=64).verify(prog),
    )


class TestAgreementOnSimplePrograms:
    @pytest.mark.parametrize("text,expected", [
        ("mov r0, 0\nexit", True),
        ("mov r0, r10\nexit", False),
        ("ldxdw r0, [r10-8]\nexit", False),
        ("""
            mov r2, 7
            stxdw [r10-8], r2
            ldxdw r0, [r10-8]
            exit
        """, True),
        ("""
            ldxw r2, [r1+0]
            and r2, 7
            add r1, r2
            ldxb r0, [r1+0]
            exit
        """, True),
    ])
    def test_same_verdicts(self, text, expected):
        join_res, path_res = _both(text)
        assert join_res.ok == path_res.ok == expected

    def test_loop_rejected_by_both(self):
        join_res, path_res = _both("""
        top:
            add r0, 1
            jne r0, 10, top
            exit
        """)
        assert not join_res.ok and not path_res.ok


class TestPathSensitivityGain:
    def test_path_only_program(self):
        # Per-path r3+offset is exactly 0 or 64; the paths correlate the
        # branch condition with the offset, so each access is [r10-72]?
        # — constructed instead below with a cleaner correlated program.
        text = """
            ldxb r2, [r1+0]
            mov r0, 0
            jeq r2, 0, low
            mov r3, 8
            ja merge
        low:
            mov r3, 16
        merge:
            jeq r2, 0, low2
            add r3, -8        ; r3 was 8 -> 0
            ja access
        low2:
            add r3, -16       ; r3 was 16 -> 0
        access:
            ; per path r3 == 0; after a join r3 would be {0, -8, ...}-ish.
            mov r4, r10
            add r4, -8
            add r4, r3
            stdw [r10-8], 0
            ldxdw r0, [r4+0]
            exit
        """
        join_res, path_res = _both(text)
        assert path_res.ok, path_res.error_messages()
        assert not join_res.ok  # the join forgets the correlation

    def test_join_acceptance_implies_path_acceptance(self):
        # On a battery of programs, path-sensitive is never stricter.
        programs = [
            "mov r0, 0\nexit",
            """
                ldxw r2, [r1+0]
                jge r2, 8, out
                add r1, r2
                ldxb r0, [r1+0]
                exit
            out:
                mov r0, 0
                exit
            """,
            """
                mov r2, 0
                jne r2, 0, dead
                mov r0, 0
                exit
            dead:
                ldxdw r0, [r10-8]
                exit
            """,
        ]
        for text in programs:
            join_res, path_res = _both(text)
            if join_res.ok:
                assert path_res.ok


class TestPruning:
    def test_pruning_counter_grows_on_diamonds(self):
        # Diamonds branching on an *unrefinable* condition (register vs
        # register, both unknown) whose arms converge to identical
        # states: every merge point's second arrival must be pruned.
        lines = ["ldxb r2, [r1+0]", "ldxb r3, [r1+1]", "mov r0, 0"]
        for i in range(6):
            lines += [
                f"jeq r2, r3, skip{i}",
                "mov r5, 1",
                f"ja merge{i}",
                f"skip{i}:",
                "mov r5, 1",
                f"merge{i}:",
            ]
        lines.append("exit")
        prog = assemble("\n".join(lines))
        verifier = PathSensitiveVerifier(ctx_size=64)
        result = verifier.verify(prog)
        assert result.ok
        assert verifier.pruned_count >= 6
        # Without pruning this would explode to 2^6 paths.
        assert result.insns_processed < 100

    def test_complexity_limit(self):
        # jset taken-edges carry no refinement, and each arm perturbs r4
        # differently, so no state subsumes another: path count doubles
        # per diamond and the kernel-style complexity limit must trip.
        lines = ["ldxb r2, [r1+0]", "mov r0, 0", "mov r4, 0"]
        for i in range(12):
            lines += [
                f"jset r2, {1 << (i % 8)}, skip{i}",
                f"add r4, {1 << i}",
                f"skip{i}:",
            ]
        lines.append("exit")
        prog = assemble("\n".join(lines))
        verifier = PathSensitiveVerifier(ctx_size=64, max_states=300)
        result = verifier.verify(prog)
        assert not result.ok
        assert "complexity limit" in result.errors[0].reason
