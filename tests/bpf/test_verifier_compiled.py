"""Differential tests: compiled abstract verifier vs. the reference walk.

The compiled pipeline (:mod:`repro.bpf.verifier.compiled`) must be
*semantically invisible*: for every program, :meth:`Verifier.verify`
(compiled closures) and :meth:`Verifier.verify_reference` (the original
decode-every-visit walk) must produce the same verdict, the same error
index and message, the same ``insns_processed`` count, byte-equal
``states_at`` maps, and identical ``on_transfer`` telemetry streams.

Coverage is two-pronged: an exhaustive ALU/jump opcode × width ×
operand-source sweep over hand-built programs with boundary operands,
and a fuzz sweep of ≥500 generator-produced programs per opcode profile
(which exercises loads, stores, pointer arithmetic, helper calls,
refinement chains, and the CFG/structural rejection paths end to end).
"""

import pytest

from repro.bpf import Program, assemble
from repro.bpf import isa
from repro.bpf.insn import Instruction
from repro.bpf.verifier import Verifier
from repro.fuzz import generate_program

U64 = (1 << 64) - 1

#: Immediates spanning sign boundaries and subregister truncation.
IMMEDIATES = [0, 1, 5, 31, 63, -1, -5, 0x7FFF_FFFF, -0x8000_0000]

#: lddw-loadable operand values with carry/sign/width boundary cases.
OPERANDS = [
    0, 1, 63, 0x7FFF_FFFF, 0x1_0000_0000, (1 << 63) - 1, 1 << 63, U64,
]

ALU_OPS = [
    isa.ALU_ADD, isa.ALU_SUB, isa.ALU_MUL, isa.ALU_DIV, isa.ALU_OR,
    isa.ALU_AND, isa.ALU_LSH, isa.ALU_RSH, isa.ALU_MOD, isa.ALU_XOR,
    isa.ALU_MOV, isa.ALU_ARSH,
]

COND_JUMP_OPS = [
    isa.JMP_JEQ, isa.JMP_JNE, isa.JMP_JGT, isa.JMP_JGE, isa.JMP_JLT,
    isa.JMP_JLE, isa.JMP_JSET, isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_JSLT,
    isa.JMP_JSLE,
]

LDDW = isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM


def both_verify(program, ctx_size=64):
    """Verify with both engines and compare every observable output."""
    compiled_log, reference_log = [], []
    compiled = Verifier(
        ctx_size=ctx_size, collect_states=True,
        on_transfer=lambda i, label, s: compiled_log.append((i, label, s)),
    )
    reference = Verifier(
        ctx_size=ctx_size, collect_states=True,
        on_transfer=lambda i, label, s: reference_log.append((i, label, s)),
    )
    got = compiled.verify(program)
    want = reference.verify_reference(program)

    assert got.ok == want.ok
    assert got.insns_processed == want.insns_processed
    assert len(got.errors) == len(want.errors)
    for g, w in zip(got.errors, want.errors):
        assert g.insn_index == w.insn_index
        assert g.reason == w.reason
        assert g.structural == w.structural
        assert str(g) == str(w)

    assert set(compiled.states_at) == set(reference.states_at)
    for idx, state in reference.states_at.items():
        assert compiled.states_at[idx] == state, f"states diverge at insn {idx}"

    assert compiled_log == reference_log
    return got


class TestALUSweep:
    """Every ALU op × width × operand source over boundary operands."""

    @pytest.mark.parametrize("op", ALU_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_register_source(self, op, cls):
        for a in OPERANDS:
            for b in OPERANDS:
                program = Program([
                    Instruction(LDDW, dst=1, imm=a),
                    Instruction(LDDW, dst=2, imm=b),
                    Instruction(cls | isa.SRC_X | op, dst=1, src=2),
                    Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                                dst=0, src=1),
                    Instruction(isa.CLS_JMP | isa.JMP_EXIT),
                ])
                both_verify(program)

    @pytest.mark.parametrize("op", ALU_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_immediate_source(self, op, cls):
        for a in OPERANDS:
            for imm in IMMEDIATES:
                program = Program([
                    Instruction(LDDW, dst=1, imm=a),
                    Instruction(cls | isa.SRC_K | op, dst=1, imm=imm),
                    Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                                dst=0, src=1),
                    Instruction(isa.CLS_JMP | isa.JMP_EXIT),
                ])
                both_verify(program)

    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_neg(self, cls):
        for a in OPERANDS:
            program = Program([
                Instruction(LDDW, dst=1, imm=a),
                Instruction(cls | isa.ALU_NEG, dst=1),
                Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                            dst=0, src=1),
                Instruction(isa.CLS_JMP | isa.JMP_EXIT),
            ])
            both_verify(program)

    def test_unknown_operand_shift(self):
        # Unknown-but-bounded shift counts take the join-over-counts path.
        program = assemble("""
            ldxb r2, [r1+0]
            and r2, 7
            mov r3, 0x1234
            lsh r3, r2
            mov r0, r3
            exit
        """)
        assert both_verify(program).ok


class TestJumpRefinementSweep:
    """Every conditional jump × width × operand source, with refinement
    visible in ``states_at`` at both successors."""

    @staticmethod
    def _jump_program(jump_insn, a, b):
        return Program([
            Instruction(LDDW, dst=1, imm=a),
            Instruction(LDDW, dst=2, imm=b),
            jump_insn,                                        # slot 4
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV,
                        dst=0, imm=1),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV,
                        dst=0, imm=2),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])

    @pytest.mark.parametrize("op", COND_JUMP_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_JMP, isa.CLS_JMP32])
    def test_immediate_source(self, op, cls):
        for a in OPERANDS:
            for imm in IMMEDIATES:
                jump = Instruction(cls | isa.SRC_K | op, dst=1, imm=imm, off=2)
                both_verify(self._jump_program(jump, a, 0))

    @pytest.mark.parametrize("op", COND_JUMP_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_JMP, isa.CLS_JMP32])
    def test_register_source(self, op, cls):
        # b constant (refines dst), a constant on the left (mirrored).
        for a in OPERANDS:
            jump = Instruction(cls | isa.SRC_X | op, dst=1, src=2, off=2)
            both_verify(self._jump_program(jump, a, 5))

    def test_mirrored_constant_left(self):
        # dst const, src unknown: the mirrored refinement path.
        program = assemble("""
            mov r2, 64
            ldxdw r3, [r1+0]
            jgt r2, r3, small
            mov r0, 0
            exit
        small:
            mov r0, 1
            exit
        """)
        assert both_verify(program).ok

    def test_refinement_feeds_bounds_check(self):
        # The classic pattern: a branch bound makes a ctx access safe.
        program = assemble("""
            ldxb r2, [r1+0]
            jgt r2, 56, reject
            mov r3, r1
            add r3, r2
            ldxb r0, [r3+0]
            exit
        reject:
            mov r0, 0
            exit
        """)
        assert both_verify(program).ok

    def test_infeasible_edge_pruned_identically(self):
        # r2 == 3 refines the taken edge to the constant; the nested
        # jne 3 then proves its taken edge infeasible (⊥) — the dead
        # branch must stay unanalyzed in both engines.
        program = assemble("""
            ldxb r2, [r1+0]
            jeq r2, 3, inner
            mov r0, 0
            exit
        inner:
            jne r2, 3, dead
            mov r0, 1
            exit
        dead:
            mov r0, 2
            exit
        """)
        result = both_verify(program)
        assert result.ok


class TestErrorParity:
    """Rejections must match on index, message, and structural flag."""

    CASES = [
        "mov r0, r1\nexit",                      # hmm: r1 is ctx ptr; leak
        "mov r0, r2\nexit",                      # uninit read
        "mov r10, 1\nmov r0, 0\nexit",           # frame-pointer write
        "neg r10\nmov r0, 0\nexit",              # pointer negation (r10)
        "add r1, r10\nmov r0, 0\nexit",          # ptr + ptr
        "sub r1, 1\nldxdw r0, [r1+0]\nexit",     # hmm below-ctx access
        "ldxdw r0, [r1+60]\nexit",               # ctx out of bounds
        "ldxdw r0, [r10-8]\nexit",               # uninit stack read
        "ldxw r0, [r1+1]\nexit",                 # misaligned ctx read
        "stxdw [r1+0], r10\nmov r0, 0\nexit",    # pointer store to ctx
        "exit",                                  # exit with uninit r0
        "mov r0, 0\nja +1\nexit\nexit",          # fine (sanity accept)
        "mov r3, r1\nsub r3, r10\nmov r0, r3\nexit",  # cross-region ptr sub
        "stxw [r10-8], r1\nmov r0, 0\nexit",     # partial pointer spill
        "call 1\nexit",                          # r0 unknown after call: ok
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_hand_built(self, text):
        both_verify(assemble(text))

    def test_structural_rejection(self):
        # A backward jump (loop) is a structural CFG rejection.
        program = Program([
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV, dst=0),
            Instruction(isa.CLS_JMP | isa.JMP_JA, off=-2),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])
        result = both_verify(program)
        assert not result.ok
        assert result.errors[0].structural

    def test_unsupported_opcode_lazy_parity(self):
        # An unsupported opcode on a *skipped* edge must not fail
        # compilation; when visited, both engines raise identically.
        unsupported = Instruction(isa.CLS_ALU64 | 0xD0, dst=1)  # BPF_END
        executed = Program([
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV, dst=1),
            unsupported,
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV, dst=0),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])
        result = both_verify(executed)
        assert not result.ok
        assert "unsupported ALU op" in result.errors[0].reason

    def test_unknown_helper_is_fine_statically(self):
        # The verifier models any helper id; only the interpreter knows
        # the registry. Clobbers must match across engines.
        program = assemble("mov r1, 2\ncall 99\nmov r0, 0\nexit")
        assert both_verify(program).ok


class TestGeneratedPrograms:
    """Fuzzed whole-program parity: ≥500 programs per opcode profile."""

    @pytest.mark.parametrize("profile", ["mixed", "alu", "memory", "branchy"])
    def test_generator_differential(self, profile):
        for seed in range(500):
            program = generate_program(seed, profile=profile).program
            both_verify(program)

    def test_compiled_form_is_cached(self):
        program = generate_program(1).program
        assert program.compiled_verifier(64) is program.compiled_verifier(64)
        assert program.compiled_verifier(32) is not program.compiled_verifier(64)
