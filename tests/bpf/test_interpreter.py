"""Concrete interpreter tests: real machine semantics."""

import pytest

from repro.bpf import CTX_BASE, Machine, assemble
from repro.bpf.interpreter import ExecutionError

U64 = (1 << 64) - 1


def run(text: str, ctx: bytes = b"\x00" * 64, **kw):
    return Machine(ctx=ctx, **kw).run(assemble(text))


class TestALU64:
    def test_add_wraps(self):
        r = run("lddw r1, 0xffffffffffffffff\nadd r1, 1\nmov r0, r1\nexit")
        assert r.return_value == 0

    def test_sub_wraps(self):
        r = run("mov r1, 0\nsub r1, 1\nmov r0, r1\nexit")
        assert r.return_value == U64

    def test_mul_wraps(self):
        r = run("lddw r1, 0x8000000000000000\nmul r1, 2\nmov r0, r1\nexit")
        assert r.return_value == 0

    def test_div_by_zero_is_zero(self):
        assert run("mov r1, 42\ndiv r1, 0\nmov r0, r1\nexit").return_value == 0

    def test_mod_by_zero_is_dividend(self):
        assert run("mov r1, 42\nmod r1, 0\nmov r0, r1\nexit").return_value == 42

    def test_div_mod_normal(self):
        assert run("mov r1, 42\ndiv r1, 5\nmov r0, r1\nexit").return_value == 8
        assert run("mov r1, 42\nmod r1, 5\nmov r0, r1\nexit").return_value == 2

    def test_bitwise(self):
        assert run("mov r1, 12\nand r1, 10\nmov r0, r1\nexit").return_value == 8
        assert run("mov r1, 12\nor r1, 10\nmov r0, r1\nexit").return_value == 14
        assert run("mov r1, 12\nxor r1, 10\nmov r0, r1\nexit").return_value == 6

    def test_shifts_mask_count_to_63(self):
        assert run("mov r1, 1\nmov r2, 65\nlsh r1, r2\nmov r0, r1\nexit"
                   ).return_value == 2

    def test_arsh_sign_extends(self):
        r = run("lddw r1, 0x8000000000000000\narsh r1, 1\nmov r0, r1\nexit")
        assert r.return_value == 0xC000_0000_0000_0000

    def test_neg(self):
        assert run("mov r1, 1\nneg r1\nmov r0, r1\nexit").return_value == U64

    def test_mov_negative_imm_sign_extends(self):
        assert run("mov r0, -1\nexit").return_value == U64


class TestALU32:
    def test_result_zero_extends(self):
        r = run("lddw r1, 0xffffffff00000001\nadd32 r1, 1\nmov r0, r1\nexit")
        assert r.return_value == 2

    def test_mov32_truncates(self):
        r = run("lddw r1, 0x1122334455667788\nmov32 r2, r1\nmov r0, r2\nexit")
        assert r.return_value == 0x55667788

    def test_arsh32(self):
        r = run("mov32 r1, 0x80000000\narsh32 r1, 4\nmov r0, r1\nexit")
        assert r.return_value == 0xF8000000

    def test_shift32_masks_to_31(self):
        r = run("mov32 r1, 1\nmov32 r2, 33\nlsh32 r1, r2\nmov r0, r1\nexit")
        assert r.return_value == 2


class TestJumps:
    def test_unsigned_vs_signed_comparison(self):
        # -1 (0xfff..f) is > 1 unsigned but < 1 signed.
        prog = """
            mov r1, -1
            mov r0, 0
            jgt r1, 1, unsigned_big
            exit
        unsigned_big:
            jslt r1, 1, signed_small
            exit
        signed_small:
            mov r0, 3
            exit
        """
        assert run(prog).return_value == 3

    def test_jmp32_compares_low_bits(self):
        prog = """
            lddw r1, 0xffffffff00000005
            mov r0, 0
            jeq32 r1, 5, yes
            exit
        yes:
            mov r0, 1
            exit
        """
        assert run(prog).return_value == 1

    def test_jset(self):
        prog = """
            mov r1, 6
            mov r0, 0
            jset r1, 4, yes
            exit
        yes:
            mov r0, 1
            exit
        """
        assert run(prog).return_value == 1

    def test_ja(self):
        prog = """
            mov r0, 7
            ja end
            mov r0, 0
        end:
            exit
        """
        assert run(prog).return_value == 7


class TestMemory:
    def test_stack_store_load(self):
        prog = """
            mov r1, 0x1234
            stxdw [r10-8], r1
            ldxdw r0, [r10-8]
            exit
        """
        assert run(prog).return_value == 0x1234

    def test_store_imm_and_partial_loads(self):
        prog = """
            stdw [r10-8], 0x11223344
            ldxb r0, [r10-8]
            exit
        """
        assert run(prog).return_value == 0x44  # little-endian low byte

    def test_ctx_read(self):
        ctx = bytes([7, 0, 0, 0]) + bytes(60)
        assert run("ldxw r0, [r1+0]\nexit", ctx=ctx).return_value == 7

    def test_ctx_write(self):
        prog = """
            mov r2, 0xAB
            stxb [r1+3], r2
            ldxb r0, [r1+3]
            exit
        """
        assert run(prog).return_value == 0xAB

    def test_stack_oob_low_raises(self):
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run("ldxdw r0, [r10-520]\nexit")

    def test_stack_oob_high_raises(self):
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run("ldxdw r0, [r10+0]\nexit")

    def test_ctx_oob_raises(self):
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run("ldxdw r0, [r1+60]\nexit")  # 60+8 > 64

    def test_wild_pointer_raises(self):
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run("mov r2, 0x1234\nldxdw r0, [r2+0]\nexit")


class TestCallsAndLimits:
    def test_helper_call(self):
        helpers = {1: lambda a, b, c, d, e: a + b}
        prog = """
            mov r1, 40
            mov r2, 2
            call 1
            exit
        """
        m = Machine(helpers=helpers)
        assert m.run(assemble(prog)).return_value == 42

    def test_call_clobbers_caller_saved(self):
        helpers = {1: lambda *a: 0}
        prog = """
            mov r1, 40
            mov r6, 99
            call 1
            mov r0, r6
            exit
        """
        # r6 is callee-saved and survives; r1 is clobbered.
        m = Machine(helpers=helpers)
        assert m.run(assemble(prog)).return_value == 99

    def test_unknown_helper_raises(self):
        with pytest.raises(ExecutionError, match="unknown helper"):
            run("call 99\nexit")

    def test_step_limit(self):
        # A long chain under a tiny step budget.
        prog = "\n".join(["mov r0, 0"] * 100) + "\nexit"
        with pytest.raises(ExecutionError, match="step limit"):
            Machine(step_limit=10).run(assemble(prog))

    def test_trace_recording(self):
        m = Machine(record_trace=True)
        result = m.run(assemble("mov r0, 0\nexit"))
        assert result.trace == [0, 1]

    def test_r1_is_ctx_pointer_at_entry(self):
        assert run("mov r0, r1\nexit").return_value == CTX_BASE
