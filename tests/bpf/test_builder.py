"""Tests for the programmatic ProgramBuilder API."""

import pytest

from repro.bpf import Machine, assemble
from repro.bpf.builder import ProgramBuilder
from repro.bpf.verifier import verify_program


class TestBuilding:
    def test_docstring_example(self):
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.ldx(2, 1, 0, size=1)
        b.alu_imm("and", 2, 7)
        b.jmp_imm("jeq", 2, 0, "done")
        b.alu_imm("add", 0, 1)
        b.label("done")
        b.exit_()
        program = b.build()
        assert len(program) == 6
        assert verify_program(program).ok

    def test_chaining(self):
        program = (
            ProgramBuilder()
            .mov_imm(0, 41)
            .alu_imm("add", 0, 1)
            .exit_()
            .build()
        )
        assert Machine().run(program).return_value == 42

    def test_forward_and_backward_labels(self):
        b = ProgramBuilder()
        b.mov_imm(0, 0)
        b.ja("end")          # forward
        b.label("mid")
        b.mov_imm(0, 9)
        b.label("end")
        b.exit_()
        program = b.build()
        assert Machine().run(program).return_value == 0

    def test_matches_assembler_output(self):
        text = """
            mov r0, 0
            ldxb r2, [r1+0]
            and r2, 7
            jeq r2, 0, done
            add r0, 1
        done:
            exit
        """
        built = (
            ProgramBuilder()
            .mov_imm(0, 0)
            .ldx(2, 1, 0, size=1)
            .alu_imm("and", 2, 7)
            .jmp_imm("jeq", 2, 0, "done")
            .alu_imm("add", 0, 1)
            .label("done")
            .exit_()
            .build()
        )
        assert built.insns == assemble(text).insns

    def test_ld_imm64_slots(self):
        b = ProgramBuilder()
        b.ld_imm64(1, 1 << 40)
        b.ja("end")
        b.label("end")
        b.exit_()
        program = b.build()
        # lddw occupies slots 0-1, ja at slot 2, exit at slot 3.
        assert program.jump_target_slot(1) == 3

    def test_memory_ops(self):
        program = (
            ProgramBuilder()
            .mov_imm(2, 0x55)
            .stx(10, -8, 2, size=8)
            .st_imm(10, -16, 7, size=4)
            .ldx(0, 10, -8, size=8)
            .exit_()
            .build()
        )
        assert Machine().run(program).return_value == 0x55
        assert verify_program(program).ok

    def test_register_jump_and_call(self):
        program = (
            ProgramBuilder()
            .mov_imm(2, 5)
            .mov_imm(3, 5)
            .mov_imm(0, 0)
            .jmp_reg("jeq", 2, 3, "same")
            .exit_()
            .label("same")
            .mov_imm(0, 1)
            .exit_()
            .build()
        )
        assert Machine().run(program).return_value == 1

    def test_alu32_forms(self):
        program = (
            ProgramBuilder()
            .ld_imm64(2, 0xFFFF_FFFF_0000_0001)
            .alu_imm("add", 2, 1, is64=False)
            .mov_reg(0, 2)
            .exit_()
            .build()
        )
        assert Machine().run(program).return_value == 2


class TestErrors:
    def test_undefined_label(self):
        b = ProgramBuilder().ja("nowhere").exit_()
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        b.exit_()
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_unknown_alu_op(self):
        with pytest.raises(KeyError):
            ProgramBuilder().alu_imm("frob", 0, 1)
