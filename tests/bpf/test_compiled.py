"""Differential tests: compiled interpreter vs. the reference step decoder.

The compiled pipeline (:mod:`repro.bpf.compiled`) must be *semantically
invisible*: for every program and input, :meth:`Machine.run` (compiled)
and :meth:`Machine.run_reference` (decode-every-step) must produce the
same return value, step count, final register file, trace, observation
sequence, and — on failing programs — the same error type and message.

Coverage is two-pronged: an exhaustive opcode × width × operand-source
sweep over hand-built programs with boundary operands, and a fuzz sweep
over generator-produced programs from every opcode profile.
"""

import random

import pytest

from repro.bpf import CTX_BASE, Machine, Program, assemble
from repro.bpf import isa
from repro.bpf.insn import Instruction
from repro.bpf.interpreter import ExecutionError
from repro.bpf.program import ProgramError
from repro.fuzz import generate_program

U64 = (1 << 64) - 1

#: Operand values that exercise carries, sign boundaries and subregister
#: truncation for every ALU/jump operator.
OPERANDS = [
    0, 1, 2, 5, 63, 64,
    0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 0x1_0000_0000,
    (1 << 63) - 1, 1 << 63, U64, 0x1122_3344_5566_7788,
]

#: Immediates must fit in s32 for non-lddw instructions.
IMMEDIATES = [0, 1, 5, 31, -1, -5, 0x7FFF_FFFF, -0x8000_0000]

ALU_OPS = [
    isa.ALU_ADD, isa.ALU_SUB, isa.ALU_MUL, isa.ALU_DIV, isa.ALU_OR,
    isa.ALU_AND, isa.ALU_LSH, isa.ALU_RSH, isa.ALU_MOD, isa.ALU_XOR,
    isa.ALU_MOV, isa.ALU_ARSH,
]

COND_JUMP_OPS = [
    isa.JMP_JEQ, isa.JMP_JNE, isa.JMP_JGT, isa.JMP_JGE, isa.JMP_JLT,
    isa.JMP_JLE, isa.JMP_JSET, isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_JSLT,
    isa.JMP_JSLE,
]

LDDW = isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM


def both(program, ctx=b"\x00" * 64, **kw):
    """Run compiled and reference on identical machines; compare outcomes.

    Returns the (compared-equal) compiled outcome, or the exception both
    raised.
    """
    m_compiled = Machine(ctx=ctx, **kw)
    m_reference = Machine(ctx=ctx, **kw)

    def outcome(machine, runner):
        try:
            return runner(program), None
        except (ExecutionError, ProgramError) as exc:
            return None, exc

    got, got_exc = outcome(m_compiled, m_compiled.run)
    want, want_exc = outcome(m_reference, m_reference.run_reference)

    if want_exc is not None:
        assert got_exc is not None, (
            f"reference raised {want_exc!r}, compiled returned {got!r}"
        )
        assert type(got_exc) is type(want_exc)
        assert str(got_exc) == str(want_exc)
        return got_exc
    assert got_exc is None, (
        f"reference returned {want!r}, compiled raised {got_exc!r}"
    )
    assert got.return_value == want.return_value
    assert got.steps == want.steps
    assert got.trace == want.trace
    assert m_compiled.regs == m_reference.regs
    assert m_compiled.stack == m_reference.stack
    assert m_compiled.ctx == m_reference.ctx
    return got


class TestALUSweep:
    """Every ALU op × width × operand source over boundary operands."""

    @pytest.mark.parametrize("op", ALU_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_register_source(self, op, cls):
        for a in OPERANDS:
            for b in OPERANDS:
                program = Program([
                    Instruction(LDDW, dst=1, imm=a),
                    Instruction(LDDW, dst=2, imm=b),
                    Instruction(cls | isa.SRC_X | op, dst=1, src=2),
                    Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                                dst=0, src=1),
                    Instruction(isa.CLS_JMP | isa.JMP_EXIT),
                ])
                both(program)

    @pytest.mark.parametrize("op", ALU_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_immediate_source(self, op, cls):
        for a in OPERANDS:
            for imm in IMMEDIATES:
                program = Program([
                    Instruction(LDDW, dst=1, imm=a),
                    Instruction(cls | isa.SRC_K | op, dst=1, imm=imm),
                    Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                                dst=0, src=1),
                    Instruction(isa.CLS_JMP | isa.JMP_EXIT),
                ])
                both(program)

    @pytest.mark.parametrize("cls", [isa.CLS_ALU, isa.CLS_ALU64])
    def test_neg(self, cls):
        for a in OPERANDS:
            program = Program([
                Instruction(LDDW, dst=1, imm=a),
                Instruction(cls | isa.ALU_NEG, dst=1),
                Instruction(isa.CLS_ALU64 | isa.SRC_X | isa.ALU_MOV,
                            dst=0, src=1),
                Instruction(isa.CLS_JMP | isa.JMP_EXIT),
            ])
            both(program)


class TestJumpSweep:
    """Every conditional jump × width × operand source, both outcomes."""

    @staticmethod
    def _jump_program(jump_insn, a, b):
        return Program([
            Instruction(LDDW, dst=1, imm=a),
            Instruction(LDDW, dst=2, imm=b),
            jump_insn,                                        # slot 4
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV,
                        dst=0, imm=1),                        # slot 5
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),          # slot 6
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV,
                        dst=0, imm=2),                        # slot 7
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])

    @pytest.mark.parametrize("op", COND_JUMP_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_JMP, isa.CLS_JMP32])
    def test_register_source(self, op, cls):
        for a in OPERANDS:
            for b in OPERANDS:
                jump = Instruction(cls | isa.SRC_X | op, dst=1, src=2, off=2)
                result = both(self._jump_program(jump, a, b))
                assert result.return_value in (1, 2)

    @pytest.mark.parametrize("op", COND_JUMP_OPS)
    @pytest.mark.parametrize("cls", [isa.CLS_JMP, isa.CLS_JMP32])
    def test_immediate_source(self, op, cls):
        for a in OPERANDS:
            for imm in IMMEDIATES:
                jump = Instruction(cls | isa.SRC_K | op, dst=1, imm=imm, off=2)
                both(self._jump_program(jump, a, 0))

    def test_unconditional(self):
        program = self._jump_program(
            Instruction(isa.CLS_JMP | isa.JMP_JA, off=2), 0, 0
        )
        assert both(program).return_value == 2


class TestMemorySweep:
    """Loads and stores at every access width, stack and ctx regions."""

    @pytest.mark.parametrize("size", [isa.SZ_B, isa.SZ_H, isa.SZ_W, isa.SZ_DW])
    def test_stack_roundtrip(self, size):
        for value in OPERANDS:
            program = Program([
                Instruction(LDDW, dst=1, imm=value),
                Instruction(isa.CLS_STX | size | isa.MODE_MEM,
                            dst=isa.FP_REG, src=1, off=-8),
                Instruction(isa.CLS_LDX | size | isa.MODE_MEM,
                            dst=0, src=isa.FP_REG, off=-8),
                Instruction(isa.CLS_JMP | isa.JMP_EXIT),
            ])
            both(program)

    @pytest.mark.parametrize("size", [isa.SZ_B, isa.SZ_H, isa.SZ_W, isa.SZ_DW])
    def test_ctx_load(self, size):
        ctx = bytes(range(1, 65))
        program = Program([
            Instruction(isa.CLS_LDX | size | isa.MODE_MEM,
                        dst=0, src=1, off=8),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])
        both(program, ctx=ctx)

    @pytest.mark.parametrize("size", [isa.SZ_B, isa.SZ_H, isa.SZ_W, isa.SZ_DW])
    def test_store_immediate(self, size):
        for imm in IMMEDIATES:
            program = Program([
                Instruction(isa.CLS_ST | size | isa.MODE_MEM,
                            dst=isa.FP_REG, imm=imm, off=-16),
                Instruction(isa.CLS_LDX | isa.SZ_DW | isa.MODE_MEM,
                            dst=0, src=isa.FP_REG, off=-16),
                Instruction(isa.CLS_JMP | isa.JMP_EXIT),
            ])
            both(program)

    def test_out_of_bounds_errors_match(self):
        program = assemble("mov r1, 64\nldxdw r0, [r1+0]\nexit")
        exc = both(program)
        assert isinstance(exc, ExecutionError)

    def test_ctx_boundary_errors_match(self):
        # One byte past the 64-byte context.
        program = assemble("ldxb r0, [r1+64]\nexit")
        both(program, ctx=b"\x00" * 64)


class TestControlEdges:
    def test_helper_call_parity(self):
        helpers = {7: lambda *args: sum(args)}
        program = assemble("mov r1, 2\nmov r2, 3\ncall 7\nexit")
        result = both(program, helpers=helpers)
        assert result.return_value == 5

    def test_unknown_helper_errors_match(self):
        program = assemble("call 99\nexit")
        exc = both(program)
        assert "unknown helper 99" in str(exc)

    def test_step_limit_errors_match(self):
        program = assemble("mov r0, 0\nadd r0, 1\nexit")
        exc = both(program, step_limit=2)
        assert "step limit exceeded" in str(exc)

    def test_fall_off_end_errors_match(self):
        program = Program([
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV, dst=0),
        ])
        exc = both(program)
        assert isinstance(exc, ProgramError)

    def test_unsupported_opcode_lazy_parity(self):
        # An unsupported opcode on a *skipped* path must not fail
        # compilation; on an executed path both modes raise identically.
        unsupported = Instruction(isa.CLS_ALU64 | 0xD0, dst=1)  # BPF_END
        skipped = Program([
            Instruction(isa.CLS_JMP | isa.JMP_JA, off=1),
            unsupported,
            Instruction(isa.CLS_ALU64 | isa.SRC_K | isa.ALU_MOV, dst=0),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])
        assert both(skipped).return_value == 0

        executed = Program([
            unsupported,
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ])
        exc = both(executed)
        assert "unsupported ALU op" in str(exc)

    def test_trace_parity(self):
        program = assemble("mov r0, 1\nja +1\nmov r0, 9\nexit")
        result = both(program, record_trace=True)
        assert result.trace == [0, 1, 3]

    def test_trace_none_without_recording(self):
        result = Machine().run(assemble("mov r0, 0\nexit"))
        assert result.trace is None

    def test_on_step_observation_parity(self):
        program = assemble(
            "mov r1, 10\nmov r2, 3\nsub r1, r2\nmov r0, r1\nexit"
        )

        def observe(log):
            return lambda idx, regs: log.append((idx, list(regs)))

        compiled_log, reference_log = [], []
        Machine().run(program, on_step=observe(compiled_log))
        Machine().run_reference(program, on_step=observe(reference_log))
        assert compiled_log == reference_log


class TestGeneratedPrograms:
    """Fuzzed whole-program parity across every opcode profile."""

    @pytest.mark.parametrize("profile", ["mixed", "alu", "memory", "branchy"])
    def test_generator_differential(self, profile):
        rng = random.Random(0xC0FFEE)
        for seed in range(60):
            program = generate_program(seed, profile=profile).program
            for _ in range(2):
                ctx = rng.randbytes(64)
                both(program, ctx=ctx, step_limit=100_000)

    def test_compiled_form_is_cached(self):
        program = generate_program(1).program
        assert program.compiled() is program.compiled()
