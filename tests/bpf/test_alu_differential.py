"""Property-based differential tests of interpreter ALU semantics.

For every ALU opcode (64- and 32-bit, register and immediate forms),
random operands are pushed through the interpreter and compared against
an independent Python model of BPF semantics.  This pins the concrete
machine the abstract operators are verified against.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf import Machine, assemble

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

u64s = st.integers(0, U64)
u32s = st.integers(0, U32)


def _s64(x):
    return x - (1 << 64) if x & (1 << 63) else x


def _s32(x):
    x &= U32
    return x - (1 << 32) if x & (1 << 31) else x


def run_alu(op: str, dst: int, src: int, is32: bool = False) -> int:
    suffix = "32" if is32 else ""
    text = f"""
        lddw r2, {dst:#x}
        lddw r3, {src:#x}
        {op}{suffix} r2, r3
        mov r0, r2
        exit
    """
    return Machine().run(assemble(text)).return_value


MODEL64 = {
    "add": lambda a, b: (a + b) & U64,
    "sub": lambda a, b: (a - b) & U64,
    "mul": lambda a, b: (a * b) & U64,
    "div": lambda a, b: 0 if b == 0 else a // b,
    "mod": lambda a, b: a if b == 0 else a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "lsh": lambda a, b: (a << (b & 63)) & U64,
    "rsh": lambda a, b: a >> (b & 63),
    "arsh": lambda a, b: (_s64(a) >> (b & 63)) & U64,
}

MODEL32 = {
    "add": lambda a, b: (a + b) & U32,
    "sub": lambda a, b: (a - b) & U32,
    "mul": lambda a, b: (a * b) & U32,
    "div": lambda a, b: 0 if (b & U32) == 0 else (a & U32) // (b & U32),
    "mod": lambda a, b: (a & U32) if (b & U32) == 0 else (a & U32) % (b & U32),
    "and": lambda a, b: (a & b) & U32,
    "or": lambda a, b: (a | b) & U32,
    "xor": lambda a, b: (a ^ b) & U32,
    "lsh": lambda a, b: ((a & U32) << (b & 31)) & U32,
    "rsh": lambda a, b: (a & U32) >> (b & 31),
    "arsh": lambda a, b: (_s32(a) >> (b & 31)) & U32,
}


@pytest.mark.parametrize("op", sorted(MODEL64))
@settings(max_examples=25, deadline=None)
@given(dst=u64s, src=u64s)
def test_alu64_matches_model(op, dst, src):
    assert run_alu(op, dst, src) == MODEL64[op](dst, src)


@pytest.mark.parametrize("op", sorted(MODEL32))
@settings(max_examples=25, deadline=None)
@given(dst=u64s, src=u64s)
def test_alu32_matches_model_and_zero_extends(op, dst, src):
    result = run_alu(op, dst, src, is32=True)
    expected = MODEL32[op](dst & U32, src & U32)
    assert result == expected
    assert result <= U32  # 32-bit ops zero-extend into the full register


@settings(max_examples=25, deadline=None)
@given(value=u64s)
def test_neg_both_widths(value):
    text64 = f"lddw r2, {value:#x}\nneg r2\nmov r0, r2\nexit"
    assert Machine().run(assemble(text64)).return_value == (-value) & U64
    text32 = f"lddw r2, {value:#x}\nneg32 r2\nmov r0, r2\nexit"
    assert Machine().run(assemble(text32)).return_value == (-(value & U32)) & U32
