"""Copy-on-write semantics of :class:`AbstractState` and the interned
register/slot singletons the compiled verifier leans on."""

from repro.bpf import isa
from repro.bpf.verifier import (
    AbstractState,
    RegKind,
    RegState,
    StackSlot,
)
from repro.domains.product import ScalarValue


class TestCopyOnWrite:
    def test_copy_shares_until_written(self):
        state = AbstractState.entry_state()
        clone = state.copy()
        assert clone._regs is state._regs
        assert clone._stack is state._stack

    def test_writes_to_copy_do_not_leak_back(self):
        state = AbstractState.entry_state()
        clone = state.copy()
        clone.set_reg(0, RegState.const(7))
        clone.set_slot(-8, StackSlot.misc())
        assert not state.get_reg(0).is_init()
        assert state.slot_for(-8).kind == StackSlot.UNWRITTEN
        assert clone.get_reg(0).scalar.const_value() == 7

    def test_writes_to_original_do_not_leak_into_copy(self):
        state = AbstractState.entry_state()
        clone = state.copy()
        state.set_reg(0, RegState.const(9))
        state.set_slot(-16, StackSlot.misc())
        assert not clone.get_reg(0).is_init()
        assert clone.slot_for(-16).kind == StackSlot.UNWRITTEN

    def test_regs_property_materializes_ownership(self):
        # Legacy call sites mutate ``state.regs[i]`` in place; the
        # property must hand them a private list.
        state = AbstractState.entry_state()
        clone = state.copy()
        clone.regs[0] = RegState.const(1)
        clone.stack[-8] = StackSlot.misc()
        assert not state.get_reg(0).is_init()
        assert -8 not in state.stack

    def test_chained_copies(self):
        a = AbstractState.entry_state()
        b = a.copy()
        c = b.copy()
        b.set_reg(2, RegState.const(2))
        c.set_reg(2, RegState.const(3))
        assert not a.get_reg(2).is_init()
        assert b.get_reg(2).scalar.const_value() == 2
        assert c.get_reg(2).scalar.const_value() == 3

    def test_copy_preserves_infeasible_flag(self):
        state = AbstractState.entry_state()
        state.infeasible = True
        assert state.copy().infeasible

    def test_equality_ignores_sharing(self):
        state = AbstractState.entry_state()
        clone = state.copy()
        clone.set_reg(0, RegState.const(1))
        other = AbstractState.entry_state()
        other.set_reg(0, RegState.const(1))
        assert clone == other
        assert clone != state

    def test_join_of_shared_states_is_cheap_and_correct(self):
        state = AbstractState.entry_state()
        clone = state.copy()
        joined = state.join(clone)
        assert joined == state

    def test_leq_identity_fast_path(self):
        state = AbstractState.entry_state()
        assert state.leq(state)
        assert state.leq(state.copy())


class TestInternedSingletons:
    def test_not_init_and_unknown_are_interned(self):
        assert RegState.not_init() is RegState.not_init()
        assert RegState.unknown() is RegState.unknown()
        assert RegState.unknown().scalar is ScalarValue.top()

    def test_small_consts_are_interned(self):
        assert RegState.const(5) is RegState.const(5)
        assert ScalarValue.const(5) is ScalarValue.const(5)

    def test_interning_preserves_equality_semantics(self):
        big = (1 << 40) + 12345
        assert RegState.const(big) == RegState.const(big)
        assert RegState.const(big) is not RegState.not_init()

    def test_regstate_is_immutable_and_hashable(self):
        reg = RegState.const(3)
        try:
            reg.kind = RegKind.PTR
            raised = False
        except AttributeError:
            raised = True
        assert raised
        assert hash(reg) == hash(RegState.const(3))

    def test_entry_state_registers(self):
        state = AbstractState.entry_state()
        assert state.get_reg(1).is_ptr()
        assert state.get_reg(isa.FP_REG).is_ptr()
        assert not state.get_reg(0).is_init()


class TestStackSlotInterning:
    def test_unwritten_and_misc_are_interned(self):
        assert StackSlot.unwritten() is StackSlot.unwritten()
        assert StackSlot.misc() is StackSlot.misc()

    def test_join_returns_interned_non_spill(self):
        misc = StackSlot.misc().join(StackSlot.misc())
        assert misc is StackSlot.misc()
        unwritten = StackSlot.unwritten().join(StackSlot.misc())
        assert unwritten is StackSlot.unwritten()

    def test_hash_consistent_with_eq(self):
        spill_a = StackSlot.spill(RegState.const(1))
        spill_b = StackSlot.spill(RegState.const(1))
        assert spill_a == spill_b
        assert hash(spill_a) == hash(spill_b)
        assert len({spill_a, spill_b}) == 1
        assert len({StackSlot.misc(), StackSlot.unwritten()}) == 2

    def test_slots_are_immutable(self):
        slot = StackSlot.spill(RegState.const(1))
        try:
            slot.kind = StackSlot.MISC
            raised = False
        except AttributeError:
            raised = True
        assert raised
