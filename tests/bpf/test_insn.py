"""Instruction representation and binary encode/decode tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bpf import isa
from repro.bpf.insn import (
    Instruction,
    decode,
    decode_program,
    encode,
    encode_program,
)


class TestValidation:
    def test_bad_registers_rejected(self):
        with pytest.raises(ValueError):
            Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, dst=11)
        with pytest.raises(ValueError):
            Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_X, dst=0, src=11)

    def test_bad_offset_rejected(self):
        with pytest.raises(ValueError):
            Instruction(isa.CLS_JMP | isa.JMP_JA, off=1 << 15)

    def test_bad_imm_rejected(self):
        with pytest.raises(ValueError):
            Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, imm=1 << 32)

    def test_lddw_allows_64bit_imm(self):
        insn = Instruction(
            isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=1,
            imm=0xDEAD_BEEF_1234_5678,
        )
        assert insn.is_lddw()
        assert insn.slots() == 2

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction(0x100)


class TestClassification:
    def test_alu_classes(self):
        a64 = Instruction(isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_K, imm=1)
        a32 = Instruction(isa.CLS_ALU | isa.ALU_ADD | isa.SRC_K, imm=1)
        assert a64.is_alu() and a64.is_alu64()
        assert a32.is_alu() and not a32.is_alu64()

    def test_jump_kinds(self):
        exit_ = Instruction(isa.CLS_JMP | isa.JMP_EXIT)
        ja = Instruction(isa.CLS_JMP | isa.JMP_JA, off=2)
        jeq = Instruction(isa.CLS_JMP | isa.JMP_JEQ | isa.SRC_K, imm=1, off=1)
        assert exit_.is_exit() and not exit_.is_cond_jump()
        assert ja.is_ja() and not ja.is_cond_jump()
        assert jeq.is_cond_jump()

    def test_memory_kinds(self):
        ld = Instruction(isa.CLS_LDX | isa.SZ_DW | isa.MODE_MEM, dst=1, src=10, off=-8)
        stx = Instruction(isa.CLS_STX | isa.SZ_W | isa.MODE_MEM, dst=10, src=1, off=-4)
        st = Instruction(isa.CLS_ST | isa.SZ_B | isa.MODE_MEM, dst=10, off=-1, imm=7)
        assert ld.is_load() and ld.size_bytes() == 8
        assert stx.is_store() and stx.size_bytes() == 4
        assert st.is_store() and st.size_bytes() == 1


class TestEncoding:
    def test_regular_insn_is_8_bytes(self):
        insn = Instruction(isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_K, dst=2, imm=5)
        assert len(encode(insn)) == 8

    def test_lddw_is_16_bytes(self):
        insn = Instruction(isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=1, imm=1 << 40)
        assert len(encode(insn)) == 16

    def test_known_encoding_matches_kernel_layout(self):
        # mov r1, 7 => opcode b7, regs 01, off 0000, imm 07000000 (LE).
        insn = Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, dst=1, imm=7)
        assert encode(insn) == bytes.fromhex("b701000007000000")

    def test_src_reg_packing(self):
        insn = Instruction(isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_X, dst=2, src=3)
        raw = encode(insn)
        assert raw[1] == 0x32  # src in high nibble, dst in low

    def test_roundtrip_lddw(self):
        insn = Instruction(
            isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=5,
            imm=0xAABB_CCDD_EEFF_0011,
        )
        assert decode(encode(insn)) == insn

    def test_truncated_lddw_rejected(self):
        insn = Instruction(isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=1, imm=1 << 40)
        with pytest.raises(ValueError):
            decode(encode(insn)[:8])

    def test_program_roundtrip(self):
        insns = [
            Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, dst=0, imm=0),
            Instruction(isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=1, imm=1 << 50),
            Instruction(isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_X, dst=0, src=1),
            Instruction(isa.CLS_JMP | isa.JMP_EXIT),
        ]
        assert decode_program(encode_program(insns)) == insns

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            decode_program(b"\x00" * 7)


@st.composite
def simple_instructions(draw):
    kind = draw(st.sampled_from(["alu_k", "alu_x", "jmp", "ld", "st"]))
    dst = draw(st.integers(0, 10))
    src = draw(st.integers(0, 10))
    off = draw(st.integers(-(1 << 15), (1 << 15) - 1))
    imm = draw(st.integers(-(1 << 31), (1 << 31) - 1))
    if kind == "alu_k":
        op = draw(st.sampled_from(sorted(isa.ALU_OP_NAMES)))
        return Instruction(isa.CLS_ALU64 | op | isa.SRC_K, dst=dst, imm=imm)
    if kind == "alu_x":
        op = draw(st.sampled_from(sorted(isa.ALU_OP_NAMES)))
        return Instruction(isa.CLS_ALU64 | op | isa.SRC_X, dst=dst, src=src)
    if kind == "jmp":
        op = draw(st.sampled_from(sorted(isa.JMP_OP_NAMES)))
        return Instruction(isa.CLS_JMP | op | isa.SRC_K, dst=dst, off=off, imm=imm)
    size = draw(st.sampled_from([isa.SZ_B, isa.SZ_H, isa.SZ_W, isa.SZ_DW]))
    if kind == "ld":
        return Instruction(isa.CLS_LDX | size | isa.MODE_MEM, dst=dst, src=src, off=off)
    return Instruction(isa.CLS_ST | size | isa.MODE_MEM, dst=dst, off=off, imm=imm)


@given(simple_instructions())
def test_encode_decode_roundtrip(insn):
    assert decode(encode(insn)) == insn
