"""Canonical-form soundness and verdict-memo behavior.

The load-bearing property: a program and its canonical form are
*indistinguishable* to every consumer — verifier verdict (including
error index/message), telemetry stream, and concrete execution — so a
verdict cached under the canonical hash can be served to any structural
twin.  The sweeps below exercise that equivalence per opcode family and
over generated programs from every fuzz profile; the cache tests pin
that a hit is byte-identical to the miss that populated it.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bpf import assemble, isa
from repro.bpf.canon import (
    CANON_VERSION,
    STORE_FORMAT_VERSION,
    CachedVerdict,
    VerdictCache,
    canonical_hash,
    canonicalize,
    canonical_records,
)
from repro.bpf.insn import Instruction
from repro.bpf.interpreter import ExecutionError, Machine
from repro.bpf.program import Program, ProgramError
from repro.bpf.verifier import Verifier
from repro.fuzz import generate_program
from repro.fuzz.driver import program_seed
from repro.fuzz.generator import PROFILES

U64 = (1 << 64) - 1

ALU_OPS = (
    isa.ALU_ADD, isa.ALU_SUB, isa.ALU_MUL, isa.ALU_DIV, isa.ALU_OR,
    isa.ALU_AND, isa.ALU_LSH, isa.ALU_RSH, isa.ALU_MOD, isa.ALU_XOR,
    isa.ALU_MOV, isa.ALU_ARSH,
)
COND_JUMP_OPS = (
    isa.JMP_JEQ, isa.JMP_JGT, isa.JMP_JGE, isa.JMP_JSET, isa.JMP_JNE,
    isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_JLT, isa.JMP_JLE, isa.JMP_JSLT,
    isa.JMP_JSLE,
)
IMMEDIATES = (0, 1, 5, 31, 63, 65, -1, -5, 0x7FFF_FFFF, -0x8000_0000,
              0xFFFF_FFFF)


# -- equivalence fingerprints --------------------------------------------------


def verdict_fingerprint(program, ctx_size=64, cache=None):
    """Everything a verifier consumer can observe, as comparable data."""
    events = []
    verifier = Verifier(
        ctx_size=ctx_size,
        on_transfer=lambda idx, label, scalar: events.append(
            (idx, label, scalar)
        ),
        verdict_cache=cache,
    )
    result = verifier.verify(program)
    return (
        result.ok,
        result.insns_processed,
        result.error_messages(),
        [e.structural for e in result.errors],
        events,
    )


def run_fingerprint(program, ctx):
    """Concrete observation stream: per-step (index, registers) + outcome."""
    steps = []
    machine = Machine(ctx=ctx, step_limit=10_000)
    try:
        result = machine.run(
            program, on_step=lambda idx, regs: steps.append((idx, tuple(regs)))
        )
        return ("ok", result.return_value, result.steps, steps)
    except ExecutionError as exc:
        return ("crash", str(exc), None, steps)
    except ProgramError as exc:
        return ("fellout", str(exc), None, steps)


def assert_equivalent(program):
    canon = canonicalize(program)
    assert verdict_fingerprint(canon) == verdict_fingerprint(program)
    for seed in (0, 1):
        ctx = random.Random(seed).randbytes(64)
        assert run_fingerprint(canon, ctx) == run_fingerprint(program, ctx)
    # Same hash (twins), and materialization is idempotent.
    assert canonical_hash(canon) == canonical_hash(program)
    assert canonicalize(canon).insns == canon.insns


# -- hash semantics ------------------------------------------------------------


class TestCanonicalHash:
    def test_ignores_labels(self):
        insns = assemble("mov r0, 1\nexit").insns
        assert canonical_hash(Program(list(insns))) == canonical_hash(
            Program(list(insns), labels={"entry": 0})
        )

    def test_ignores_dead_fields_on_imm_alu(self):
        # src and off are dead for a SRC_K ALU op; junk there must not
        # change the hash (the verifier and interpreter never read them).
        op = isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_K
        clean = Program([Instruction(op, 0, 0, 0, 7), _exit()])
        junk = Program([Instruction(op, 0, 3, 11, 7), _exit()])
        assert canonical_hash(junk) == canonical_hash(clean)
        assert_equivalent(junk)

    def test_imm_spelling_collapses_for_32bit_ops(self):
        op = isa.CLS_ALU | isa.ALU_ADD | isa.SRC_K
        a = Program([_mov(0, 1), Instruction(op, 0, 0, 0, -1), _exit()])
        b = Program(
            [_mov(0, 1), Instruction(op, 0, 0, 0, 0xFFFF_FFFF), _exit()]
        )
        assert canonical_hash(a) == canonical_hash(b)
        assert verdict_fingerprint(a) == verdict_fingerprint(b)

    def test_imm_spelling_distinct_for_64bit_ops(self):
        # -1 means 2^64-1 under a 64-bit op; 0xFFFFFFFF does not.
        op = isa.CLS_ALU64 | isa.ALU_ADD | isa.SRC_K
        a = Program([_mov(0, 1), Instruction(op, 0, 0, 0, -1), _exit()])
        b = Program(
            [_mov(0, 1), Instruction(op, 0, 0, 0, 0xFFFF_FFFF), _exit()]
        )
        assert canonical_hash(a) != canonical_hash(b)

    def test_shift_count_masked_to_width(self):
        op = isa.CLS_ALU64 | isa.ALU_LSH | isa.SRC_K
        a = Program([_mov(0, 1), Instruction(op, 0, 0, 0, 65), _exit()])
        b = Program([_mov(0, 1), Instruction(op, 0, 0, 0, 1), _exit()])
        assert canonical_hash(a) == canonical_hash(b)
        assert verdict_fingerprint(a) == verdict_fingerprint(b)

    def test_distinguishes_semantics(self):
        base = Program([_mov(0, 1), _exit()])
        assert canonical_hash(Program([_mov(0, 2), _exit()])) != (
            canonical_hash(base)
        )
        assert canonical_hash(Program([_mov(1, 1), _exit()])) != (
            canonical_hash(base)
        )

    def test_jump_targets_hash_in_index_space(self):
        # Both jumps skip one instruction, but over different bodies —
        # same target *index* arithmetic, different programs, and the
        # records store the index, not the raw offset.
        prog = assemble("""
            mov r0, 0
            jeq r0, 0, +1
            mov r0, 9
            exit
        """)
        records = canonical_records(prog)
        assert records[1][3] == 3    # target = instruction index of exit
        assert_equivalent(prog)

    def test_call_keeps_helper_id(self):
        op = isa.CLS_JMP | isa.JMP_CALL
        a = Program([Instruction(op, 0, 0, 0, 1), _mov(0, 0), _exit()])
        b = Program([Instruction(op, 0, 0, 0, 2), _mov(0, 0), _exit()])
        assert canonical_hash(a) != canonical_hash(b)
        # The interpreter's unknown-helper message quotes the raw imm —
        # it must survive the canonical round-trip exactly.
        neg = Program([Instruction(op, 0, 0, 0, -7), _mov(0, 0), _exit()])
        assert_equivalent(neg)


def _mov(dst, imm):
    return Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_K, dst, 0, 0, imm)


def _mov_reg(dst, src):
    return Instruction(isa.CLS_ALU64 | isa.ALU_MOV | isa.SRC_X, dst, src, 0, 0)


def _exit():
    return Instruction(isa.CLS_JMP | isa.JMP_EXIT, 0, 0, 0, 0)


# -- semantics preservation sweeps ---------------------------------------------


class TestCanonicalizationPreservesSemantics:
    @pytest.mark.parametrize("cls", (isa.CLS_ALU, isa.CLS_ALU64))
    @pytest.mark.parametrize("op", ALU_OPS)
    def test_alu_imm_sweep(self, cls, op):
        for imm in IMMEDIATES:
            assert_equivalent(Program([
                _mov(0, 13),
                Instruction(cls | op | isa.SRC_K, 0, 0, 0, imm),
                _mov(0, 0),
                _exit(),
            ]))

    @pytest.mark.parametrize("cls", (isa.CLS_ALU, isa.CLS_ALU64))
    @pytest.mark.parametrize("op", ALU_OPS)
    def test_alu_reg_sweep(self, cls, op):
        assert_equivalent(Program([
            _mov(0, 13),
            _mov(2, 5),
            Instruction(cls | op | isa.SRC_X, 0, 2, 0, 0),
            _mov(0, 0),
            _exit(),
        ]))

    @pytest.mark.parametrize("cls", (isa.CLS_ALU, isa.CLS_ALU64))
    def test_neg_ignores_src_and_imm(self, cls):
        clean = Program([
            _mov(0, 13),
            Instruction(cls | isa.ALU_NEG, 0, 0, 0, 0),
            _mov(0, 0), _exit(),
        ])
        junk = Program([
            _mov(0, 13),
            Instruction(cls | isa.ALU_NEG, 0, 4, 0, 99),
            _mov(0, 0), _exit(),
        ])
        assert canonical_hash(junk) == canonical_hash(clean)
        assert_equivalent(junk)

    @pytest.mark.parametrize("cls", (isa.CLS_JMP, isa.CLS_JMP32))
    @pytest.mark.parametrize("op", COND_JUMP_OPS)
    def test_cond_jump_sweep(self, cls, op):
        for imm in (0, 1, -1, 0x7FFF_FFFF):
            assert_equivalent(Program([
                _mov(1, 5),
                Instruction(cls | op | isa.SRC_K, 1, 0, 1, imm),
                _mov(0, 7),
                _exit(),
            ]))
        assert_equivalent(Program([
            _mov(1, 5),
            _mov(2, 3),
            Instruction(cls | op | isa.SRC_X, 1, 2, 1, 0),
            _mov(0, 7),
            _exit(),
        ]))

    def test_memory_ops(self):
        assert_equivalent(assemble("""
            mov r0, 7
            stxdw [r10-8], r0
            ldxdw r3, [r10-8]
            stb [r10-16], 300
            ldxb r4, [r10-16]
            ldxw r5, [r1+0]
            mov r0, 0
            exit
        """))

    def test_st_imm_masked_to_stored_width(self):
        # A 1-byte store keeps only the low byte; spellings that agree
        # on it are structurally identical.
        op = isa.CLS_ST | isa.SZ_B | isa.MODE_MEM
        a = Program([
            Instruction(op, 10, 0, -8, 0x101), _mov(0, 0), _exit(),
        ])
        b = Program([
            Instruction(op, 10, 0, -8, 1), _mov(0, 0), _exit(),
        ])
        assert canonical_hash(a) == canonical_hash(b)
        assert verdict_fingerprint(a) == verdict_fingerprint(b)
        assert_equivalent(a)

    def test_lddw(self):
        assert_equivalent(assemble("""
            lddw r0, 0xFFFFFFFFFFFFFFFF
            lddw r2, -1
            mov r0, 0
            exit
        """))

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_generated_programs(self, profile):
        for i in range(60):
            program = generate_program(
                program_seed(1234, i), profile
            ).program
            assert_equivalent(program)


# -- the verdict memo ----------------------------------------------------------


class TestVerdictCache:
    def _twin(self, text):
        """Two structurally identical Program objects (separate caches)."""
        insns = assemble(text).insns
        return Program(list(insns)), Program(list(insns))

    def test_hit_is_byte_identical_to_miss(self):
        cache = VerdictCache()
        a, b = self._twin("mov r0, 1\nadd r0, 2\nexit")
        miss = verdict_fingerprint(a, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        hit = verdict_fingerprint(b, cache=cache)
        assert cache.hits == 1
        assert hit == miss

    def test_rejecting_verdicts_cached_with_error_detail(self):
        cache = VerdictCache()
        a, b = self._twin("mov r0, r3\nexit")   # r3 uninitialized
        miss = verdict_fingerprint(a, cache=cache)
        hit = verdict_fingerprint(b, cache=cache)
        assert cache.hits == 1
        assert hit == miss
        assert not hit[0] and hit[2]            # rejected, message kept

    def test_keyed_on_ctx_size(self):
        cache = VerdictCache()
        program = assemble("ldxw r0, [r1+60]\nexit")
        ok = verdict_fingerprint(program, ctx_size=64, cache=cache)
        small = verdict_fingerprint(program, ctx_size=8, cache=cache)
        assert ok[0] and not small[0]
        assert cache.hits == 0 and cache.misses == 2

    def test_collect_states_bypasses_cache(self):
        cache = VerdictCache()
        program = assemble("mov r0, 1\nexit")
        verifier = Verifier(collect_states=True, verdict_cache=cache)
        assert verifier.verify(program).ok
        assert len(cache) == 0 and cache.lookups == 0
        assert verifier.states_at          # states still collected

    def test_lru_eviction_and_refresh(self):
        cache = VerdictCache(max_entries=2)
        entry = CachedVerdict(True, 0, "", False, 1, ())
        cache.put(("a", 64), entry)
        cache.put(("b", 64), entry)
        assert cache.get(("a", 64)) is entry    # refresh "a"
        cache.put(("c", 64), entry)             # evicts "b", the LRU
        assert cache.evictions == 1
        assert ("b", 64) not in cache
        assert ("a", 64) in cache and ("c", 64) in cache

    def test_require_plans_treats_planless_entry_as_miss(self):
        cache = VerdictCache()
        program = assemble("mov r0, 1\nexit")
        verdict_fingerprint(program, cache=cache)   # stored without plans
        key = (program.canonical_hash(), 64)
        assert cache.get(key) is not None
        assert cache.get(key, require_plans=True) is None
        # Rejected entries carry no plans and need none.
        rejected = assemble("mov r0, r3\nexit")
        verdict_fingerprint(rejected, cache=cache)
        assert cache.get(
            (rejected.canonical_hash(), 64), require_plans=True
        ) is not None

    def test_persistence_round_trip(self, tmp_path):
        cache = VerdictCache()
        accepted, _ = self._twin("mov r0, 1\nexit")
        rejected, _ = self._twin("mov r0, r3\nexit")
        verdict_fingerprint(accepted, cache=cache)
        verdict_fingerprint(rejected, cache=cache)
        store = tmp_path / "verdicts.json"
        cache.save(store)
        loaded = VerdictCache.load(store)
        assert loaded.to_payload() == cache.to_payload()
        # A loaded entry serves hits with identical observable output.
        assert verdict_fingerprint(
            Program(list(accepted.insns)), cache=loaded
        ) == verdict_fingerprint(accepted)
        assert loaded.hits == 1

    def test_load_missing_store_is_fresh(self, tmp_path):
        cache = VerdictCache.load(tmp_path / "absent.json")
        assert len(cache) == 0

    def test_load_truncated_store_is_a_clear_error(self, tmp_path):
        # A crash mid-save leaves a partially written JSON file; loading
        # it must name the file and the problem, not dump a traceback
        # from deep inside the decoder.
        cache = VerdictCache()
        verdict_fingerprint(assemble("mov r0, 1\nexit"), cache=cache)
        store = tmp_path / "verdicts.json"
        cache.save(store)
        text = store.read_text()
        store.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError) as exc:
            VerdictCache.load(store)
        message = str(exc.value)
        assert "corrupt or truncated" in message
        assert str(store) in message
        assert "delete it" in message

    def test_load_malformed_store_is_a_clear_error(self, tmp_path):
        # Valid JSON, wrong shape: entries records missing fields.
        store = tmp_path / "verdicts.json"
        payload = VerdictCache().to_payload()
        payload["entries"] = [["deadbeef", 64]]   # no verdict record
        store.write_text(json.dumps(payload))
        with pytest.raises(ValueError) as exc:
            VerdictCache.load(store)
        message = str(exc.value)
        assert str(store) in message
        assert "malformed" in message

    def test_load_non_dict_store_is_a_clear_error(self, tmp_path):
        store = tmp_path / "verdicts.json"
        store.write_text(json.dumps(["not", "a", "store"]))
        with pytest.raises(ValueError) as exc:
            VerdictCache.load(store)
        assert str(store) in str(exc.value)

    def test_version_mismatch_raises(self, tmp_path):
        store = tmp_path / "verdicts.json"
        payload = VerdictCache().to_payload()
        for field, bogus in (
            ("format_version", STORE_FORMAT_VERSION + 1),
            ("canon_version", CANON_VERSION + 1),
        ):
            store.write_text(json.dumps(dict(payload, **{field: bogus})))
            with pytest.raises(ValueError):
                VerdictCache.load(store)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            VerdictCache(max_entries=0)


class TestOracleWithCache:
    def _report_dict(self, report):
        from dataclasses import asdict

        return asdict(report)

    def test_oracle_report_identical_with_and_without_cache(self):
        from repro.fuzz.oracle import DifferentialOracle

        cache = VerdictCache()
        for i in range(20):
            program = generate_program(program_seed(7, i), "mixed").program
            plain = DifferentialOracle().check_program(
                program, input_seed_base=i
            )
            twin = Program(list(program.insns))
            cached = DifferentialOracle(verdict_cache=cache).check_program(
                twin, input_seed_base=i
            )
            assert self._report_dict(cached) == self._report_dict(plain)
        assert cache.misses == 20

    def test_oracle_hit_skips_walk_but_matches(self):
        from repro.fuzz.oracle import DifferentialOracle

        cache = VerdictCache()
        program = generate_program(program_seed(11, 3), "mixed").program
        first = DifferentialOracle(verdict_cache=cache).check_program(
            program, input_seed_base=5
        )
        twin = Program(list(program.insns))
        second = DifferentialOracle(verdict_cache=cache).check_program(
            twin, input_seed_base=5
        )
        assert cache.hits >= 1
        assert self._report_dict(second) == self._report_dict(first)

    def test_oracle_upgrades_planless_entry(self):
        from repro.fuzz.oracle import DifferentialOracle

        cache = VerdictCache()
        program = assemble("mov r0, 1\nadd r0, 2\nexit")
        verdict_fingerprint(program, cache=cache)   # plain verifier entry
        key = (program.canonical_hash(), 64)
        assert cache.get(key).plans is None
        report = DifferentialOracle(verdict_cache=cache).check_program(
            Program(list(program.insns))
        )
        assert report.verdict == "accepted"
        assert cache.get(key).plans is not None


class TestWorkerShards:
    def test_drain_and_absorb_merge_like_obs_shards(self):
        parent = VerdictCache()
        worker = VerdictCache()
        a, _ = (assemble("mov r0, 1\nexit"), None)
        b, _ = (assemble("mov r0, 2\nexit"), None)
        verdict_fingerprint(a, cache=worker)
        shard1 = worker.drain_new()
        verdict_fingerprint(b, cache=worker)
        verdict_fingerprint(Program(list(a.insns)), cache=worker)   # hit
        shard2 = worker.drain_new()
        assert len(shard1["entries"]) == 1
        assert len(shard2["entries"]) == 1          # only the new entry
        assert shard2["hits"] == 1                  # deltas, not totals
        parent.absorb(shard1)
        parent.absorb(shard2)
        assert len(parent) == 2
        assert parent.hits == 1 and parent.misses == 2
        # Keep-first: re-absorbing cannot duplicate or clobber.
        parent.absorb(shard1)
        assert len(parent) == 2

    def test_absorb_upgrades_planless_entries(self):
        parent = VerdictCache()
        program = assemble("mov r0, 1\nexit")
        verdict_fingerprint(program, cache=parent)   # plan-less
        worker = VerdictCache()
        from repro.fuzz.oracle import DifferentialOracle

        DifferentialOracle(verdict_cache=worker).check_program(
            Program(list(program.insns))
        )
        parent.absorb(worker.drain_new())
        key = (program.canonical_hash(), 64)
        assert parent.get(key).plans is not None
