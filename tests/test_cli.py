"""CLI integration tests (python -m repro)."""

import json
import re

import pytest

from repro.cli import main

SAFE = """
    mov r0, 0
    stxdw [r10-8], r0
    ldxdw r2, [r10-8]
    add r0, r2
    exit
"""

UNSAFE = """
    ldxdw r0, [r10-8]
    exit
"""


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.s"
    path.write_text(SAFE)
    return str(path)


@pytest.fixture
def unsafe_file(tmp_path):
    path = tmp_path / "unsafe.s"
    path.write_text(UNSAFE)
    return str(path)


class TestVerify:
    def test_accepts(self, safe_file, capsys):
        assert main(["verify", safe_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_rejects(self, unsafe_file, capsys):
        assert main(["verify", unsafe_file]) == 1
        assert "REJECTED" in capsys.readouterr().out


class TestRun:
    def test_runs(self, safe_file, capsys):
        assert main(["run", safe_file]) == 0
        assert "r0 = 0" in capsys.readouterr().out

    def test_ctx_bytes(self, tmp_path, capsys):
        path = tmp_path / "ctx.s"
        path.write_text("ldxb r0, [r1+0]\nexit")
        assert main(["run", str(path), "--ctx", "2a"]) == 0
        assert "r0 = 42" in capsys.readouterr().out

    def test_trace(self, safe_file, capsys):
        assert main(["run", safe_file, "--trace"]) == 0
        assert "trace:" in capsys.readouterr().out


class TestAnalyze:
    def test_dumps_states(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "scalar" in out

    def test_rejects(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file]) == 1


class TestAsmDisasm:
    def test_roundtrip(self, safe_file, tmp_path, capsys):
        out = tmp_path / "prog.bin"
        assert main(["asm", safe_file, "-o", str(out)]) == 0
        assert out.stat().st_size % 8 == 0
        assert main(["disasm", str(out)]) == 0
        text = capsys.readouterr().out
        assert "exit" in text and "stxdw" in text


class TestCheckOp:
    def test_sat(self, capsys):
        assert main(["check-op", "add", "--width", "6"]) == 0
        assert "SOUND" in capsys.readouterr().out

    def test_exhaustive(self, capsys):
        assert main(["check-op", "add", "--width", "3",
                     "--method", "exhaustive"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_exhaustive_shift(self, capsys):
        assert main(["check-op", "lsh", "--width", "3",
                     "--method", "exhaustive"]) == 0

    def test_random(self, capsys):
        assert main(["check-op", "mul", "--width", "64",
                     "--method", "random", "--trials", "200"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_unknown_op_exhaustive(self, capsys):
        assert main(["check-op", "nope", "--method", "exhaustive"]) == 2


class TestCampaignCli:
    ARGS = ["campaign", "--budget", "24", "--rounds", "2", "--seed", "7"]

    def test_clean_run_exit_zero_and_schema(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "programs/sec" in out
        assert "per-operator imprecision" in out

        payload = json.loads(report_path.read_text())
        assert payload["format_version"] == 1
        assert payload["programs"] == 24
        assert payload["operators"], "report lists no operators"
        assert payload["ranking"], "report has no operator ranking"
        for entry in payload["operators"].values():
            assert set(entry) >= {
                "occurrences", "gamma_hist", "tightness_sum",
                "tightness_max", "rejections", "rejected_clean",
                "imprecision_mass",
            }

    def test_top_ranked_operator_matches_library_run(self, tmp_path):
        from repro.fuzz import CampaignSpec, run_precision_campaign

        report_path = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())

        expected = run_precision_campaign(
            CampaignSpec(budget=24, rounds=2, seed=7)
        ).report.ranked()[0].op
        assert payload["ranking"][0] == expected
        # Labels follow the transfer-function naming scheme.
        assert re.fullmatch(
            r"(refine_)?[a-z]+(32|64)|cfg|load|store|lddw|exit|call|ja",
            payload["ranking"][0],
        )

    def test_seed_propagation(self, tmp_path):
        a, b, c = (tmp_path / n for n in ("a.json", "b.json", "c.json"))
        assert main(self.ARGS + ["--report", str(a)]) == 0
        assert main(self.ARGS + ["--report", str(b)]) == 0
        assert a.read_text() == b.read_text()
        assert main([
            "campaign", "--budget", "24", "--rounds", "2", "--seed", "8",
            "--report", str(c),
        ]) == 0
        assert a.read_text() != c.read_text()

    def test_markdown_and_corpus_written(self, tmp_path, capsys):
        md = tmp_path / "report.md"
        corpus = tmp_path / "corpus.json"
        assert main(self.ARGS + [
            "--markdown", str(md), "--corpus", str(corpus),
        ]) == 0
        assert md.read_text().startswith("# Campaign precision report")
        from repro.fuzz import Corpus
        Corpus.load(corpus)  # parses

    def test_state_resume(self, tmp_path, capsys):
        state = tmp_path / "state"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + [
            "--state", str(state), "--report", str(first),
        ]) == 0
        assert (state / "state.json").exists()
        assert main(self.ARGS + [
            "--state", str(state), "--report", str(second),
        ]) == 0
        assert first.read_text() == second.read_text()


class TestEval:
    def test_table1(self, capsys):
        assert main(["eval", "table1", "--width", "5"]) == 0
        assert "bitwidth" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["eval", "fig4", "--width", "4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["eval", "fig5", "--pairs", "30"]) == 0
        assert "Figure 5" in capsys.readouterr().out
