"""CLI integration tests (python -m repro)."""

import json
import re
from pathlib import Path

import pytest

from repro.cli import main

SAFE = """
    mov r0, 0
    stxdw [r10-8], r0
    ldxdw r2, [r10-8]
    add r0, r2
    exit
"""

UNSAFE = """
    ldxdw r0, [r10-8]
    exit
"""


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.s"
    path.write_text(SAFE)
    return str(path)


@pytest.fixture
def unsafe_file(tmp_path):
    path = tmp_path / "unsafe.s"
    path.write_text(UNSAFE)
    return str(path)


class TestVerify:
    def test_accepts(self, safe_file, capsys):
        assert main(["verify", safe_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_rejects(self, unsafe_file, capsys):
        assert main(["verify", unsafe_file]) == 1
        assert "REJECTED" in capsys.readouterr().out


class TestRun:
    def test_runs(self, safe_file, capsys):
        assert main(["run", safe_file]) == 0
        assert "r0 = 0" in capsys.readouterr().out

    def test_ctx_bytes(self, tmp_path, capsys):
        path = tmp_path / "ctx.s"
        path.write_text("ldxb r0, [r1+0]\nexit")
        assert main(["run", str(path), "--ctx", "2a"]) == 0
        assert "r0 = 42" in capsys.readouterr().out

    def test_trace(self, safe_file, capsys):
        assert main(["run", safe_file, "--trace"]) == 0
        assert "trace:" in capsys.readouterr().out


class TestAnalyze:
    def test_dumps_states(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "scalar" in out

    def test_rejects(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file]) == 1


class TestAsmDisasm:
    def test_roundtrip(self, safe_file, tmp_path, capsys):
        out = tmp_path / "prog.bin"
        assert main(["asm", safe_file, "-o", str(out)]) == 0
        assert out.stat().st_size % 8 == 0
        assert main(["disasm", str(out)]) == 0
        text = capsys.readouterr().out
        assert "exit" in text and "stxdw" in text


class TestCheckOp:
    def test_sat(self, capsys):
        assert main(["check-op", "add", "--width", "6"]) == 0
        assert "SOUND" in capsys.readouterr().out

    def test_exhaustive(self, capsys):
        assert main(["check-op", "add", "--width", "3",
                     "--method", "exhaustive"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_exhaustive_shift(self, capsys):
        assert main(["check-op", "lsh", "--width", "3",
                     "--method", "exhaustive"]) == 0

    def test_random(self, capsys):
        assert main(["check-op", "mul", "--width", "64",
                     "--method", "random", "--trials", "200"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_unknown_op_exhaustive(self, capsys):
        assert main(["check-op", "nope", "--method", "exhaustive"]) == 2


class TestCampaignCli:
    ARGS = ["campaign", "--budget", "24", "--rounds", "2", "--seed", "7"]

    def test_clean_run_exit_zero_and_schema(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "programs/sec" in out
        assert "per-operator imprecision" in out

        payload = json.loads(report_path.read_text())
        assert payload["format_version"] == 1
        assert payload["programs"] == 24
        assert payload["operators"], "report lists no operators"
        assert payload["ranking"], "report has no operator ranking"
        for entry in payload["operators"].values():
            assert set(entry) >= {
                "occurrences", "gamma_hist", "tightness_sum",
                "tightness_max", "rejections", "rejected_clean",
                "imprecision_mass",
            }

    def test_top_ranked_operator_matches_library_run(self, tmp_path):
        from repro.fuzz import CampaignSpec, run_precision_campaign

        report_path = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())

        expected = run_precision_campaign(
            CampaignSpec(budget=24, rounds=2, seed=7)
        ).report.ranked()[0].op
        assert payload["ranking"][0] == expected
        # Labels follow the transfer-function naming scheme.
        assert re.fullmatch(
            r"(refine_)?[a-z]+(32|64)|cfg|load|store|lddw|exit|call|ja",
            payload["ranking"][0],
        )

    def test_seed_propagation(self, tmp_path):
        a, b, c = (tmp_path / n for n in ("a.json", "b.json", "c.json"))
        assert main(self.ARGS + ["--report", str(a)]) == 0
        assert main(self.ARGS + ["--report", str(b)]) == 0
        assert a.read_text() == b.read_text()
        assert main([
            "campaign", "--budget", "24", "--rounds", "2", "--seed", "8",
            "--report", str(c),
        ]) == 0
        assert a.read_text() != c.read_text()

    def test_markdown_and_corpus_written(self, tmp_path, capsys):
        md = tmp_path / "report.md"
        corpus = tmp_path / "corpus.json"
        assert main(self.ARGS + [
            "--markdown", str(md), "--corpus", str(corpus),
        ]) == 0
        assert md.read_text().startswith("# Campaign precision report")
        from repro.fuzz import Corpus
        Corpus.load(corpus)  # parses

    def test_state_resume(self, tmp_path, capsys):
        state = tmp_path / "state"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + [
            "--state", str(state), "--report", str(first),
        ]) == 0
        assert (state / "state.json").exists()
        assert main(self.ARGS + [
            "--state", str(state), "--report", str(second),
        ]) == 0
        assert first.read_text() == second.read_text()


class TestEval:
    def test_table1(self, capsys):
        assert main(["eval", "table1", "--width", "5"]) == 0
        assert "bitwidth" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["eval", "fig4", "--width", "4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["eval", "fig5", "--pairs", "30"]) == 0
        assert "Figure 5" in capsys.readouterr().out


class TestCampaignDiffCli:
    # Mutation off to match campaign-diff's run-mode default (identical
    # program streams are what make cross-run diffs meaningful).
    CAMPAIGN = ["campaign", "--budget", "24", "--rounds", "2", "--seed", "7",
                "--mutate-fraction", "0"]

    @pytest.fixture
    def saved_report(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert main(self.CAMPAIGN + ["--report", str(path)]) == 0
        return path

    def test_identical_reports_pass_gate(self, saved_report, tmp_path, capsys):
        copy = tmp_path / "copy.json"
        copy.write_text(saved_report.read_text())
        assert main([
            "campaign-diff", str(saved_report), str(copy),
        ]) == 0
        out = capsys.readouterr().out
        assert "gate: ok" in out
        assert "+0.0%" in out

    def test_run_mode_matches_baseline(self, saved_report, capsys):
        # Omitting the candidate runs a campaign with the given spec;
        # determinism makes it byte-identical to the saved baseline.
        assert main([
            "campaign-diff", str(saved_report),
            "--budget", "24", "--rounds", "2", "--seed", "7",
        ]) == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_regression_fails_gate(self, saved_report, tmp_path, capsys):
        payload = json.loads(saved_report.read_text())
        label, entry = next(iter(payload["operators"].items()))
        entry["tightness_sum"] += 10_000
        entry["imprecision_mass"] += 10_000
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(payload))
        assert main(["campaign-diff", str(saved_report), str(worse)]) == 1
        assert "tightness mass regressed" in capsys.readouterr().err

    def test_no_gate_reports_only(self, saved_report, tmp_path, capsys):
        payload = json.loads(saved_report.read_text())
        label, entry = next(iter(payload["operators"].items()))
        entry["tightness_sum"] += 10_000
        entry["imprecision_mass"] += 10_000
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(payload))
        assert main([
            "campaign-diff", str(saved_report), str(worse), "--no-gate",
        ]) == 0
        assert "GATE:" in capsys.readouterr().out

    def test_violations_fail_gate(self, saved_report, tmp_path, capsys):
        payload = json.loads(saved_report.read_text())
        payload["violations"] = 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert main(["campaign-diff", str(saved_report), str(bad)]) == 1
        assert "soundness violation" in capsys.readouterr().err

    def test_markdown_artifact(self, saved_report, tmp_path):
        md = tmp_path / "diff.md"
        assert main([
            "campaign-diff", str(saved_report), str(saved_report),
            "--markdown", str(md),
        ]) == 0
        assert md.read_text().startswith("# Campaign precision diff")

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        assert main(["campaign-diff", str(tmp_path / "nope.json")]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_corrupt_candidate_is_usage_error(self, saved_report, tmp_path,
                                              capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["campaign-diff", str(saved_report), str(bad)]) == 2
        assert "cannot load candidate" in capsys.readouterr().err


    def test_report_conflicts_with_explicit_candidate(self, saved_report,
                                                      tmp_path, capsys):
        out = tmp_path / "out.json"
        assert main([
            "campaign-diff", str(saved_report), str(saved_report),
            "--report", str(out),
        ]) == 2
        assert "conflicts" in capsys.readouterr().err
        assert not out.exists()

    def test_non_object_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["campaign-diff", str(bad)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_campaign_flags_conflict_with_explicit_candidate(
            self, saved_report, capsys):
        assert main([
            "campaign-diff", str(saved_report), str(saved_report),
            "--seed", "9", "--budget", "500",
        ]) == 2
        err = capsys.readouterr().err
        assert "--budget" in err and "--seed" in err
        assert "no effect" in err


class TestBenchCli:
    def test_measures_and_writes_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_throughput.json"
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "programs/sec" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        assert set(payload["metrics"]) == {
            "driver_mixed", "driver_alu", "driver_memory", "driver_branchy",
            "verify_mixed", "verify_alu", "verify_memory", "verify_branchy",
            "verify_repeat",
            "campaign_telemetry", "campaign_feedback",
        }
        assert all(v > 0 for v in payload["metrics"].values())

    def test_self_baseline_passes(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        # Re-measuring against our own numbers with a huge tolerance
        # cannot regress.
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(out),
            "--max-regression", "1000",
        ]) == 0
        assert "baseline: ok" in capsys.readouterr().out

    def test_regression_warns_but_passes(self, tmp_path, capsys):
        baseline = tmp_path / "fast.json"
        baseline.write_text(json.dumps({
            "schema_version": 1, "budget": 4, "seed": 42, "repeats": 1,
            "metrics": {"driver_mixed": 1e9},
        }))
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(baseline),
        ]) == 0
        assert "WARN: driver_mixed" in capsys.readouterr().out

    def test_regression_fails_when_strict(self, tmp_path, capsys):
        baseline = tmp_path / "fast.json"
        baseline.write_text(json.dumps({
            "schema_version": 1, "budget": 4, "seed": 42, "repeats": 1,
            "metrics": {"driver_mixed": 1e9},
        }))
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(baseline), "--strict",
        ]) == 1
        assert "WARN: driver_mixed" in capsys.readouterr().err

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(bad),
        ]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_wrong_schema_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "v0.json"
        bad.write_text(json.dumps({"schema_version": 0, "metrics": {}}))
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(bad),
        ]) == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestVerifyJsonAndWire:
    def test_json_accept_payload(self, safe_file, capsys):
        assert main(["verify", safe_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "accept"
        assert payload["ok"] is True
        assert len(payload["canonical_hash"]) == 64
        assert payload["cached"] is False
        assert "error" not in payload

    def test_json_reject_payload(self, unsafe_file, capsys):
        assert main(["verify", unsafe_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "reject"
        assert isinstance(payload["error"]["index"], int)
        assert payload["error"]["reason"]

    def test_wire_input(self, tmp_path, capsys):
        from repro.bpf import assemble

        wire = tmp_path / "prog.bin"
        wire.write_bytes(assemble(SAFE).to_bytes())
        assert main(["verify", str(wire), "--wire"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_wire_garbage_is_usage_error(self, tmp_path, capsys):
        wire = tmp_path / "prog.bin"
        wire.write_bytes(b"\xde\xad\xbe\xef")
        assert main(["verify", str(wire), "--wire"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeCli:
    def test_corrupt_verdict_store_is_usage_error(self, tmp_path, capsys):
        store = tmp_path / "verdicts.json"
        store.write_text("{truncated")
        assert main(["serve", "--verdict-cache", str(store)]) == 2
        err = capsys.readouterr().err
        assert "corrupt or truncated" in err
        assert str(store) in err

    def test_serve_end_to_end(self, tmp_path):
        """Boot `repro serve` in a subprocess, verify over HTTP, SIGTERM."""
        import os
        import re
        import signal
        import subprocess
        import sys as _sys
        import urllib.request

        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"(http://[\d.]+:\d+)", line)
            assert match, f"no URL in serve banner: {line!r}"
            url = match.group(1)
            with urllib.request.urlopen(url + "/healthz", timeout=10) as r:
                assert json.loads(r.read())["status"] == "ok"
            body = bytes.fromhex("b700000000000000" "9500000000000000")
            request = urllib.request.Request(
                url + "/verify", data=body,
                headers={"Content-Type": "application/octet-stream"},
            )
            with urllib.request.urlopen(request, timeout=10) as r:
                assert json.loads(r.read())["verdict"] == "accept"
        finally:
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "serve: shutdown" in output
        assert "verdict cache:" in output


class TestResilienceFlags:
    @pytest.fixture(autouse=True)
    def disarmed(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def test_port_in_use_is_one_line_error(self, capsys):
        import socket

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        port = sock.getsockname()[1]
        try:
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            sock.close()
        err = capsys.readouterr().err
        assert "cannot bind" in err and str(port) in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", [
        ["serve", "--faults", "bogus"],
        ["fuzz", "--budget", "2", "--faults", "nosuch.site=1"],
        ["campaign", "--budget", "2", "--faults", "seed=x"],
    ])
    def test_bad_faults_spec_is_usage_error(self, command, capsys):
        assert main(command) == 2
        assert "error: --faults" in capsys.readouterr().err

    def test_bad_batch_retries_is_usage_error(self, capsys):
        assert main(["fuzz", "--budget", "2", "--batch-retries", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_fuzz_accepts_chaos_flags(self, capsys):
        assert main([
            "fuzz", "--budget", "4", "--seed", "1", "--no-shrink",
            "--faults", "seed=1,campaign.worker.crash=0",
            "--batch-retries", "2", "--lease-timeout", "30",
        ]) == 0
        assert "programs" in capsys.readouterr().out

    def test_serve_announces_degradation_limits(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--max-queue", "8", "--request-timeout", "2.5"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            assert "serve:" in proc.stdout.readline()
            limits = proc.stdout.readline()
            assert "max-queue=8" in limits
            assert "request-timeout=2.5" in limits
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=30)
        assert proc.returncode == 0


class TestBenchMarkdown:
    def test_markdown_without_baseline_is_usage_error(self, tmp_path, capsys):
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--markdown", str(tmp_path / "diff.md"),
        ]) == 2
        assert "--markdown" in capsys.readouterr().err

    def test_markdown_diff_table(self, tmp_path, capsys):
        baseline = tmp_path / "bench.json"
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--out", str(baseline),
        ]) == 0
        capsys.readouterr()
        diff = tmp_path / "diff.md"
        assert main([
            "bench", "--budget", "4", "--campaign-budget", "4",
            "--repeats", "1", "--baseline", str(baseline),
            "--max-regression", "1000", "--markdown", str(diff),
        ]) == 0
        assert "markdown ->" in capsys.readouterr().out
        text = diff.read_text()
        assert "### Throughput vs committed baseline" in text
        assert "| metric |" in text
        assert "driver_mixed" in text


class TestDistCli:
    def test_coordinate_requires_state(self):
        with pytest.raises(SystemExit) as err:
            main(["coordinate", "--budget", "4"])
        assert err.value.code == 2

    def test_work_requires_coordinator_url(self):
        with pytest.raises(SystemExit) as err:
            main(["work"])
        assert err.value.code == 2

    def test_coordinate_rejects_bad_batch_size(self, tmp_path, capsys):
        assert main([
            "coordinate", "--budget", "4", "--state", str(tmp_path / "s"),
            "--batch-size", "0",
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_retry_policy_threads_the_campaign_seed(self):
        import argparse

        from repro.cli import _retry_policy

        policy = _retry_policy(argparse.Namespace(
            batch_retries=4, lease_timeout=None, seed=9,
        ))
        assert policy.max_attempts == 4
        assert policy.seed == 9
        # Distinct seeds give distinct jittered schedules.
        other = _retry_policy(argparse.Namespace(
            batch_retries=4, lease_timeout=None, seed=10,
        ))
        assert policy.backoff_s(2, key=(1,)) != other.backoff_s(2, key=(1,))

    def test_coordinate_and_work_end_to_end(self, tmp_path):
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        report = tmp_path / "dist.json"
        coordinator = subprocess.Popen(
            [_sys.executable, "-m", "repro", "coordinate",
             "--budget", "8", "--rounds", "1", "--seed", "3",
             "--no-shrink", "--max-insns", "8", "--inputs", "2",
             "--state", str(tmp_path / "state"), "--port", "0",
             "--batch-size", "4", "--report", str(report)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = coordinator.stdout.readline()
            assert "coordinate: http://" in banner
            url = banner.split()[1]
            worker = subprocess.run(
                [_sys.executable, "-m", "repro", "work", url,
                 "--name", "cli-w1", "--poll-interval", "0.05"],
                capture_output=True, text=True, env=env, timeout=300,
            )
            out, _ = coordinator.communicate(timeout=300)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.communicate()
        assert coordinator.returncode == 0, out
        assert "programs" in out           # stats summary printed
        assert report.exists()
        payload = json.loads(report.read_text())
        assert payload                      # a real PrecisionReport
        # The worker either finished cleanly or lost a final poll race
        # against coordinator shutdown — both are fine for a tiny run.
        assert worker.returncode in (0, 2), worker.stderr
        if worker.returncode == 0:
            assert "work: cli-w1 executed" in worker.stdout
