"""Smoke tests: every example script must run to completion.

Examples double as end-to-end integration tests — each exercises a
different slice of the public API against the paper's own numbers, and
several raise SystemExit on any mismatch.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv=None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "10µµ1" in out          # Fig. 2 result
    assert "µµµ10" in out          # Fig. 3 result
    assert "[17, 19, 21, 23]" in out


def test_verify_bpf_program(capsys):
    run_example("verify_bpf_program.py")
    out = capsys.readouterr().out
    assert out.count("ACCEPTED") == 1
    assert out.count("REJECTED:") == 2


def test_range_analysis(capsys):
    run_example("range_analysis.py")
    out = capsys.readouterr().out
    assert "provably < 16" in out
    assert "True" in out


def test_packet_filter(capsys):
    run_example("packet_filter.py")
    out = capsys.readouterr().out
    assert "ACCEPTED" in out
    assert "500/500" in out


def test_precision_study_small(capsys):
    run_example("precision_study.py", ["4"])
    out = capsys.readouterr().out
    assert "our_mul vs kern_mul" in out
    assert "Figure 4" in out


@pytest.mark.slow
def test_solver_verification(capsys):
    run_example("solver_verification.py")
    out = capsys.readouterr().out
    assert "SOUND" in out
    assert "not associative" in out


def test_soundness_matters(capsys):
    run_example("soundness_matters.py")
    out = capsys.readouterr().out
    assert "REJECTED" in out          # honest verifier
    assert "ACCEPTED" in out          # buggy verifier fooled
    assert "CRASH" in out             # concrete escape
    assert "UNSOUND" in out           # SAT pipeline catches it


def test_fuzz_campaign(capsys):
    run_example("fuzz_campaign.py")
    out = capsys.readouterr().out
    assert "violations: 0" in out     # clean campaign
    assert "shrunk witness" in out    # injected bug caught + minimized
    assert "bit-exact" in out         # corpus round-trip
