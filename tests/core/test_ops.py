"""Tests for the operator registry (repro.core.ops)."""

import pytest

from repro.core.ops import BINARY_OPS, SHIFT_OPS, UNARY_OPS, get_op
from repro.core.tnum import Tnum


class TestRegistryCompleteness:
    def test_covers_every_bpf_alu_op_the_analyzer_models(self):
        # §II-B lists the BPF concrete ops; div/mod are conservative.
        assert set(BINARY_OPS) == {
            "add", "sub", "mul", "and", "or", "xor", "div", "mod",
        }
        assert set(UNARY_OPS) == {"neg", "not"}
        assert set(SHIFT_OPS) == {"lsh", "rsh", "arsh"}

    def test_specs_are_well_formed(self):
        for spec in BINARY_OPS.values():
            assert spec.arity == 2
            assert callable(spec.abstract) and callable(spec.concrete)
        for spec in UNARY_OPS.values():
            assert spec.arity == 1


class TestConcreteSemantics:
    def test_wrapping(self):
        assert BINARY_OPS["add"].concrete(255, 1, 8) == 0
        assert BINARY_OPS["sub"].concrete(0, 1, 8) == 255
        assert BINARY_OPS["mul"].concrete(16, 16, 8) == 0

    def test_neg_not(self):
        assert UNARY_OPS["neg"].concrete(1, 8) == 255
        assert UNARY_OPS["not"].concrete(0, 8) == 255

    def test_shift_counts_reduce_mod_width(self):
        assert SHIFT_OPS["lsh"].concrete(1, 9, 8) == 2
        assert SHIFT_OPS["rsh"].concrete(128, 9, 8) == 64

    def test_arsh_sign_extension(self):
        assert SHIFT_OPS["arsh"].concrete(0x80, 3, 8) == 0xF0
        assert SHIFT_OPS["arsh"].concrete(0x40, 3, 8) == 0x08


class TestAbstractConcreteAgreement:
    """For constant inputs, the abstract op must equal the concrete op."""

    @pytest.mark.parametrize("name", sorted(BINARY_OPS))
    def test_binary_constants(self, name):
        spec = BINARY_OPS[name]
        for x, y in [(0, 0), (3, 5), (255, 255), (7, 0)]:
            got = spec.abstract(Tnum.const(x, 8), Tnum.const(y, 8))
            assert got == Tnum.const(spec.concrete(x, y, 8), 8)

    @pytest.mark.parametrize("name", sorted(UNARY_OPS))
    def test_unary_constants(self, name):
        spec = UNARY_OPS[name]
        for x in (0, 1, 128, 255):
            assert spec.abstract(Tnum.const(x, 8)) == Tnum.const(
                spec.concrete(x, 8), 8
            )

    @pytest.mark.parametrize("name", sorted(SHIFT_OPS))
    def test_shift_constants(self, name):
        spec = SHIFT_OPS[name]
        for x in (0, 1, 0x80, 0xAB):
            for s in (0, 1, 7):
                assert spec.abstract(Tnum.const(x, 8), s) == Tnum.const(
                    spec.concrete(x, s, 8), 8
                )


class TestLookup:
    def test_get_op_kinds(self):
        assert get_op("add")[0] == "binary"
        assert get_op("neg")[0] == "unary"
        assert get_op("arsh")[0] == "shift"

    def test_get_op_unknown(self):
        with pytest.raises(KeyError):
            get_op("bogus")
