"""Tests for the kernel-parity facade (tnum.h API names)."""

import pytest
from hypothesis import given

from repro.core import kernel_api as k
from repro.core.tnum import Tnum
from tests.conftest import tnums


class TestConstructors:
    def test_TNUM_masks_to_64(self):
        t = k.TNUM(-1, 0)
        assert t.value == (1 << 64) - 1

    def test_tnum_const(self):
        assert k.tnum_const(5) == Tnum.const(5, 64)

    def test_tnum_unknown_is_top(self):
        assert k.tnum_unknown.is_top()

    def test_tnum_range(self):
        t = k.tnum_range(16, 31)
        for c in range(16, 32):
            assert t.contains(c)


class TestLatticeNames:
    def test_intersect_is_meet(self):
        a = k.tnum_range(0, 15)
        b = k.tnum_const(9)
        assert k.tnum_intersect(a, b) == b

    def test_union_is_join(self):
        u = k.tnum_union(k.tnum_const(1), k.tnum_const(3))
        assert u.contains(1) and u.contains(3)

    def test_tnum_in_direction(self):
        # tnum_in(a, b): b fits within a (kernel state-pruning check).
        wide = k.tnum_range(0, 255)
        narrow = k.tnum_const(7)
        assert k.tnum_in(wide, narrow)
        assert not k.tnum_in(narrow, wide)

    @given(tnums(64))
    def test_tnum_in_reflexive(self, t):
        assert k.tnum_in(t, t)


class TestQueries:
    def test_is_const(self):
        assert k.tnum_is_const(k.tnum_const(0))
        assert not k.tnum_is_const(k.tnum_unknown)

    def test_is_aligned(self):
        assert k.tnum_is_aligned(k.tnum_const(24), 8)
        assert not k.tnum_is_aligned(k.tnum_const(20), 8)


class TestCasts:
    def test_tnum_cast_takes_bytes(self):
        t = k.TNUM(0x1122334455667788, 0)
        assert k.tnum_cast(t, 4).value == 0x55667788
        assert k.tnum_cast(t, 2).value == 0x7788
        assert k.tnum_cast(t, 1).value == 0x88
        assert k.tnum_cast(t, 8) == t

    def test_tnum_cast_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            k.tnum_cast(k.tnum_const(0), 3)

    def test_subreg_helpers(self):
        t = k.TNUM(0xAAAA_BBBB_CCCC_DDDD, 0)
        assert k.tnum_subreg(t).value == 0xCCCC_DDDD
        assert k.tnum_clear_subreg(t).value == 0xAAAA_BBBB_0000_0000
        patched = k.tnum_const_subreg(t, 0x1234)
        assert patched.value == 0xAAAA_BBBB_0000_1234

    @given(tnums(64))
    def test_clear_then_const_subreg_wellformed(self, t):
        out = k.tnum_const_subreg(t, 0xFFFF_FFFF)
        assert out.value & out.mask == 0


class TestStrn:
    def test_kernel_style_rendering(self):
        t = k.TNUM(0b100, 0b010)
        text = k.tnum_strn(t, 4)
        assert text == "01x0"

    def test_full_width(self):
        assert len(k.tnum_strn(k.tnum_unknown)) == 64
        assert set(k.tnum_strn(k.tnum_unknown)) == {"x"}


class TestOperatorReexports:
    def test_mul_is_the_merged_algorithm(self):
        from repro.core.multiply import our_mul

        assert k.tnum_mul is our_mul

    def test_arithmetic_available(self):
        assert k.tnum_add(k.tnum_const(1), k.tnum_const(2)) == k.tnum_const(3)
        assert k.tnum_sub(k.tnum_const(3), k.tnum_const(2)) == k.tnum_const(1)
