"""Tests for abstract bitwise and/or/xor/not (sound and optimal)."""

import pytest
from hypothesis import given

from repro.core.bitwise import tnum_and, tnum_not, tnum_or, tnum_xor
from repro.core.galois import best_transformer_binary, abstract
from repro.core.lattice import enumerate_tnums
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)

OPS = {
    "and": (tnum_and, lambda x, y: x & y),
    "or": (tnum_or, lambda x, y: x | y),
    "xor": (tnum_xor, lambda x, y: x ^ y),
}


@pytest.mark.parametrize("name", sorted(OPS))
class TestBinaryBitwise:
    def test_optimal_exhaustive_width3(self, name):
        fn, cop = OPS[name]
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                assert fn(p, q) == best_transformer_binary(
                    lambda x, y: cop(x, y) & 7, p, q
                )

    def test_bottom_propagates(self, name):
        fn, _ = OPS[name]
        assert fn(Tnum.bottom(W), Tnum.unknown(W)).is_bottom()
        assert fn(Tnum.unknown(W), Tnum.bottom(W)).is_bottom()

    def test_width_mismatch(self, name):
        fn, _ = OPS[name]
        with pytest.raises(ValueError):
            fn(Tnum.const(0, 4), Tnum.const(0, 8))

    def test_constants_fold(self, name):
        fn, cop = OPS[name]
        assert fn(Tnum.const(0b1100, W), Tnum.const(0b1010, W)) == Tnum.const(
            cop(0b1100, 0b1010), W
        )


@given(tnums(W), tnums(W))
def test_and_sound(p, q):
    r = tnum_and(p, q)
    for x in list(p.concretize())[:6]:
        for y in list(q.concretize())[:6]:
            assert r.contains(x & y)


@given(tnums(W), tnums(W))
def test_or_sound(p, q):
    r = tnum_or(p, q)
    for x in list(p.concretize())[:6]:
        for y in list(q.concretize())[:6]:
            assert r.contains(x | y)


@given(tnums(W), tnums(W))
def test_xor_sound(p, q):
    r = tnum_xor(p, q)
    for x in list(p.concretize())[:6]:
        for y in list(q.concretize())[:6]:
            assert r.contains(x ^ y)


class TestIdioms:
    """The masking idioms the verifier relies on."""

    def test_and_with_constant_bounds_value(self):
        masked = tnum_and(Tnum.unknown(W), Tnum.const(0x0F, W))
        assert masked.max_value() == 0x0F
        assert masked.mask == 0x0F

    def test_known_zero_annihilates_unknown(self):
        r = tnum_and(Tnum.from_trits("µ"), Tnum.const(0, 1))
        assert r == Tnum.const(0, 1)

    def test_known_one_absorbs_unknown_in_or(self):
        r = tnum_or(Tnum.from_trits("µ"), Tnum.const(1, 1))
        assert r == Tnum.const(1, 1)

    def test_xor_with_self_not_zero(self):
        # Non-relational: P ^ P covers 0 but isn't exactly 0 when P has µ.
        p = Tnum.from_trits("µ1", width=W)
        r = tnum_xor(p, p)
        assert r.contains(0)
        assert not r.is_const()

    def test_align_down_idiom(self):
        # x & ~7 is provably 8-aligned for unknown x.
        aligned = tnum_and(Tnum.unknown(W), Tnum.const(~7 & LIMIT, W))
        assert aligned.is_aligned(8)


class TestNot:
    @given(tnums(W))
    def test_sound(self, p):
        r = tnum_not(p)
        for x in list(p.concretize())[:16]:
            assert r.contains(~x & LIMIT)

    @given(tnums(W))
    def test_involution(self, p):
        assert tnum_not(tnum_not(p)) == p

    @given(tnums(W))
    def test_equals_xor_all_ones(self, p):
        assert tnum_not(p) == tnum_xor(p, Tnum.const(LIMIT, W))

    def test_optimal_exhaustive_width3(self):
        for p in enumerate_tnums(3):
            assert tnum_not(p) == abstract([~x & 7 for x in p.concretize()], 3)

    def test_bottom(self):
        assert tnum_not(Tnum.bottom(W)).is_bottom()
