"""Galois-connection tests (Eqn. 5-7, Theorem 28)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.galois import (
    abstract,
    best_transformer_binary,
    best_transformer_unary,
    concretize_set,
    gamma,
    is_exact_abstraction,
)
from repro.core.lattice import enumerate_tnums, leq
from repro.core.tnum import Tnum
from tests.conftest import tnums

W = 4
concrete_sets = st.sets(st.integers(0, 2 ** W - 1), min_size=0, max_size=16)


class TestAlpha:
    def test_empty_set_is_bottom(self):
        assert abstract([], W).is_bottom()

    def test_singleton_is_exact(self):
        for c in range(16):
            t = abstract([c], W)
            assert t == Tnum.const(c, W)
            assert is_exact_abstraction(t, [c])

    def test_fig1_examples(self):
        # α({1,2,3}) = µµ (over-approximates to {0,1,2,3});
        # α({2,3}) = 1µ (exact).
        lossy = abstract([1, 2, 3], 2)
        assert lossy == Tnum.unknown(2)
        assert gamma(lossy) == {0, 1, 2, 3}
        exact = abstract([2, 3], 2)
        assert exact == Tnum.from_trits("1µ")
        assert gamma(exact) == {2, 3}
        assert is_exact_abstraction(exact, [2, 3])
        assert not is_exact_abstraction(lossy, [1, 2, 3])

    def test_values_reduced_modulo_width(self):
        assert abstract([16 + 3], 4) == Tnum.const(3, 4)

    @given(concrete_sets)
    def test_bitwise_exactness(self, values):
        # Eqn. 6: trit k is b iff all members agree on bit k; µ iff they differ.
        if not values:
            return
        t = abstract(values, W)
        for k in range(W):
            bits = {(v >> k) & 1 for v in values}
            if len(bits) == 2:
                assert t.trit(k) == "µ"
            else:
                assert t.trit(k) == str(bits.pop())


class TestGaloisProperties:
    @given(concrete_sets)
    def test_gamma_alpha_extensive(self, values):
        # γ∘α is extensive: C ⊆ γ(α(C)).
        assert values <= gamma(abstract(values, W))

    def test_alpha_gamma_reductive_in_fact_identity(self):
        # α∘γ ⊑ id; the proof (Property G4) shows equality holds.
        for t in enumerate_tnums(3, include_bottom=True):
            assert abstract(gamma(t), 3) == t

    @given(concrete_sets, concrete_sets)
    def test_alpha_monotonic(self, a, b):
        if a <= b:
            assert leq(abstract(a, W), abstract(b, W))

    @given(tnums(W), tnums(W))
    def test_gamma_monotonic(self, p, q):
        if leq(p, q):
            assert gamma(p) <= gamma(q)

    @given(concrete_sets, tnums(W))
    def test_adjunction(self, values, t):
        # The Galois adjunction: α(C) ⊑ T  iff  C ⊆ γ(T).
        assert leq(abstract(values, W), t) == (values <= gamma(t))


class TestBestTransformers:
    def test_unary_best_transformer_matches_enumeration(self):
        t = Tnum.from_trits("µ01")
        best = best_transformer_unary(lambda x: (x + 1) & 7, t)
        assert gamma(best) >= {(x + 1) & 7 for x in t.concretize()}

    def test_binary_best_transformer_is_smallest_sound(self):
        p = Tnum.from_trits("1µ")
        q = Tnum.from_trits("µ0")
        best = best_transformer_binary(lambda x, y: (x + y) & 3, p, q)
        outputs = {(x + y) & 3 for x in p.concretize() for y in q.concretize()}
        # Sound...
        assert outputs <= gamma(best)
        # ...and no strictly smaller tnum is sound.
        for other in enumerate_tnums(2):
            if leq(other, best) and other != best:
                assert not outputs <= gamma(other)

    def test_binary_width_mismatch(self):
        with pytest.raises(ValueError):
            best_transformer_binary(
                lambda x, y: x, Tnum.const(0, 2), Tnum.const(0, 3)
            )


class TestSetHelpers:
    def test_concretize_set_union(self):
        ts = [Tnum.const(1, 3), Tnum.from_trits("10µ")]
        assert concretize_set(ts) == {1, 4, 5}
