"""Tests for the paper's multiplication: our_mul (§III-C)."""

import pytest
from hypothesis import given, settings

from repro.core.galois import best_transformer_binary, gamma
from repro.core.lattice import comparable, enumerate_tnums, leq
from repro.core.multiply import our_mul, our_mul_simplified, tnum_mul
from repro.core.tnum import Tnum, mask_for_width
from repro.baselines import kern_mul
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestPaperExamples:
    def test_figure3_multiplication(self):
        # Fig. 3: µ01 * µ10 over 5 bits = µµµ10.
        p = Tnum.from_trits("µ01", width=5)
        q = Tnum.from_trits("µ10", width=5)
        r = our_mul(p, q)
        assert r == Tnum.from_trits("µµµ10", width=5)
        # γ(R) from the figure.
        assert gamma(r) == {2, 6, 10, 14, 18, 22, 26, 30}

    def test_width9_incomparability_example(self):
        # §IV.A: at n=9, kern_mul and our_mul produce incomparable outputs
        # for P=000000011, Q=011µ011µµ.
        p = Tnum.from_trits("000000011", width=9)
        q = Tnum.from_trits("011µ011µµ", width=9)
        r_kern = kern_mul(p, q)
        r_our = our_mul(p, q)
        assert r_kern == Tnum.from_trits("µµµµ0µµµµ", width=9)
        assert r_our == Tnum.from_trits("0µµµµµµµµ", width=9)
        assert not comparable(r_kern, r_our)

    def test_imprecision_example_from_section3c(self):
        # §III-C: P=11, Q=µ1 — correlation between partial products is
        # lost, so the result is imprecise (but must still be sound).
        p = Tnum.const(0b11, 4)
        q = Tnum.from_trits("µ1", width=4)
        r = our_mul(p, q)
        for y in q.concretize():
            assert r.contains((0b11 * y) & 0xF)


class TestSoundness:
    @given(tnums(W), tnums(W))
    def test_sound_random(self, p, q):
        r = our_mul(p, q)
        for x in list(p.concretize())[:6]:
            for y in list(q.concretize())[:6]:
                assert r.contains((x * y) & LIMIT)

    def test_sound_exhaustive_width4(self):
        for p in enumerate_tnums(4):
            gp = list(p.concretize())
            for q in enumerate_tnums(4):
                r = our_mul(p, q)
                for x in gp:
                    for y in q.concretize():
                        assert r.contains((x * y) & 0xF), (p, q, x, y)

    def test_bottom_propagates(self):
        assert our_mul(Tnum.bottom(W), Tnum.const(3, W)).is_bottom()
        assert our_mul(Tnum.const(3, W), Tnum.bottom(W)).is_bottom()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            our_mul(Tnum.const(0, 4), Tnum.const(0, 8))


class TestStrengthReduction:
    """Lemma 11: our_mul ≡ our_mul_simplified."""

    def test_equivalent_exhaustive_width3(self):
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                assert our_mul(p, q) == our_mul_simplified(p, q)

    @settings(max_examples=300)
    @given(tnums(W), tnums(W))
    def test_equivalent_random_width8(self, p, q):
        assert our_mul(p, q) == our_mul_simplified(p, q)

    @given(tnums(W, allow_bottom=True), tnums(W, allow_bottom=True))
    def test_equivalent_including_bottom(self, p, q):
        assert our_mul(p, q) == our_mul_simplified(p, q)


class TestAlgebra:
    def test_constants_fold_exactly(self):
        assert our_mul(Tnum.const(7, W), Tnum.const(6, W)) == Tnum.const(42, W)

    def test_multiply_by_zero(self):
        assert our_mul(Tnum.unknown(W), Tnum.const(0, W)) == Tnum.const(0, W)

    def test_multiply_by_one_keeps_gamma(self):
        p = Tnum.from_trits("µ01µ", width=W)
        r = our_mul(p, Tnum.const(1, W))
        for x in p.concretize():
            assert r.contains(x)

    def test_not_commutative_as_paper_observes(self):
        # §III-A observation (3). Small widths happen to be commutative
        # for our_mul (all pairs up to width 5 agree), but width 10 has
        # witnesses; this one was found by seeded sparse-mask search.
        a = Tnum.from_trits("000111µ1µ1", width=10)
        b = Tnum.from_trits("1000010111", width=10)
        assert our_mul(a, b) != our_mul(b, a)

    def test_commutative_at_small_widths(self):
        # Companion fact: exhaustively commutative at width 3.
        ts = enumerate_tnums(3)
        assert all(our_mul(a, b) == our_mul(b, a) for a in ts for b in ts)

    def test_not_optimal(self):
        # §III-C states our_mul is sound but NOT optimal: find a witness.
        found = False
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                best = best_transformer_binary(lambda x, y: (x * y) & 7, p, q)
                got = our_mul(p, q)
                assert leq(best, got)  # never *more* precise than optimal
                if got != best:
                    found = True
        assert found

    def test_power_of_two_multiplier_acts_like_shift(self):
        p = Tnum.from_trits("00µ1", width=W)
        r = our_mul(p, Tnum.const(4, W))
        for x in p.concretize():
            assert r.contains((x << 2) & LIMIT)

    def test_tnum_mul_alias(self):
        assert tnum_mul is our_mul


class TestAdditionCount:
    """our_mul performs at most n+1 tnum_adds vs kern_mul's up to 2n
    (§IV.A's explanation for the precision gap)."""

    def test_add_counts(self, monkeypatch):
        import repro.core.multiply as multiply_mod
        import repro.baselines.kernel_mul as kern_mod
        from repro.core._raw import add_raw as real_add

        counts = {"our": 0, "kern": 0}

        def counting_add_our(*args):
            counts["our"] += 1
            return real_add(*args)

        def counting_add_kern(*args):
            counts["kern"] += 1
            return real_add(*args)

        monkeypatch.setattr(multiply_mod, "add_raw", counting_add_our)
        monkeypatch.setattr(kern_mod, "add_raw", counting_add_kern)

        # Input driving both of kern_mul's hma passes: P all known 1s
        # (its value feeds the second hma), Q all unknown.
        p = Tnum.const((1 << W) - 1, W)
        q = Tnum.unknown(W)
        multiply_mod.our_mul(p, q)
        kern_mod.kern_mul(p, q)
        assert counts["our"] <= W + 1
        assert counts["kern"] == 2 * W
        assert counts["kern"] > counts["our"]
