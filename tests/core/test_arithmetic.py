"""Tests for kernel tnum_add / tnum_sub / neg — soundness AND optimality.

The paper's central claim for these operators (Theorems 6 and 22) is that
the O(1) kernel algorithms are sound *and* maximally precise.  We check
both exhaustively at small widths and property-based at width 8.
"""

import pytest
from hypothesis import given

from repro.core.arithmetic import tnum_add, tnum_neg, tnum_sub
from repro.core.galois import abstract, best_transformer_binary, gamma
from repro.core.lattice import enumerate_tnums
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestPaperExamples:
    def test_figure2_addition(self):
        # Fig. 2: 10µ0 + 10µ1 = 10µµ1 over 5 bits; γ(R) = {17,19,21,23}.
        p = Tnum.from_trits("10µ0", width=5)
        q = Tnum.from_trits("10µ1", width=5)
        r = tnum_add(p, q)
        assert r == Tnum.from_trits("10µµ1", width=5)
        assert gamma(r) == {17, 19, 21, 23}

    def test_intro_all_bits_unknown_example(self):
        # §I: a = 11...1, b ∈ {0, 1}: one unknown input bit, but a+b is
        # either all-ones or all-zeros, so every output bit is unknown.
        a = Tnum.const(LIMIT, W)
        b = Tnum.from_trits("µ", width=W)
        r = tnum_add(a, b)
        assert r == Tnum.unknown(W)


class TestAdd:
    @given(tnums(W), tnums(W))
    def test_sound(self, p, q):
        r = tnum_add(p, q)
        for x in list(p.concretize())[:8]:
            for y in list(q.concretize())[:8]:
                assert r.contains((x + y) & LIMIT)

    def test_optimal_exhaustive_width3(self):
        # Theorem 6: tnum_add == α ∘ + ∘ γ, checked over all pairs.
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                expected = best_transformer_binary(
                    lambda x, y: (x + y) & 7, p, q
                )
                assert tnum_add(p, q) == expected

    def test_constants_fold_exactly(self):
        assert tnum_add(Tnum.const(100, W), Tnum.const(55, W)) == Tnum.const(155, W)

    def test_wraps_modulo_width(self):
        assert tnum_add(Tnum.const(200, W), Tnum.const(100, W)) == Tnum.const(44, W)

    def test_bottom_propagates(self):
        assert tnum_add(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()
        assert tnum_add(Tnum.const(1, W), Tnum.bottom(W)).is_bottom()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tnum_add(Tnum.const(0, 4), Tnum.const(0, 8))

    def test_not_associative_as_paper_observes(self):
        # §III-A observation (1). Witness checked here concretely.
        found = False
        ts = enumerate_tnums(3)
        for a in ts:
            for b in ts:
                for c in ts:
                    if tnum_add(tnum_add(a, b), c) != tnum_add(a, tnum_add(b, c)):
                        found = True
                        break
                if found:
                    break
            if found:
                break
        assert found

    @given(tnums(W), tnums(W))
    def test_commutative(self, p, q):
        # Addition *is* commutative (unlike multiplication).
        assert tnum_add(p, q) == tnum_add(q, p)

    @given(tnums(W))
    def test_zero_identity(self, p):
        assert tnum_add(p, Tnum.const(0, W)) == p


class TestSub:
    @given(tnums(W), tnums(W))
    def test_sound(self, p, q):
        r = tnum_sub(p, q)
        for x in list(p.concretize())[:8]:
            for y in list(q.concretize())[:8]:
                assert r.contains((x - y) & LIMIT)

    def test_optimal_exhaustive_width3(self):
        # Theorem 22.
        for p in enumerate_tnums(3):
            for q in enumerate_tnums(3):
                expected = best_transformer_binary(
                    lambda x, y: (x - y) & 7, p, q
                )
                assert tnum_sub(p, q) == expected

    def test_constants_fold(self):
        assert tnum_sub(Tnum.const(100, W), Tnum.const(58, W)) == Tnum.const(42, W)

    def test_underflow_wraps(self):
        assert tnum_sub(Tnum.const(0, W), Tnum.const(1, W)) == Tnum.const(255, W)

    def test_x_minus_x_is_not_zero(self):
        # §III-A observation (2): the domain is non-relational, so even
        # P - P must cover 0 but may not be exactly 0.
        p = Tnum.from_trits("µ0", width=W)
        r = tnum_sub(p, p)
        assert r.contains(0)
        assert not r.is_const()

    def test_add_sub_not_inverses(self):
        ts = enumerate_tnums(2)
        assert any(
            tnum_sub(tnum_add(a, b), b) != a for a in ts for b in ts
        )

    def test_bottom_propagates(self):
        assert tnum_sub(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tnum_sub(Tnum.const(0, 4), Tnum.const(0, 8))


class TestNeg:
    @given(tnums(W))
    def test_sound(self, p):
        r = tnum_neg(p)
        for x in list(p.concretize())[:16]:
            assert r.contains((-x) & LIMIT)

    def test_constant(self):
        assert tnum_neg(Tnum.const(1, W)) == Tnum.const(255, W)
        assert tnum_neg(Tnum.const(0, W)) == Tnum.const(0, W)

    def test_optimal_exhaustive_width3(self):
        for p in enumerate_tnums(3):
            outputs = [(-x) & 7 for x in p.concretize()]
            assert tnum_neg(p) == abstract(outputs, 3)
