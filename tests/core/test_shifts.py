"""Tests for abstract shifts: constant counts and tnum-valued counts."""

import pytest
from hypothesis import given

from repro.core.galois import abstract
from repro.core.lattice import enumerate_tnums, leq
from repro.core.shifts import (
    effective_shift_amounts,
    tnum_arshift,
    tnum_arshift_tnum,
    tnum_lshift,
    tnum_lshift_tnum,
    tnum_rshift,
    tnum_rshift_tnum,
)
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


def _c_lsh(x, s):
    return (x << s) & LIMIT


def _c_rsh(x, s):
    return x >> s


def _c_arsh(x, s):
    signed = x - 256 if x & 0x80 else x
    return (signed >> s) & LIMIT


SHIFTS = {
    "lsh": (tnum_lshift, _c_lsh),
    "rsh": (tnum_rshift, _c_rsh),
    "arsh": (tnum_arshift, _c_arsh),
}


@pytest.mark.parametrize("name", sorted(SHIFTS))
class TestConstShifts:
    def test_sound_and_optimal_exhaustive(self, name):
        fn, cop = SHIFTS[name]
        for p in enumerate_tnums(4):
            for s in range(4):
                got = fn(p.cast(W), s)
                outputs = [cop(x, s) for x in p.cast(W).concretize()]
                assert got == abstract(outputs, W), (p, s)

    def test_shift_zero_is_identity(self, name):
        fn, _ = SHIFTS[name]
        t = Tnum.from_trits("1µ0µ", width=W)
        assert fn(t, 0) == t

    def test_negative_shift_rejected(self, name):
        fn, _ = SHIFTS[name]
        with pytest.raises(ValueError):
            fn(Tnum.const(1, W), -1)

    def test_overwide_shift_rejected(self, name):
        fn, _ = SHIFTS[name]
        with pytest.raises(ValueError):
            fn(Tnum.const(1, W), W)

    def test_bottom_passthrough(self, name):
        fn, _ = SHIFTS[name]
        assert fn(Tnum.bottom(W), 3).is_bottom()


class TestArshSignHandling:
    def test_known_negative_fills_ones(self):
        t = Tnum.const(0x80, W)
        assert tnum_arshift(t, 3) == Tnum.const(0xF0, W)

    def test_unknown_sign_fills_unknown(self):
        t = Tnum.from_trits("µ0000000", width=W)
        r = tnum_arshift(t, 3)
        assert r.trit(7) == "µ" and r.trit(6) == "µ" and r.trit(4) == "µ"
        assert r.trit(3) == "0"

    def test_known_positive_fills_zeros(self):
        t = Tnum.const(0x40, W)
        assert tnum_arshift(t, 3) == Tnum.const(0x08, W)


class TestTnumShifts:
    def test_effective_amounts_masks_to_log_width(self):
        s = Tnum.const(3 + W, W)  # 11 ≡ 3 (mod 8)
        assert effective_shift_amounts(s) == {3}

    def test_effective_amounts_with_unknown_bits(self):
        s = Tnum.from_trits("0000_0µ0µ", width=W)
        assert effective_shift_amounts(s) == {0, 1, 4, 5}

    def test_non_power_of_two_width_rejected(self):
        with pytest.raises(ValueError):
            effective_shift_amounts(Tnum.const(0, 5))

    @given(tnums(W), tnums(W))
    def test_lshift_tnum_sound(self, p, s):
        r = tnum_lshift_tnum(p, s)
        for x in list(p.concretize())[:4]:
            for amount in effective_shift_amounts(s):
                assert r.contains(_c_lsh(x, amount))

    @given(tnums(W), tnums(W))
    def test_rshift_tnum_sound(self, p, s):
        r = tnum_rshift_tnum(p, s)
        for x in list(p.concretize())[:4]:
            for amount in effective_shift_amounts(s):
                assert r.contains(_c_rsh(x, amount))

    @given(tnums(W), tnums(W))
    def test_arshift_tnum_sound(self, p, s):
        r = tnum_arshift_tnum(p, s)
        for x in list(p.concretize())[:4]:
            for amount in effective_shift_amounts(s):
                assert r.contains(_c_arsh(x, amount))

    def test_constant_amount_matches_const_shift(self):
        p = Tnum.from_trits("1µ01", width=W)
        assert tnum_lshift_tnum(p, Tnum.const(2, W)) == tnum_lshift(p, 2)

    def test_bottom_amount(self):
        assert tnum_lshift_tnum(Tnum.const(1, W), Tnum.bottom(W)).is_bottom()

    @given(tnums(W))
    def test_unknown_amount_is_join_of_all(self, p):
        r = tnum_rshift_tnum(p, Tnum.unknown(W))
        for amount in range(W):
            assert leq(tnum_rshift(p, amount), r)
