"""Unit tests for the Tnum value type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tnum import DEFAULT_WIDTH, Tnum
from tests.conftest import tnums


class TestConstruction:
    def test_default_width_is_kernel_width(self):
        assert Tnum.const(5).width == DEFAULT_WIDTH == 64

    def test_const_has_no_unknown_bits(self):
        t = Tnum.const(0b1010, width=8)
        assert t.value == 0b1010
        assert t.mask == 0
        assert t.is_const()

    def test_const_wraps_negative_values(self):
        t = Tnum.const(-1, width=8)
        assert t.value == 0xFF

    def test_unknown_is_top(self):
        t = Tnum.unknown(width=8)
        assert t.is_top()
        assert t.value == 0
        assert t.mask == 0xFF

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Tnum(256, 0, width=8)

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Tnum(0, 1 << 8, width=8)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Tnum(0, 0, width=0)

    def test_overlapping_value_mask_canonicalizes_to_bottom(self):
        t = Tnum(0b11, 0b01, width=4)
        assert t.is_bottom()
        assert t == Tnum.bottom(4)

    def test_bottom_is_unique_per_width(self):
        assert Tnum(1, 1, width=4) == Tnum(3, 3, width=4) == Tnum.bottom(4)

    def test_immutable(self):
        t = Tnum.const(1, width=4)
        with pytest.raises(AttributeError):
            t.value = 2


class TestTritStrings:
    def test_parse_paper_notation(self):
        t = Tnum.from_trits("01µ0")
        assert t.width == 4
        assert (t.value, t.mask) == (0b0100, 0b0010)

    def test_parse_alternate_unknown_chars(self):
        for ch in "uµx?":
            assert Tnum.from_trits(f"1{ch}0") == Tnum.from_trits("1µ0")

    def test_parse_with_zero_extension(self):
        t = Tnum.from_trits("µ01", width=5)
        assert t.width == 5
        assert t.trit(4) == "0"

    def test_parse_rejects_overlong(self):
        with pytest.raises(ValueError):
            Tnum.from_trits("10101", width=3)

    def test_parse_rejects_bad_char(self):
        with pytest.raises(ValueError):
            Tnum.from_trits("10z")

    def test_roundtrip(self):
        for text in ("0000", "1111", "µµµµ", "01µ0", "µ01µ"):
            assert Tnum.from_trits(text).to_trits() == text

    def test_separator_ignored(self):
        assert Tnum.from_trits("10_µ0") == Tnum.from_trits("10µ0")

    def test_str_of_bottom(self):
        assert "⊥" in str(Tnum.bottom(4))


class TestMembership:
    def test_paper_intro_example(self):
        # 01µ0 represents {0100, 0110} = {4, 6}; so x <= 8 always.
        t = Tnum.from_trits("01µ0")
        assert sorted(t.concretize()) == [4, 6]
        assert t.max_value() <= 8

    def test_contains_matches_gamma_definition(self):
        t = Tnum.from_trits("1µ0µ")
        for c in range(16):
            expected = (c & ~t.mask) == t.value
            assert t.contains(c) == expected

    def test_contains_reduces_modulo_width(self):
        t = Tnum.const(3, width=4)
        assert t.contains(3 + 16)

    def test_bottom_contains_nothing(self):
        b = Tnum.bottom(4)
        assert not any(b.contains(c) for c in range(16))
        assert list(b.concretize()) == []

    def test_dunder_protocols(self):
        t = Tnum.from_trits("1µ")
        assert 2 in t and 3 in t and 1 not in t
        assert "x" not in t
        assert len(t) == 2
        assert sorted(t) == [2, 3]

    def test_concretize_is_sorted_and_complete(self):
        t = Tnum.from_trits("µ0µ")
        values = list(t.concretize())
        assert values == sorted(values)
        assert values == [c for c in range(8) if t.contains(c)]

    def test_cardinality(self):
        assert Tnum.const(7, width=4).cardinality() == 1
        assert Tnum.unknown(4).cardinality() == 16
        assert Tnum.bottom(4).cardinality() == 0
        assert Tnum.from_trits("µµ01").cardinality() == 4


class TestQueries:
    def test_trit_accessor(self):
        t = Tnum.from_trits("10µ")
        assert t.trit(0) == "µ"
        assert t.trit(1) == "0"
        assert t.trit(2) == "1"
        with pytest.raises(IndexError):
            t.trit(3)

    def test_min_max(self):
        t = Tnum.from_trits("1µ0µ")
        assert t.min_value() == 0b1000
        assert t.max_value() == 0b1101

    def test_min_max_of_bottom_raise(self):
        with pytest.raises(ValueError):
            Tnum.bottom(4).min_value()
        with pytest.raises(ValueError):
            Tnum.bottom(4).max_value()

    def test_is_aligned_kernel_semantics(self):
        assert Tnum.from_trits("µµ000").is_aligned(8)
        assert not Tnum.from_trits("µµ00µ").is_aligned(8)
        assert not Tnum.from_trits("µµ100").is_aligned(8)
        assert Tnum.from_trits("µµ100").is_aligned(4)
        assert Tnum.const(0, width=4).is_aligned(8)

    def test_is_aligned_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Tnum.const(0, width=4).is_aligned(3)

    def test_known_bits_and_unknown_count(self):
        t = Tnum.from_trits("1µ0µ")
        assert t.unknown_count() == 2
        assert t.known_bits() == 0b1010

    def test_as_pair(self):
        t = Tnum.from_trits("10µ")
        assert t.as_pair() == (0b100, 0b001)


class TestRange:
    def test_range_single_value(self):
        assert Tnum.range(5, 5, width=8) == Tnum.const(5, width=8)

    def test_range_shares_prefix(self):
        t = Tnum.range(4, 7, width=4)  # 01xx
        assert t == Tnum.from_trits("01µµ")

    def test_range_contains_all_members(self):
        t = Tnum.range(3, 12, width=4)
        for c in range(3, 13):
            assert t.contains(c)

    def test_range_empty_is_bottom(self):
        assert Tnum.range(5, 2, width=4).is_bottom()

    def test_range_out_of_width_rejected(self):
        with pytest.raises(ValueError):
            Tnum.range(0, 16, width=4)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_range_is_sound(self, a, b):
        lo, hi = min(a, b), max(a, b)
        t = Tnum.range(lo, hi, width=8)
        for c in range(lo, hi + 1):
            assert t.contains(c)


class TestCast:
    def test_truncate_keeps_low_bits(self):
        t = Tnum.from_trits("µ101")
        assert t.cast(3) == Tnum.from_trits("101")

    def test_extend_adds_known_zeros(self):
        t = Tnum.from_trits("µ1")
        wide = t.cast(4)
        assert wide.trit(3) == "0" and wide.trit(2) == "0"

    def test_cast_bottom_stays_bottom(self):
        assert Tnum.bottom(8).cast(4).is_bottom()

    def test_subreg_zero_extends_low_32(self):
        t = Tnum(0xFFFF_FFFF_0000_00F0, 0, width=64)
        sr = t.subreg()
        assert sr.value == 0xF0
        assert sr.mask == 0

    def test_subreg_requires_64_bits(self):
        with pytest.raises(ValueError):
            Tnum.const(1, width=32).subreg()

    @given(tnums(8))
    def test_cast_is_sound_on_truncation(self, t):
        narrowed = t.cast(4)
        for c in t.concretize():
            assert narrowed.contains(c & 0xF)


class TestHashEq:
    def test_equal_and_hash_consistent(self):
        a = Tnum.from_trits("1µ0")
        b = Tnum(0b100, 0b010, width=3)
        assert a == b and hash(a) == hash(b)

    def test_width_distinguishes(self):
        assert Tnum.const(1, width=4) != Tnum.const(1, width=5)

    def test_not_equal_to_other_types(self):
        assert Tnum.const(1, width=4) != (1, 0)

    @settings(max_examples=50)
    @given(tnums(6), tnums(6))
    def test_eq_iff_same_pair(self, a, b):
        assert (a == b) == (a.as_pair() == b.as_pair())
