"""Lattice-structure tests: ordering, join, meet (Eqn. 2 and Fig. 1)."""

import pytest
from hypothesis import given

from repro.core.galois import gamma
from repro.core.lattice import (
    comparable,
    enumerate_tnums,
    is_more_precise,
    join,
    join_all,
    leq,
    lt,
    meet,
)
from repro.core.tnum import Tnum
from tests.conftest import tnums

W = 4


class TestOrder:
    def test_leq_is_gamma_subset(self):
        # The defining property: P ⊑A Q iff γ(P) ⊆ γ(Q).
        all_tnums = enumerate_tnums(3, include_bottom=True)
        for p in all_tnums:
            gp = gamma(p)
            for q in all_tnums:
                assert leq(p, q) == (gp <= gamma(q))

    def test_bottom_below_everything(self):
        for t in enumerate_tnums(3):
            assert leq(Tnum.bottom(3), t)

    def test_top_above_everything(self):
        for t in enumerate_tnums(3):
            assert leq(t, Tnum.unknown(3))

    @given(tnums(W))
    def test_reflexive(self, t):
        assert leq(t, t)
        assert not lt(t, t)

    @given(tnums(W), tnums(W))
    def test_antisymmetric(self, a, b):
        if leq(a, b) and leq(b, a):
            assert a == b

    @given(tnums(W), tnums(W), tnums(W))
    def test_transitive(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            leq(Tnum.const(0, 4), Tnum.const(0, 5))

    def test_fig1_examples(self):
        # From Fig. 1's Hasse diagram at n=2: 10 ⊑ 1µ ⊑ µµ, 01 ⊑ µ1.
        assert lt(Tnum.from_trits("10"), Tnum.from_trits("1µ"))
        assert lt(Tnum.from_trits("1µ"), Tnum.from_trits("µµ"))
        assert lt(Tnum.from_trits("01"), Tnum.from_trits("µ1"))
        assert not comparable(Tnum.from_trits("1µ"), Tnum.from_trits("µ1"))


class TestJoin:
    @given(tnums(W), tnums(W))
    def test_join_is_upper_bound(self, a, b):
        j = join(a, b)
        assert leq(a, j) and leq(b, j)

    @given(tnums(W), tnums(W))
    def test_join_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @given(tnums(W), tnums(W), tnums(W))
    def test_join_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(tnums(W))
    def test_join_idempotent(self, t):
        assert join(t, t) == t

    def test_join_is_least_upper_bound(self):
        # Exhaustive at width 3: no strictly smaller upper bound exists.
        all_tnums = enumerate_tnums(3)
        for a in all_tnums[: 9]:
            for b in all_tnums[: 9]:
                j = join(a, b)
                for other in all_tnums:
                    if leq(a, other) and leq(b, other):
                        assert leq(j, other)

    def test_join_with_bottom_is_identity(self):
        t = Tnum.from_trits("1µ0")
        assert join(t, Tnum.bottom(3)) == t
        assert join(Tnum.bottom(3), t) == t

    def test_join_disagreeing_constants(self):
        assert join(Tnum.const(0b00, 2), Tnum.const(0b11, 2)) == Tnum.from_trits("µµ")

    def test_join_all(self):
        tnums_list = [Tnum.const(i, 4) for i in (1, 3)]
        assert join_all(tnums_list) == Tnum.from_trits("00µ1", width=4)

    def test_join_all_empty_needs_width(self):
        assert join_all([], width=4).is_bottom()
        with pytest.raises(ValueError):
            join_all([])


class TestMeet:
    @given(tnums(W), tnums(W))
    def test_meet_is_lower_bound(self, a, b):
        m = meet(a, b)
        assert leq(m, a) and leq(m, b)

    @given(tnums(W), tnums(W))
    def test_meet_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(tnums(W))
    def test_meet_idempotent(self, t):
        assert meet(t, t) == t

    def test_meet_gamma_is_intersection(self):
        all_tnums = enumerate_tnums(3)
        for a in all_tnums[::5]:
            for b in all_tnums[::7]:
                m = meet(a, b)
                assert gamma(m) <= (gamma(a) & gamma(b))

    def test_meet_conflicting_constants_is_bottom(self):
        assert meet(Tnum.const(1, 2), Tnum.const(2, 2)).is_bottom()

    def test_meet_refines_unknown(self):
        assert meet(Tnum.unknown(4), Tnum.const(9, 4)) == Tnum.const(9, 4)

    @given(tnums(W), tnums(W))
    def test_absorption_laws(self, a, b):
        assert join(a, meet(a, b)) == a
        assert meet(a, join(a, b)) == a


class TestEnumeration:
    def test_count_is_3_to_the_n(self):
        for width in (1, 2, 3, 4):
            assert len(enumerate_tnums(width)) == 3 ** width

    def test_all_well_formed_and_distinct(self):
        ts = enumerate_tnums(3)
        assert len(set(ts)) == len(ts)
        assert not any(t.is_bottom() for t in ts)

    def test_include_bottom(self):
        ts = enumerate_tnums(2, include_bottom=True)
        assert len(ts) == 10
        assert ts[0].is_bottom()

    def test_fig1_abstract_domain_size(self):
        # Fig. 1(b): 9 non-bottom elements at n=2.
        assert len(enumerate_tnums(2)) == 9


class TestPrecisionRelation:
    def test_is_more_precise_examples(self):
        precise = Tnum.from_trits("10µ")
        loose = Tnum.from_trits("1µµ")
        assert is_more_precise(precise, loose)
        assert not is_more_precise(loose, precise)
        assert not is_more_precise(precise, precise)
