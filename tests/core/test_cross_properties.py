"""Cross-operator algebraic properties of the tnum domain.

These are hypothesis-driven invariants that connect *different*
operators: soundness of composite expressions, De Morgan duality,
shift/multiply agreement, and the monotonicity every abstract
transformer must satisfy (x ⊑ y ⇒ f(x) ⊑ f(y)) — the property that lets
a verifier prune states soundly.
"""

from hypothesis import given

from repro.core import (
    Tnum,
    join,
    leq,
    our_mul,
    tnum_add,
    tnum_and,
    tnum_lshift,
    tnum_neg,
    tnum_not,
    tnum_or,
    tnum_sub,
    tnum_xor,
)
from repro.core.tnum import mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestMonotonicity:
    """x ⊑ y ⇒ f(x, z) ⊑ f(y, z) for every binary transformer."""

    @given(tnums(W), tnums(W), tnums(W))
    def test_add_monotone(self, a, b, c):
        wider = join(a, b)  # a ⊑ wider by construction
        assert leq(tnum_add(a, c), tnum_add(wider, c))

    @given(tnums(W), tnums(W), tnums(W))
    def test_sub_monotone(self, a, b, c):
        wider = join(a, b)
        assert leq(tnum_sub(a, c), tnum_sub(wider, c))
        assert leq(tnum_sub(c, a), tnum_sub(c, wider))

    @given(tnums(W), tnums(W), tnums(W))
    def test_mul_monotone(self, a, b, c):
        wider = join(a, b)
        assert leq(our_mul(a, c), our_mul(wider, c))

    @given(tnums(W), tnums(W), tnums(W))
    def test_bitwise_monotone(self, a, b, c):
        wider = join(a, b)
        assert leq(tnum_and(a, c), tnum_and(wider, c))
        assert leq(tnum_or(a, c), tnum_or(wider, c))
        assert leq(tnum_xor(a, c), tnum_xor(wider, c))


class TestDeMorgan:
    @given(tnums(W), tnums(W))
    def test_not_and_equals_or_of_nots(self, a, b):
        # These are all optimal per-bit transformers, so the classical
        # identities hold *exactly*, not just as over-approximations.
        assert tnum_not(tnum_and(a, b)) == tnum_or(tnum_not(a), tnum_not(b))

    @given(tnums(W), tnums(W))
    def test_not_or_equals_and_of_nots(self, a, b):
        assert tnum_not(tnum_or(a, b)) == tnum_and(tnum_not(a), tnum_not(b))

    @given(tnums(W), tnums(W))
    def test_xor_via_and_or_composition_sound(self, a, b):
        # Rewriting x ^ y as (x | y) & ~(x & y) composes three sound
        # transformers, so it must remain sound (it may be looser than
        # the dedicated xor — compositions lose relational information).
        composed = tnum_and(tnum_or(a, b), tnum_not(tnum_and(a, b)))
        for x in list(a.concretize())[:4]:
            for y in list(b.concretize())[:4]:
                assert composed.contains(x ^ y)


class TestArithmeticIdentities:
    @given(tnums(W))
    def test_neg_as_not_plus_one(self, a):
        # Two's complement: -x == ~x + 1. Both sides are sound; the
        # composed form may be looser but must contain the direct one.
        direct = tnum_neg(a)
        composed = tnum_add(tnum_not(a), Tnum.const(1, W))
        assert leq(direct, composed)

    @given(tnums(W))
    def test_sub_as_add_neg(self, a):
        b = Tnum.const(13, W)
        direct = tnum_sub(a, b)
        composed = tnum_add(a, tnum_neg(b))
        # With a constant operand both routes are exact and equal.
        assert direct == composed

    @given(tnums(W))
    def test_double_is_shift(self, a):
        # x * 2 and x << 1: multiplication by a constant power of two is
        # exactly the shift (both sound; shift is optimal here).
        assert our_mul(a, Tnum.const(2, W)) == tnum_lshift(a, 1)

    @given(tnums(W))
    def test_mul_by_four_vs_shift(self, a):
        assert our_mul(a, Tnum.const(4, W)) == tnum_lshift(a, 2)

    @given(tnums(W), tnums(W))
    def test_composite_expression_sound(self, a, b):
        # (a + b) * (a - b): soundness must survive composition.
        result = our_mul(tnum_add(a, b), tnum_sub(a, b))
        for x in list(a.concretize())[:4]:
            for y in list(b.concretize())[:4]:
                concrete = ((x + y) * (x - y)) & LIMIT
                assert result.contains(concrete)

    @given(tnums(W), tnums(W), tnums(W))
    def test_distributivity_sound(self, a, b, c):
        # a*(b+c) vs a*b + a*c: both contain all concrete values; they
        # need not be equal (non-relational domain).
        left = our_mul(a, tnum_add(b, c))
        right = tnum_add(our_mul(a, b), our_mul(a, c))
        for x in list(a.concretize())[:3]:
            for y in list(b.concretize())[:3]:
                for z in list(c.concretize())[:3]:
                    concrete = (x * (y + z)) & LIMIT
                    assert left.contains(concrete)
                    assert right.contains(concrete)


class TestMaskingIdioms:
    """The idioms the BPF verifier leans on, as domain-level facts."""

    @given(tnums(W))
    def test_and_mask_bounds(self, a):
        masked = tnum_and(a, Tnum.const(0x0F, W))
        assert masked.max_value() <= 0x0F

    @given(tnums(W))
    def test_align_down_then_aligned(self, a):
        aligned = tnum_and(a, Tnum.const(~7 & LIMIT, W))
        assert aligned.is_aligned(8)

    @given(tnums(W))
    def test_or_sets_floor(self, a):
        forced = tnum_or(a, Tnum.const(0x80, W))
        assert forced.min_value() >= 0x80

    @given(tnums(W))
    def test_clear_then_set_bit(self, a):
        cleared = tnum_and(a, Tnum.const(~1 & LIMIT, W))
        set_ = tnum_or(cleared, Tnum.const(1, W))
        assert set_.trit(0) == "1"
