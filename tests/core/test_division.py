"""Tests for conservative abstract division and modulo."""

import pytest
from hypothesis import given

from repro.core.division import concrete_div, concrete_mod, tnum_div, tnum_mod
from repro.core.tnum import Tnum, mask_for_width
from tests.conftest import tnums

W = 8
LIMIT = mask_for_width(W)


class TestConcreteSemantics:
    def test_bpf_div_by_zero_is_zero(self):
        assert concrete_div(42, 0) == 0

    def test_bpf_mod_by_zero_is_dividend(self):
        assert concrete_mod(42, 0) == 42

    def test_normal_division(self):
        assert concrete_div(42, 5) == 8
        assert concrete_mod(42, 5) == 2


class TestDiv:
    @given(tnums(W), tnums(W))
    def test_sound(self, p, q):
        r = tnum_div(p, q)
        for x in list(p.concretize())[:5]:
            for y in list(q.concretize())[:5]:
                assert r.contains(concrete_div(x, y) & LIMIT)

    def test_constants_fold(self):
        assert tnum_div(Tnum.const(42, W), Tnum.const(5, W)) == Tnum.const(8, W)

    def test_known_zero_divisor_folds(self):
        assert tnum_div(Tnum.unknown(W), Tnum.const(0, W)) == Tnum.const(0, W)

    def test_unknown_inputs_give_top(self):
        assert tnum_div(Tnum.unknown(W), Tnum.const(2, W)).is_top()

    def test_bottom(self):
        assert tnum_div(Tnum.bottom(W), Tnum.const(1, W)).is_bottom()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            tnum_div(Tnum.const(0, 4), Tnum.const(0, 8))


class TestMod:
    @given(tnums(W), tnums(W))
    def test_sound(self, p, q):
        r = tnum_mod(p, q)
        for x in list(p.concretize())[:5]:
            for y in list(q.concretize())[:5]:
                assert r.contains(concrete_mod(x, y) & LIMIT)

    def test_constants_fold(self):
        assert tnum_mod(Tnum.const(42, W), Tnum.const(5, W)) == Tnum.const(2, W)

    def test_known_zero_divisor_returns_dividend(self):
        p = Tnum.from_trits("µµ01", width=W)
        assert tnum_mod(p, Tnum.const(0, W)) == p

    def test_unknown_inputs_give_top(self):
        assert tnum_mod(Tnum.unknown(W), Tnum.const(3, W)).is_top()

    def test_bottom(self):
        assert tnum_mod(Tnum.const(1, W), Tnum.bottom(W)).is_bottom()
