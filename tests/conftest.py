"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.tnum import Tnum, mask_for_width


def tnums(width: int, allow_bottom: bool = False) -> st.SearchStrategy:
    """Hypothesis strategy for well-formed tnums of a fixed width."""
    limit = mask_for_width(width)

    def build(mask: int, raw_value: int) -> Tnum:
        return Tnum(raw_value & ~mask & limit, mask, width)

    base = st.builds(
        build,
        st.integers(min_value=0, max_value=limit),
        st.integers(min_value=0, max_value=limit),
    )
    if allow_bottom:
        return st.one_of(base, st.just(Tnum.bottom(width)))
    return base


def members(t: Tnum, rng: random.Random, count: int = 3):
    """Up to ``count`` random concrete members of γ(t)."""
    out = []
    for _ in range(count):
        fill = rng.randint(0, mask_for_width(t.width)) & t.mask
        out.append(t.value | fill)
    return out


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
