"""The HTTP front end: stdlib ``ThreadingHTTPServer`` over the service.

Same zero-dependency idiom as :class:`repro.obs.server.StatsServer`:
a daemon-threaded ``http.server`` bound to ``127.0.0.1`` by default,
``port=0`` picks an ephemeral port.  Routes:

* ``POST /verify`` — a program (JSON with ``program_hex`` /
  corpus-style ``bytecode_hex``, or raw wire bytes as
  ``application/octet-stream`` with query parameters) in, a
  :class:`~repro.api.models.Verdict` payload out.  Reject verdicts are
  still **200** — the verification *succeeded*, the program failed;
  400/422 are reserved for requests the service never verified
  (malformed wire bytes, oversize programs, bad ctx sizes — see
  :mod:`repro.api.ingest`).
* ``GET /verdict/<canonical_hash>[?ctx_size=N]`` — cached verdict or a
  structured 404.
* ``GET /healthz`` — liveness probe.
* ``GET /stats`` — JSON: service counters (requests, verifications,
  single-flight inflight, cache hits/misses/evictions) plus the obs
  registry snapshot when observability is enabled.
* ``GET /metrics`` — Prometheus text: ``repro_api_*`` service counters
  always, plus the full obs registry when observability is enabled.

Every error body is JSON: ``{"schema_version": 1, "error": {"code":
..., "message": ...}}`` — clients switch on ``code``, never on prose.
Under pressure the server degrades structurally instead of collapsing
(see ``docs/resilience.md``): a full work queue answers **503**
(``overloaded``, with a ``Retry-After`` header), a request that outlives
the service deadline answers **504** (``deadline-exceeded``), stalled
client sockets are timed out, and ``/healthz`` stays live throughout —
it never touches the verification pool.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro import obs as _obs

from .ingest import MAX_WIRE_BYTES, IngestError, parse_ctx_size
from .models import (
    API_SCHEMA_VERSION,
    VerifyRequest,
    error_payload,
    faults_echo,
)
from .service import DeadlineExceeded, ServiceOverloaded, VerificationService

__all__ = ["ApiServer", "MAX_BODY_BYTES", "DEFAULT_SOCKET_TIMEOUT_S"]

#: Request bodies past this cannot contain an acceptable program (hex
#: doubles the wire bytes; the rest is JSON framing).
MAX_BODY_BYTES = 4 * MAX_WIRE_BYTES + 4096

#: Per-connection socket timeout: a client that stops sending (or
#: reading) cannot pin a handler thread forever.
DEFAULT_SOCKET_TIMEOUT_S = 30.0


class ApiServer:
    """Serve a :class:`VerificationService` over HTTP on a daemon thread."""

    def __init__(
        self,
        service: VerificationService,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_timeout_s: float = DEFAULT_SOCKET_TIMEOUT_S,
    ) -> None:
        self.service = service
        self._host = host
        self._requested_port = port
        self._socket_timeout_s = socket_timeout_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ApiServer":
        service = self.service
        socket_timeout_s = self._socket_timeout_s

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # http.server applies this to the connection socket: a stalled
            # client trips it and the handler thread is reclaimed.
            timeout = socket_timeout_s

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                path, query = _split(self.path)
                if path != "/verify":
                    self._error(404, "not-found", f"no such route: {path}")
                    return
                try:
                    request = self._parse_verify(query)
                except IngestError as exc:
                    service.note_rejection()
                    self._error(exc.status, exc.code, exc.message)
                    return
                try:
                    verdict = service.verify(request)
                except ServiceOverloaded as exc:
                    # Load shed: structured, with a drain estimate — the
                    # request cost nothing, the client knows when to come
                    # back, and the service never queues unboundedly.
                    self._error(
                        503, "overloaded", str(exc),
                        headers={"Retry-After": str(exc.retry_after_s)},
                    )
                    return
                except DeadlineExceeded as exc:
                    self._error(504, "deadline-exceeded", str(exc))
                    return
                except Exception as exc:  # never a traceback on the wire
                    self._error(500, "internal-error", str(exc))
                    return
                self._json(200, verdict.to_payload())

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path, query = _split(self.path)
                try:
                    if path == "/healthz":
                        self._json(200, service.healthz())
                    elif path == "/stats":
                        self._json(200, _stats_payload(service))
                    elif path == "/metrics":
                        self._text(200, _metrics_payload(service),
                                   "text/plain; version=0.0.4")
                    elif path.startswith("/verdict/"):
                        self._get_verdict(path, query)
                    else:
                        self._error(404, "not-found",
                                    f"no such route: {path}")
                except IngestError as exc:
                    self._error(exc.status, exc.code, exc.message)
                except Exception as exc:
                    self._error(500, "internal-error", str(exc))

            # -- route helpers ------------------------------------------

            def _parse_verify(self, query: Dict[str, str]) -> VerifyRequest:
                length_header = self.headers.get("Content-Length")
                try:
                    length = int(length_header or "")
                except ValueError:
                    raise IngestError(
                        400, "missing-body",
                        "POST /verify requires a Content-Length body",
                    ) from None
                if length > MAX_BODY_BYTES:
                    raise IngestError(
                        422, "program-too-large",
                        f"request body is {length} bytes; the limit is "
                        f"{MAX_BODY_BYTES}",
                    )
                body = self.rfile.read(length)
                ctype = (self.headers.get("Content-Type") or "").split(";")[0]
                ctype = ctype.strip().lower()
                if ctype in ("application/octet-stream",
                             "application/x-bpf"):
                    return VerifyRequest.from_wire(
                        body, query,
                        default_ctx_size=service.default_ctx_size,
                    )
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, ValueError) as exc:
                    raise IngestError(
                        400, "bad-json", f"request body is not JSON: {exc}"
                    ) from exc
                return VerifyRequest.from_json_payload(
                    payload, default_ctx_size=service.default_ctx_size
                )

            def _get_verdict(self, path: str, query: Dict[str, str]) -> None:
                chash = path[len("/verdict/"):]
                if not chash or "/" in chash:
                    raise IngestError(
                        400, "bad-hash",
                        "expected /verdict/<canonical_hash>",
                    )
                ctx_size = parse_ctx_size(
                    query.get("ctx_size"),
                    default=service.default_ctx_size,
                )
                verdict = service.lookup(chash, ctx_size)
                if verdict is None:
                    self._error(
                        404, "unknown-verdict",
                        f"no cached verdict for {chash} at "
                        f"ctx_size={ctx_size}",
                    )
                    return
                self._json(200, verdict.to_payload())

            # -- response helpers ---------------------------------------

            def _json(
                self,
                code: int,
                payload: Dict,
                headers: Optional[Dict[str, str]] = None,
            ) -> None:
                self._text(
                    code,
                    json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    "application/json",
                    headers=headers,
                )

            def _error(
                self,
                code: int,
                error_code: str,
                message: str,
                headers: Optional[Dict[str, str]] = None,
            ) -> None:
                self._json(
                    code, error_payload(error_code, message), headers=headers
                )

            def _text(
                self,
                code: int,
                body: str,
                ctype: str,
                headers: Optional[Dict[str, str]] = None,
            ) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # request logs go through obs, not stderr

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-api-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _split(raw_path: str) -> Tuple[str, Dict[str, str]]:
    parts = urlsplit(raw_path)
    return parts.path, dict(parse_qsl(parts.query))


def _stats_payload(service: VerificationService) -> Dict:
    payload: Dict = {
        "schema_version": API_SCHEMA_VERSION,
        "service": service.stats(),
    }
    echo = faults_echo()
    if echo is not None:
        payload["faults"] = echo
    if _obs.enabled():
        payload["metrics"] = _obs.default_registry().to_dict()
    return payload


def _metrics_payload(service: VerificationService) -> str:
    """``repro_api_*`` counters, plus the obs registry when enabled."""
    stats = service.stats()
    cache = stats["cache"]
    lines = []
    for name, value in (
        ("repro_api_requests_total", stats["requests"]),
        ("repro_api_verifications_total", stats["verifications"]),
        ("repro_api_rejections_total", stats["rejections"]),
        ("repro_api_shed_total", stats["shed"]),
        ("repro_api_timeouts_total", stats["timeouts"]),
        ("repro_api_cache_hits_total", cache["hits"]),
        ("repro_api_cache_misses_total", cache["misses"]),
        ("repro_api_cache_evictions_total", cache["evictions"]),
    ):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    lines.append("# TYPE repro_api_cache_entries gauge")
    lines.append(f"repro_api_cache_entries {cache['entries']}")
    body = "\n".join(lines) + "\n"
    if _obs.enabled():
        body += _obs.default_registry().render_prometheus()
    return body
