"""Request and verdict models: the one verdict shape repo-wide.

``POST /verify`` bodies parse into :class:`VerifyRequest`; every
verification outcome — served over HTTP, printed by ``repro verify
--json``, or read back from a :class:`~repro.bpf.canon.VerdictCache`
entry — renders through :class:`Verdict`, so clients see a single
schema no matter which layer produced the answer.

The response payload is additive-versioned: ``schema_version`` bumps
only on breaking changes, and clients are expected to ignore unknown
fields (the test suite holds itself to the same tolerant contract).
Current shape::

    {
      "schema_version": 1,
      "canonical_hash": "<sha256 hex>",
      "ctx_size": 64,
      "verdict": "accept" | "reject",
      "ok": true,
      "insns_processed": 17,
      "cached": false,
      "error": {"index": 3, "reason": "...", "structural": false},  # reject only
      "states": {"0": "{r1=ctx(...), ...} stack{}", ...},           # on request
      "precision": {"transfers": 12, "operators": {...}}            # on request
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro import faults as _faults
from repro.bpf.program import Program
from repro.bpf.verifier.errors import VerificationResult, VerifierError

from .ingest import (
    DEFAULT_CTX_SIZE,
    IngestError,
    parse_ctx_size,
    program_from_json_payload,
    program_from_wire,
)

__all__ = [
    "API_SCHEMA_VERSION",
    "VerifyRequest",
    "VerdictError",
    "Verdict",
    "error_payload",
    "faults_echo",
    "precision_summary",
]

#: Version of the request/response payload shape served by the API and
#: ``repro verify --json``.  Additive fields do not bump it.
API_SCHEMA_VERSION = 1


def error_payload(code: str, message: str) -> dict:
    """The one structured error shape every API surface renders.

    Clients switch on ``error.code``, never on prose — 503 (shed), 504
    (deadline), and every 4xx all share this envelope.
    """
    return {
        "schema_version": API_SCHEMA_VERSION,
        "error": {"code": code, "message": message},
    }


def faults_echo() -> Optional[dict]:
    """The armed fault plan, or None when injection is off.

    ``/healthz`` and ``/stats`` (on every HTTP surface — the
    verification service and the dist coordinator) echo this so a chaos
    harness can *assert* the process under test is actually running the
    plan it armed — a server accidentally started without
    ``REPRO_FAULTS`` would otherwise pass its chaos suite vacuously.
    """
    plan = _faults.active_plan()
    if plan is None:
        return None
    return {"spec": plan.to_spec(), "seed": plan.seed}


@dataclass
class VerifyRequest:
    """One validated verification request.

    Built from either encoding the service accepts — a JSON object
    (:meth:`from_json_payload`) or raw wire bytes plus query parameters
    (:meth:`from_wire`).  Unknown JSON fields are ignored, so corpus
    entries and future clients POST verbatim.
    """

    program: Program
    ctx_size: int = DEFAULT_CTX_SIZE
    #: collect per-instruction entry states (bypasses the verdict cache —
    #: states are walk artifacts the cache does not carry).
    want_states: bool = False
    #: include the per-operator precision summary of the transfer stream.
    want_precision: bool = False

    @classmethod
    def from_json_payload(
        cls, payload: Dict, default_ctx_size: int = DEFAULT_CTX_SIZE
    ) -> "VerifyRequest":
        program = program_from_json_payload(payload)
        ctx_size = parse_ctx_size(
            payload.get("ctx_size"), default=default_ctx_size
        )
        return cls(
            program=program,
            ctx_size=ctx_size,
            want_states=_parse_flag(payload, "states"),
            want_precision=_parse_flag(payload, "precision"),
        )

    @classmethod
    def from_wire(
        cls,
        data: bytes,
        query: Optional[Dict[str, str]] = None,
        default_ctx_size: int = DEFAULT_CTX_SIZE,
    ) -> "VerifyRequest":
        query = query or {}
        return cls(
            program=program_from_wire(data),
            ctx_size=parse_ctx_size(
                query.get("ctx_size"), default=default_ctx_size
            ),
            want_states=query.get("states") in ("1", "true"),
            want_precision=query.get("precision") in ("1", "true"),
        )


def _parse_flag(payload: Dict, key: str) -> bool:
    value = payload.get(key, False)
    if not isinstance(value, bool):
        raise IngestError(
            422, "bad-flag",
            f"{key!r} must be a JSON boolean, not {type(value).__name__}",
        )
    return value


@dataclass
class VerdictError:
    """The rejection detail of a verdict (mirror of ``VerifierError``)."""

    index: int
    reason: str
    structural: bool = False

    def to_payload(self) -> Dict:
        return {
            "index": self.index,
            "reason": self.reason,
            "structural": self.structural,
        }

    def message(self) -> str:
        return f"insn {self.index}: {self.reason}"


@dataclass
class Verdict:
    """One verification outcome in the repo-wide response shape."""

    canonical_hash: str
    ctx_size: int
    ok: bool
    insns_processed: int
    error: Optional[VerdictError] = None
    #: answered from the verdict cache (no abstract walk ran).
    cached: bool = False
    #: per-instruction entry states, rendered (reached indices only).
    states: Optional[Dict[int, str]] = None
    precision: Optional[Dict] = None

    @property
    def verdict(self) -> str:
        return "accept" if self.ok else "reject"

    @classmethod
    def from_result(
        cls,
        result: VerificationResult,
        canonical_hash: str,
        ctx_size: int,
        cached: bool = False,
        states: Optional[Dict[int, str]] = None,
        precision: Optional[Dict] = None,
    ) -> "Verdict":
        error: Optional[VerdictError] = None
        if result.errors:
            first: VerifierError = result.errors[0]
            error = VerdictError(
                index=first.insn_index,
                reason=first.reason,
                structural=first.structural,
            )
        return cls(
            canonical_hash=canonical_hash,
            ctx_size=ctx_size,
            ok=result.ok,
            insns_processed=result.insns_processed,
            error=error,
            cached=cached,
            states=states,
            precision=precision,
        )

    def to_payload(self) -> Dict:
        payload: Dict = {
            "schema_version": API_SCHEMA_VERSION,
            "canonical_hash": self.canonical_hash,
            "ctx_size": self.ctx_size,
            "verdict": self.verdict,
            "ok": self.ok,
            "insns_processed": self.insns_processed,
            "cached": self.cached,
        }
        if self.error is not None:
            payload["error"] = self.error.to_payload()
        if self.states is not None:
            payload["states"] = {
                str(idx): text for idx, text in sorted(self.states.items())
            }
        if self.precision is not None:
            payload["precision"] = self.precision
        return payload

    def summary_lines(self) -> Tuple[str, ...]:
        """The CLI text rendering (``repro verify`` without ``--json``)."""
        if self.ok:
            return (
                f"OK: {self.insns_processed} analyzed"
                + (" (cached)" if self.cached else ""),
            )
        assert self.error is not None
        return (f"REJECTED: {self.error.message()}",)


def precision_summary(events: Iterable[Tuple[int, str, object]]) -> Dict:
    """Aggregate a transfer stream into a per-operator precision table.

    ``events`` is the verifier's ``on_transfer`` stream (live or
    replayed from a cache entry): per operator label, the number of
    transfers and the γ-width distribution extremes of their abstract
    results.  The same :func:`~repro.eval.precision.gamma_bits` measure
    the campaign telemetry uses, so service numbers and campaign reports
    speak one unit.
    """
    from repro.eval.precision import gamma_bits

    operators: Dict[str, Dict] = {}
    transfers = 0
    for _idx, label, scalar in events:
        transfers += 1
        entry = operators.get(label)
        if entry is None:
            entry = operators[label] = {
                "count": 0, "gamma_bits_sum": 0, "gamma_bits_max": 0,
            }
        bits = gamma_bits(scalar)
        entry["count"] += 1
        entry["gamma_bits_sum"] += bits
        if bits > entry["gamma_bits_max"]:
            entry["gamma_bits_max"] = bits
    return {"transfers": transfers, "operators": operators}
