"""HTTP front end for the distributed-campaign coordinator.

Same stdlib ``ThreadingHTTPServer`` idiom as :class:`~repro.api.server.
ApiServer`, serving a :class:`~repro.fuzz.dist.coordinator.Coordinator`
(``repro coordinate``).  Routes:

* ``POST /lease`` — ``{"worker": name}`` in; a batch grant, a ``wait``
  hint, or ``{"done": true}`` out.  The grant carries the batch
  fingerprint the result must report under.
* ``POST /result`` — one batch's results (or a soft-error report) in;
  an idempotency status out (``accepted`` / ``duplicate`` / ``stale``
  / ``retrying`` / ``quarantined``) — always **200**: a duplicate or
  stale report is a *correctly handled* protocol event, not a client
  error.
* ``GET /round`` — the campaign spec and the current round's
  mutation-seed pool (workers refetch per round).
* ``GET /healthz`` — liveness, plus the armed fault plan when chaos is
  on (same echo contract as ``repro serve``).
* ``GET /stats`` — ledger/worker/counter snapshot, fault-plan echo,
  and the obs registry when observability is enabled.

A request naming a different ``campaign_id`` answers a structured
**409** (``wrong-campaign``): a worker pointed at the wrong coordinator
must fail loudly, never merge.  Every error body is the repo-wide
``{"schema_version": 1, "error": {...}}`` envelope.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro import obs as _obs
from repro.fuzz.dist.coordinator import Coordinator

from .models import error_payload, faults_echo

__all__ = ["CoordinatorApi", "MAX_RESULT_BODY_BYTES"]

#: Result bodies carry a whole batch of per-program telemetry; cap them
#: well above any realistic batch, but below "a client is streaming us
#: garbage".
MAX_RESULT_BODY_BYTES = 64 * 1024 * 1024


class CoordinatorApi:
    """Serve a :class:`Coordinator` over HTTP on a daemon thread."""

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_timeout_s: float = 30.0,
    ) -> None:
        self.coordinator = coordinator
        self._host = host
        self._requested_port = port
        self._socket_timeout_s = socket_timeout_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "CoordinatorApi":
        coordinator = self.coordinator
        socket_timeout_s = self._socket_timeout_s

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            timeout = socket_timeout_s

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                try:
                    if self.path == "/lease":
                        self._post_lease()
                    elif self.path == "/result":
                        self._post_result()
                    else:
                        self._error(404, "not-found",
                                    f"no such route: {self.path}")
                except _BadRequest as exc:
                    self._error(exc.status, exc.code, exc.message)
                except Exception as exc:  # never a traceback on the wire
                    self._error(500, "internal-error", str(exc))

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    if self.path == "/round":
                        self._json(200, coordinator.round_info())
                    elif self.path == "/healthz":
                        payload = {
                            "status": "ok",
                            "campaign_id": coordinator.cid,
                            "finished": coordinator.finished,
                        }
                        echo = faults_echo()
                        if echo is not None:
                            payload["faults"] = echo
                        self._json(200, payload)
                    elif self.path == "/stats":
                        payload = coordinator.stats_payload()
                        echo = faults_echo()
                        if echo is not None:
                            payload["faults"] = echo
                        if _obs.enabled():
                            payload["metrics"] = (
                                _obs.default_registry().to_dict()
                            )
                        self._json(200, payload)
                    else:
                        self._error(404, "not-found",
                                    f"no such route: {self.path}")
                except Exception as exc:
                    self._error(500, "internal-error", str(exc))

            # -- route handlers -----------------------------------------

            def _post_lease(self) -> None:
                payload = self._read_json()
                worker = payload.get("worker")
                if not isinstance(worker, str) or not worker:
                    raise _BadRequest(
                        400, "missing-worker",
                        "POST /lease requires a non-empty worker name",
                    )
                self._check_campaign(payload)
                self._json(200, coordinator.lease(worker))

            def _post_result(self) -> None:
                payload = self._read_json()
                self._check_campaign(payload)
                if not isinstance(payload.get("fingerprint"), str):
                    raise _BadRequest(
                        400, "missing-fingerprint",
                        "POST /result requires the granted batch "
                        "fingerprint",
                    )
                self._json(200, coordinator.ingest(payload))

            def _check_campaign(self, payload: Dict) -> None:
                cid = payload.get("campaign_id")
                if cid is not None and cid != coordinator.cid:
                    raise _BadRequest(
                        409, "wrong-campaign",
                        f"this coordinator runs campaign "
                        f"{coordinator.cid}, not {cid}",
                    )

            def _read_json(self) -> Dict:
                try:
                    length = int(self.headers.get("Content-Length") or "")
                except ValueError:
                    raise _BadRequest(
                        400, "missing-body",
                        "POST requires a Content-Length body",
                    ) from None
                if length > MAX_RESULT_BODY_BYTES:
                    raise _BadRequest(
                        422, "body-too-large",
                        f"request body is {length} bytes; the limit is "
                        f"{MAX_RESULT_BODY_BYTES}",
                    )
                body = self.rfile.read(length)
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, ValueError) as exc:
                    raise _BadRequest(
                        400, "bad-json",
                        f"request body is not JSON: {exc}",
                    ) from exc
                if not isinstance(payload, dict):
                    raise _BadRequest(
                        400, "bad-json", "request body must be an object"
                    )
                return payload

            # -- response helpers ---------------------------------------

            def _json(self, code: int, payload: Dict) -> None:
                data = (
                    json.dumps(payload, sort_keys=True) + "\n"
                ).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _error(self, code: int, error_code: str, message: str) -> None:
                self._json(code, error_payload(error_code, message))

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # request logs go through obs, not stderr

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-dist-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class _BadRequest(Exception):
    """A request the coordinator never saw: status + structured code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
