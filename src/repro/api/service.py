"""The verification service core: worker pool + verdict cache + single-flight.

:class:`VerificationService` is the transport-free heart of ``repro
serve`` — the HTTP layer (:mod:`repro.api.server`) only parses requests
into :class:`~repro.api.models.VerifyRequest` and renders the
:class:`~repro.api.models.Verdict` this class returns, so the whole
service contract is testable without a socket.

Every request is keyed on ``(Program.canonical_hash(), ctx_size)`` and
routed through one shared :class:`~repro.bpf.canon.VerdictCache`:

* **hit** — answered without a walk, O(1); the dominant pattern at
  scale is repeat submissions, and this is what makes them cheap.
* **miss** — verified on a bounded worker pool that reuses the PR 5
  per-instruction closure caches (``Program.compiled_verifier``), then
  stored, so the next structurally identical submission hits.
* **concurrent identical misses** — *single-flight*: the first request
  in becomes the leader and verifies; the rest wait on its flight and
  answer from the freshly stored entry as cache hits.  N identical
  concurrent submissions cost exactly one verification.

``states=true`` requests bypass the cache and the single-flight path:
per-instruction entry states are walk artifacts the cache does not
carry, so they always pay a fresh (``collect_states``) walk.

All cache and counter access is serialized on one lock —
:class:`~repro.bpf.canon.VerdictCache` is an ``OrderedDict`` LRU and
not itself thread-safe.  With observability enabled the cache ticks its
own ``verdict_cache.*`` counters and this class adds ``api.*`` request
counters, so ``/metrics`` and ``/stats`` surface both for free.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Callable, Dict, List, Optional, Tuple

from repro import faults as _faults
from repro import obs as _obs
from repro.bpf.canon import CachedVerdict, VerdictCache
from repro.bpf.program import Program
from repro.bpf.verifier import Verifier

from .models import Verdict, VerifyRequest, faults_echo, precision_summary

__all__ = [
    "VerificationService",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "DEFAULT_WORKERS",
]

DEFAULT_WORKERS = 4

CacheKey = Tuple[str, int]


class ServiceOverloaded(RuntimeError):
    """The work queue is full — shed instead of queueing unboundedly.

    Carries the advisory ``retry_after_s`` the HTTP layer renders as a
    ``Retry-After`` header on its structured 503.
    """

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(
            f"verification queue is full; retry in ~{retry_after_s}s"
        )
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """A request outlived its deadline — surfaced, never left hanging.

    Raised whether the deadline expired in the queue, mid-walk (the
    verifier's own watchdog stops the walk), or while waiting on another
    request's flight.  The HTTP layer maps it to a structured 504.
    """


class _Flight:
    """One in-progress verification other requests can wait on."""

    __slots__ = ("done", "entry", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[CachedVerdict] = None
        self.error: Optional[BaseException] = None


class VerificationService:
    """Cached, deduplicated verification behind a plain-Python API."""

    def __init__(
        self,
        cache: Optional[VerdictCache] = None,
        cache_path: Optional[str] = None,
        cache_size: int = 65536,
        workers: int = DEFAULT_WORKERS,
        default_ctx_size: int = 64,
        max_queue: Optional[int] = None,
        request_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if cache is None:
            # ``load`` raises a clear ValueError on a corrupt/truncated
            # store (see VerdictCache.load) — the caller surfaces it as
            # a startup error instead of serving from a broken store.
            cache = (
                VerdictCache.load(cache_path, max_entries=cache_size)
                if cache_path is not None
                else VerdictCache(max_entries=cache_size)
            )
        self.cache = cache
        self.cache_path = cache_path
        self.default_ctx_size = default_ctx_size
        self.workers = workers
        self.max_queue = max_queue
        self.request_timeout_s = request_timeout_s
        self.requests = 0
        self.verifications = 0
        #: requests rejected before reaching the verifier (400/422) —
        #: ticked by the transport layer via :meth:`note_rejection`.
        self.rejections = 0
        #: requests shed at the queue (503) and deadlines blown (504).
        self.shed = 0
        self.timeouts = 0
        #: verification tasks submitted and not yet finished — the
        #: bounded "queue" ``max_queue`` sheds against.
        self._queued = 0
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, _Flight] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-api-verify"
        )
        self._started = time.monotonic()
        self._closed = False

    # -- the request path ---------------------------------------------------

    def verify(self, request: VerifyRequest) -> Verdict:
        """Answer one verification request (cache → single-flight → walk).

        Degrades structurally instead of collapsing: with ``max_queue``
        set, a full queue sheds the request (:class:`ServiceOverloaded`,
        HTTP 503) before it costs anything; with ``request_timeout_s``
        set, a request that outlives its deadline — queued, walking, or
        waiting on another flight — raises :class:`DeadlineExceeded`
        (HTTP 504).  Cache hits are O(1) and never shed.
        """
        with self._lock:
            self.requests += 1
        self._count("requests")
        key: CacheKey = (
            request.program.canonical_hash(), request.ctx_size,
        )
        if request.want_states:
            return self._await(self._submit(self._verify_fresh, key, request))
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                entry = self.cache.get(key)
                if entry is not None:
                    return self._render(entry, key, request, cached=True)
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if leader:
            try:
                entry = self._await(
                    self._submit(self._verify_miss, key, request)
                )
                flight.entry = entry
            except BaseException as exc:
                # Shed/timeout included: followers piggybacked on this
                # flight inherit the failure instead of hanging.
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.done.set()
            return self._render(entry, key, request, cached=False)
        # Follower: wait for the leader's walk, then answer from the
        # stored entry — a real cache hit (counted as one).
        if not flight.done.wait(timeout=self.request_timeout_s):
            raise self._deadline()
        if flight.error is not None:
            raise flight.error
        with self._lock:
            entry = self.cache.get(key)
        if entry is None:  # evicted between store and our lookup
            entry = flight.entry
        assert entry is not None
        return self._render(entry, key, request, cached=True)

    def _submit(self, fn: Callable, *args):
        """Queue work on the pool, shedding when the queue is full."""
        with self._lock:
            if self.max_queue is not None and self._queued >= self.max_queue:
                self.shed += 1
                # Rough drain estimate: queue depth over pool width,
                # floored at 1s — advisory, not a promise.
                retry_after = max(1, round(self._queued / self.workers))
                self._count("shed")
                raise ServiceOverloaded(retry_after)
            self._queued += 1

        def run():
            try:
                return fn(*args)
            finally:
                with self._lock:
                    self._queued -= 1

        return self._pool.submit(run)

    def _await(self, future):
        """The future's result, bounded by the request deadline.

        The pool thread keeps running past a timeout (threads are not
        cancellable) but the walk itself is deadline-bounded too
        (``Verifier.deadline_s``), so abandoned work self-terminates.
        """
        if self.request_timeout_s is None:
            return future.result()
        try:
            return future.result(timeout=self.request_timeout_s)
        except _FuturesTimeout:
            raise self._deadline() from None

    def _deadline(self) -> DeadlineExceeded:
        with self._lock:
            self.timeouts += 1
        self._count("timeouts")
        return DeadlineExceeded(
            f"verification exceeded the service's "
            f"{self.request_timeout_s:g}s deadline"
        )

    def lookup(self, canonical_hash: str, ctx_size: int) -> Optional[Verdict]:
        """``GET /verdict/<hash>``: the cached verdict, or ``None``."""
        key = (canonical_hash, ctx_size)
        with self._lock:
            entry = self.cache.get(key)
        if entry is None:
            return None
        return Verdict.from_result(
            entry.result(), canonical_hash, ctx_size, cached=True
        )

    def note_rejection(self) -> None:
        with self._lock:
            self.rejections += 1
        self._count("rejections")

    # -- verification workers -----------------------------------------------

    def _verify_miss(
        self, key: CacheKey, request: VerifyRequest
    ) -> CachedVerdict:
        if _faults.enabled():
            _faults.sleep_if("service.verify.hang")
        events: List[Tuple[int, str, object]] = []
        verifier = Verifier(
            ctx_size=request.ctx_size,
            deadline_s=self.request_timeout_s,
            on_transfer=lambda idx, label, scalar: events.append(
                (idx, label, scalar)
            ),
        )
        result = verifier.verify(request.program)
        if result.timed_out:
            # A timeout says nothing about the program: never cached,
            # surfaced as 504 — the next submission gets a full walk.
            raise self._deadline()
        entry = CachedVerdict.from_result(result, tuple(events))
        with self._lock:
            self.verifications += 1
            self.cache.put(key, entry)
        self._count("verifications")
        return entry

    def _verify_fresh(self, key: CacheKey, request: VerifyRequest) -> Verdict:
        if _faults.enabled():
            _faults.sleep_if("service.verify.hang")
        events: List[Tuple[int, str, object]] = []
        verifier = Verifier(
            ctx_size=request.ctx_size,
            collect_states=True,
            deadline_s=self.request_timeout_s,
            on_transfer=lambda idx, label, scalar: events.append(
                (idx, label, scalar)
            ),
        )
        result = verifier.verify(request.program)
        if result.timed_out:
            raise self._deadline()
        states = {
            idx: str(state) for idx, state in verifier.states_at.items()
        }
        entry = CachedVerdict.from_result(result, tuple(events))
        with self._lock:
            self.verifications += 1
            if key not in self.cache:
                self.cache.put(key, entry)
        self._count("verifications")
        precision = (
            precision_summary(events) if request.want_precision else None
        )
        return Verdict.from_result(
            result, key[0], key[1],
            cached=False, states=states, precision=precision,
        )

    def _render(
        self,
        entry: CachedVerdict,
        key: CacheKey,
        request: VerifyRequest,
        cached: bool,
    ) -> Verdict:
        precision = (
            precision_summary(entry.events)
            if request.want_precision else None
        )
        return Verdict.from_result(
            entry.result(), key[0], key[1],
            cached=cached, precision=precision,
        )

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict:
        """The service half of the ``/stats`` payload."""
        with self._lock:
            cache = self.cache
            return {
                "requests": self.requests,
                "verifications": self.verifications,
                "rejections": self.rejections,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "queued": self._queued,
                "max_queue": self.max_queue,
                "request_timeout_s": self.request_timeout_s,
                "inflight": len(self._inflight),
                "workers": self.workers,
                "uptime_s": round(time.monotonic() - self._started, 3),
                "cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                    "entries": len(cache),
                    "max_entries": cache.max_entries,
                    "hit_rate": round(cache.hit_rate, 4),
                },
            }

    def healthz(self) -> Dict:
        with self._lock:
            payload = {
                "status": "ok",
                "workers": self.workers,
                "cache_entries": len(self.cache),
            }
        echo = faults_echo()
        if echo is not None:
            # A chaos harness asserts on this: the probe proves the
            # process is actually running the armed plan.
            payload["faults"] = echo
        return payload

    def summary_line(self) -> str:
        """One greppable shutdown line (mirrors the campaign CLI's)."""
        with self._lock:
            return self.cache.summary_line(self.cache_path)

    # -- lifecycle ----------------------------------------------------------

    def save(self) -> None:
        """Persist the verdict store, if one was configured."""
        if self.cache_path is not None:
            with self._lock:
                self.cache.save(self.cache_path)

    def close(self) -> None:
        """Drain the pool and persist the store; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        self.save()

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _count(self, name: str) -> None:
        if _obs.enabled():
            _obs.default_registry().counter(f"api.{name}").inc()
