"""``repro.api`` — verification-as-a-service.

The clean service boundary the ROADMAP asks for, in four layers:

* :mod:`~repro.api.ingest` — every byte stream that becomes a
  ``Program`` (wire bytes, hex, JSON corpus encoding), with structured
  400/422 rejection semantics shared by the service, the CLI, and the
  fuzz corpus;
* :mod:`~repro.api.models` — :class:`VerifyRequest` /
  :class:`Verdict`, the one request/verdict shape repo-wide;
* :mod:`~repro.api.service` — :class:`VerificationService`: worker
  pool + shared :class:`~repro.bpf.canon.VerdictCache` + single-flight
  dedup, transport-free;
* :mod:`~repro.api.server` — :class:`ApiServer`: the stdlib-only HTTP
  front end (``repro serve``).

See ``docs/service.md`` for the endpoint contract.
"""

from .ingest import (
    DEFAULT_CTX_SIZE,
    MAX_CTX_SIZE,
    MAX_WIRE_BYTES,
    IngestError,
    parse_ctx_size,
    program_from_hex,
    program_from_json_payload,
    program_from_wire,
    program_to_hex,
)
from .models import (
    API_SCHEMA_VERSION,
    Verdict,
    VerdictError,
    VerifyRequest,
    precision_summary,
)
from .server import ApiServer
from .service import VerificationService


def __getattr__(name: str):
    # Lazy on purpose: eager import would cycle (api.dist needs
    # repro.fuzz.dist, whose campaign core imports api.ingest back).
    if name == "CoordinatorApi":
        from .dist import CoordinatorApi
        return CoordinatorApi
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "API_SCHEMA_VERSION",
    "CoordinatorApi",
    "DEFAULT_CTX_SIZE",
    "MAX_CTX_SIZE",
    "MAX_WIRE_BYTES",
    "ApiServer",
    "IngestError",
    "Verdict",
    "VerdictError",
    "VerificationService",
    "VerifyRequest",
    "parse_ctx_size",
    "precision_summary",
    "program_from_hex",
    "program_from_json_payload",
    "program_from_wire",
    "program_to_hex",
]
