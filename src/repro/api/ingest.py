"""Program ingestion: every byte stream that becomes a :class:`Program`.

The service, the CLI, and the fuzz corpus all accept programs in the
same two encodings — kernel wire-format bytes and their hex spelling
(the JSON corpus encoding) — and they must reject malformed input the
same way.  This module is that single decode path: each helper maps a
raw encoding to a validated :class:`~repro.bpf.program.Program` or
raises :class:`IngestError`, a :class:`ValueError` that carries a
machine-readable ``code`` and the HTTP status class the service maps it
to.

The 400/422 split mirrors the exemplar service contract (see
``docs/service.md``): **400** means the bytes could not be decoded at
all (bad hex, truncated instruction, length not a multiple of 8,
field out of range); **422** means the bytes decoded into a program we
refuse to analyze (empty, oversized, structurally invalid jump
targets, out-of-range ctx size).
"""

from __future__ import annotations

import binascii
from typing import Dict, Optional

from repro.bpf import isa
from repro.bpf.insn import decode_program
from repro.bpf.program import Program, ProgramError

__all__ = [
    "IngestError",
    "MAX_WIRE_BYTES",
    "MAX_CTX_SIZE",
    "DEFAULT_CTX_SIZE",
    "program_from_wire",
    "program_from_hex",
    "program_to_hex",
    "program_from_json_payload",
    "parse_ctx_size",
]

#: Upper bound on accepted wire payloads: every instruction occupies at
#: most two 8-byte slots and the verifier caps programs at
#: :data:`~repro.bpf.isa.MAX_INSNS` instructions, so anything larger
#: cannot decode into an acceptable program anyway.
MAX_WIRE_BYTES = 8 * 2 * isa.MAX_INSNS

#: Context sizes beyond this are configuration mistakes, not workloads —
#: real kernel ctx structs are a few hundred bytes.
MAX_CTX_SIZE = 65536

DEFAULT_CTX_SIZE = 64


class IngestError(ValueError):
    """A rejected program submission, with a structured reason.

    ``status`` is the HTTP status class the service answers with (400
    for undecodable bytes, 422 for decodable-but-unacceptable programs)
    and ``code`` is a stable kebab-case identifier clients can switch
    on; ``str(err)`` stays the human-readable message.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_payload(self) -> Dict:
        return {"code": self.code, "message": self.message}


def program_from_wire(data: bytes) -> Program:
    """Decode kernel wire-format bytes into a validated ``Program``."""
    if not data:
        raise IngestError(422, "empty-program", "program has no instructions")
    if len(data) > MAX_WIRE_BYTES:
        raise IngestError(
            422, "program-too-large",
            f"program is {len(data)} bytes; the wire-format limit is "
            f"{MAX_WIRE_BYTES} ({isa.MAX_INSNS} instructions)",
        )
    try:
        insns = decode_program(data)
    except ValueError as exc:
        raise IngestError(
            400, "bad-wire-format", f"undecodable wire bytes: {exc}"
        ) from exc
    try:
        return Program(insns)
    except ProgramError as exc:
        raise IngestError(
            422, "invalid-program", f"structurally invalid program: {exc}"
        ) from exc


def program_from_hex(text: str) -> Program:
    """Decode the hex spelling of wire bytes (the JSON corpus encoding)."""
    if not isinstance(text, str):
        raise IngestError(
            400, "bad-encoding",
            f"program hex must be a string, not {type(text).__name__}",
        )
    try:
        data = bytes.fromhex(text.strip())
    except (ValueError, binascii.Error) as exc:
        raise IngestError(
            400, "bad-encoding", f"invalid hex encoding: {exc}"
        ) from exc
    return program_from_wire(data)


def program_to_hex(program: Program) -> str:
    """The inverse of :func:`program_from_hex` (corpus/JSON encoding)."""
    return program.to_bytes().hex()


def program_from_json_payload(payload: Dict) -> Program:
    """Extract the program from a JSON request/corpus-entry object.

    Accepts ``program_hex`` (the service's canonical key) or
    ``bytecode_hex`` (the corpus-entry spelling), so a corpus entry can
    be POSTed to ``/verify`` verbatim.
    """
    if not isinstance(payload, dict):
        raise IngestError(
            400, "bad-request",
            f"request body must be a JSON object, "
            f"not {type(payload).__name__}",
        )
    for key in ("program_hex", "bytecode_hex"):
        if key in payload:
            return program_from_hex(payload[key])
    raise IngestError(
        400, "missing-program",
        "request has no program: expected a 'program_hex' (or corpus-style "
        "'bytecode_hex') field of kernel wire-format bytes as hex",
    )


def parse_ctx_size(
    value: object, default: Optional[int] = DEFAULT_CTX_SIZE
) -> int:
    """Validate a ctx-size field from a request (JSON value or query string)."""
    if value is None:
        if default is None:
            raise IngestError(422, "bad-ctx-size", "ctx_size is required")
        return default
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise IngestError(
            422, "bad-ctx-size",
            f"ctx_size must be an integer, not {type(value).__name__}",
        )
    try:
        ctx_size = int(value)
    except ValueError:
        raise IngestError(
            422, "bad-ctx-size", f"ctx_size {value!r} is not an integer"
        ) from None
    if not 0 <= ctx_size <= MAX_CTX_SIZE:
        raise IngestError(
            422, "bad-ctx-size",
            f"ctx_size {ctx_size} out of range [0, {MAX_CTX_SIZE}]",
        )
    return ctx_size
