"""Reproduction of "Sound, Precise, and Fast Abstract Interpretation with
Tristate Numbers" (Vishwanathan, Shachnai, Narayana, Nagarakatte — CGO 2022).

Subpackages
-----------
``repro.core``
    The tnum abstract domain: values, lattice, Galois connection, and
    every abstract operator including the paper's novel ``our_mul``.
``repro.baselines``
    The algorithms the paper compares against (kernel ``kern_mul``,
    Regehr–Duongsaa ``bitwise_mul``, ripple-carry arithmetic).
``repro.domains``
    Interval and KnownBits domains plus the tnum × interval reduced
    product used by the verifier.
``repro.bpf``
    A BPF virtual machine (ISA, assembler, concrete interpreter) and a
    miniature verifier performing abstract interpretation with tnums.
``repro.verify``
    Bounded verification of operator soundness: exhaustive, randomized,
    and SAT-based (in-repo CDCL solver standing in for Z3).
``repro.eval``
    Harnesses regenerating the paper's Figure 4, Figure 5 and Table I.

Quick start
-----------
>>> from repro.core import Tnum, tnum_add, our_mul
>>> p = Tnum.from_trits("10µ0", width=5)
>>> q = Tnum.from_trits("10µ1", width=5)
>>> str(tnum_add(p, q))
'10µµ1'
"""

from .core import (
    DEFAULT_WIDTH,
    Tnum,
    our_mul,
    tnum_add,
    tnum_and,
    tnum_arshift,
    tnum_div,
    tnum_lshift,
    tnum_mod,
    tnum_mul,
    tnum_neg,
    tnum_not,
    tnum_or,
    tnum_rshift,
    tnum_sub,
    tnum_xor,
)

__version__ = "1.0.0"

__all__ = [
    "Tnum",
    "DEFAULT_WIDTH",
    "tnum_add",
    "tnum_sub",
    "tnum_neg",
    "tnum_and",
    "tnum_or",
    "tnum_xor",
    "tnum_not",
    "tnum_lshift",
    "tnum_rshift",
    "tnum_arshift",
    "tnum_mul",
    "our_mul",
    "tnum_div",
    "tnum_mod",
    "__version__",
]
