"""Span tracing: structured JSON-lines events with sampling.

A *span* is a named, timed region with arbitrary attributes and a parent
(spans nest per thread).  Completed spans serialize as one JSON object
per line to a pluggable sink — a file (``trace.jsonl``), stderr, or an
in-memory list for tests.  Point *events* share the format minus the
duration.

Event schema (version 1), one object per line::

    {
      "v": 1,                  # schema version          (required, int)
      "kind": "span"|"event",  # record type             (required)
      "name": "verify",        # span/event name         (required, str)
      "ts": 1712345678.9,      # wall-clock start, epoch (required, float)
      "dur_s": 0.00123,        # duration; spans only    (required for spans)
      "pid": 4242,             # emitting process        (required, int)
      "span_id": 7,            # unique within pid       (required, int)
      "parent_id": 3,          # enclosing span or null  (required)
      "attrs": {"round": 2}    # free-form attributes    (required, dict)
    }

:func:`validate_event` is the single source of truth for that contract —
the test suite and the CI ``obs-smoke`` job both run every emitted line
through it.

Sampling
--------
Per-program (let alone per-instruction) spans would melt fuzzing
throughput, so :meth:`Tracer.sampled_span` keeps only every *N*-th
request (``N = round(1/sample)``).  Stride sampling is deterministic for
a fixed call sequence — unlike coin flips it cannot perturb the
campaign's seeded RNG streams — and the skipped path costs one counter
increment and returns a shared no-op context manager.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, TextIO

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "Tracer",
    "NullTracer",
    "validate_event",
    "read_trace",
    "aggregate_spans",
]

TRACE_SCHEMA_VERSION = 1


class MemorySink:
    """Collects events in a list — the test sink."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, event: Dict) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per line to a file."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = str(path)
        self._handle: Optional[TextIO] = open(self.path, "a")

    def emit(self, event: Dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StderrSink:
    """One JSON line per event on stderr (quick interactive debugging)."""

    def emit(self, event: Dict) -> None:
        print(json.dumps(event, sort_keys=True), file=sys.stderr)

    def flush(self) -> None:
        sys.stderr.flush()

    def close(self) -> None:
        pass


@contextmanager
def _null_span() -> Iterator[None]:
    yield None


class NullTracer:
    """The disabled tracer: every span is a shared no-op context."""

    def span(self, name: str, **attrs: object):
        return _null_span()

    def sampled_span(self, name: str, **attrs: object):
        return _null_span()

    def event(self, name: str, **attrs: object) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer:
    """Emits span/event records to a sink; spans nest per thread."""

    def __init__(self, sink, sample: float = 1.0) -> None:
        self.sink = sink
        if sample <= 0:
            self._stride = 0          # sampled spans never emit
        else:
            self._stride = max(1, round(1.0 / min(sample, 1.0)))
        self._sample_count = 0
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pid = os.getpid()

    # -- spans --------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """A always-emitted span (campaign/round-level structure)."""
        parent = getattr(self._local, "stack", None)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = parent[-1] if parent else None
        if parent is None:
            parent = self._local.stack = []
        parent.append(span_id)
        started = time.time()
        t0 = time.perf_counter()
        try:
            yield None
        finally:
            parent.pop()
            self.sink.emit({
                "v": TRACE_SCHEMA_VERSION,
                "kind": "span",
                "name": name,
                "ts": started,
                "dur_s": time.perf_counter() - t0,
                "pid": self._pid,
                "span_id": span_id,
                "parent_id": parent_id,
                "attrs": dict(attrs),
            })

    def sampled_span(self, name: str, **attrs: object):
        """A span subject to the sampling stride (per-program detail)."""
        if self._stride == 0:
            return _null_span()
        self._sample_count += 1
        if self._sample_count % self._stride:
            return _null_span()
        return self.span(name, **attrs)

    # -- point events -------------------------------------------------------

    def event(self, name: str, **attrs: object) -> None:
        stack = getattr(self._local, "stack", None)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        self.sink.emit({
            "v": TRACE_SCHEMA_VERSION,
            "kind": "event",
            "name": name,
            "ts": time.time(),
            "pid": self._pid,
            "span_id": span_id,
            "parent_id": stack[-1] if stack else None,
            "attrs": dict(attrs),
        })

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


# -- trace consumption -----------------------------------------------------


def validate_event(event: object) -> List[str]:
    """Schema-validate one trace record; returns human-readable problems
    (empty list = valid).  The contract checked here is the one
    documented in this module's docstring and ``docs/observability.md``.
    """
    problems: List[str] = []
    if not isinstance(event, dict):
        return [f"record is {type(event).__name__}, expected object"]
    if event.get("v") != TRACE_SCHEMA_VERSION:
        problems.append(f"bad schema version {event.get('v')!r}")
    kind = event.get("kind")
    if kind not in ("span", "event"):
        problems.append(f"bad kind {kind!r}")
    if not isinstance(event.get("name"), str) or not event.get("name"):
        problems.append("name must be a non-empty string")
    if not isinstance(event.get("ts"), (int, float)):
        problems.append("ts must be a number")
    if kind == "span" and not isinstance(event.get("dur_s"), (int, float)):
        problems.append("span is missing numeric dur_s")
    if not isinstance(event.get("pid"), int):
        problems.append("pid must be an integer")
    if not isinstance(event.get("span_id"), int):
        problems.append("span_id must be an integer")
    if "parent_id" not in event:
        problems.append("parent_id is required (null for roots)")
    elif event["parent_id"] is not None and not isinstance(
        event["parent_id"], int
    ):
        problems.append("parent_id must be an integer or null")
    if not isinstance(event.get("attrs"), dict):
        problems.append("attrs must be an object")
    return problems


def read_trace(path: "str | os.PathLike[str]") -> Iterator[Dict]:
    """Iterate the records of a JSONL trace file."""
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def aggregate_spans(events: "List[Dict] | Iterator[Dict]") -> Dict[str, Dict]:
    """Fold spans into per-name totals for the ``repro stats`` table."""
    out: Dict[str, Dict] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        entry = out.setdefault(
            event["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        dur = float(event.get("dur_s", 0.0))
        entry["total_s"] += dur
        if dur > entry["max_s"]:
            entry["max_s"] = dur
    return out
