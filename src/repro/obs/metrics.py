"""Metrics registry: counters, gauges, histograms, and operator timers.

Design constraints, in order:

1. **Zero overhead when disabled.**  Nothing in this module is consulted
   unless a caller first passes the single ``repro.obs.enabled()``
   predicate, and the compiled execution pipelines go further — they
   only *compile* instrumented closures when observability is on, so the
   disabled hot path is byte-for-byte the uninstrumented code.
2. **Deterministic merge.**  Campaign workers each fill a private
   registry and ship it back as a plain dict; the parent folds the dicts
   in index order.  Every merge operation (counter sum, bucket-wise
   histogram sum, timer sum with max-of-max, gauge max) is associative
   and commutative, so the merged registry is identical for any worker
   count or fold shape — the same property the campaign's
   :class:`~repro.eval.precision.PrecisionReport` already guarantees.
3. **No dependencies.**  Plain dicts and lists; JSON round-trips; the
   ``/metrics`` endpoint renders the Prometheus text exposition format
   with nothing but string formatting.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimerStat",
    "Registry",
    "DEFAULT_TIME_BUCKETS_S",
]

#: Default histogram bucket upper bounds for durations in *seconds*:
#: 2-5-10 decades from 10µs to 100s, the range a python verifier stage
#: can plausibly occupy.  An overflow bucket catches everything above.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.0, 5.0)
) + (100.0,)


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-known level.  Merges as *max* so worker folds stay
    associative (last-write-wins would depend on fold order)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value > self.value:
            self.value = other.value


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies observations with
    ``value <= bounds[i]`` (and above ``bounds[i-1]``); the final slot is
    the overflow bucket.  Bucket edges are inclusive on the upper side,
    matching Prometheus ``le`` semantics.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_TIME_BUCKETS_S
        )
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be non-empty ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value, i.e. the bucket
        # whose inclusive upper edge admits it; beyond the last bound it
        # lands in the overflow slot.
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, pct: float) -> float:
        """Bucket-resolution percentile: the upper bound of the bucket
        holding the requested rank (``inf`` once the rank falls in the
        overflow bucket).  Coarse by construction — histograms trade
        resolution for mergeability."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(pct / 100.0 * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def summary(self) -> Dict[str, object]:
        """JSON-safe summary: overflow percentiles render as a finite
        ``">100"``-style sentinel string instead of ``inf`` — JSON has no
        ``Infinity``, and ``json.dumps`` would emit a non-standard token
        that strict parsers (and the ``/stats`` endpoint's consumers)
        reject.  :meth:`percentile` itself still returns ``float("inf")``
        for numeric callers."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else 0.0,
            "p50": self._summary_percentile(50),
            "p90": self._summary_percentile(90),
            "p99": self._summary_percentile(99),
        }

    def _summary_percentile(self, pct: float) -> "float | str":
        value = self.percentile(pct)
        if value == float("inf"):
            return f">{self.bounds[-1]:g}"
        return value

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count


class TimerStat:
    """Accumulated operator time: total ns, call count, worst single call.

    The per-operator unit behind the "where does verifier time go"
    top-k tables; one exists per ``(component, label)`` pair.
    """

    __slots__ = ("total_ns", "count", "max_ns")

    def __init__(self, total_ns: int = 0, count: int = 0, max_ns: int = 0) -> None:
        self.total_ns = total_ns
        self.count = count
        self.max_ns = max_ns

    def add(self, ns: int) -> None:
        self.total_ns += ns
        self.count += 1
        if ns > self.max_ns:
            self.max_ns = ns

    def merge(self, other: "TimerStat") -> None:
        self.total_ns += other.total_ns
        self.count += other.count
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns


class Registry:
    """A named collection of metrics with get-or-create accessors.

    One process-global default registry exists (see
    :func:`repro.obs.default_registry`); workers and tests create
    private ones and merge them upward.
    """

    __slots__ = ("counters", "gauges", "histograms", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: keyed by ``(component, label)`` — e.g. ``("verifier", "mul64")``.
        self.timers: Dict[Tuple[str, str], TimerStat] = {}

    # -- accessors ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    def timer(self, component: str, label: str) -> TimerStat:
        key = (component, label)
        t = self.timers.get(key)
        if t is None:
            t = self.timers[key] = TimerStat()
        return t

    def add_op_time(self, component: str, label: str, ns: int) -> None:
        """Hot-path form of ``timer(...).add(ns)`` (one dict probe)."""
        key = (component, label)
        t = self.timers.get(key)
        if t is None:
            t = self.timers[key] = TimerStat()
        t.add(ns)

    # -- reporting ----------------------------------------------------------

    def top_timers(
        self, component: str, k: int = 10
    ) -> List[Tuple[str, TimerStat]]:
        """The ``k`` labels of ``component`` with the most total time."""
        items = [
            (label, stat)
            for (comp, label), stat in self.timers.items()
            if comp == component
        ]
        items.sort(key=lambda item: (-item[1].total_ns, item[0]))
        return items[:k]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format for the ``/metrics`` endpoint."""
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = _prom_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.counters[name].value}")
        for name in sorted(self.gauges):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {self.gauges[name].value}")
        for name in sorted(self.histograms):
            metric = _prom_name(name)
            hist = self.histograms[name]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, n in zip(hist.bounds, hist.counts):
                cumulative += n
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {hist.sum}")
            lines.append(f"{metric}_count {hist.count}")
        by_component: Dict[str, List[Tuple[str, TimerStat]]] = {}
        for (component, label), stat in self.timers.items():
            by_component.setdefault(component, []).append((label, stat))
        for component in sorted(by_component):
            metric = _prom_name(f"{component}.op.seconds")
            lines.append(f"# TYPE {metric}_total counter")
            for label, stat in sorted(by_component[component]):
                lines.append(
                    f'{metric}_total{{op="{label}"}} {stat.total_ns / 1e9}'
                )
                lines.append(
                    f'{_prom_name(f"{component}.op.calls")}_total'
                    f'{{op="{label}"}} {stat.count}'
                )
        return "\n".join(lines) + "\n"

    # -- (de)serialization and merge ----------------------------------------

    def to_dict(self) -> Dict:
        """JSON-friendly snapshot (the worker return / metrics.json form)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self.histograms.items())
            },
            "timers": {
                f"{comp} {label}": {
                    "total_ns": t.total_ns,
                    "count": t.count,
                    "max_ns": t.max_ns,
                }
                for (comp, label), t in sorted(self.timers.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Registry":
        reg = cls()
        reg.merge_dict(payload)
        return reg

    def merge_dict(self, payload: Dict) -> None:
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).merge(Gauge(float(value)))
        for name, data in payload.get("histograms", {}).items():
            incoming = Histogram(data["bounds"])
            incoming.counts = [int(n) for n in data["counts"]]
            incoming.sum = float(data["sum"])
            incoming.count = int(data["count"])
            self.histogram(name, incoming.bounds).merge(incoming)
        for key, data in payload.get("timers", {}).items():
            component, _, label = key.partition(" ")
            self.timer(component, label).merge(
                TimerStat(
                    int(data["total_ns"]), int(data["count"]),
                    int(data["max_ns"]),
                )
            )

    def merge(self, other: "Registry") -> None:
        self.merge_dict(other.to_dict())


def _prom_name(name: str) -> str:
    """``oracle.replays`` -> ``repro_oracle_replays``."""
    return "repro_" + name.replace(".", "_").replace("-", "_")
