"""Heartbeat snapshots: the "what is this campaign doing *right now*" file.

Long campaigns publish a small JSON snapshot (round, programs/sec,
corpus size, violations, per-operator top-k) to ``heartbeat.json`` in
the obs directory after every round.  The write is atomic
(write-then-rename), so a reader — ``repro stats``, the ``/stats``
endpoint, a dashboard poller — never sees a torn file.

Staleness is an explicit part of the contract: every snapshot carries a
monotonic ``seq``, the publisher ``pid``, and its declared publish
``interval_s``.  A snapshot older than twice its declared interval means
the publisher died mid-run (worker crash, OOM-kill) and the numbers are
lies — :func:`staleness_warning` is how readers find out, instead of a
dashboard forever showing the last good round.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION",
    "HeartbeatWriter",
    "read_heartbeat",
    "staleness_warning",
]

HEARTBEAT_SCHEMA_VERSION = 1


class HeartbeatWriter:
    """Publishes atomic heartbeat snapshots with sequence numbers.

    ``interval_s`` is both the publish rate limit and the declared
    freshness contract recorded in every snapshot: publishes closer
    together than ``interval_s`` are coalesced (unless forced), and
    readers treat ``2 * interval_s`` without a new snapshot as staleness.
    """

    def __init__(
        self, path: "str | os.PathLike[str]", interval_s: float = 2.0
    ) -> None:
        self.path = Path(path)
        self.interval_s = interval_s
        self._seq = 0
        self._last_publish = 0.0

    def publish(self, snapshot: Dict, force: bool = False) -> bool:
        """Write a snapshot; returns whether anything was written.

        Rate-limited to one write per ``interval_s`` so a tight campaign
        loop can call this unconditionally; ``force`` bypasses the limit
        (round boundaries, final flush).
        """
        now = time.time()
        if not force and now - self._last_publish < self.interval_s:
            return False
        self._seq += 1
        self._last_publish = now
        payload = {
            "schema_version": HEARTBEAT_SCHEMA_VERSION,
            "seq": self._seq,
            "pid": os.getpid(),
            "interval_s": self.interval_s,
            "ts": now,
        }
        payload.update(snapshot)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        return True


def read_heartbeat(path: "str | os.PathLike[str]") -> Dict:
    """Load a heartbeat snapshot (raises ``ValueError`` on bad schema)."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != HEARTBEAT_SCHEMA_VERSION:
        raise ValueError(f"unsupported heartbeat schema {version!r}")
    return payload


def staleness_warning(
    payload: Dict, now: Optional[float] = None
) -> Optional[str]:
    """A human-readable warning when a snapshot has outlived its
    declared interval by 2x — the publisher is likely dead."""
    now = time.time() if now is None else now
    interval = float(payload.get("interval_s", 0.0))
    age = now - float(payload.get("ts", 0.0))
    if interval > 0 and age > 2 * interval:
        return (
            f"heartbeat is stale: last published {age:.1f}s ago by "
            f"pid {payload.get('pid')} (seq {payload.get('seq')}), more "
            f"than 2x its declared {interval:.1f}s interval — the "
            f"publisher has likely exited or crashed"
        )
    return None
