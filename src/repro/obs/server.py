"""Live stats endpoint: a background ``http.server`` thread.

Serves two routes from the standard library only:

* ``GET /metrics`` — the registry in Prometheus text exposition format;
* ``GET /stats``   — JSON: the latest heartbeat snapshot (with a
  ``stale`` warning field when the publisher looks dead) plus the
  registry snapshot.

The server binds ``127.0.0.1`` by default — this is an operator
diagnostic port, not a public API — and ``port=0`` picks an ephemeral
port, exposed via :attr:`StatsServer.port` after :meth:`start`.
Serving runs on a daemon thread, so a crashed campaign never hangs on
its own diagnostics.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Optional

from .heartbeat import read_heartbeat, staleness_warning
from .metrics import Registry

__all__ = ["StatsServer"]


class StatsServer:
    """Serve ``/metrics`` and ``/stats`` for a registry + obs directory.

    ``registry_fn`` is called per request so the live (mutating)
    registry is always what renders; ``obs_dir`` (optional) supplies the
    heartbeat file the ``/stats`` payload embeds.
    """

    def __init__(
        self,
        registry_fn: Callable[[], Registry],
        obs_dir: Optional["str | Path"] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry_fn = registry_fn
        self._obs_dir = Path(obs_dir) if obs_dir is not None else None
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "StatsServer":
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = server._registry_fn().render_prometheus()
                    self._reply(200, body, "text/plain; version=0.0.4")
                elif self.path.split("?", 1)[0] == "/stats":
                    body = json.dumps(
                        server.stats_payload(), indent=2, sort_keys=True
                    ) + "\n"
                    self._reply(200, body, "application/json")
                else:
                    self._reply(404, "not found\n", "text/plain")

            def _reply(self, code: int, body: str, ctype: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # diagnostics must not spam the campaign's stdout

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-stats",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- payloads -----------------------------------------------------------

    def stats_payload(self) -> Dict:
        payload: Dict = {"metrics": self._registry_fn().to_dict()}
        heartbeat_path = (
            self._obs_dir / "heartbeat.json"
            if self._obs_dir is not None
            else None
        )
        if heartbeat_path is not None and heartbeat_path.exists():
            try:
                heartbeat = read_heartbeat(heartbeat_path)
            except (ValueError, OSError) as exc:
                payload["heartbeat_error"] = str(exc)
            else:
                payload["heartbeat"] = heartbeat
                warning = staleness_warning(heartbeat)
                if warning:
                    payload["stale"] = warning
        return payload
