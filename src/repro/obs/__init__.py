"""``repro.obs`` — zero-overhead observability for the verifier stack.

Three layers, all dependency-free:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges,
  fixed-bucket histograms, and per-operator timers in a mergeable
  :class:`Registry`; one process-global default registry.
* **tracing** (:mod:`repro.obs.trace`) — nested spans emitted as
  JSON-lines to a pluggable sink, with a sampling stride so
  per-program spans don't melt fuzzing throughput.
* **liveness** (:mod:`repro.obs.heartbeat`, :mod:`repro.obs.server`) —
  atomic heartbeat snapshots plus an optional background ``http.server``
  thread serving ``/metrics`` (Prometheus text) and ``/stats`` (JSON).

The zero-overhead contract
--------------------------
Observability is **off by default** and the disabled path must cost
nothing measurable:

* hot paths guard on the single predicate :func:`enabled` (one module
  attribute read);
* the compiled execution pipelines (:mod:`repro.bpf.compiled`,
  :mod:`repro.bpf.verifier.compiled`) consult :func:`compile_tag` at
  *compile* time and only wrap closures with timing when it is nonzero —
  with obs disabled the compiled program is byte-for-byte the closures
  shipped today, not instrumented code behind a flag check.

Enabling flips a process-global switch (:func:`enable` /
:func:`configure`); :func:`compile_tag` changes value so cached compiled
programs keyed on it transparently recompile in whichever mode is
current.

Worker processes
----------------
Campaign workers never share sinks: each work item runs under a private
:func:`scoped_registry`, ships the snapshot back with its result, and
the parent merges in index order (merge is associative, so reports stay
worker-count independent).  Spans and heartbeats are parent-side only.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from .heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatWriter,
    read_heartbeat,
    staleness_warning,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    Registry,
    TimerStat,
)
from .server import StatsServer
from .trace import (
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullTracer,
    StderrSink,
    Tracer,
    aggregate_spans,
    read_trace,
    validate_event,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "compile_tag",
    "default_registry",
    "set_default_registry",
    "scoped_registry",
    "record_op_time",
    "tracer",
    "set_tracer",
    "configure",
    "active_session",
    "publish_heartbeat",
    "write_metrics_snapshot",
    "worker_init_state",
    "init_worker",
    "ObsSession",
    # re-exports
    "Counter",
    "Gauge",
    "Histogram",
    "TimerStat",
    "Registry",
    "DEFAULT_TIME_BUCKETS_S",
    "Tracer",
    "NullTracer",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "validate_event",
    "read_trace",
    "aggregate_spans",
    "TRACE_SCHEMA_VERSION",
    "HeartbeatWriter",
    "read_heartbeat",
    "staleness_warning",
    "HEARTBEAT_SCHEMA_VERSION",
    "StatsServer",
]

_enabled = False
#: Bumped on every enable so compiled-closure caches keyed on
#: :func:`compile_tag` never serve stale (un)instrumented programs.
_generation = 0
_registry = Registry()
_tracer = NullTracer()
_session: Optional["ObsSession"] = None


# -- the master switch ------------------------------------------------------


def enabled() -> bool:
    """The single hot-path predicate: is observability on?"""
    return _enabled


def enable() -> None:
    global _enabled, _generation
    if not _enabled:
        _enabled = True
        _generation += 1


def disable() -> None:
    global _enabled
    _enabled = False


def compile_tag() -> int:
    """Cache key component for compiled programs: 0 when disabled (the
    pristine closures), else the enable-generation (instrumented)."""
    return _generation if _enabled else 0


def reset() -> None:
    """Return the module to its import-time state (tests)."""
    global _enabled, _registry, _tracer, _session
    if _session is not None:
        _session.close()
        _session = None
    _enabled = False
    _registry = Registry()
    _tracer = NullTracer()


# -- registry plumbing ------------------------------------------------------


def default_registry() -> Registry:
    return _registry


def set_default_registry(registry: Registry) -> None:
    global _registry
    _registry = registry


@contextmanager
def scoped_registry() -> Iterator[Registry]:
    """Swap in a fresh default registry for the duration of the block.

    Worker-side unit of the merge-on-return protocol: instrumented
    closures resolve the default registry at call time, so everything a
    work item records lands in the scoped registry and travels back as
    ``registry.to_dict()``.
    """
    global _registry
    previous = _registry
    fresh = Registry()
    _registry = fresh
    try:
        yield fresh
    finally:
        _registry = previous


def record_op_time(component: str, label: str, ns: int) -> None:
    """Hot-path accumulation used by instrumented closures."""
    _registry.add_op_time(component, label, ns)


# -- tracer plumbing --------------------------------------------------------


def tracer() -> "Tracer | NullTracer":
    return _tracer


def set_tracer(new_tracer: "Tracer | NullTracer") -> None:
    global _tracer
    _tracer = new_tracer


# -- sessions (what the CLI flags construct) --------------------------------


class ObsSession:
    """Everything one ``--obs-dir`` run owns, closed as a unit.

    Creating a session enables observability; closing it flushes the
    trace, publishes a final heartbeat, writes ``metrics.json``, stops
    the stats server, and disables observability again.
    """

    def __init__(
        self,
        obs_dir: Optional["str | Path"] = None,
        sample: float = 0.01,
        serve_port: Optional[int] = None,
        heartbeat_interval_s: float = 2.0,
    ) -> None:
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None
        self.sample = sample
        self.registry = Registry()
        self.heartbeat: Optional[HeartbeatWriter] = None
        self.server: Optional[StatsServer] = None
        self._closed = False
        self._started = time.time()
        self._last_snapshot: Dict = {}

        set_default_registry(self.registry)
        if self.obs_dir is not None:
            self.obs_dir.mkdir(parents=True, exist_ok=True)
            set_tracer(Tracer(
                JsonlSink(self.obs_dir / "trace.jsonl"), sample=sample
            ))
            self.heartbeat = HeartbeatWriter(
                self.obs_dir / "heartbeat.json",
                interval_s=heartbeat_interval_s,
            )
        if serve_port is not None:
            self.server = StatsServer(
                default_registry, obs_dir=self.obs_dir, port=serve_port
            ).start()
        enable()

    # -- publishing ---------------------------------------------------------

    def publish_heartbeat(self, snapshot: Dict, force: bool = False) -> None:
        if self.heartbeat is None:
            return
        payload = dict(snapshot)
        payload.setdefault("uptime_s", round(time.time() - self._started, 3))
        self._last_snapshot = payload
        if self.heartbeat.publish(payload, force=force):
            self.write_metrics_snapshot()

    def write_metrics_snapshot(self) -> None:
        """Atomically refresh ``metrics.json`` next to the heartbeat."""
        if self.obs_dir is None:
            return
        path = self.obs_dir / "metrics.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.registry.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        os.replace(tmp, path)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        global _session
        if self._closed:
            return
        self._closed = True
        if self.heartbeat is not None:
            # Keep the last run snapshot's fields so the final heartbeat
            # still answers "what did it do" — only the phase flips.
            self.publish_heartbeat(
                dict(self._last_snapshot, phase="done"), force=True
            )
        self.write_metrics_snapshot()
        current = tracer()
        if isinstance(current, Tracer):
            current.flush()
            current.close()
        if self.server is not None:
            self.server.stop()
            self.server = None
        set_tracer(NullTracer())
        disable()
        if _session is self:
            _session = None

    def __enter__(self) -> "ObsSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def configure(
    obs_dir: Optional["str | Path"] = None,
    sample: float = 0.01,
    serve_port: Optional[int] = None,
    heartbeat_interval_s: float = 2.0,
) -> ObsSession:
    """Create (and install) the process-wide observability session."""
    global _session
    if _session is not None:
        _session.close()
    _session = ObsSession(
        obs_dir=obs_dir,
        sample=sample,
        serve_port=serve_port,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    return _session


def active_session() -> Optional[ObsSession]:
    return _session


def publish_heartbeat(snapshot: Dict, force: bool = False) -> None:
    """Session-aware heartbeat publish; a no-op without a session, so
    campaign code can call it unconditionally."""
    if _session is not None:
        _session.publish_heartbeat(snapshot, force=force)


def write_metrics_snapshot() -> None:
    if _session is not None:
        _session.write_metrics_snapshot()


# -- worker propagation -----------------------------------------------------


def worker_init_state() -> Optional[Tuple[bool, int]]:
    """Picklable obs state shipped to pool workers (None = disabled).

    Workers get the enabled flag and generation (so their compiled
    closures instrument consistently with the parent) but *no* sinks:
    traces and heartbeats stay parent-side, metrics return via
    :func:`scoped_registry` snapshots on each result.
    """
    if not _enabled:
        return None
    return (_enabled, _generation)


def init_worker(state: Optional[Tuple[bool, int]]) -> None:
    """Install shipped obs state in a pool worker (inverse of
    :func:`worker_init_state`)."""
    global _enabled, _generation, _tracer
    if state is None:
        _enabled = False
        return
    _enabled, _generation = state
    _tracer = NullTracer()
