"""Exhaustive bounded verification of tnum operators.

The brute-force complement to the SAT pipeline: enumerate *all* 3^n × 3^n
well-formed tnum pairs at width n and check the soundness predicate (and
optionally optimality) against the concrete semantics.  At n ≤ 6 this is
fast and serves as an independent oracle for both the operator
implementations and the SAT encodings.

The paper ran Z3 to 64 bits for the linear operators; our substitution
(documented in DESIGN.md) is exhaustive checks at small widths plus
randomized 64-bit checks in :mod:`repro.verify.random_check` — together
they exercise the same verification conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.galois import abstract
from repro.core.lattice import enumerate_tnums
from repro.core.ops import BINARY_OPS, SHIFT_OPS, UNARY_OPS
from repro.core.tnum import Tnum, mask_for_width

__all__ = [
    "ExhaustiveReport",
    "check_soundness",
    "check_optimality",
    "check_unary_soundness",
    "check_shift_soundness",
    "verify_all_operators",
]


@dataclass
class ExhaustiveReport:
    """Outcome of exhaustively checking one operator at one width."""

    operator: str
    width: int
    property_checked: str  # "soundness" or "optimality"
    holds: bool
    pairs_checked: int
    counterexample: Optional[Tuple[Tnum, ...]] = None
    failing_pairs: int = 0

    def __str__(self) -> str:
        verdict = "holds" if self.holds else f"FAILS ({self.failing_pairs} pairs)"
        cex = (
            f" e.g. {tuple(str(t) for t in self.counterexample)}"
            if self.counterexample
            else ""
        )
        return (
            f"{self.property_checked} of {self.operator}@{self.width}bit: "
            f"{verdict} over {self.pairs_checked} pairs{cex}"
        )


def check_soundness(
    operator: str, width: int, stop_at_first: bool = True
) -> ExhaustiveReport:
    """Exhaustively check Eqn. 8 for a binary operator at ``width``."""
    spec = BINARY_OPS[operator]
    tnums = enumerate_tnums(width)
    limit = mask_for_width(width)
    checked = 0
    failing = 0
    counterexample = None
    for p in tnums:
        gamma_p = list(p.concretize())
        for q in tnums:
            checked += 1
            r = spec.abstract(p, q)
            bad = False
            for x in gamma_p:
                for y in q.concretize():
                    if not r.contains(spec.concrete(x, y, width) & limit):
                        bad = True
                        break
                if bad:
                    break
            if bad:
                failing += 1
                if counterexample is None:
                    counterexample = (p, q)
                if stop_at_first:
                    return ExhaustiveReport(
                        operator, width, "soundness", False, checked,
                        counterexample, failing,
                    )
    return ExhaustiveReport(
        operator, width, "soundness", failing == 0, checked, counterexample, failing
    )


def check_optimality(
    operator: str, width: int, stop_at_first: bool = True
) -> ExhaustiveReport:
    """Exhaustively check maximal precision (α∘f∘γ equality)."""
    spec = BINARY_OPS[operator]
    tnums = enumerate_tnums(width)
    limit = mask_for_width(width)
    checked = 0
    failing = 0
    counterexample = None
    for p in tnums:
        gamma_p = list(p.concretize())
        for q in tnums:
            checked += 1
            outputs = [
                spec.concrete(x, y, width) & limit
                for x in gamma_p
                for y in q.concretize()
            ]
            best = abstract(outputs, width)
            if spec.abstract(p, q) != best:
                failing += 1
                if counterexample is None:
                    counterexample = (p, q)
                if stop_at_first:
                    return ExhaustiveReport(
                        operator, width, "optimality", False, checked,
                        counterexample, failing,
                    )
    return ExhaustiveReport(
        operator, width, "optimality", failing == 0, checked, counterexample, failing
    )


def check_unary_soundness(operator: str, width: int) -> ExhaustiveReport:
    """Exhaustive soundness for neg/not."""
    spec = UNARY_OPS[operator]
    tnums = enumerate_tnums(width)
    limit = mask_for_width(width)
    checked = 0
    for p in tnums:
        checked += 1
        r = spec.abstract(p)
        for x in p.concretize():
            if not r.contains(spec.concrete(x, width) & limit):
                return ExhaustiveReport(
                    operator, width, "soundness", False, checked, (p,), 1
                )
    return ExhaustiveReport(operator, width, "soundness", True, checked)


def check_shift_soundness(operator: str, width: int) -> ExhaustiveReport:
    """Exhaustive soundness for constant-amount shifts, all amounts."""
    spec = SHIFT_OPS[operator]
    tnums = enumerate_tnums(width)
    limit = mask_for_width(width)
    checked = 0
    for p in tnums:
        for amount in range(width):
            checked += 1
            r = spec.abstract(p, amount)
            for x in p.concretize():
                if not r.contains(spec.concrete(x, amount, width) & limit):
                    return ExhaustiveReport(
                        operator, width, "soundness", False, checked, (p,), 1
                    )
    return ExhaustiveReport(operator, width, "soundness", True, checked)


def verify_all_operators(width: int = 4) -> Dict[str, ExhaustiveReport]:
    """Run the full §III-A verification table at one width.

    Returns reports keyed by operator name.  Expected outcome (matching
    the paper): every operator sound; add and sub also optimal.
    """
    reports: Dict[str, ExhaustiveReport] = {}
    for name in ("add", "sub", "mul", "and", "or", "xor", "div", "mod"):
        reports[name] = check_soundness(name, width)
    for name in ("neg", "not"):
        reports[name] = check_unary_soundness(name, width)
    for name in ("lsh", "rsh", "arsh"):
        reports[name] = check_shift_soundness(name, width)
    reports["add-optimal"] = check_optimality("add", width)
    reports["sub-optimal"] = check_optimality("sub", width)
    return reports
