"""Randomized 64-bit soundness testing.

The paper's Supplementary D describes a spot-check harness: draw random
input tnums, execute the operator, and confirm via the membership
predicate that concrete results stay inside the abstract result.  This is
the full-width complement to the exhaustive small-width checker — our SAT
solver cannot reach 64 bits for the non-linear operators, so (as recorded
in DESIGN.md) random checking at width 64 covers the production
configuration.

Random tnum generation guarantees well-formedness by masking the value
with the complement of the mask (every ``(v & ~m, m)`` pair is
well-formed, and all well-formed tnums are reachable this way).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.ops import BINARY_OPS, SHIFT_OPS, UNARY_OPS
from repro.core.tnum import Tnum, mask_for_width

__all__ = [
    "random_tnum",
    "random_member",
    "RandomCheckReport",
    "random_check_operator",
    "random_check_all",
]


def random_tnum(rng: random.Random, width: int = 64) -> Tnum:
    """A uniformly-drawn well-formed tnum of the given width."""
    limit = mask_for_width(width)
    mask = rng.randint(0, limit)
    value = rng.randint(0, limit) & ~mask
    return Tnum(value & limit, mask, width)


def random_member(rng: random.Random, t: Tnum) -> int:
    """A uniformly-drawn concrete member of γ(t)."""
    if t.is_bottom():
        raise ValueError("bottom tnum has no members")
    fill = rng.randint(0, mask_for_width(t.width)) & t.mask
    return t.value | fill


@dataclass
class RandomCheckReport:
    """Outcome of a randomized soundness run for one operator.

    ``seed`` is recorded so any failure message doubles as a
    reproduction recipe (re-run with the same seed and trial count).
    """

    operator: str
    width: int
    trials: int
    failures: int = 0
    counterexample: Optional[Tuple] = None
    seed: int = 0

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def __str__(self) -> str:
        verdict = "passed" if self.passed else f"FAILED ({self.failures})"
        return (f"{self.operator}@{self.width}bit random x{self.trials} "
                f"(seed {self.seed}): {verdict}")


def random_check_operator(
    operator: str,
    trials: int = 10_000,
    width: int = 64,
    seed: int = 0,
    members_per_tnum: int = 4,
) -> RandomCheckReport:
    """Randomized soundness check for one operator at full width."""
    rng = random.Random(seed)
    limit = mask_for_width(width)
    report = RandomCheckReport(operator, width, trials, seed=seed)

    if operator in BINARY_OPS:
        spec = BINARY_OPS[operator]
        for _ in range(trials):
            p = random_tnum(rng, width)
            q = random_tnum(rng, width)
            r = spec.abstract(p, q)
            for _ in range(members_per_tnum):
                x = random_member(rng, p)
                y = random_member(rng, q)
                z = spec.concrete(x, y, width) & limit
                if not r.contains(z):
                    report.failures += 1
                    if report.counterexample is None:
                        report.counterexample = (p, q, x, y, z, r)
        return report

    if operator in UNARY_OPS:
        spec = UNARY_OPS[operator]
        for _ in range(trials):
            p = random_tnum(rng, width)
            r = spec.abstract(p)
            for _ in range(members_per_tnum):
                x = random_member(rng, p)
                z = spec.concrete(x, width) & limit
                if not r.contains(z):
                    report.failures += 1
                    if report.counterexample is None:
                        report.counterexample = (p, x, z, r)
        return report

    if operator in SHIFT_OPS:
        spec = SHIFT_OPS[operator]
        for _ in range(trials):
            p = random_tnum(rng, width)
            amount = rng.randrange(width)
            r = spec.abstract(p, amount)
            for _ in range(members_per_tnum):
                x = random_member(rng, p)
                z = spec.concrete(x, amount, width) & limit
                if not r.contains(z):
                    report.failures += 1
                    if report.counterexample is None:
                        report.counterexample = (p, amount, x, z, r)
        return report

    raise KeyError(f"unknown operator {operator!r}")


def random_check_all(
    trials: int = 5_000, width: int = 64, seed: int = 0
) -> Dict[str, RandomCheckReport]:
    """Randomized 64-bit soundness sweep across every operator."""
    names = list(BINARY_OPS) + list(UNARY_OPS) + list(SHIFT_OPS)
    return {
        name: random_check_operator(name, trials=trials, width=width, seed=seed)
        for name in names
    }
