"""Verification substrate: the reproduction of §III-A.

Three independent pipelines check the soundness of every tnum operator:

* :mod:`repro.verify.exhaustive` — brute-force over all tnum pairs at
  small widths (also checks *optimality* of add/sub);
* :mod:`repro.verify.sat` — the paper's SMT methodology, rebuilt on an
  in-repo CDCL SAT solver with bit-blasting;
* :mod:`repro.verify.random_check` — randomized testing at the kernel's
  full 64-bit width.
"""

from .exhaustive import (
    ExhaustiveReport,
    check_optimality,
    check_shift_soundness,
    check_soundness,
    check_unary_soundness,
    verify_all_operators,
)
from .properties import (
    Witness,
    find_nonassociative_add,
    find_noncommutative_mul,
    find_noninverse_add_sub,
    is_optimal_on,
    is_sound_on,
)
from .random_check import (
    RandomCheckReport,
    random_check_all,
    random_check_operator,
    random_member,
    random_tnum,
)
from .sat import (
    SUPPORTED_OPERATORS,
    SoundnessReport,
    check_operator_soundness,
)

__all__ = [
    "check_soundness",
    "check_optimality",
    "check_unary_soundness",
    "check_shift_soundness",
    "verify_all_operators",
    "ExhaustiveReport",
    "is_sound_on",
    "is_optimal_on",
    "find_nonassociative_add",
    "find_noninverse_add_sub",
    "find_noncommutative_mul",
    "Witness",
    "random_tnum",
    "random_member",
    "random_check_operator",
    "random_check_all",
    "RandomCheckReport",
    "check_operator_soundness",
    "SoundnessReport",
    "SUPPORTED_OPERATORS",
]
