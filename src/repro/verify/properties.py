"""Soundness/optimality predicates and the paper's algebraic observations.

§III-A reports three non-obvious properties uncovered by bounded
verification: tnum addition is **not associative**, addition and
subtraction are **not inverses**, and tnum multiplication is **not
commutative**.  The witness finders here rediscover all three by
enumeration, and the predicates are the ground-truth definitions the
exhaustive checker applies operator-by-operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Callable, Optional, Tuple

from repro.core.galois import abstract
from repro.core.lattice import enumerate_tnums
from repro.core.multiply import our_mul
from repro.core.arithmetic import tnum_add, tnum_sub
from repro.core.tnum import Tnum, mask_for_width

__all__ = [
    "is_sound_on",
    "is_optimal_on",
    "find_nonassociative_add",
    "find_noninverse_add_sub",
    "find_noncommutative_mul",
    "Witness",
]


@dataclass
class Witness:
    """A concrete witness for an algebraic (non-)property."""

    description: str
    tnums: Tuple[Tnum, ...]
    lhs: Tnum
    rhs: Tnum

    def __str__(self) -> str:
        inputs = ", ".join(str(t) for t in self.tnums)
        return f"{self.description}: inputs ({inputs}) -> {self.lhs} vs {self.rhs}"


def is_sound_on(
    abstract_op: Callable[[Tnum, Tnum], Tnum],
    concrete_op: Callable[[int, int], int],
    p: Tnum,
    q: Tnum,
) -> bool:
    """Check Eqn. 8 pointwise: every concrete result is in γ(opT(P, Q))."""
    r = abstract_op(p, q)
    limit = mask_for_width(p.width)
    for x in p.concretize():
        for y in q.concretize():
            if not r.contains(concrete_op(x, y) & limit):
                return False
    return True


def is_optimal_on(
    abstract_op: Callable[[Tnum, Tnum], Tnum],
    concrete_op: Callable[[int, int], int],
    p: Tnum,
    q: Tnum,
) -> bool:
    """Check maximal precision: opT(P, Q) equals α(opC(γ(P), γ(Q)))."""
    if p.is_bottom() or q.is_bottom():
        return abstract_op(p, q).is_bottom()
    limit = mask_for_width(p.width)
    outputs = [
        concrete_op(x, y) & limit
        for x in p.concretize()
        for y in q.concretize()
    ]
    return abstract_op(p, q) == abstract(outputs, p.width)


def find_nonassociative_add(width: int = 3) -> Optional[Witness]:
    """Find tnums A, B, C with (A+B)+C != A+(B+C) (observation 1)."""
    tnums = enumerate_tnums(width)
    for a, b, c in iter_product(tnums, repeat=3):
        left = tnum_add(tnum_add(a, b), c)
        right = tnum_add(a, tnum_add(b, c))
        if left != right:
            return Witness("tnum_add not associative", (a, b, c), left, right)
    return None


def find_noninverse_add_sub(width: int = 2) -> Optional[Witness]:
    """Find tnums A, B with (A+B)-B != A when A+B has uncertainty
    (observation 2: addition and subtraction are not inverses)."""
    tnums = enumerate_tnums(width)
    for a, b in iter_product(tnums, repeat=2):
        back = tnum_sub(tnum_add(a, b), b)
        if back != a:
            return Witness(
                "tnum_add/tnum_sub not inverses", (a, b), back, a
            )
    return None


def find_noncommutative_mul(
    width: int = 10, seed: int = 7, attempts: int = 200_000
) -> Optional[Witness]:
    """Find tnums A, B with A*B != B*A (observation 3).

    Small widths are exhaustively commutative for ``our_mul`` (we checked
    all pairs up to width 5), so this searches sparse-mask random tnums at
    a larger width, where witnesses are plentiful — e.g. at width 10,
    A=000111µ1µ1, B=1000010111 multiply to 0µµµµµµµµ1 one way and
    µµµµµµµµµ1 the other.
    """
    import random

    rng = random.Random(seed)
    limit = mask_for_width(width)
    for _ in range(attempts):
        pair = []
        for _ in range(2):
            mask = 0
            for _ in range(rng.randint(0, 3)):
                mask |= 1 << rng.randrange(width)
            value = rng.randint(0, limit) & ~mask
            pair.append(Tnum(value, mask, width))
        a, b = pair
        ab = our_mul(a, b)
        ba = our_mul(b, a)
        if ab != ba:
            return Witness("tnum multiplication not commutative", (a, b), ab, ba)
    return None
