"""SAT-based bounded verification substrate (the offline Z3 stand-in).

Layers: :class:`CNFBuilder` (Tseitin gates) → :class:`BitVecBuilder`
(bit-blasted words) → :class:`Solver` (CDCL) → :func:`check_operator_soundness`
(the paper's Eqn. 11 soundness queries).
"""

from .bitvector import BitVec, BitVecBuilder
from .cnf import CNFBuilder
from .encode import (
    SUPPORTED_OPERATORS,
    SoundnessReport,
    SymTnum,
    check_operator_soundness,
)
from .solver import SatResult, Solver

__all__ = [
    "CNFBuilder",
    "BitVec",
    "BitVecBuilder",
    "Solver",
    "SatResult",
    "SymTnum",
    "SoundnessReport",
    "check_operator_soundness",
    "SUPPORTED_OPERATORS",
]
