"""A CDCL SAT solver.

Conflict-driven clause learning with two-watched-literal propagation,
first-UIP conflict analysis, VSIDS-style activity decisions, phase saving,
and Luby restarts.  It is deliberately a clean, dependency-free
implementation — the reproduction's stand-in for Z3 (unavailable offline)
when discharging the paper's soundness formulas after bit-blasting.

Performance is adequate for the bounded-verification workloads in this
repository (tnum operator soundness up to widths 8-12 for linear
operators, 6-8 for multiplication); it is not intended to compete with
industrial solvers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Solver", "SatResult"]


class SatResult:
    """Outcome of a solve call: satisfiable flag plus model if SAT."""

    def __init__(self, sat: bool, model: Optional[Dict[int, bool]] = None) -> None:
        self.sat = sat
        self.model = model or {}

    def __bool__(self) -> bool:
        return self.sat

    def value(self, var: int) -> bool:
        return self.model.get(var, False)


def _luby(x: int) -> int:
    """The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …

    MiniSat's formulation: find the finite subsequence containing index
    ``x`` and the position within it.
    """
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """CDCL solver over clauses of signed-integer literals."""

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]]) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        # assignment[v] is None/True/False; trail is assignment order.
        self.assign: List[Optional[bool]] = [None] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.watches: Dict[int, List[List[int]]] = {}
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.phase: List[bool] = [False] * (num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self._unsat = False
        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    # -- clause management --------------------------------------------------------

    def _add_clause(self, clause: List[int], learned: bool) -> None:
        clause = list(dict.fromkeys(clause))  # dedupe, keep order
        if any(-lit in clause for lit in clause):
            return  # tautology
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            lit = clause[0]
            value = self._lit_value(lit)
            if value is False and self.level[abs(lit)] == 0:
                self._unsat = True
            elif value is None:
                self._enqueue(lit, None)
            return
        self.clauses.append(clause)
        for lit in clause[:2]:
            self.watches.setdefault(-lit, []).append(clause)

    # -- assignment helpers ----------------------------------------------------------

    def _lit_value(self, lit: int) -> Optional[bool]:
        v = self.assign[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation --------------------------------------------------------------------

    def _propagate(self, head: int) -> Optional[List[int]]:
        """Unit propagation from trail position ``head``; returns a
        conflicting clause or None."""
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            watch_list = self.watches.get(lit, [])
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                # Ensure the falsified literal is at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    i += 1
                    continue
                # Find a new literal to watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches.setdefault(-clause[1], []).append(clause)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._lit_value(first) is False:
                    return clause  # conflict
                self._enqueue(first, clause)
                i += 1
        self._prop_head = len(self.trail)
        return None

    # -- conflict analysis --------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> tuple:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = conflict
        trail_idx = len(self.trail) - 1
        current = self._decision_level()

        while True:
            for q in clause:
                # Skip the literal being resolved on (the reason clause
                # contains the propagated literal itself).
                if lit is not None and abs(q) == abs(lit):
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next trail literal at the current level.
            while not seen[abs(self.trail[trail_idx])]:
                trail_idx -= 1
            p = self.trail[trail_idx]
            lit = -p
            seen[abs(p)] = False
            counter -= 1
            trail_idx -= 1
            if counter == 0:
                break
            clause = self.reason[abs(p)] or []
        learned.insert(0, lit)

        if len(learned) == 1:
            return learned, 0
        backjump = max(self.level[abs(q)] for q in learned[1:])
        # Put a literal of backjump level in watch position 1.
        for j in range(1, len(learned)):
            if self.level[abs(learned[j])] == backjump:
                learned[1], learned[j] = learned[j], learned[1]
                break
        return learned, backjump

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.phase[var] = self.assign[var]  # phase saving
            self.assign[var] = None
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_lim[target_level:]

    # -- decisions ----------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        best = None
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None and self.activity[var] > best_act:
                best = var
                best_act = self.activity[var]
        if best is None:
            return None
        return best if self.phase[best] else -best

    # -- main loop -------------------------------------------------------------------------

    def solve(self, max_conflicts: Optional[int] = None) -> SatResult:
        """Solve; returns :class:`SatResult`.

        ``max_conflicts`` bounds total work (raises ``TimeoutError`` when
        exceeded) so callers can budget verification runs.
        """
        if self._unsat:
            return SatResult(False)
        conflict_budget = max_conflicts if max_conflicts is not None else float("inf")
        conflicts_total = 0
        restart_idx = 0
        head = 0

        while True:
            restart_limit = 64 * _luby(restart_idx)
            restart_idx += 1
            conflicts_here = 0
            while True:
                conflict = self._propagate(head)
                head = len(self.trail)
                if conflict is not None:
                    conflicts_total += 1
                    conflicts_here += 1
                    if conflicts_total > conflict_budget:
                        raise TimeoutError(
                            f"SAT solver exceeded {max_conflicts} conflicts"
                        )
                    if self._decision_level() == 0:
                        return SatResult(False)
                    learned, backjump = self._analyze(conflict)
                    self._backtrack(backjump)
                    head = len(self.trail)
                    if len(learned) == 1:
                        self._enqueue(learned[0], None)
                    else:
                        self.clauses.append(learned)
                        for lit in learned[:2]:
                            self.watches.setdefault(-lit, []).append(learned)
                        self._enqueue(learned[0], learned)
                    self.var_inc /= self.var_decay
                    continue
                if conflicts_here >= restart_limit:
                    self._backtrack(0)
                    head = len(self.trail)
                    break  # restart
                decision = self._decide()
                if decision is None:
                    model = {
                        v: bool(self.assign[v])
                        for v in range(1, self.num_vars + 1)
                        if self.assign[v] is not None
                    }
                    return SatResult(True, model)
                self.trail_lim.append(len(self.trail))
                self._enqueue(decision, None)
