"""CNF formula builder with Tseitin gate encodings.

Variables are positive integers; literals are non-zero integers with sign
for polarity (DIMACS convention).  :class:`CNFBuilder` allocates fresh
variables and encodes the standard gates the bit-vector layer needs.

Constant folding: the pseudo-literals :data:`TRUE` and :data:`FALSE` are
materialized as a reserved variable constrained to true, so gate builders
can accept constants without special cases at every call site.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["CNFBuilder"]


class CNFBuilder:
    """Accumulates clauses and provides fresh variables and gates."""

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self._next_var = 1
        # Reserved constant-true variable.
        self._true = self.new_var()
        self.add_clause([self._true])

    # -- variables and constants ----------------------------------------------

    def new_var(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def is_const(self, lit: int) -> bool:
        return abs(lit) == self._true

    def const_value(self, lit: int) -> bool:
        return lit > 0

    # -- clauses ------------------------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = list(lits)
        if not clause:
            raise ValueError("empty clause added directly (unsatisfiable)")
        self.clauses.append(clause)

    # -- gates (each returns the output literal) -------------------------------------

    def gate_not(self, a: int) -> int:
        return -a

    def gate_and(self, a: int, b: int) -> int:
        if self.is_const(a):
            return b if self.const_value(a) else self.false_lit
        if self.is_const(b):
            return a if self.const_value(b) else self.false_lit
        out = self.new_var()
        self.add_clause([-out, a])
        self.add_clause([-out, b])
        self.add_clause([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        if self.is_const(a):
            return -b if self.const_value(a) else b
        if self.is_const(b):
            return -a if self.const_value(b) else a
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def gate_ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        """If-then-else multiplexer."""
        if self.is_const(cond):
            return then_lit if self.const_value(cond) else else_lit
        out = self.new_var()
        self.add_clause([-out, -cond, then_lit])
        self.add_clause([-out, cond, else_lit])
        self.add_clause([out, -cond, -then_lit])
        self.add_clause([out, cond, -else_lit])
        return out

    def gate_iff(self, a: int, b: int) -> int:
        return -self.gate_xor(a, b)

    def gate_and_many(self, lits: Sequence[int]) -> int:
        """Conjunction of arbitrarily many literals."""
        live = []
        for lit in lits:
            if self.is_const(lit):
                if not self.const_value(lit):
                    return self.false_lit
            else:
                live.append(lit)
        if not live:
            return self.true_lit
        if len(live) == 1:
            return live[0]
        out = self.new_var()
        for lit in live:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in live])
        return out

    def gate_or_many(self, lits: Sequence[int]) -> int:
        return -self.gate_and_many([-lit for lit in lits])

    # -- assertions -----------------------------------------------------------------

    def assert_lit(self, lit: int) -> None:
        """Constrain a literal to be true."""
        self.add_clause([lit])

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format (for debugging/interop)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"
