"""SAT encoding of the paper's soundness verification conditions.

This is the reproduction of §III-A / Supplementary D: the soundness of a
tnum abstract operator ``opT`` against its concrete ``opC`` is the
validity of Eqn. 11::

    wellformed(P) ∧ wellformed(Q) ∧ member(x, P) ∧ member(y, Q)
      ∧ z = opC(x, y) ∧ R = opT(P, Q)  ⇒  member(z, R)

We check validity by asserting the *negation* (all hypotheses plus
``¬member(z, R)``) and asking the CDCL solver for a model: UNSAT means the
operator is sound at the encoded width; SAT yields a concrete
counterexample (P, Q, x, y).

Where the paper used Z3's bit-vector theory, we bit-blast with
:mod:`repro.verify.sat.bitvector`.  Each abstract operator is re-expressed
as a circuit over the ``(value, mask)`` words — e.g. ``tnum_add`` becomes
exactly the five machine additions/xors of Listing 1, and ``our_mul`` /
``kern_mul`` unroll their loops ``width`` times (the SSA unrolling
described in Supplementary D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .bitvector import BitVec, BitVecBuilder
from .cnf import CNFBuilder
from .solver import Solver

__all__ = [
    "SymTnum",
    "SoundnessReport",
    "check_operator_soundness",
    "SUPPORTED_OPERATORS",
]


@dataclass
class SymTnum:
    """A symbolic tnum: two bit-vectors (value, mask)."""

    v: BitVec
    m: BitVec


@dataclass
class SoundnessReport:
    """Result of one bounded-verification run."""

    operator: str
    width: int
    sound: bool
    counterexample: Optional[Dict[str, int]] = None
    num_vars: int = 0
    num_clauses: int = 0

    def __str__(self) -> str:
        verdict = "SOUND" if self.sound else "UNSOUND"
        extra = f" cex={self.counterexample}" if self.counterexample else ""
        return (
            f"{self.operator}@{self.width}bit: {verdict} "
            f"({self.num_vars} vars, {self.num_clauses} clauses){extra}"
        )


# -- abstract operators as circuits -------------------------------------------


def _sym_tnum_add(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    """Listing 1 as a circuit."""
    sm = bb.add(p.m, q.m)
    sv = bb.add(p.v, q.v)
    sigma = bb.add(sv, sm)
    chi = bb.xor(sigma, sv)
    eta = bb.or_(bb.or_(chi, p.m), q.m)
    return SymTnum(bb.and_(sv, bb.not_(eta)), eta)


def _sym_tnum_sub(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    """Listing 6 as a circuit."""
    dv = bb.sub(p.v, q.v)
    alpha = bb.add(dv, p.m)
    beta = bb.sub(dv, q.m)
    chi = bb.xor(alpha, beta)
    eta = bb.or_(bb.or_(chi, p.m), q.m)
    return SymTnum(bb.and_(dv, bb.not_(eta)), eta)


def _sym_tnum_and(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    alpha = bb.or_(p.v, p.m)
    beta = bb.or_(q.v, q.m)
    v = bb.and_(p.v, q.v)
    return SymTnum(v, bb.and_(bb.and_(alpha, beta), bb.not_(v)))


def _sym_tnum_or(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    v = bb.or_(p.v, q.v)
    mu = bb.or_(p.m, q.m)
    return SymTnum(v, bb.and_(mu, bb.not_(v)))


def _sym_tnum_xor(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    v = bb.xor(p.v, q.v)
    mu = bb.or_(p.m, q.m)
    return SymTnum(bb.and_(v, bb.not_(mu)), mu)


def _sym_shift_tnum(shifter) -> Callable:
    """Constant-shift operators, symbolically joined over all counts.

    BPF shift instructions with symbolic counts are joined elsewhere; for
    verification we quantify over a fixed shift amount per query, so these
    builders take the count as a Python int via closure at query time.
    """

    def build(bb: BitVecBuilder, p: SymTnum, q: SymTnum, amount: int) -> SymTnum:
        return SymTnum(shifter(bb, p.v, amount), shifter(bb, p.m, amount))

    return build


def _sym_tnum_lshift(bb: BitVecBuilder, p: SymTnum, amount: int) -> SymTnum:
    return SymTnum(bb.shl_const(p.v, amount), bb.shl_const(p.m, amount))


def _sym_tnum_rshift(bb: BitVecBuilder, p: SymTnum, amount: int) -> SymTnum:
    return SymTnum(bb.shr_const(p.v, amount), bb.shr_const(p.m, amount))


def _sym_tnum_arshift(bb: BitVecBuilder, p: SymTnum, amount: int) -> SymTnum:
    v = bb.ashr_const(p.v, amount)
    m = bb.ashr_const(p.m, amount)
    return SymTnum(bb.and_(v, bb.not_(m)), m)


def _sym_our_mul(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    """Listing 4 unrolled ``width`` times (SSA form, as in Supp. D)."""
    acc_v = SymTnum(bb.mul(p.v, q.v), bb.const(0))
    acc_m = SymTnum(bb.const(0), bb.const(0))
    pv, pm = list(p.v), list(p.m)
    qv, qm = list(q.v), list(q.m)
    zero = bb.const(0)
    for _ in range(bb.width):
        certain_one = bb.cnf.gate_and(pv[0], -pm[0])
        uncertain = pm[0]
        # Candidate accumulations.
        add_qm = _sym_tnum_add(bb, acc_m, SymTnum(zero, qm))
        add_all = _sym_tnum_add(
            bb, acc_m, SymTnum(zero, bb.or_(qv, qm))
        )
        new_m = bb.ite(
            certain_one,
            add_qm.m,
            bb.ite(uncertain, add_all.m, acc_m.m),
        )
        new_v = bb.ite(
            certain_one,
            add_qm.v,
            bb.ite(uncertain, add_all.v, acc_m.v),
        )
        acc_m = SymTnum(new_v, new_m)
        pv = bb.shr_const(pv, 1)
        pm = bb.shr_const(pm, 1)
        qv = bb.shl_const(qv, 1)
        qm = bb.shl_const(qm, 1)
    return _sym_tnum_add(bb, acc_v, acc_m)


def _sym_kern_mul(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    """Listing 2 (kern_mul + hma) unrolled: 2 × width hma iterations."""

    def sym_hma(acc: SymTnum, x: BitVec, y: BitVec) -> SymTnum:
        for _ in range(bb.width):
            added = _sym_tnum_add(bb, acc, SymTnum(bb.const(0), x))
            take = y[0]
            acc = SymTnum(
                bb.ite(take, added.v, acc.v), bb.ite(take, added.m, acc.m)
            )
            y = bb.shr_const(y, 1)
            x = bb.shl_const(x, 1)
        return acc

    pi = SymTnum(bb.mul(p.v, q.v), bb.const(0))
    acc = sym_hma(pi, p.m, bb.or_(q.m, q.v))
    return sym_hma(acc, q.m, p.v)


def _sym_bitwise_mul(bb: BitVecBuilder, p: SymTnum, q: SymTnum) -> SymTnum:
    """Listing 5 (optimized form) unrolled ``width`` times."""
    total = SymTnum(bb.const(0), bb.const(0))
    killed = SymTnum(bb.const(0), bb.or_(q.v, q.m))
    for i in range(bb.width):
        certain_one = bb.cnf.gate_and(p.v[i], -p.m[i])
        uncertain = p.m[i]
        q_shift = SymTnum(bb.shl_const(q.v, i), bb.shl_const(q.m, i))
        k_shift = SymTnum(bb.shl_const(killed.v, i), bb.shl_const(killed.m, i))
        add_q = _sym_tnum_add(bb, total, q_shift)
        add_k = _sym_tnum_add(bb, total, k_shift)
        total = SymTnum(
            bb.ite(certain_one, add_q.v, bb.ite(uncertain, add_k.v, total.v)),
            bb.ite(certain_one, add_q.m, bb.ite(uncertain, add_k.m, total.m)),
        )
    return total


# -- concrete operators as circuits ----------------------------------------------

_CONCRETE: Dict[str, Callable] = {
    "add": lambda bb, x, y: bb.add(x, y),
    "sub": lambda bb, x, y: bb.sub(x, y),
    "mul": lambda bb, x, y: bb.mul(x, y),
    "kern_mul": lambda bb, x, y: bb.mul(x, y),
    "bitwise_mul": lambda bb, x, y: bb.mul(x, y),
    "and": lambda bb, x, y: bb.and_(x, y),
    "or": lambda bb, x, y: bb.or_(x, y),
    "xor": lambda bb, x, y: bb.xor(x, y),
}

_ABSTRACT: Dict[str, Callable] = {
    "add": _sym_tnum_add,
    "sub": _sym_tnum_sub,
    "mul": _sym_our_mul,
    "kern_mul": _sym_kern_mul,
    "bitwise_mul": _sym_bitwise_mul,
    "and": _sym_tnum_and,
    "or": _sym_tnum_or,
    "xor": _sym_tnum_xor,
}

_SHIFT_ABSTRACT: Dict[str, Callable] = {
    "lsh": _sym_tnum_lshift,
    "rsh": _sym_tnum_rshift,
    "arsh": _sym_tnum_arshift,
}

_SHIFT_CONCRETE: Dict[str, Callable] = {
    "lsh": lambda bb, x, k: bb.shl_const(x, k),
    "rsh": lambda bb, x, k: bb.shr_const(x, k),
    "arsh": lambda bb, x, k: bb.ashr_const(x, k),
}

SUPPORTED_OPERATORS = tuple(sorted(set(_ABSTRACT) | set(_SHIFT_ABSTRACT)))


def check_operator_soundness(
    operator: str,
    width: int,
    max_conflicts: Optional[int] = None,
    shift_amount: Optional[int] = None,
) -> SoundnessReport:
    """Bounded verification of one operator at one width (Eqn. 11).

    For shift operators, ``shift_amount`` fixes the count (default: checks
    every count 0..width-1 in one conjoined query).
    """
    cnf = CNFBuilder()
    bb = BitVecBuilder(cnf, width)

    p = SymTnum(bb.var(), bb.var())
    x = bb.var()

    def wellformed(t: SymTnum) -> int:
        return bb.is_zero(bb.and_(t.v, t.m))

    def member(val: BitVec, t: SymTnum) -> int:
        return bb.eq(bb.and_(val, bb.not_(t.m)), t.v)

    cnf.assert_lit(wellformed(p))
    cnf.assert_lit(member(x, p))

    if operator in _SHIFT_ABSTRACT:
        amounts = (
            [shift_amount] if shift_amount is not None else list(range(width))
        )
        # One query covering every shift amount: assert that *some* amount
        # violates membership; UNSAT means all amounts are sound.
        violations = []
        for amount in amounts:
            r = _SHIFT_ABSTRACT[operator](bb, p, amount)
            z = _SHIFT_CONCRETE[operator](bb, x, amount)
            violations.append(-member(z, r))
        cnf.assert_lit(cnf.gate_or_many(violations))
        solver = Solver(cnf.num_vars, cnf.clauses)
        result = solver.solve(max_conflicts=max_conflicts)
        report = SoundnessReport(
            operator,
            width,
            sound=not result.sat,
            num_vars=cnf.num_vars,
            num_clauses=len(cnf.clauses),
        )
        if result.sat:
            report.counterexample = {
                "P.v": bb.value_of(p.v, result),
                "P.m": bb.value_of(p.m, result),
                "x": bb.value_of(x, result),
            }
        return report

    if operator not in _ABSTRACT:
        raise KeyError(f"unsupported operator {operator!r}")

    q = SymTnum(bb.var(), bb.var())
    y = bb.var()
    cnf.assert_lit(wellformed(q))
    cnf.assert_lit(member(y, q))

    r = _ABSTRACT[operator](bb, p, q)
    z = _CONCRETE[operator](bb, x, y)
    cnf.assert_lit(-member(z, r))

    solver = Solver(cnf.num_vars, cnf.clauses)
    result = solver.solve(max_conflicts=max_conflicts)
    report = SoundnessReport(
        operator,
        width,
        sound=not result.sat,
        num_vars=cnf.num_vars,
        num_clauses=len(cnf.clauses),
    )
    if result.sat:
        report.counterexample = {
            "P.v": bb.value_of(p.v, result),
            "P.m": bb.value_of(p.m, result),
            "Q.v": bb.value_of(q.v, result),
            "Q.m": bb.value_of(q.m, result),
            "x": bb.value_of(x, result),
            "y": bb.value_of(y, result),
        }
    return report
