"""Bit-vector circuits over CNF: the bit-blasting layer.

A :class:`BitVec` is a list of CNF literals, least-significant bit first.
The builders here construct the word-level operations needed to encode
tnum operators and the paper's soundness formula: ripple-carry add/sub,
shift-and-add multiply, bitwise logic, constant shifts, and equality /
comparison predicates.

The combination (CNFBuilder → BitVec → Solver) is this reproduction's
replacement for Z3's ``QF_BV``: everything the paper encodes in SMT
(§III-A, Supplementary D) can be expressed here and discharged by the
CDCL solver.
"""

from __future__ import annotations

from typing import List, Tuple

from .cnf import CNFBuilder

__all__ = ["BitVec", "BitVecBuilder"]

BitVec = List[int]  # literals, lsb first


class BitVecBuilder:
    """Constructs bit-vector circuits inside a :class:`CNFBuilder`."""

    def __init__(self, cnf: CNFBuilder, width: int) -> None:
        self.cnf = cnf
        self.width = width

    # -- construction -------------------------------------------------------------

    def var(self) -> BitVec:
        """A fresh symbolic bit-vector."""
        return self.cnf.new_vars(self.width)

    def const(self, value: int) -> BitVec:
        """A constant bit-vector."""
        return [
            self.cnf.true_lit if (value >> i) & 1 else self.cnf.false_lit
            for i in range(self.width)
        ]

    # -- bitwise ---------------------------------------------------------------------

    def and_(self, a: BitVec, b: BitVec) -> BitVec:
        return [self.cnf.gate_and(x, y) for x, y in zip(a, b)]

    def or_(self, a: BitVec, b: BitVec) -> BitVec:
        return [self.cnf.gate_or(x, y) for x, y in zip(a, b)]

    def xor(self, a: BitVec, b: BitVec) -> BitVec:
        return [self.cnf.gate_xor(x, y) for x, y in zip(a, b)]

    def not_(self, a: BitVec) -> BitVec:
        return [-x for x in a]

    def ite(self, cond: int, then_bv: BitVec, else_bv: BitVec) -> BitVec:
        return [
            self.cnf.gate_ite(cond, t, e) for t, e in zip(then_bv, else_bv)
        ]

    # -- arithmetic --------------------------------------------------------------------

    def add(self, a: BitVec, b: BitVec) -> BitVec:
        """Ripple-carry addition (modular; final carry dropped)."""
        out: BitVec = []
        carry = self.cnf.false_lit
        for x, y in zip(a, b):
            xy = self.cnf.gate_xor(x, y)
            out.append(self.cnf.gate_xor(xy, carry))
            carry = self.cnf.gate_or(
                self.cnf.gate_and(x, y), self.cnf.gate_and(carry, xy)
            )
        return out

    def add_with_carries(self, a: BitVec, b: BitVec) -> Tuple[BitVec, BitVec]:
        """Addition returning (sum, carry-in sequence) — used to encode the
        paper's carry lemmas directly."""
        out: BitVec = []
        carries: BitVec = [self.cnf.false_lit]  # carry-in at bit 0
        carry = self.cnf.false_lit
        for x, y in zip(a, b):
            xy = self.cnf.gate_xor(x, y)
            out.append(self.cnf.gate_xor(xy, carry))
            carry = self.cnf.gate_or(
                self.cnf.gate_and(x, y), self.cnf.gate_and(carry, xy)
            )
            carries.append(carry)
        return out, carries[: self.width]

    def sub(self, a: BitVec, b: BitVec) -> BitVec:
        """Two's-complement subtraction: a + ~b + 1."""
        out: BitVec = []
        carry = self.cnf.true_lit
        for x, y in zip(a, b):
            ny = -y
            xy = self.cnf.gate_xor(x, ny)
            out.append(self.cnf.gate_xor(xy, carry))
            carry = self.cnf.gate_or(
                self.cnf.gate_and(x, ny), self.cnf.gate_and(carry, xy)
            )
        return out

    def neg(self, a: BitVec) -> BitVec:
        return self.sub(self.const(0), a)

    def mul(self, a: BitVec, b: BitVec) -> BitVec:
        """Shift-and-add multiplication (modular)."""
        acc = self.const(0)
        for i in range(self.width):
            shifted = self.shl_const(a, i)
            gated = [self.cnf.gate_and(b[i], bit) for bit in shifted]
            acc = self.add(acc, gated)
        return acc

    # -- shifts (constant amounts) ---------------------------------------------------------

    def shl_const(self, a: BitVec, amount: int) -> BitVec:
        if amount == 0:
            return list(a)
        pad = [self.cnf.false_lit] * min(amount, self.width)
        return (pad + list(a))[: self.width]

    def shr_const(self, a: BitVec, amount: int) -> BitVec:
        if amount == 0:
            return list(a)
        body = list(a[amount:])
        return body + [self.cnf.false_lit] * (self.width - len(body))

    def ashr_const(self, a: BitVec, amount: int) -> BitVec:
        if amount == 0:
            return list(a)
        sign = a[-1]
        body = list(a[amount:])
        return body + [sign] * (self.width - len(body))

    # -- predicates (return a single literal) -------------------------------------------------

    def eq(self, a: BitVec, b: BitVec) -> int:
        return self.cnf.gate_and_many(
            [self.cnf.gate_iff(x, y) for x, y in zip(a, b)]
        )

    def is_zero(self, a: BitVec) -> int:
        return self.cnf.gate_and_many([-x for x in a])

    def ult(self, a: BitVec, b: BitVec) -> int:
        """Unsigned a < b."""
        lt = self.cnf.false_lit
        for x, y in zip(a, b):  # lsb to msb; msb comparison dominates
            bit_lt = self.cnf.gate_and(-x, y)
            bit_eq = self.cnf.gate_iff(x, y)
            lt = self.cnf.gate_or(bit_lt, self.cnf.gate_and(bit_eq, lt))
        return lt

    # -- evaluation -------------------------------------------------------------------------------

    def value_of(self, bv: BitVec, model) -> int:
        """Read a concrete integer out of a SAT model."""
        result = 0
        for i, lit in enumerate(bv):
            if self.cnf.is_const(lit):
                bit = 1 if self.cnf.const_value(lit) else 0
            else:
                bit = 1 if model.value(abs(lit)) == (lit > 0) else 0
            result |= bit << i
        return result
