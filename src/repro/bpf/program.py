"""Program container: instructions plus slot-accurate addressing.

BPF jump offsets count 8-byte *slots*, and ``lddw`` occupies two slots, so
a program needs a mapping between instruction indexes and slot addresses.
:class:`Program` owns that mapping, validates jump targets, and round-trips
to flat bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro import obs as _obs

from . import isa
from .insn import _LDDW_OPCODE, Instruction, decode_program, encode_program

if TYPE_CHECKING:
    from .compiled import CompiledProgram
    from .verifier.compiled import CompiledVerifierProgram

__all__ = ["Program", "ProgramError"]


class ProgramError(ValueError):
    """Raised when a program is structurally invalid."""


@dataclass
class Program:
    """An ordered sequence of BPF instructions with label metadata."""

    insns: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.insns) > isa.MAX_INSNS:
            raise ProgramError(
                f"program too large: {len(self.insns)} > {isa.MAX_INSNS}"
            )
        # Dense arrays, not dicts: slot->index lookups happen on every
        # interpreted step and on every jump-retargeting pass in the
        # shrinker, so both directions are O(1) list indexing.  Slots in
        # the middle of an lddw map to -1 (not an instruction boundary).
        # The lddw test is inlined (opcode compare): this loop runs for
        # every program the fuzz pipeline constructs.
        slot_of_index: List[int] = []
        index_of_slot: List[int] = []
        lddw = _LDDW_OPCODE
        for idx, insn in enumerate(self.insns):
            slot_of_index.append(len(index_of_slot))
            index_of_slot.append(idx)
            if insn.opcode == lddw:
                index_of_slot.append(-1)
        self._slot_of_index = slot_of_index
        self._index_of_slot: List[int] = index_of_slot
        self._total_slots = len(index_of_slot)
        # Compiled forms are keyed on ``obs.compile_tag()`` as well as
        # their natural key: tag 0 is the pristine uninstrumented form,
        # nonzero tags carry per-operator timing shims, and toggling
        # observability must never serve a stale mix of the two.
        self._compiled: Optional["CompiledProgram"] = None
        self._compiled_tag = 0
        self._compiled_verifier: Dict[
            "tuple[int, int]", "CompiledVerifierProgram"
        ] = {}
        self._canonical_hash: Optional[str] = None
        self._validate_jumps()

    # -- addressing -----------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Total number of 8-byte encoding slots."""
        return self._total_slots

    def slot_of(self, index: int) -> int:
        """Slot address of the instruction at list position ``index``."""
        return self._slot_of_index[index]

    def index_at_slot(self, slot: int) -> int:
        """Instruction list position at slot address ``slot``.

        Raises :class:`ProgramError` for mid-``lddw`` or out-of-range slots.
        """
        if 0 <= slot < self._total_slots:
            index = self._index_of_slot[slot]
            if index >= 0:
                return index
        raise ProgramError(f"slot {slot} is not an instruction boundary")

    def jump_target_slot(self, index: int) -> int:
        """Slot a (conditional or unconditional) jump at ``index`` targets."""
        insn = self.insns[index]
        return self.slot_of(index) + insn.slots() + insn.off

    def compiled(self) -> "CompiledProgram":
        """The decode-once compiled form, built lazily and cached.

        Programs are immutable in practice (mutation passes build new
        ``Program`` objects), so compiling once per object is safe and
        lets every replay of the same program share the work.
        """
        cp = self._compiled
        tag = _obs.compile_tag()
        if cp is None or self._compiled_tag != tag:
            from .compiled import compile_program

            cp = self._compiled = compile_program(self)
            self._compiled_tag = tag
        return cp

    def compiled_verifier(self, ctx_size: int = 64) -> "CompiledVerifierProgram":
        """The compile-once abstract-verifier form, cached per ctx size.

        Mirrors :meth:`compiled` on the abstract side: the step/branch
        closures, the CFG, and its reverse post-order are built once, so
        every re-verification of the same program (shrinker predicates,
        campaign replays) pays only the walk.  Raises
        :class:`~repro.bpf.cfg.CFGError` for structurally invalid
        programs (never cached — the caller reports those per attempt).
        """
        key = (ctx_size, _obs.compile_tag())
        cv = self._compiled_verifier.get(key)
        if cv is None:
            from .verifier.compiled import compile_verifier

            cv = self._compiled_verifier[key] = compile_verifier(
                self, ctx_size
            )
        return cv

    def canonical_hash(self) -> str:
        """Content hash of the canonical form, lazily computed and cached.

        Structurally identical programs (same semantics modulo dead
        fields, immediate spellings, and label metadata — see
        :mod:`repro.bpf.canon`) share this hash; it is the program half
        of every :class:`~repro.bpf.canon.VerdictCache` key.
        """
        chash = self._canonical_hash
        if chash is None:
            from .canon import canonical_hash

            chash = self._canonical_hash = canonical_hash(self)
        return chash

    def _validate_jumps(self) -> None:
        total = self._total_slots
        index_of_slot = self._index_of_slot
        slot_of_index = self._slot_of_index
        for idx, insn in enumerate(self.insns):
            if insn.cls() not in (isa.CLS_JMP, isa.CLS_JMP32):
                continue
            op = insn.opcode & 0xF0
            if op == isa.JMP_EXIT or op == isa.JMP_CALL:
                continue
            # Jumps occupy one slot, so the target is slot+1+off.
            target = slot_of_index[idx] + 1 + insn.off
            if not (0 <= target < total and index_of_slot[target] >= 0):
                raise ProgramError(
                    f"insn {idx}: jump target slot {target} invalid"
                )

    # -- conveniences ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.insns)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.insns)

    def __getitem__(self, index: int) -> Instruction:
        return self.insns[index]

    def label_at(self, index: int) -> Optional[str]:
        """Label (if any) attached to the slot of instruction ``index``."""
        slot = self.slot_of(index)
        for name, s in self.labels.items():
            if s == slot:
                return name
        return None

    # -- serialization ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Flat kernel-format bytecode."""
        return encode_program(self.insns)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Program":
        """Decode flat bytecode (labels are not recoverable)."""
        return cls(decode_program(data))

    def disassemble(self) -> str:
        """Human-readable listing with labels."""
        from .disassembler import format_program

        return format_program(self)
