"""Programmatic BPF program construction (kernel-selftest style).

The kernel's selftests build programs with macros like
``BPF_ALU64_IMM(BPF_ADD, BPF_REG_1, 4)``; this module is the Python
equivalent for users who prefer constructing :class:`Instruction` lists
directly over writing assembly text.  Labels are resolved at
:meth:`ProgramBuilder.build` time, so forward references work.

Example
-------
>>> b = ProgramBuilder()
>>> b.mov_imm(0, 0)
>>> b.ldx(2, 1, 0, size=1)
>>> b.alu_imm("and", 2, 7)
>>> b.jmp_imm("jeq", 2, 0, "done")
>>> b.alu_imm("add", 0, 1)
>>> b.label("done")
>>> b.exit_()
>>> program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from . import isa
from .insn import Instruction
from .program import Program

__all__ = ["ProgramBuilder"]

_ALU_BY_NAME = {name: code for code, name in isa.ALU_OP_NAMES.items()}
_JMP_BY_NAME = {name: code for code, name in isa.JMP_OP_NAMES.items()}
_SIZE_BY_BYTES = {1: isa.SZ_B, 2: isa.SZ_H, 4: isa.SZ_W, 8: isa.SZ_DW}

Target = Union[str, int]  # label name or relative slot offset


class ProgramBuilder:
    """Accumulates instructions; resolves labels on :meth:`build`."""

    def __init__(self) -> None:
        self._items: List[Tuple[str, object]] = []  # ("insn"|"patch", data)
        self._labels: Dict[str, int] = {}
        self._slot = 0

    # -- labels -----------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach a label to the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self._slot
        return self

    # -- ALU ------------------------------------------------------------------

    def mov_imm(self, dst: int, imm: int, is64: bool = True) -> "ProgramBuilder":
        cls = isa.CLS_ALU64 if is64 else isa.CLS_ALU
        return self._emit(Instruction(cls | isa.ALU_MOV | isa.SRC_K, dst=dst, imm=imm))

    def mov_reg(self, dst: int, src: int, is64: bool = True) -> "ProgramBuilder":
        cls = isa.CLS_ALU64 if is64 else isa.CLS_ALU
        return self._emit(Instruction(cls | isa.ALU_MOV | isa.SRC_X, dst=dst, src=src))

    def alu_imm(self, op: str, dst: int, imm: int, is64: bool = True) -> "ProgramBuilder":
        """``BPF_ALU64_IMM(op, dst, imm)`` — op by name ('add', 'and', ...)."""
        cls = isa.CLS_ALU64 if is64 else isa.CLS_ALU
        return self._emit(
            Instruction(cls | _ALU_BY_NAME[op] | isa.SRC_K, dst=dst, imm=imm)
        )

    def alu_reg(self, op: str, dst: int, src: int, is64: bool = True) -> "ProgramBuilder":
        """``BPF_ALU64_REG(op, dst, src)``."""
        cls = isa.CLS_ALU64 if is64 else isa.CLS_ALU
        return self._emit(
            Instruction(cls | _ALU_BY_NAME[op] | isa.SRC_X, dst=dst, src=src)
        )

    def neg(self, dst: int, is64: bool = True) -> "ProgramBuilder":
        cls = isa.CLS_ALU64 if is64 else isa.CLS_ALU
        return self._emit(Instruction(cls | isa.ALU_NEG, dst=dst))

    def ld_imm64(self, dst: int, imm: int) -> "ProgramBuilder":
        """``BPF_LD_IMM64(dst, imm)`` — the two-slot lddw form."""
        return self._emit(
            Instruction(isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=dst, imm=imm)
        )

    # -- memory -------------------------------------------------------------------

    def ldx(self, dst: int, src: int, off: int, size: int = 8) -> "ProgramBuilder":
        """``BPF_LDX_MEM(size, dst, src, off)`` — size in bytes."""
        return self._emit(Instruction(
            isa.CLS_LDX | _SIZE_BY_BYTES[size] | isa.MODE_MEM,
            dst=dst, src=src, off=off,
        ))

    def stx(self, dst: int, off: int, src: int, size: int = 8) -> "ProgramBuilder":
        """``BPF_STX_MEM(size, dst, src, off)``."""
        return self._emit(Instruction(
            isa.CLS_STX | _SIZE_BY_BYTES[size] | isa.MODE_MEM,
            dst=dst, src=src, off=off,
        ))

    def st_imm(self, dst: int, off: int, imm: int, size: int = 8) -> "ProgramBuilder":
        """``BPF_ST_MEM(size, dst, off, imm)``."""
        return self._emit(Instruction(
            isa.CLS_ST | _SIZE_BY_BYTES[size] | isa.MODE_MEM,
            dst=dst, off=off, imm=imm,
        ))

    # -- control flow ------------------------------------------------------------------

    def jmp_imm(
        self, op: str, dst: int, imm: int, target: Target, is64: bool = True
    ) -> "ProgramBuilder":
        """``BPF_JMP_IMM(op, dst, imm, off)`` — target is a label or offset."""
        cls = isa.CLS_JMP if is64 else isa.CLS_JMP32
        return self._emit_jump(
            cls | _JMP_BY_NAME[op] | isa.SRC_K, dst, 0, imm, target
        )

    def jmp_reg(
        self, op: str, dst: int, src: int, target: Target, is64: bool = True
    ) -> "ProgramBuilder":
        """``BPF_JMP_REG(op, dst, src, off)``."""
        cls = isa.CLS_JMP if is64 else isa.CLS_JMP32
        return self._emit_jump(
            cls | _JMP_BY_NAME[op] | isa.SRC_X, dst, src, 0, target
        )

    def ja(self, target: Target) -> "ProgramBuilder":
        return self._emit_jump(isa.CLS_JMP | isa.JMP_JA, 0, 0, 0, target)

    def call(self, helper: int) -> "ProgramBuilder":
        return self._emit(Instruction(isa.CLS_JMP | isa.JMP_CALL, imm=helper))

    def exit_(self) -> "ProgramBuilder":
        return self._emit(Instruction(isa.CLS_JMP | isa.JMP_EXIT))

    # -- assembly ----------------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce a validated :class:`Program`."""
        insns: List[Instruction] = []
        for kind, data in self._items:
            if kind == "insn":
                insns.append(data)  # type: ignore[arg-type]
            else:
                opcode, dst, src, imm, target, at_slot = data  # type: ignore[misc]
                if isinstance(target, str):
                    if target not in self._labels:
                        raise ValueError(f"undefined label {target!r}")
                    off = self._labels[target] - (at_slot + 1)
                else:
                    off = target
                insns.append(
                    Instruction(opcode, dst=dst, src=src, off=off, imm=imm)
                )
        return Program(insns, labels=dict(self._labels))

    # -- internals ------------------------------------------------------------------------------

    def _emit(self, insn: Instruction) -> "ProgramBuilder":
        self._items.append(("insn", insn))
        self._slot += insn.slots()
        return self

    def _emit_jump(
        self, opcode: int, dst: int, src: int, imm: int, target: Target
    ) -> "ProgramBuilder":
        self._items.append(("patch", (opcode, dst, src, imm, target, self._slot)))
        self._slot += 1
        return self
