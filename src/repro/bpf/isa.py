"""eBPF instruction-set constants.

A faithful subset of the Linux eBPF ISA: opcode layout, instruction
classes, ALU/JMP operation codes, size and mode fields, and register
conventions.  Values match ``include/uapi/linux/bpf.h`` so encoded
programs are bit-compatible with real BPF bytecode.

An instruction is 8 bytes::

    opcode:8  dst_reg:4  src_reg:4  off:16  imm:32   (little-endian)

The opcode byte decomposes as ``class | source | operation`` for ALU/JMP
classes and ``class | size | mode`` for load/store classes.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "BPF_CLASS", "BPF_OP", "BPF_SRC", "BPF_SIZE", "BPF_MODE",
    "CLS_LD", "CLS_LDX", "CLS_ST", "CLS_STX", "CLS_ALU", "CLS_JMP",
    "CLS_JMP32", "CLS_ALU64",
    "ALU_ADD", "ALU_SUB", "ALU_MUL", "ALU_DIV", "ALU_OR", "ALU_AND",
    "ALU_LSH", "ALU_RSH", "ALU_NEG", "ALU_MOD", "ALU_XOR", "ALU_MOV",
    "ALU_ARSH",
    "JMP_JA", "JMP_JEQ", "JMP_JGT", "JMP_JGE", "JMP_JSET", "JMP_JNE",
    "JMP_JSGT", "JMP_JSGE", "JMP_CALL", "JMP_EXIT", "JMP_JLT", "JMP_JLE",
    "JMP_JSLT", "JMP_JSLE",
    "SRC_K", "SRC_X",
    "SZ_W", "SZ_H", "SZ_B", "SZ_DW",
    "MODE_IMM", "MODE_MEM",
    "MAX_REG", "FP_REG", "STACK_SIZE", "MAX_INSNS",
    "ALU_OP_NAMES", "JMP_OP_NAMES", "SIZE_BYTES", "SIZE_SUFFIX",
]

# -- instruction classes (low 3 bits of opcode) --------------------------------

CLS_LD = 0x00
CLS_LDX = 0x01
CLS_ST = 0x02
CLS_STX = 0x03
CLS_ALU = 0x04     # 32-bit ALU
CLS_JMP = 0x05
CLS_JMP32 = 0x06
CLS_ALU64 = 0x07   # 64-bit ALU


def BPF_CLASS(opcode: int) -> int:
    """Extract the class field from an opcode byte."""
    return opcode & 0x07


# -- ALU / JMP operation field (high 4 bits) -----------------------------------

ALU_ADD = 0x00
ALU_SUB = 0x10
ALU_MUL = 0x20
ALU_DIV = 0x30
ALU_OR = 0x40
ALU_AND = 0x50
ALU_LSH = 0x60
ALU_RSH = 0x70
ALU_NEG = 0x80
ALU_MOD = 0x90
ALU_XOR = 0xA0
ALU_MOV = 0xB0
ALU_ARSH = 0xC0

JMP_JA = 0x00
JMP_JEQ = 0x10
JMP_JGT = 0x20
JMP_JGE = 0x30
JMP_JSET = 0x40
JMP_JNE = 0x50
JMP_JSGT = 0x60
JMP_JSGE = 0x70
JMP_CALL = 0x80
JMP_EXIT = 0x90
JMP_JLT = 0xA0
JMP_JLE = 0xB0
JMP_JSLT = 0xC0
JMP_JSLE = 0xD0


def BPF_OP(opcode: int) -> int:
    """Extract the operation field from an ALU/JMP opcode byte."""
    return opcode & 0xF0


# -- source field --------------------------------------------------------------

SRC_K = 0x00  # use the 32-bit immediate
SRC_X = 0x08  # use the source register


def BPF_SRC(opcode: int) -> int:
    """Extract the source field from an ALU/JMP opcode byte."""
    return opcode & 0x08


# -- load/store size and mode ----------------------------------------------------

SZ_W = 0x00   # 4 bytes
SZ_H = 0x08   # 2 bytes
SZ_B = 0x10   # 1 byte
SZ_DW = 0x18  # 8 bytes

MODE_IMM = 0x00
MODE_MEM = 0x60


def BPF_SIZE(opcode: int) -> int:
    """Extract the size field from a load/store opcode byte."""
    return opcode & 0x18


def BPF_MODE(opcode: int) -> int:
    """Extract the mode field from a load/store opcode byte."""
    return opcode & 0xE0


# -- machine parameters -----------------------------------------------------------

MAX_REG = 11          # r0..r10
FP_REG = 10           # r10 is the read-only frame pointer
STACK_SIZE = 512      # bytes of BPF stack per frame
MAX_INSNS = 4096      # classic verifier program-size limit

# -- pretty-printing tables ---------------------------------------------------------

ALU_OP_NAMES: Dict[int, str] = {
    ALU_ADD: "add", ALU_SUB: "sub", ALU_MUL: "mul", ALU_DIV: "div",
    ALU_OR: "or", ALU_AND: "and", ALU_LSH: "lsh", ALU_RSH: "rsh",
    ALU_NEG: "neg", ALU_MOD: "mod", ALU_XOR: "xor", ALU_MOV: "mov",
    ALU_ARSH: "arsh",
}

JMP_OP_NAMES: Dict[int, str] = {
    JMP_JA: "ja", JMP_JEQ: "jeq", JMP_JGT: "jgt", JMP_JGE: "jge",
    JMP_JSET: "jset", JMP_JNE: "jne", JMP_JSGT: "jsgt", JMP_JSGE: "jsge",
    JMP_CALL: "call", JMP_EXIT: "exit", JMP_JLT: "jlt", JMP_JLE: "jle",
    JMP_JSLT: "jslt", JMP_JSLE: "jsle",
}

SIZE_BYTES: Dict[int, int] = {SZ_B: 1, SZ_H: 2, SZ_W: 4, SZ_DW: 8}
SIZE_SUFFIX: Dict[int, str] = {SZ_B: "b", SZ_H: "h", SZ_W: "w", SZ_DW: "dw"}
