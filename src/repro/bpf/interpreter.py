"""Concrete BPF interpreter.

Executes programs with real 64-bit machine semantics: wrapping arithmetic,
BPF's defined division-by-zero behaviour (``x/0 == 0``, ``x%0 == x``),
32-bit subregister ops that zero-extend, and little-endian stack/context
memory.  The interpreter is the *ground truth* against which the abstract
verifier is differentially tested: any value produced by a concrete run
must be contained in the verifier's abstract value at the same point.

Pointers are modelled as integers in a flat address space with the stack
and the context placed at fixed, well-separated bases.  That keeps
pointer arithmetic honest (r10-8 really is an address) while letting the
machine detect out-of-bounds accesses.

Execution has two paths with identical semantics:

* :meth:`Machine.run` — the default: executes the program's decode-once
  compiled form (:mod:`repro.bpf.compiled`), whose hot loop is a single
  closure call per step;
* :meth:`Machine.run_reference` — the original step decoder, kept as the
  behavioral reference the compiled path is differentially tested
  against (``tests/bpf/test_compiled.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from . import isa
from .insn import Instruction
from .program import Program, ProgramError

__all__ = ["Machine", "ExecutionError", "ExecutionResult", "STACK_BASE", "CTX_BASE"]

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

#: Flat-address-space bases. r10 starts at STACK_BASE + STACK_SIZE and the
#: valid stack bytes are [STACK_BASE, STACK_BASE + STACK_SIZE).
STACK_BASE = 0x1000_0000
CTX_BASE = 0x2000_0000

#: Zero template for in-place stack resets (see :meth:`Machine.reset`).
_ZERO_STACK = bytes(isa.STACK_SIZE)


class ExecutionError(RuntimeError):
    """A concrete run crashed: bad memory, bad register, or divergence."""

    def __init__(self, pc: int, message: str) -> None:
        super().__init__(f"pc {pc}: {message}")
        self.pc = pc


@dataclass
class ExecutionResult:
    """Outcome of a concrete run.

    ``trace`` is ``None`` unless the machine was built with
    ``record_trace=True`` — the replay loop runs millions of steps per
    campaign, so the common no-trace path must not allocate a list per
    run.
    """

    return_value: int
    steps: int
    trace: Optional[List[int]] = None


def _s64(x: int) -> int:
    return x - (1 << 64) if x & (1 << 63) else x


def _s32(x: int) -> int:
    x &= U32
    return x - (1 << 32) if x & (1 << 31) else x


class Machine:
    """A concrete BPF machine: registers, stack, context memory."""

    def __init__(
        self,
        ctx: bytes = b"",
        helpers: Optional[Dict[int, Callable[..., int]]] = None,
        step_limit: int = 1_000_000,
        record_trace: bool = False,
    ) -> None:
        self.ctx = bytearray(ctx)
        self.stack = bytearray(isa.STACK_SIZE)
        self.helpers = helpers or {}
        self.step_limit = step_limit
        self.record_trace = record_trace
        self.regs = [0] * isa.MAX_REG

    def reset(self, ctx: bytes) -> None:
        """Reuse this machine for a fresh run with new context bytes.

        Equivalent to constructing ``Machine(ctx=ctx, ...)`` with the
        same helpers/limits, but without reallocating the stack — the
        differential oracle resets one machine per replay input instead
        of building ``inputs_per_program`` machines per program.
        """
        self.ctx = bytearray(ctx)
        self.stack[:] = _ZERO_STACK

    # -- memory ------------------------------------------------------------

    def _load(self, pc: int, addr: int, size: int) -> int:
        region, off = self._resolve(pc, addr, size)
        return int.from_bytes(region[off : off + size], "little")

    def _store(self, pc: int, addr: int, size: int, value: int) -> None:
        region, off = self._resolve(pc, addr, size)
        region[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def _resolve(self, pc: int, addr: int, size: int):
        if STACK_BASE <= addr and addr + size <= STACK_BASE + isa.STACK_SIZE:
            return self.stack, addr - STACK_BASE
        if CTX_BASE <= addr and addr + size <= CTX_BASE + len(self.ctx):
            return self.ctx, addr - CTX_BASE
        raise ExecutionError(pc, f"out-of-bounds access at {addr:#x} size {size}")

    # -- execution ----------------------------------------------------------

    def run(
        self,
        program: Program,
        r1: int = CTX_BASE,
        on_step: Optional[Callable[[int, List[int]], None]] = None,
    ) -> ExecutionResult:
        """Execute to ``exit``; returns r0.  ``r1`` defaults to the context
        pointer, matching the BPF calling convention.

        ``on_step`` is invoked with ``(insn_index, regs)`` before each
        instruction executes — the observation point differential oracles
        compare against the verifier's per-instruction entry states.

        Executes the program's decode-once compiled form; semantics are
        identical to :meth:`run_reference` (differentially tested).
        """
        compiled = program.compiled()
        code = compiled.steps
        slots = compiled.slots
        n = len(code)
        regs = self.regs = [0] * isa.MAX_REG
        regs[1] = r1
        regs[isa.FP_REG] = STACK_BASE + isa.STACK_SIZE

        limit = self.step_limit
        steps = 0
        idx = 0
        trace: Optional[List[int]] = [] if self.record_trace else None

        if on_step is None and trace is None:
            # The replay hot loop: one closure call per step.
            while True:
                if steps >= limit:
                    pc = slots[idx] if idx < n else compiled.total_slots
                    raise ExecutionError(pc, "step limit exceeded")
                steps += 1
                if idx >= n:
                    raise ProgramError(
                        f"slot {compiled.total_slots} is not an "
                        f"instruction boundary"
                    )
                nxt = code[idx](self, regs)
                if nxt < 0:
                    return ExecutionResult(regs[0], steps)
                idx = nxt

        while True:
            if steps >= limit:
                pc = slots[idx] if idx < n else compiled.total_slots
                raise ExecutionError(pc, "step limit exceeded")
            steps += 1
            if idx >= n:
                raise ProgramError(
                    f"slot {compiled.total_slots} is not an "
                    f"instruction boundary"
                )
            if trace is not None:
                trace.append(idx)
            if on_step is not None:
                on_step(idx, regs)
            nxt = code[idx](self, regs)
            if nxt < 0:
                return ExecutionResult(regs[0], steps, trace)
            idx = nxt

    def run_reference(
        self,
        program: Program,
        r1: int = CTX_BASE,
        on_step: Optional[Callable[[int, List[int]], None]] = None,
    ) -> ExecutionResult:
        """The original decode-every-step interpreter.

        Kept as the behavioral reference for the compiled path: both must
        produce identical results, register files, step counts, and
        errors on every program.
        """
        self.regs = [0] * isa.MAX_REG
        self.regs[1] = r1
        self.regs[isa.FP_REG] = STACK_BASE + isa.STACK_SIZE
        trace: Optional[List[int]] = [] if self.record_trace else None

        pc_slot = 0
        steps = 0
        while True:
            if steps >= self.step_limit:
                raise ExecutionError(pc_slot, "step limit exceeded")
            steps += 1
            idx = program.index_at_slot(pc_slot)
            insn = program.insns[idx]
            if trace is not None:
                trace.append(idx)
            if on_step is not None:
                on_step(idx, self.regs)

            if insn.is_exit():
                return ExecutionResult(self.regs[0], steps, trace)

            next_slot = pc_slot + insn.slots()
            pc_slot = self._step(program, idx, insn, next_slot)

    def _step(
        self, program: Program, idx: int, insn: Instruction, next_slot: int
    ) -> int:
        cls = insn.cls()

        if insn.is_lddw():
            self.regs[insn.dst] = insn.imm & U64
            return next_slot

        if cls in (isa.CLS_ALU, isa.CLS_ALU64):
            self._alu(program, idx, insn, is64=(cls == isa.CLS_ALU64))
            return next_slot

        if cls in (isa.CLS_JMP, isa.CLS_JMP32):
            return self._jump(program, idx, insn, next_slot)

        # Only the error paths below need the slot address; computing it
        # on every step was pure overhead.
        if cls == isa.CLS_LDX:
            addr = (self.regs[insn.src] + insn.off) & U64
            self.regs[insn.dst] = self._load(
                program.slot_of(idx), addr, insn.size_bytes()
            )
            return next_slot

        if cls == isa.CLS_STX:
            addr = (self.regs[insn.dst] + insn.off) & U64
            self._store(
                program.slot_of(idx), addr, insn.size_bytes(),
                self.regs[insn.src],
            )
            return next_slot

        if cls == isa.CLS_ST:
            addr = (self.regs[insn.dst] + insn.off) & U64
            self._store(
                program.slot_of(idx), addr, insn.size_bytes(),
                insn.imm & U64,
            )
            return next_slot

        raise ExecutionError(
            program.slot_of(idx), f"unsupported opcode {insn.opcode:#04x}"
        )

    # -- ALU ------------------------------------------------------------------

    def _alu(
        self, program: Program, idx: int, insn: Instruction, is64: bool
    ) -> None:
        op = isa.BPF_OP(insn.opcode)
        dst = self.regs[insn.dst]
        src = insn.imm & U64 if insn.uses_imm() else self.regs[insn.src]
        if not is64:
            dst &= U32
            src &= U32
        width_mask = U64 if is64 else U32
        shift_mask = 63 if is64 else 31

        if op == isa.ALU_MOV:
            result = src
        elif op == isa.ALU_ADD:
            result = dst + src
        elif op == isa.ALU_SUB:
            result = dst - src
        elif op == isa.ALU_MUL:
            result = dst * src
        elif op == isa.ALU_DIV:
            result = 0 if src == 0 else dst // src
        elif op == isa.ALU_MOD:
            result = dst if src == 0 else dst % src
        elif op == isa.ALU_AND:
            result = dst & src
        elif op == isa.ALU_OR:
            result = dst | src
        elif op == isa.ALU_XOR:
            result = dst ^ src
        elif op == isa.ALU_LSH:
            result = dst << (src & shift_mask)
        elif op == isa.ALU_RSH:
            result = dst >> (src & shift_mask)
        elif op == isa.ALU_ARSH:
            signed = _s64(dst) if is64 else _s32(dst)
            result = signed >> (src & shift_mask)
        elif op == isa.ALU_NEG:
            result = -dst
        else:
            raise ExecutionError(
                program.slot_of(idx), f"unsupported ALU op {op:#04x}"
            )
        # 32-bit ops zero-extend their result into the full register.
        self.regs[insn.dst] = result & width_mask

    # -- jumps ------------------------------------------------------------------

    def _jump(
        self, program: Program, idx: int, insn: Instruction, next_slot: int
    ) -> int:
        op = isa.BPF_OP(insn.opcode)

        if op == isa.JMP_JA:
            return program.jump_target_slot(idx)

        if op == isa.JMP_CALL:
            helper = self.helpers.get(insn.imm)
            if helper is None:
                raise ExecutionError(
                    program.slot_of(idx), f"unknown helper {insn.imm}"
                )
            self.regs[0] = helper(*self.regs[1:6]) & U64
            # r1-r5 are clobbered by calls, per the BPF ABI.
            for r in range(1, 6):
                self.regs[r] = 0
            return next_slot

        is32 = insn.cls() == isa.CLS_JMP32
        dst = self.regs[insn.dst]
        src = insn.imm & U64 if insn.uses_imm() else self.regs[insn.src]
        if is32:
            dst &= U32
            src &= U32
        sdst = _s32(dst) if is32 else _s64(dst)
        ssrc = _s32(src) if is32 else _s64(src)

        taken = {
            isa.JMP_JEQ: dst == src,
            isa.JMP_JNE: dst != src,
            isa.JMP_JGT: dst > src,
            isa.JMP_JGE: dst >= src,
            isa.JMP_JLT: dst < src,
            isa.JMP_JLE: dst <= src,
            isa.JMP_JSET: bool(dst & src),
            isa.JMP_JSGT: sdst > ssrc,
            isa.JMP_JSGE: sdst >= ssrc,
            isa.JMP_JSLT: sdst < ssrc,
            isa.JMP_JSLE: sdst <= ssrc,
        }.get(op)
        if taken is None:
            raise ExecutionError(
                program.slot_of(idx), f"unsupported jump op {op:#04x}"
            )
        return program.jump_target_slot(idx) if taken else next_slot
