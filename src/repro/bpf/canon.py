"""Canonical program forms and verdict memoization.

At load-service scale the dominant traffic pattern is repeat and
near-repeat submissions: the same program assembled with different
labels, scratch fields left over from mutation, an immediate spelled
``-1`` in one copy and ``0xFFFFFFFF`` in another.  The verifier's
verdict depends on none of that, so verifying each *structure* once is
the biggest win after the compile-once pipelines (PR 4/5) — ROADMAP
speed item (2), "structural memoization".

Two layers live here:

**Canonical form** — :func:`canonical_records` maps a
:class:`~repro.bpf.program.Program` to one fixed-width record per
instruction ``(opcode, dst, src, field3, imm)`` with every field the
verifier and interpreter ignore zeroed and every immediate pre-masked to
the width the engines actually consume (32-bit ops read ``imm & U32``,
shifts mask their count, partial stores their stored bytes, ...).  Jump
targets are re-encoded in *index space* (``field3`` = target instruction
index), so the form is independent of the slot layout bookkeeping;
:func:`canonicalize` materializes the records back into a real
``Program`` (offsets recomputed from the index targets, dense slot
layout), and :func:`canonical_hash` is the sha256 over the packed
records.  The canonicalization is *sound by construction*, never
complete: every rewrite above is justified by a field the engines
provably do not read (the property test in ``tests/bpf/test_canon.py``
holds verdicts, telemetry streams, and concrete executions equal
between a program and its canonical form), and any instruction class we
cannot prove anything about keeps its raw fields.

**Verdict memo** — :class:`VerdictCache` maps ``(canonical_hash,
ctx_size)`` to a :class:`CachedVerdict`: the full
:class:`~repro.bpf.verifier.errors.VerificationResult` (accept/reject,
error index/reason/structural flag, instructions processed), the
recorded ``on_transfer`` event stream (so cached verdicts replay
byte-identical telemetry into the campaign's collectors), and — when
the differential oracle stored the entry — the containment *plans* its
replays check against.  Entries are LRU-evicted past ``max_entries``
and serialize to a JSON payload that doubles as the persistent
cross-run store (``--verdict-cache``) and the campaign's worker-shard
format (see :mod:`repro.fuzz.campaign`).  Format details are in
``docs/caching.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro import obs as _obs
from repro.core.tnum import Tnum
from repro.domains.interval import Interval
from repro.domains.product import ScalarValue

from . import isa
from .insn import _LDDW_OPCODE, Instruction
from .program import Program
from .verifier.errors import VerificationResult, VerifierError

__all__ = [
    "CANON_VERSION",
    "STORE_FORMAT_VERSION",
    "canonical_records",
    "canonical_hash",
    "canonicalize",
    "CachedVerdict",
    "VerdictCache",
]

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

#: Bumped whenever the canonical form (record layout, masking rules, or
#: the hash seed) changes — persisted stores carry it, so a stale store
#: can never serve verdicts computed under different equivalence rules.
CANON_VERSION = 1
#: Version of the JSON store/shard layout itself.
STORE_FORMAT_VERSION = 1

_HASH_SEED = b"repro-canon-v1"
#: opcode, dst, src, pad, field3 (s32: jump-target index or offset),
#: imm (u64, pre-masked).  Fixed-width records: two distinct record
#: sequences always produce distinct hash input streams.
_RECORD = struct.Struct("<BBBxiQ")

_SHIFT_OPS = frozenset((isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH))

#: Stored-byte mask per load/store size field, for ``st`` immediates.
_ST_IMM_MASK = {
    size: (1 << (8 * nbytes)) - 1 for size, nbytes in isa.SIZE_BYTES.items()
}


def canonical_records(
    program: Program,
) -> List[Tuple[int, int, int, int, int]]:
    """One ``(opcode, dst, src, field3, imm)`` record per instruction.

    Opcodes are never rewritten; only operand fields are.  The rules,
    each justified by what the two engines read (see the module
    docstring for the soundness argument):

    * **lddw** — ``imm & U64`` (sign-canonical); ``src``/``off`` zeroed.
    * **ALU** — ``off`` zeroed always.  ``neg`` keeps only ``dst``.
      Immediate forms zero ``src`` and mask ``imm`` to the operand
      width (``U64``/``U32``); shift counts further mask to
      ``width - 1``, exactly as both engines do.  Register forms zero
      ``imm``.  Unknown ALU ops follow the same field split — their
      error paths read registers (uninitialized-read precedence) but
      never the immediate's value.
    * **loads/stores** — ``imm`` zeroed for ``ldx``/``stx``; ``st``
      zeroes ``src`` and masks ``imm`` to the stored byte width.
    * **jumps** — ``exit`` zeroes everything; ``call`` keeps only
      ``imm`` (the helper id, reproduced verbatim in the interpreter's
      unknown-helper message); ``ja`` keeps only the target; conditional
      jumps keep ``dst`` plus either the masked immediate or ``src``.
      ``field3`` holds the target *instruction index* (slot-layout
      independent); everything else stores its offset there.
    * anything unrecognized keeps its raw fields (sound, not complete).

    Hot path: the fuzz stack hashes every submitted program, so the
    field tests are inlined bit-ops on locals (``insn.cls()`` and
    friends describe the same decode; see :mod:`repro.bpf.insn`) and the
    slot maps are indexed directly — jump targets were validated by the
    ``Program`` constructor, so every lookup lands on a boundary.
    """
    records: List[Tuple[int, int, int, int, int]] = []
    append = records.append
    slot_arr = program._slot_of_index
    index_arr = program._index_of_slot
    cls_alu, cls_alu64 = isa.CLS_ALU, isa.CLS_ALU64
    cls_ldx, cls_stx, cls_st = isa.CLS_LDX, isa.CLS_STX, isa.CLS_ST
    cls_jmp, cls_jmp32 = isa.CLS_JMP, isa.CLS_JMP32
    alu_neg, jmp_exit, jmp_call, jmp_ja = (
        isa.ALU_NEG, isa.JMP_EXIT, isa.JMP_CALL, isa.JMP_JA,
    )
    shift_ops, st_imm_mask, lddw = _SHIFT_OPS, _ST_IMM_MASK, _LDDW_OPCODE
    u64, u32 = U64, U32
    for idx, insn in enumerate(program.insns):
        opcode = insn.opcode
        cls = opcode & 0x07
        if cls == cls_alu64 or cls == cls_alu:
            op = opcode & 0xF0
            if op == alu_neg:
                append((opcode, insn.dst, 0, 0, 0))
            elif not opcode & 0x08:             # SRC_K
                is64 = cls == cls_alu64
                imm = insn.imm & (u64 if is64 else u32)
                if op in shift_ops:
                    imm &= 63 if is64 else 31
                append((opcode, insn.dst, 0, 0, imm))
            else:                               # SRC_X
                append((opcode, insn.dst, insn.src, 0, 0))
        elif cls == cls_jmp or cls == cls_jmp32:
            op = opcode & 0xF0
            if op == jmp_exit:
                append((opcode, 0, 0, 0, 0))
            elif op == jmp_call:
                append((opcode, 0, 0, 0, insn.imm & u64))
            else:
                target = index_arr[slot_arr[idx] + 1 + insn.off]
                if op == jmp_ja:
                    append((opcode, 0, 0, target, 0))
                elif not opcode & 0x08:         # SRC_K
                    imm = insn.imm & (u32 if cls == cls_jmp32 else u64)
                    append((opcode, insn.dst, 0, target, imm))
                else:                           # SRC_X
                    append((opcode, insn.dst, insn.src, target, 0))
        elif cls == cls_ldx or cls == cls_stx:
            append((opcode, insn.dst, insn.src, insn.off, 0))
        elif cls == cls_st:
            append((opcode, insn.dst, 0, insn.off,
                    insn.imm & st_imm_mask[opcode & 0x18]))
        elif opcode == lddw:
            append((opcode, insn.dst, 0, 0, insn.imm & u64))
        else:
            append((opcode, insn.dst, insn.src, insn.off, insn.imm & u64))
    return records


def canonical_hash(program: Program) -> str:
    """sha256 hex digest of the packed canonical records."""
    pack = _RECORD.pack
    return hashlib.sha256(
        _HASH_SEED
        + b"".join([pack(*record) for record in canonical_records(program)])
    ).hexdigest()


def canonicalize(program: Program) -> Program:
    """Materialize the canonical form as a real :class:`Program`.

    Jump offsets are recomputed from the index-space targets over the
    canonical slot layout (identical opcode sequence, hence identical
    layout); immediates re-sign values at or above ``2^63`` so every
    record round-trips through the :class:`Instruction` constructor's
    s32 range.  Idempotent: ``canonicalize(canonicalize(p))`` yields the
    same instruction list, and the canonical program hashes to the same
    digest as ``p``.
    """
    records = canonical_records(program)
    slot_of: List[int] = []
    slots = 0
    for record in records:
        slot_of.append(slots)
        slots += 2 if record[0] == _LDDW_OPCODE else 1
    insns: List[Instruction] = []
    for idx, (opcode, dst, src, field3, imm) in enumerate(records):
        cls = opcode & 0x07
        if cls in (isa.CLS_JMP, isa.CLS_JMP32) and (
            opcode & 0xF0 not in (isa.JMP_EXIT, isa.JMP_CALL)
        ):
            off = slot_of[field3] - (slot_of[idx] + 1)
        else:
            off = field3
        if opcode != _LDDW_OPCODE and imm >= (1 << 63):
            imm -= 1 << 64
        insns.append(Instruction(opcode, dst, src, off, imm))
    return Program(insns)


# -- cached verdicts -----------------------------------------------------------


def _pack_scalar(scalar: ScalarValue) -> List[int]:
    t, iv = scalar.tnum, scalar.interval
    return [t.value, t.mask, iv.umin, iv.umax, t.width]


def _unpack_scalar(fields: Sequence[int]) -> ScalarValue:
    value, mask, umin, umax, width = (int(f) for f in fields)
    # Direct constructors, not ``make``: the recorded pair is already
    # reduced, and re-reducing could rebuild a (semantically equal but)
    # differently-normalized product than the one the walk produced.
    return ScalarValue(Tnum(value, mask, width), Interval(umin, umax, width))


#: One recorded ``on_transfer`` call: ``(insn_index, label, scalar)``.
Event = Tuple[int, str, ScalarValue]
#: The oracle's per-instruction containment plan (see
#: :meth:`repro.fuzz.oracle.DifferentialOracle._build_plans`).
Plans = List[Optional[List[Tuple]]]


class CachedVerdict:
    """Everything a verdict consumer can observe, minus the walk.

    ``events`` is the complete ``on_transfer`` stream the abstract walk
    produced, in order — replaying it into a telemetry hook is
    indistinguishable from re-verifying.  ``plans`` is optional: only
    entries stored by the differential oracle carry the containment
    plans its concrete replays check against (a plain verifier entry
    stores ``None``, and the oracle upgrades it on its next miss).
    """

    __slots__ = (
        "ok", "error_index", "error_reason", "error_structural",
        "insns_processed", "events", "plans",
    )

    def __init__(
        self,
        ok: bool,
        error_index: int,
        error_reason: str,
        error_structural: bool,
        insns_processed: int,
        events: Tuple[Event, ...],
        plans: Optional[Plans] = None,
    ) -> None:
        self.ok = ok
        self.error_index = error_index
        self.error_reason = error_reason
        self.error_structural = error_structural
        self.insns_processed = insns_processed
        self.events = events
        self.plans = plans

    @classmethod
    def from_result(
        cls,
        result: VerificationResult,
        events: Tuple[Event, ...],
        plans: Optional[Plans] = None,
    ) -> "CachedVerdict":
        error = result.errors[0] if result.errors else None
        return cls(
            ok=result.ok,
            error_index=error.insn_index if error is not None else 0,
            error_reason=error.reason if error is not None else "",
            error_structural=bool(error is not None and error.structural),
            insns_processed=result.insns_processed,
            events=events,
            plans=plans,
        )

    def result(self) -> VerificationResult:
        """Reconstruct the verification result, byte-equal to a miss."""
        if self.ok:
            return VerificationResult(True, [], self.insns_processed)
        error = VerifierError(
            self.error_index, self.error_reason, self.error_structural
        )
        return VerificationResult(False, [error], self.insns_processed)

    def replay(self, note) -> None:
        """Feed the recorded transfer stream into ``note`` in order."""
        for idx, label, scalar in self.events:
            note(idx, label, scalar)

    # -- (de)serialization -------------------------------------------------

    def to_payload(self) -> Dict:
        payload: Dict = {
            "ok": self.ok,
            "insns_processed": self.insns_processed,
            "events": [
                [idx, label, _pack_scalar(scalar)]
                for idx, label, scalar in self.events
            ],
        }
        if not self.ok:
            payload["error"] = [
                self.error_index, self.error_reason, self.error_structural,
            ]
        if self.plans is not None:
            payload["plans"] = [
                None if plan is None else [
                    [reg, notmask, value, umin, umax, base,
                     _pack_scalar(obj), region]
                    for reg, notmask, value, umin, umax, base, obj, region
                    in plan
                ]
                for plan in self.plans
            ]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "CachedVerdict":
        error = payload.get("error")
        plans: Optional[Plans] = None
        if "plans" in payload:
            plans = [
                None if plan is None else [
                    (
                        int(entry[0]), int(entry[1]), int(entry[2]),
                        int(entry[3]), int(entry[4]),
                        None if entry[5] is None else int(entry[5]),
                        _unpack_scalar(entry[6]), entry[7],
                    )
                    for entry in plan
                ]
                for plan in payload["plans"]
            ]
        return cls(
            ok=bool(payload["ok"]),
            error_index=int(error[0]) if error else 0,
            error_reason=str(error[1]) if error else "",
            error_structural=bool(error[2]) if error else False,
            insns_processed=int(payload["insns_processed"]),
            events=tuple(
                (int(idx), str(label), _unpack_scalar(fields))
                for idx, label, fields in payload["events"]
            ),
            plans=plans,
        )


# -- the memo layer ------------------------------------------------------------

CacheKey = Tuple[str, int]   # (canonical_hash, ctx_size)

_DEFAULT_MAX_ENTRIES = 65536


class VerdictCache:
    """Bounded LRU memo of verdicts keyed on ``(canonical_hash, ctx_size)``.

    Lookup order is the recency order: :meth:`get` refreshes an entry,
    :meth:`put` inserts at the newest position and evicts the least
    recently used entry past ``max_entries``.  ``hits`` / ``misses`` /
    ``evictions`` count this instance's traffic; with observability on,
    the same events tick the ``verdict_cache.*`` counters and a
    ``cache``/``lookup`` timer in the obs registry (so they surface in
    ``repro stats`` and worker shards automatically).

    The JSON payload (:meth:`to_payload` / :meth:`from_payload`) is used
    three ways: the ``--verdict-cache`` persistent store, the campaign's
    per-round worker bootstrap, and — via :meth:`drain_new` /
    :meth:`absorb` — the per-item shard workers ship back, merged in
    index order exactly like obs registries.
    """

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, CachedVerdict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: keys inserted/refreshed-with-new-content since the last drain.
        self._journal: List[CacheKey] = []
        self._shipped = (0, 0, 0)   # (hits, misses, evictions) at last drain

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    # -- core ---------------------------------------------------------------

    def get(
        self, key: CacheKey, require_plans: bool = False
    ) -> Optional[CachedVerdict]:
        """The entry for ``key``, or ``None`` (counted as a miss).

        ``require_plans`` makes an accepted entry without containment
        plans look like a miss: the oracle cannot replay against it, so
        it re-verifies and :meth:`put` upgrades the entry in place.
        """
        entries = self._entries
        if _obs.enabled():
            t0 = time.perf_counter_ns()
            entry = entries.get(key)
            _obs.record_op_time("cache", "lookup", time.perf_counter_ns() - t0)
            counter = _obs.default_registry().counter
        else:
            entry = entries.get(key)
            counter = None
        if entry is not None and require_plans and entry.ok and entry.plans is None:
            entry = None
        if entry is None:
            self.misses += 1
            if counter is not None:
                counter("verdict_cache.misses").inc()
            return None
        entries.move_to_end(key)
        self.hits += 1
        if counter is not None:
            counter("verdict_cache.hits").inc()
        return entry

    def put(self, key: CacheKey, entry: CachedVerdict) -> None:
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        self._journal.append(key)
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
            if _obs.enabled():
                _obs.default_registry().counter(
                    "verdict_cache.evictions"
                ).inc()

    def store(
        self,
        key: CacheKey,
        result: VerificationResult,
        events: Optional[Sequence[Event]],
        plans: Optional[Plans] = None,
    ) -> None:
        """Record a freshly computed verdict (convenience over put)."""
        self.put(
            key,
            CachedVerdict.from_result(
                result, tuple(events or ()), plans=plans
            ),
        )

    # -- worker shards ------------------------------------------------------

    def drain_new(self) -> Dict:
        """Entries recorded since the last drain, plus stat deltas.

        The worker-side half of merge-on-return: cheap relative to the
        fuzz item it rides on (entries are small and most items add at
        most one).  Evicted-before-drain keys are skipped.
        """
        entries = self._entries
        fresh: "OrderedDict[CacheKey, CachedVerdict]" = OrderedDict()
        for key in self._journal:
            entry = entries.get(key)
            if entry is not None:
                fresh[key] = entry
        self._journal = []
        hits, misses, evictions = self._shipped
        shard = {
            "entries": [
                [key[0], key[1], entry.to_payload()]
                for key, entry in fresh.items()
            ],
            "hits": self.hits - hits,
            "misses": self.misses - misses,
            "evictions": self.evictions - evictions,
        }
        self._shipped = (self.hits, self.misses, self.evictions)
        return shard

    def absorb(self, shard: Dict) -> None:
        """Merge a worker shard (parent-side half of merge-on-return).

        Keep-first on conflicts — structurally identical programs yield
        identical entries, so the only real upgrade is plans appearing
        on a previously plan-less accepted entry.  Folding shards in
        index order therefore produces the same entry set for any
        worker count.

        All-or-nothing: the whole shard is decoded *before* anything is
        applied, so a corrupt shard (truncated pipe payload, an injected
        ``campaign.shard.corrupt``) raises without leaving a half-merged
        cache behind — the campaign's absorb loop rejects it and carries
        on with the entries it already has.
        """
        decoded = [
            ((str(chash), int(ctx_size)), CachedVerdict.from_payload(payload))
            for chash, ctx_size, payload in shard.get("entries", [])
        ]
        hits = int(shard.get("hits", 0))
        misses = int(shard.get("misses", 0))
        evictions = int(shard.get("evictions", 0))
        for key, incoming in decoded:
            existing = self._entries.get(key)
            if existing is None or (
                existing.plans is None and incoming.plans is not None
            ):
                self.put(key, incoming)
        self.hits += hits
        self.misses += misses
        self.evictions += evictions

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> Dict:
        return {
            "format_version": STORE_FORMAT_VERSION,
            "canon_version": CANON_VERSION,
            "max_entries": self.max_entries,
            "entries": [
                [key[0], key[1], entry.to_payload()]
                for key, entry in self._entries.items()   # LRU → MRU order
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "VerdictCache":
        if not isinstance(payload, dict):
            raise ValueError(
                f"verdict-cache payload must be a JSON object, "
                f"not {type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported verdict-cache format {version!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        canon = payload.get("canon_version")
        if canon != CANON_VERSION:
            raise ValueError(
                f"verdict cache built for canonical form {canon!r}; "
                f"this build uses {CANON_VERSION} — discard the store"
            )
        cache = cls(max_entries=int(payload.get("max_entries",
                                                _DEFAULT_MAX_ENTRIES)))
        for chash, ctx_size, entry_payload in payload.get("entries", []):
            cache._entries[(str(chash), int(ctx_size))] = (
                CachedVerdict.from_payload(entry_payload)
            )
        while len(cache._entries) > cache.max_entries:
            cache._entries.popitem(last=False)
        return cache

    def save(self, path: "str | Path") -> None:
        """Atomically persist the store: write a temp file, then rename.

        A reader (or the next run's :meth:`load`) never observes a torn
        store — ``os.replace`` is atomic on POSIX, so a crash at any
        point leaves either the old complete file or the new complete
        file.  The ``cache.save.torn``/``cache.save.slow`` fault sites
        exercise exactly this window: a saver killed mid-write must not
        cost the previous store.
        """
        target = Path(path)
        text = json.dumps(self.to_payload(), sort_keys=True) + "\n"
        tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
        half = len(text) // 2
        with open(tmp, "w") as fh:
            fh.write(text[:half])
            if _faults.enabled():
                if _faults.fire("cache.save.torn"):
                    fh.flush()
                    return   # die mid-write: temp left behind, no rename
                if _faults.fire("cache.save.slow"):
                    fh.flush()
                    time.sleep(_faults.arg("cache.save.slow"))
            fh.write(text[half:])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    @classmethod
    def load(
        cls, path: "str | Path", max_entries: int = _DEFAULT_MAX_ENTRIES
    ) -> "VerdictCache":
        """Load a persistent store; a missing file yields a fresh cache.

        Malformed or version-mismatched stores raise ``ValueError`` —
        silently dropping a store the caller asked for would hide the
        misconfiguration behind a 0% hit rate.  Every failure mode (a
        partially written file from a crashed run, hand-edited JSON, a
        store from a different format version) surfaces as one clear
        message naming the file, never a traceback from the decoder.
        """
        store = Path(path)
        if not store.exists():
            return cls(max_entries=max_entries)
        try:
            text = store.read_text()
        except OSError as exc:
            raise ValueError(
                f"verdict-cache store {store} is unreadable: {exc}"
            ) from exc
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValueError(
                f"verdict-cache store {store} is corrupt or truncated "
                f"(not valid JSON: {exc}) — delete it to start fresh"
            ) from exc
        try:
            cache = cls.from_payload(payload)
        except ValueError as exc:
            raise ValueError(f"verdict-cache store {store}: {exc}") from exc
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(
                f"verdict-cache store {store} is malformed "
                f"({type(exc).__name__}: {exc}) — delete it to start fresh"
            ) from exc
        cache.max_entries = max_entries
        while len(cache._entries) > max_entries:
            cache._entries.popitem(last=False)
        return cache

    def summary_line(self, path: Optional[str] = None) -> str:
        """One-line stats render for CLI output (and CI greps)."""
        line = (
            f"verdict cache: hits={self.hits} misses={self.misses} "
            f"({100.0 * self.hit_rate:.1f}% hit rate) "
            f"entries={len(self)} evictions={self.evictions}"
        )
        if path:
            line += f" -> {path}"
        return line
