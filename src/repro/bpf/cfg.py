"""Control-flow graph over BPF programs.

The verifier analyzes programs as a CFG of basic blocks.  Like the
classic in-kernel verifier, we reject programs containing back-edges
(loops) — this guarantees the abstract interpretation terminates without
widening and matches the security posture the paper's analyzer operates
under.  The check is the kernel's own DFS edge-classification
(``check_cfg`` in ``verifier.c``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from . import isa
from .program import Program

__all__ = ["BasicBlock", "ControlFlowGraph", "CFGError", "build_cfg"]


class CFGError(ValueError):
    """Structural CFG problem: loops, unreachable code, missing exit."""


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` / ``end`` are instruction *indexes* (not slots); ``end`` is
    inclusive.  ``successors`` are block ids; a conditional jump's
    fall-through edge comes first, then the taken edge.
    """

    block_id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def instructions(self, program: Program):
        return program.insns[self.start : self.end + 1]


class ControlFlowGraph:
    """Basic blocks plus traversal orders for the abstract interpreter.

    The structural DFS (:meth:`validate`) runs once at construction and
    doubles as the post-order computation, so the reverse post-order the
    verifier walks is a cached by-product of validation rather than a
    second traversal.
    """

    def __init__(self, program: Program, blocks: List[BasicBlock]) -> None:
        self.program = program
        self.blocks = blocks
        self._block_of_insn: Optional[Dict[int, int]] = None
        self._rpo: Optional[List[int]] = None

    def block_containing(self, insn_index: int) -> BasicBlock:
        mapping = self._block_of_insn
        if mapping is None:  # built lazily: only diagnostics need it
            mapping = self._block_of_insn = {}
            for block in self.blocks:
                for idx in range(block.start, block.end + 1):
                    mapping[idx] = block.block_id
        return self.blocks[mapping[insn_index]]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reverse_post_order(self) -> List[int]:
        """Block ids in reverse post-order from the entry (analysis order).

        Returns a copy: the cached order must survive callers that
        mutate the list they get back.
        """
        if self._rpo is None:
            self.validate()
        return list(self._rpo)

    def validate(self) -> None:
        """One DFS, kernel-style: reject back-edges and unreachable blocks.

        Combines the kernel's ``check_cfg`` edge classification (the
        GREY-hit is a back-edge ⇒ loop) with its unreachable-insn
        rejection, and records the post-order as it unwinds.
        """
        blocks = self.blocks
        WHITE, GREY, BLACK = 0, 1, 2
        colour = [WHITE] * len(blocks)
        post: List[int] = []
        stack: List[tuple] = [(0, iter(blocks[0].successors))]
        colour[0] = GREY
        while stack:
            block_id, succs = stack[-1]
            advanced = False
            for succ in succs:
                c = colour[succ]
                if c == GREY:
                    raise CFGError(
                        f"back-edge from block {block_id} to block {succ}: "
                        "loops are not allowed"
                    )
                if c == WHITE:
                    colour[succ] = GREY
                    stack.append((succ, iter(blocks[succ].successors)))
                    advanced = True
                    break
            if not advanced:
                colour[block_id] = BLACK
                post.append(block_id)
                stack.pop()
        unreachable = [
            b.block_id for b in blocks if colour[b.block_id] == WHITE
        ]
        if unreachable:
            raise CFGError(f"unreachable blocks: {unreachable}")
        self._rpo = post[::-1]

    def check_acyclic(self) -> None:
        """Structural check, kept as API.

        Note: this now runs the full :meth:`validate` (one fused DFS),
        so it also rejects unreachable blocks — callers get the whole
        structural contract, not just the back-edge half.
        """
        self.validate()

    def check_reachable(self) -> None:
        """Structural check, kept as API.

        Note: this now runs the full :meth:`validate` (one fused DFS),
        so it also rejects back-edges — callers get the whole structural
        contract, not just the reachability half.
        """
        self.validate()


#: Instruction roles for CFG construction (internal).
_STRAIGHT, _COND, _JA, _EXIT = 0, 1, 2, 3


def build_cfg(program: Program) -> ControlFlowGraph:
    """Split a program into basic blocks and wire the edges.

    Raises :class:`CFGError` if any path can fall off the end of the
    program (the kernel requires every path to reach ``exit``).

    Control-relevant classification and jump targets are computed once
    per instruction in a single pass — this runs for every verified
    program, so the leader and edge passes must not re-derive them.
    """
    n = len(program)
    if n == 0:
        raise CFGError("empty program")

    # One classification pass: role per insn, target index for jumps.
    # Leaders: first insn, jump targets, insns after jumps/exits.
    roles = [_STRAIGHT] * n
    targets = [-1] * n
    leaders: Set[int] = {0}
    for idx, insn in enumerate(program.insns):
        if insn.cls() not in (isa.CLS_JMP, isa.CLS_JMP32):
            continue
        op = insn.opcode & 0xF0
        if op == isa.JMP_EXIT:
            roles[idx] = _EXIT
            if idx + 1 < n:
                leaders.add(idx + 1)
        elif op != isa.JMP_CALL:
            roles[idx] = _JA if op == isa.JMP_JA else _COND
            targets[idx] = program.index_at_slot(program.jump_target_slot(idx))
            leaders.add(targets[idx])
            if idx + 1 < n:
                leaders.add(idx + 1)

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    for i, start in enumerate(ordered):
        end = (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1
        blocks.append(BasicBlock(block_id=i, start=start, end=end))
    block_of_start = {b.start: b.block_id for b in blocks}

    for block in blocks:
        end = block.end
        role = roles[end]
        if role == _EXIT:
            continue
        if role == _JA:
            block.successors.append(block_of_start[targets[end]])
        elif role == _COND:
            if end + 1 >= n:
                raise CFGError(f"conditional jump at insn {end} can fall off the end")
            block.successors.append(block_of_start[end + 1])      # fall-through
            block.successors.append(block_of_start[targets[end]])  # taken
        else:
            if end + 1 >= n:
                raise CFGError("control falls off the end of the program")
            block.successors.append(block_of_start[end + 1])

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.block_id)

    cfg = ControlFlowGraph(program, blocks)
    cfg.validate()
    return cfg
