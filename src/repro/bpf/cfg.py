"""Control-flow graph over BPF programs.

The verifier analyzes programs as a CFG of basic blocks.  Like the
classic in-kernel verifier, we reject programs containing back-edges
(loops) — this guarantees the abstract interpretation terminates without
widening and matches the security posture the paper's analyzer operates
under.  The check is the kernel's own DFS edge-classification
(``check_cfg`` in ``verifier.c``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from . import isa
from .program import Program

__all__ = ["BasicBlock", "ControlFlowGraph", "CFGError", "build_cfg"]


class CFGError(ValueError):
    """Structural CFG problem: loops, unreachable code, missing exit."""


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` / ``end`` are instruction *indexes* (not slots); ``end`` is
    inclusive.  ``successors`` are block ids; a conditional jump's
    fall-through edge comes first, then the taken edge.
    """

    block_id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def instructions(self, program: Program):
        return program.insns[self.start : self.end + 1]


class ControlFlowGraph:
    """Basic blocks plus traversal orders for the abstract interpreter."""

    def __init__(self, program: Program, blocks: List[BasicBlock]) -> None:
        self.program = program
        self.blocks = blocks
        self._block_of_insn: Dict[int, int] = {}
        for block in blocks:
            for idx in range(block.start, block.end + 1):
                self._block_of_insn[idx] = block.block_id

    def block_containing(self, insn_index: int) -> BasicBlock:
        return self.blocks[self._block_of_insn[insn_index]]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reverse_post_order(self) -> List[int]:
        """Block ids in reverse post-order from the entry (analysis order)."""
        visited: Set[int] = set()
        post: List[int] = []

        def dfs(block_id: int) -> None:
            visited.add(block_id)
            for succ in self.blocks[block_id].successors:
                if succ not in visited:
                    dfs(succ)
            post.append(block_id)

        dfs(0)
        return list(reversed(post))

    def check_acyclic(self) -> None:
        """Reject back-edges, kernel-style (iterative DFS colouring)."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {b.block_id: WHITE for b in self.blocks}
        stack: List[tuple] = [(0, iter(self.blocks[0].successors))]
        colour[0] = GREY
        while stack:
            block_id, succs = stack[-1]
            advanced = False
            for succ in succs:
                if colour[succ] == GREY:
                    raise CFGError(
                        f"back-edge from block {block_id} to block {succ}: "
                        "loops are not allowed"
                    )
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    stack.append((succ, iter(self.blocks[succ].successors)))
                    advanced = True
                    break
            if not advanced:
                colour[block_id] = BLACK
                stack.pop()

    def check_reachable(self) -> None:
        """Reject unreachable blocks (the kernel rejects unreachable insns)."""
        seen: Set[int] = set()
        work = [0]
        while work:
            bid = work.pop()
            if bid in seen:
                continue
            seen.add(bid)
            work.extend(self.blocks[bid].successors)
        unreachable = [b.block_id for b in self.blocks if b.block_id not in seen]
        if unreachable:
            raise CFGError(f"unreachable blocks: {unreachable}")


def build_cfg(program: Program) -> ControlFlowGraph:
    """Split a program into basic blocks and wire the edges.

    Raises :class:`CFGError` if any path can fall off the end of the
    program (the kernel requires every path to reach ``exit``).
    """
    n = len(program)
    if n == 0:
        raise CFGError("empty program")

    # Leaders: first insn, jump targets, insns after jumps/exits.
    leaders: Set[int] = {0}
    for idx, insn in enumerate(program):
        if insn.is_jump() and not insn.is_exit() and isa.BPF_OP(
            insn.opcode
        ) != isa.JMP_CALL:
            target_idx = program.index_at_slot(program.jump_target_slot(idx))
            leaders.add(target_idx)
            if idx + 1 < n:
                leaders.add(idx + 1)
        elif insn.is_exit() and idx + 1 < n:
            leaders.add(idx + 1)

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    for i, start in enumerate(ordered):
        end = (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1
        blocks.append(BasicBlock(block_id=i, start=start, end=end))
    block_of_start = {b.start: b.block_id for b in blocks}

    for block in blocks:
        last = program.insns[block.end]
        if last.is_exit():
            continue
        if last.is_ja():
            target_idx = program.index_at_slot(program.jump_target_slot(block.end))
            block.successors.append(block_of_start[target_idx])
        elif last.is_cond_jump():
            if block.end + 1 >= n:
                raise CFGError(f"conditional jump at insn {block.end} can fall off the end")
            target_idx = program.index_at_slot(program.jump_target_slot(block.end))
            block.successors.append(block_of_start[block.end + 1])  # fall-through
            block.successors.append(block_of_start[target_idx])     # taken
        else:
            if block.end + 1 >= n:
                raise CFGError("control falls off the end of the program")
            block.successors.append(block_of_start[block.end + 1])

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.block_id)

    cfg = ControlFlowGraph(program, blocks)
    cfg.check_acyclic()
    cfg.check_reachable()
    return cfg
