"""BPF instruction representation with binary encode/decode.

:class:`Instruction` is the in-memory form used by the assembler,
interpreter and verifier; :func:`encode` / :func:`decode` translate to the
kernel's 8-byte wire format (16 bytes for ``lddw``, which occupies two
slots with the high 32 immediate bits in the second slot, exactly as in
Linux).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List

from . import isa

__all__ = ["Instruction", "encode", "decode", "encode_program", "decode_program"]

_STRUCT = struct.Struct("<BBhi")  # opcode, regs, off, imm

_LDDW_OPCODE = isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM


@dataclass(frozen=True)
class Instruction:
    """One BPF instruction.

    ``imm`` is kept as a signed 32-bit quantity except for ``lddw``
    pseudo-instructions, where it holds the full 64-bit immediate and the
    encoder splits it across two slots.
    """

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.opcode <= 0xFF:
            raise ValueError(f"opcode {self.opcode:#x} out of byte range")
        if not 0 <= self.dst < isa.MAX_REG:
            raise ValueError(f"dst register r{self.dst} invalid")
        if not 0 <= self.src < isa.MAX_REG:
            raise ValueError(f"src register r{self.src} invalid")
        if not -(1 << 15) <= self.off < (1 << 15):
            raise ValueError(f"offset {self.off} out of s16 range")
        # Classification is pure opcode arithmetic, queried many times per
        # instruction by the CFG builder, the verifier compilers, and the
        # assembler round-trips — compute the class bits once.  (A frozen
        # dataclass still permits object.__setattr__; ``_cls`` is not a
        # field, so equality/repr/hashing are untouched.)
        cls = self.opcode & 0x07
        object.__setattr__(self, "_cls", cls)
        if self.is_lddw():
            if not -(1 << 63) <= self.imm < (1 << 64):
                raise ValueError("lddw immediate out of 64-bit range")
        elif not -(1 << 31) <= self.imm < (1 << 32):
            raise ValueError(f"imm {self.imm} out of 32-bit range")

    # -- classification helpers ------------------------------------------------

    def cls(self) -> int:
        return self._cls  # type: ignore[attr-defined]

    def is_alu(self) -> bool:
        return self._cls in (isa.CLS_ALU, isa.CLS_ALU64)  # type: ignore[attr-defined]

    def is_alu64(self) -> bool:
        return self._cls == isa.CLS_ALU64  # type: ignore[attr-defined]

    def is_jump(self) -> bool:
        return self._cls in (isa.CLS_JMP, isa.CLS_JMP32)  # type: ignore[attr-defined]

    def is_cond_jump(self) -> bool:
        return self.is_jump() and self.opcode & 0xF0 not in (
            isa.JMP_JA,
            isa.JMP_CALL,
            isa.JMP_EXIT,
        )

    def is_exit(self) -> bool:
        return self.is_jump() and self.opcode & 0xF0 == isa.JMP_EXIT

    def is_ja(self) -> bool:
        return self.is_jump() and self.opcode & 0xF0 == isa.JMP_JA

    def is_load(self) -> bool:
        return self.cls() == isa.CLS_LDX

    def is_store(self) -> bool:
        return self.cls() in (isa.CLS_ST, isa.CLS_STX)

    def is_lddw(self) -> bool:
        return self.opcode == _LDDW_OPCODE

    def uses_imm(self) -> bool:
        return isa.BPF_SRC(self.opcode) == isa.SRC_K

    def size_bytes(self) -> int:
        """Access width in bytes for load/store instructions."""
        return isa.SIZE_BYTES[isa.BPF_SIZE(self.opcode)]

    def slots(self) -> int:
        """Number of 8-byte encoding slots (2 for lddw, else 1)."""
        return 2 if self.is_lddw() else 1

    def __str__(self) -> str:
        from .disassembler import format_instruction

        return format_instruction(self)


def encode(insn: Instruction) -> bytes:
    """Encode to the kernel wire format (8 or 16 bytes)."""
    regs = (insn.src << 4) | insn.dst
    if insn.is_lddw():
        imm64 = insn.imm & ((1 << 64) - 1)
        lo = imm64 & 0xFFFFFFFF
        hi = (imm64 >> 32) & 0xFFFFFFFF
        first = _STRUCT.pack(insn.opcode, regs, insn.off, _as_s32(lo))
        second = _STRUCT.pack(0, 0, 0, _as_s32(hi))
        return first + second
    return _STRUCT.pack(insn.opcode, regs, insn.off, _as_s32(insn.imm & 0xFFFFFFFF))


def _as_s32(x: int) -> int:
    return x - (1 << 32) if x & (1 << 31) else x


def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction starting at ``offset``; lddw consumes 16 bytes.

    Each instruction is constructed exactly once: the lddw check happens
    on the raw opcode byte, before any :class:`Instruction` exists, so
    wide immediates don't pay for a throwaway intermediate object.
    """
    opcode, regs, off, imm = _STRUCT.unpack_from(data, offset)
    dst = regs & 0x0F
    src = (regs >> 4) & 0x0F
    if opcode == _LDDW_OPCODE:
        if len(data) < offset + 16:
            raise ValueError("truncated lddw instruction")
        _, _, _, hi = _STRUCT.unpack_from(data, offset + 8)
        imm64 = (imm & 0xFFFFFFFF) | ((hi & 0xFFFFFFFF) << 32)
        return Instruction(opcode, dst, src, off, imm64)
    return Instruction(opcode, dst, src, off, imm)


def encode_program(insns: Iterable[Instruction]) -> bytes:
    """Encode a whole program to flat bytecode."""
    return b"".join(encode(i) for i in insns)


def decode_program(data: bytes) -> List[Instruction]:
    """Decode flat bytecode back into instructions."""
    if len(data) % 8:
        raise ValueError("bytecode length not a multiple of 8")
    out: List[Instruction] = []
    offset = 0
    while offset < len(data):
        insn = decode(data, offset)
        out.append(insn)
        offset += 8 * insn.slots()
    return out
