"""Memory access checking — where tnum precision becomes safety.

The verifier must prove every load/store lands inside a valid region with
correct alignment *for all executions*.  Both checks consume the abstract
scalar state:

* **bounds**: the pointer's abstract byte offset contributes its
  ``[umin, umax]`` interval; the whole access window must fall inside the
  region;
* **alignment**: the kernel checks alignment with ``tnum_is_aligned`` on
  the offset's tnum — the tnum domain is what makes ``x & ~7`` provably
  8-aligned even when ``x`` itself is unknown.  This is exactly the "x ≤ 8"
  style inference the paper's introduction motivates.

Stack layout convention: the frame pointer (r10) is the *top* of the
frame; valid bytes are offsets ``[-STACK_SIZE, 0)`` relative to it.
"""

from __future__ import annotations

from typing import Tuple

from repro.bpf import isa
from repro.domains.product import ScalarValue

from .errors import VerifierError
from .state import AbstractState, RegState, Region, StackSlot

__all__ = ["check_mem_access", "stack_window", "load_stack", "store_stack"]


def stack_window(offset: ScalarValue, insn_index: int, size: int) -> Tuple[int, int]:
    """Validate a stack access window and return its (umin, umax) offsets.

    Offsets are signed (negative below the frame top), so interpret the
    unsigned 64-bit abstract value through its signed bounds.
    """
    smin = offset.interval.smin()
    smax = offset.interval.smax()
    if smin < -isa.STACK_SIZE:
        raise VerifierError(
            insn_index,
            f"stack access below frame: offset may be {smin} < -{isa.STACK_SIZE}",
        )
    if smax + size > 0:
        raise VerifierError(
            insn_index,
            f"stack access above frame top: offset may reach {smax}+{size}",
        )
    return smin, smax


def check_alignment(
    offset: ScalarValue, size: int, insn_index: int, what: str
) -> None:
    """Reject accesses whose abstract offset may be misaligned.

    This is the kernel's ``tnum_is_aligned(reg->var_off, size)`` check —
    the tnum's low bits must be *known* zero modulo the access size.
    """
    if size == 1:
        return
    if not offset.tnum.is_aligned(size):
        raise VerifierError(
            insn_index,
            f"misaligned {what} access: offset {offset.tnum} not {size}-byte aligned",
        )


def check_mem_access(
    state: AbstractState,
    ptr: RegState,
    insn_offset: int,
    size: int,
    insn_index: int,
    ctx_size: int,
) -> None:
    """Check one load/store against the pointed-to region.

    ``insn_offset`` is the constant displacement encoded in the
    instruction; the register's own abstract offset is added to it.
    """
    if not ptr.is_ptr():
        raise VerifierError(insn_index, "memory access through non-pointer")
    total = ptr.offset.add(ScalarValue.const(insn_offset))
    if ptr.region == Region.STACK:
        stack_window(total, insn_index, size)
        check_alignment(total, size, insn_index, "stack")
    elif ptr.region == Region.CTX:
        umin, umax = total.umin(), total.umax()
        smin = total.interval.smin()
        if smin < 0:
            raise VerifierError(
                insn_index, f"ctx access below start: offset may be {smin}"
            )
        if umax + size > ctx_size:
            raise VerifierError(
                insn_index,
                f"ctx access out of bounds: offset may reach "
                f"{umax}+{size} > {ctx_size}",
            )
        check_alignment(total, size, insn_index, "ctx")
    else:  # pragma: no cover - regions are exhaustive
        raise VerifierError(insn_index, f"unknown region {ptr.region}")


def _const_stack_offset(ptr: RegState, insn_offset: int, insn_index: int) -> int:
    """Stack state tracking requires a constant slot address."""
    total = ptr.offset.add(ScalarValue.const(insn_offset))
    if not total.is_const():
        # Variable-offset stack writes poison precision; the classic
        # verifier rejects variable writes outright. We do the same.
        raise VerifierError(
            insn_index, "variable-offset stack write/read of tracked slot"
        )
    value = total.const_value()
    # Interpret as signed (offsets are negative).
    return value - (1 << 64) if value >= (1 << 63) else value


def store_stack(
    state: AbstractState,
    ptr: RegState,
    insn_offset: int,
    size: int,
    value: RegState,
    insn_index: int,
) -> None:
    """Update stack-slot tracking for a store (bounds already checked)."""
    off = _const_stack_offset(ptr, insn_offset, insn_index)
    slot = (off // 8) * 8  # base of the containing 8-byte slot
    if size == 8 and off % 8 == 0:
        state.set_slot(slot, StackSlot.spill(value))
        return
    if value.is_ptr():
        raise VerifierError(
            insn_index, "cannot spill pointer with partial-width store"
        )
    # Partial writes degrade every touched slot to MISC.
    first = (off // 8) * 8
    last = ((off + size - 1) // 8) * 8
    misc = StackSlot.misc()
    for s in range(first, last + 8, 8):
        state.set_slot(s, misc)


def load_stack(
    state: AbstractState,
    ptr: RegState,
    insn_offset: int,
    size: int,
    insn_index: int,
) -> RegState:
    """Read back a tracked stack slot (bounds already checked).

    Constant offsets read precisely (spilled registers come back exactly).
    Variable offsets are permitted — this is where tnum alignment shines —
    provided every slot the window may touch is initialized and holds no
    pointer; the result is then an unknown scalar (kernel
    ``check_stack_range_initialized`` behaviour).
    """
    total = ptr.offset.add(ScalarValue.const(insn_offset))
    if total.is_const():
        value = total.const_value()
        off = value - (1 << 64) if value >= (1 << 63) else value
        slot = (off // 8) * 8
        entry = state.slot_for(slot)
        if entry.kind == StackSlot.UNWRITTEN:
            raise VerifierError(
                insn_index, f"read of uninitialized stack at {off}"
            )
        if entry.kind == StackSlot.SPILL and size == 8 and off % 8 == 0:
            return entry.value
        if entry.kind == StackSlot.SPILL and entry.value.is_ptr():
            raise VerifierError(insn_index, "partial read of spilled pointer")
        return RegState.unknown()

    smin = total.interval.smin()
    smax = total.interval.smax()
    first = (smin // 8) * 8
    last = ((smax + size - 1) // 8) * 8
    for slot in range(first, last + 8, 8):
        entry = state.slot_for(slot)
        if entry.kind == StackSlot.UNWRITTEN:
            raise VerifierError(
                insn_index,
                f"variable-offset read may touch uninitialized stack at {slot}",
            )
        if entry.kind == StackSlot.SPILL and entry.value.is_ptr():
            raise VerifierError(
                insn_index,
                f"variable-offset read may leak spilled pointer at {slot}",
            )
    return RegState.unknown()
