"""Abstract machine state for the BPF verifier.

A register is one of:

* ``NOT_INIT`` — never written; any read is rejected;
* ``SCALAR`` — a :class:`~repro.domains.product.ScalarValue` (tnum ×
  interval reduced product), the state where the paper's abstract
  operators do their work;
* ``PTR`` — a pointer into a memory region (stack frame or context) with
  an abstract scalar byte offset.

The stack is tracked in 8-byte slots, kernel-style: a slot is unwritten,
holds a spilled register (pointer or scalar preserved exactly), or holds
``MISC`` bytes (partially/odd-size written data, readable as an unknown
scalar).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bpf import isa
from repro.domains.product import ScalarValue

__all__ = ["RegKind", "Region", "RegState", "StackSlot", "AbstractState"]


class RegKind(enum.Enum):
    NOT_INIT = "not_init"
    SCALAR = "scalar"
    PTR = "ptr"


class Region(enum.Enum):
    STACK = "stack"
    CTX = "ctx"


@dataclass(frozen=True)
class RegState:
    """One abstract register."""

    kind: RegKind
    scalar: Optional[ScalarValue] = None   # for SCALAR
    region: Optional[Region] = None        # for PTR
    offset: Optional[ScalarValue] = None   # for PTR: byte offset into region

    # -- constructors --------------------------------------------------------

    @classmethod
    def not_init(cls) -> "RegState":
        return cls(RegKind.NOT_INIT)

    @classmethod
    def from_scalar(cls, value: ScalarValue) -> "RegState":
        return cls(RegKind.SCALAR, scalar=value)

    @classmethod
    def const(cls, value: int) -> "RegState":
        return cls.from_scalar(ScalarValue.const(value))

    @classmethod
    def unknown(cls) -> "RegState":
        return cls.from_scalar(ScalarValue.top())

    @classmethod
    def pointer(cls, region: Region, offset: ScalarValue) -> "RegState":
        return cls(RegKind.PTR, region=region, offset=offset)

    @classmethod
    def stack_ptr(cls, offset: int = 0) -> "RegState":
        """Pointer to the frame top plus ``offset`` (r10 has offset 0)."""
        return cls.pointer(Region.STACK, ScalarValue.const(offset))

    @classmethod
    def ctx_ptr(cls) -> "RegState":
        return cls.pointer(Region.CTX, ScalarValue.const(0))

    # -- predicates ------------------------------------------------------------

    def is_init(self) -> bool:
        return self.kind != RegKind.NOT_INIT

    def is_scalar(self) -> bool:
        return self.kind == RegKind.SCALAR

    def is_ptr(self) -> bool:
        return self.kind == RegKind.PTR

    # -- lattice ------------------------------------------------------------------

    def join(self, other: "RegState") -> "RegState":
        if self.kind != other.kind:
            # Mixed kinds (scalar vs pointer, or either vs NOT_INIT) cannot
            # be used safely after the merge; NOT_INIT rejects any use.
            return RegState.not_init()
        if self.kind == RegKind.NOT_INIT:
            return self
        if self.kind == RegKind.SCALAR:
            return RegState.from_scalar(self.scalar.join(other.scalar))
        if self.region != other.region:
            # Pointers into different regions cannot be merged safely.
            return RegState.not_init()
        return RegState.pointer(self.region, self.offset.join(other.offset))

    def leq(self, other: "RegState") -> bool:
        if other.kind == RegKind.NOT_INIT:
            return True  # NOT_INIT is ⊤ here: it forbids all uses
        if self.kind != other.kind:
            return False
        if self.kind == RegKind.SCALAR:
            return self.scalar.leq(other.scalar)
        return self.region == other.region and self.offset.leq(other.offset)

    def __str__(self) -> str:
        if self.kind == RegKind.NOT_INIT:
            return "?"
        if self.kind == RegKind.SCALAR:
            return f"scalar({self.scalar})"
        return f"{self.region.value}+({self.offset})"


class StackSlot:
    """Kernel stack-slot types."""

    UNWRITTEN = "unwritten"
    SPILL = "spill"
    MISC = "misc"

    def __init__(self, kind: str, value: Optional[RegState] = None) -> None:
        self.kind = kind
        self.value = value

    @classmethod
    def unwritten(cls) -> "StackSlot":
        return cls(cls.UNWRITTEN)

    @classmethod
    def spill(cls, value: RegState) -> "StackSlot":
        return cls(cls.SPILL, value)

    @classmethod
    def misc(cls) -> "StackSlot":
        return cls(cls.MISC)

    def join(self, other: "StackSlot") -> "StackSlot":
        if self.kind == other.kind == StackSlot.SPILL:
            return StackSlot.spill(self.value.join(other.value))
        if self.kind == other.kind:
            return StackSlot(self.kind)
        if StackSlot.UNWRITTEN in (self.kind, other.kind):
            return StackSlot.unwritten()
        return StackSlot.misc()

    def leq(self, other: "StackSlot") -> bool:
        if other.kind == StackSlot.UNWRITTEN:
            return True
        if self.kind == StackSlot.SPILL and other.kind == StackSlot.SPILL:
            return self.value.leq(other.value)
        if other.kind == StackSlot.MISC:
            return self.kind in (StackSlot.MISC, StackSlot.SPILL)
        return self.kind == other.kind

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackSlot):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __str__(self) -> str:
        if self.kind == StackSlot.SPILL:
            return f"spill({self.value})"
        return self.kind


@dataclass
class AbstractState:
    """Registers plus stack: the verifier's per-program-point state."""

    regs: List[RegState] = field(
        default_factory=lambda: [RegState.not_init()] * isa.MAX_REG
    )
    stack: Dict[int, StackSlot] = field(default_factory=dict)
    # Slot keys are negative frame offsets aligned to 8: -8, -16, ..., -512.

    @classmethod
    def entry_state(cls) -> "AbstractState":
        """The state at program entry: r1 = ctx pointer, r10 = frame ptr."""
        state = cls()
        state.regs[1] = RegState.ctx_ptr()
        state.regs[isa.FP_REG] = RegState.stack_ptr()
        return state

    def copy(self) -> "AbstractState":
        return AbstractState(list(self.regs), dict(self.stack))

    def slot_for(self, offset: int) -> StackSlot:
        return self.stack.get(offset, StackSlot.unwritten())

    def join(self, other: "AbstractState") -> "AbstractState":
        regs = [a.join(b) for a, b in zip(self.regs, other.regs)]
        stack: Dict[int, StackSlot] = {}
        for key in set(self.stack) | set(other.stack):
            merged = self.slot_for(key).join(other.slot_for(key))
            if merged.kind != StackSlot.UNWRITTEN:
                stack[key] = merged
        return AbstractState(regs, stack)

    def leq(self, other: "AbstractState") -> bool:
        if not all(a.leq(b) for a, b in zip(self.regs, other.regs)):
            return False
        return all(
            self.slot_for(k).leq(other.slot_for(k))
            for k in set(self.stack) | set(other.stack)
        )

    def __str__(self) -> str:
        regs = ", ".join(
            f"r{i}={r}" for i, r in enumerate(self.regs) if r.is_init()
        )
        stack = ", ".join(f"[{k}]={v}" for k, v in sorted(self.stack.items()))
        return f"{{{regs}}} stack{{{stack}}}"
