"""Abstract machine state for the BPF verifier.

A register is one of:

* ``NOT_INIT`` — never written; any read is rejected;
* ``SCALAR`` — a :class:`~repro.domains.product.ScalarValue` (tnum ×
  interval reduced product), the state where the paper's abstract
  operators do their work;
* ``PTR`` — a pointer into a memory region (stack frame or context) with
  an abstract scalar byte offset.

The stack is tracked in 8-byte slots, kernel-style: a slot is unwritten,
holds a spilled register (pointer or scalar preserved exactly), or holds
``MISC`` bytes (partially/odd-size written data, readable as an unknown
scalar).

Performance notes (the verifier is the fuzz pipeline's hot loop):

* :class:`RegState` and :class:`StackSlot` are immutable ``__slots__``
  classes with interned singletons for the stateless values
  (``NOT_INIT``, unknown scalar, ``UNWRITTEN``, ``MISC``) — joins and
  transfers compare them by identity before falling back to the lattice.
* :class:`AbstractState` is *copy-on-write*: :meth:`AbstractState.copy`
  shares the register list and stack map with the original and only
  clones the written side on the first mutation (``set_reg`` /
  ``set_slot``).  Block entry copies and branch splitting are therefore
  O(1) instead of O(registers + stack).
* Branch refinement that proves a register empty marks the whole state
  with an ``infeasible`` flag, so dead-edge pruning is one attribute
  read instead of a scan over every register.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.bpf import isa
from repro.domains.product import ScalarValue

__all__ = ["RegKind", "Region", "RegState", "StackSlot", "AbstractState"]


class RegKind(enum.Enum):
    NOT_INIT = "not_init"
    SCALAR = "scalar"
    PTR = "ptr"


class Region(enum.Enum):
    STACK = "stack"
    CTX = "ctx"


class RegState:
    """One abstract register (immutable)."""

    __slots__ = ("kind", "scalar", "region", "offset")

    kind: RegKind
    scalar: Optional[ScalarValue]    # for SCALAR
    region: Optional[Region]         # for PTR
    offset: Optional[ScalarValue]    # for PTR: byte offset into region

    def __init__(
        self,
        kind: RegKind,
        scalar: Optional[ScalarValue] = None,
        region: Optional[Region] = None,
        offset: Optional[ScalarValue] = None,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "scalar", scalar)
        object.__setattr__(self, "region", region)
        object.__setattr__(self, "offset", offset)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RegState instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegState):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.scalar == other.scalar
            and self.region == other.region
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.scalar, self.region, self.offset))

    def __repr__(self) -> str:
        return (
            f"RegState(kind={self.kind!r}, scalar={self.scalar!r}, "
            f"region={self.region!r}, offset={self.offset!r})"
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def not_init(cls) -> "RegState":
        return _NOT_INIT

    @classmethod
    def from_scalar(cls, value: ScalarValue) -> "RegState":
        return cls(RegKind.SCALAR, scalar=value)

    @classmethod
    def const(cls, value: int) -> "RegState":
        if 0 <= value < _CONST_REG_MAX:
            cached = _CONST_REGS.get(value)
            if cached is None:
                cached = _CONST_REGS[value] = cls.from_scalar(
                    ScalarValue.const(value)
                )
            return cached
        return cls.from_scalar(ScalarValue.const(value))

    @classmethod
    def unknown(cls) -> "RegState":
        return _UNKNOWN

    @classmethod
    def pointer(cls, region: Region, offset: ScalarValue) -> "RegState":
        return cls(RegKind.PTR, region=region, offset=offset)

    @classmethod
    def stack_ptr(cls, offset: int = 0) -> "RegState":
        """Pointer to the frame top plus ``offset`` (r10 has offset 0)."""
        return cls.pointer(Region.STACK, ScalarValue.const(offset))

    @classmethod
    def ctx_ptr(cls) -> "RegState":
        return cls.pointer(Region.CTX, ScalarValue.const(0))

    # -- predicates ------------------------------------------------------------

    def is_init(self) -> bool:
        return self.kind is not RegKind.NOT_INIT

    def is_scalar(self) -> bool:
        return self.kind is RegKind.SCALAR

    def is_ptr(self) -> bool:
        return self.kind is RegKind.PTR

    # -- lattice ------------------------------------------------------------------

    def join(self, other: "RegState") -> "RegState":
        if self is other:
            return self
        if self.kind is not other.kind:
            # Mixed kinds (scalar vs pointer, or either vs NOT_INIT) cannot
            # be used safely after the merge; NOT_INIT rejects any use.
            return _NOT_INIT
        if self.kind is RegKind.NOT_INIT:
            return self
        if self.kind is RegKind.SCALAR:
            return RegState.from_scalar(self.scalar.join(other.scalar))
        if self.region is not other.region:
            # Pointers into different regions cannot be merged safely.
            return _NOT_INIT
        return RegState.pointer(self.region, self.offset.join(other.offset))

    def leq(self, other: "RegState") -> bool:
        if self is other:
            return True
        if other.kind is RegKind.NOT_INIT:
            return True  # NOT_INIT is ⊤ here: it forbids all uses
        if self.kind is not other.kind:
            return False
        if self.kind is RegKind.SCALAR:
            return self.scalar.leq(other.scalar)
        return self.region is other.region and self.offset.leq(other.offset)

    def __str__(self) -> str:
        if self.kind is RegKind.NOT_INIT:
            return "?"
        if self.kind is RegKind.SCALAR:
            return f"scalar({self.scalar})"
        return f"{self.region.value}+({self.offset})"


#: Interned stateless registers — every clobber and every mixed-kind join
#: produces one of these, so identity checks catch them everywhere.
_NOT_INIT = RegState(RegKind.NOT_INIT)
_UNKNOWN = RegState(RegKind.SCALAR, scalar=ScalarValue.top())
#: Interned small-constant registers (immediates dominate fuzz programs).
_CONST_REGS: Dict[int, RegState] = {}
_CONST_REG_MAX = 1024


class StackSlot:
    """Kernel stack-slot types (immutable; ``UNWRITTEN``/``MISC`` interned)."""

    UNWRITTEN = "unwritten"
    SPILL = "spill"
    MISC = "misc"

    __slots__ = ("kind", "value")

    kind: str
    value: Optional[RegState]

    def __init__(self, kind: str, value: Optional[RegState] = None) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StackSlot instances are immutable")

    @classmethod
    def unwritten(cls) -> "StackSlot":
        return _UNWRITTEN_SLOT

    @classmethod
    def spill(cls, value: RegState) -> "StackSlot":
        return cls(cls.SPILL, value)

    @classmethod
    def misc(cls) -> "StackSlot":
        return _MISC_SLOT

    def join(self, other: "StackSlot") -> "StackSlot":
        if self is other:
            return self
        if self.kind == other.kind == StackSlot.SPILL:
            return StackSlot.spill(self.value.join(other.value))
        if self.kind == other.kind:
            return _INTERNED_SLOTS[self.kind]
        if StackSlot.UNWRITTEN in (self.kind, other.kind):
            return _UNWRITTEN_SLOT
        return _MISC_SLOT

    def leq(self, other: "StackSlot") -> bool:
        if self is other:
            return True
        if other.kind == StackSlot.UNWRITTEN:
            return True
        if self.kind == StackSlot.SPILL and other.kind == StackSlot.SPILL:
            return self.value.leq(other.value)
        if other.kind == StackSlot.MISC:
            return self.kind in (StackSlot.MISC, StackSlot.SPILL)
        return self.kind == other.kind

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackSlot):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.kind, self.value))

    def __repr__(self) -> str:
        return f"StackSlot({self.kind!r}, {self.value!r})"

    def __str__(self) -> str:
        if self.kind == StackSlot.SPILL:
            return f"spill({self.value})"
        return self.kind


_UNWRITTEN_SLOT = StackSlot(StackSlot.UNWRITTEN)
_MISC_SLOT = StackSlot(StackSlot.MISC)
_INTERNED_SLOTS = {
    StackSlot.UNWRITTEN: _UNWRITTEN_SLOT,
    StackSlot.MISC: _MISC_SLOT,
}


class AbstractState:
    """Registers plus stack: the verifier's per-program-point state.

    Copy-on-write: :meth:`copy` shares the register list and stack map
    between the original and the copy; the first mutation on either side
    (through :meth:`set_reg` / :meth:`set_slot` / the ``regs`` /
    ``stack`` properties) clones the shared container.  All mutation —
    including external callers' — must therefore go through those
    accessors; the properties materialize ownership precisely so legacy
    ``state.regs[i] = ...`` call sites stay safe.
    """

    __slots__ = ("_regs", "_stack", "_regs_shared", "_stack_shared", "infeasible")

    def __init__(
        self,
        regs: Optional[List[RegState]] = None,
        stack: Optional[Dict[int, StackSlot]] = None,
    ) -> None:
        self._regs = regs if regs is not None else [_NOT_INIT] * isa.MAX_REG
        # Slot keys are negative frame offsets aligned to 8: -8, ..., -512.
        self._stack = stack if stack is not None else {}
        self._regs_shared = False
        self._stack_shared = False
        #: set when branch refinement proves a register empty — the state
        #: then describes no execution and its edge must be pruned.
        self.infeasible = False

    # -- containers ----------------------------------------------------------

    @property
    def regs(self) -> List[RegState]:
        """The register list, unshared: callers may mutate it in place."""
        if self._regs_shared:
            self._regs = list(self._regs)
            self._regs_shared = False
        return self._regs

    @property
    def stack(self) -> Dict[int, StackSlot]:
        """The stack map, unshared: callers may mutate it in place."""
        if self._stack_shared:
            self._stack = dict(self._stack)
            self._stack_shared = False
        return self._stack

    def get_reg(self, index: int) -> RegState:
        return self._regs[index]

    def set_reg(self, index: int, value: RegState) -> None:
        regs = self._regs
        if self._regs_shared:
            regs = self._regs = list(regs)
            self._regs_shared = False
        regs[index] = value

    def slot_for(self, offset: int) -> StackSlot:
        return self._stack.get(offset, _UNWRITTEN_SLOT)

    def set_slot(self, offset: int, slot: StackSlot) -> None:
        stack = self._stack
        if self._stack_shared:
            stack = self._stack = dict(stack)
            self._stack_shared = False
        stack[offset] = slot

    # -- construction / copying ----------------------------------------------

    @classmethod
    def entry_state(cls) -> "AbstractState":
        """The state at program entry: r1 = ctx pointer, r10 = frame ptr."""
        state = cls()
        state._regs[1] = RegState.ctx_ptr()
        state._regs[isa.FP_REG] = RegState.stack_ptr()
        return state

    def copy(self) -> "AbstractState":
        new = AbstractState.__new__(AbstractState)
        new._regs = self._regs
        new._stack = self._stack
        new._regs_shared = True
        new._stack_shared = True
        new.infeasible = self.infeasible
        self._regs_shared = True
        self._stack_shared = True
        return new

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "AbstractState") -> "AbstractState":
        if self is other or (
            self._regs is other._regs and self._stack is other._stack
        ):
            return self.copy()
        regs = [a.join(b) for a, b in zip(self._regs, other._regs)]
        stack: Dict[int, StackSlot] = {}
        for key in set(self._stack) | set(other._stack):
            merged = self.slot_for(key).join(other.slot_for(key))
            if merged.kind != StackSlot.UNWRITTEN:
                stack[key] = merged
        return AbstractState(regs, stack)

    def leq(self, other: "AbstractState") -> bool:
        if self is other or (
            self._regs is other._regs and self._stack is other._stack
        ):
            return True
        if not all(a.leq(b) for a, b in zip(self._regs, other._regs)):
            return False
        if self._stack is other._stack:
            return True
        return all(
            self.slot_for(k).leq(other.slot_for(k))
            for k in set(self._stack) | set(other._stack)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractState):
            return NotImplemented
        return self._regs == other._regs and self._stack == other._stack

    def __str__(self) -> str:
        regs = ", ".join(
            f"r{i}={r}" for i, r in enumerate(self._regs) if r.is_init()
        )
        stack = ", ".join(f"[{k}]={v}" for k, v in sorted(self._stack.items()))
        return f"{{{regs}}} stack{{{stack}}}"
