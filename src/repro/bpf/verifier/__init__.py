"""Miniature BPF verifier: abstract interpretation with tnum × interval.

The paper's tnum operators are one component of the Linux BPF analyzer;
this subpackage rebuilds enough of that analyzer — abstract register
states, stack tracking, CFG traversal, branch refinement, memory safety
checks — that the tnum domain can be exercised in its real context.
"""

from .absint import Verifier, verify_program
from .errors import VerificationResult, VerifierError
from .paths import PathSensitiveVerifier
from .state import AbstractState, RegKind, RegState, Region, StackSlot

__all__ = [
    "Verifier",
    "PathSensitiveVerifier",
    "verify_program",
    "VerificationResult",
    "VerifierError",
    "AbstractState",
    "RegState",
    "RegKind",
    "Region",
    "StackSlot",
]
