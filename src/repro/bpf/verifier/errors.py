"""Verifier rejection reasons.

Mirrors the Linux verifier's error taxonomy at the granularity our subset
needs: every rejection carries the instruction index and a human-readable
reason, so tests can assert on *why* a program was rejected, not just that
it was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["VerifierError", "VerificationResult"]


class VerifierError(Exception):
    """A safety violation that makes the program unloadable.

    ``structural`` marks whole-program rejections (bad CFG: loops,
    unreachable code, fall-through) whose ``insn_index`` is synthetic
    and must not be attributed to a specific instruction.

    ``timeout`` marks watchdog expiries: the walk exceeded its wall-clock
    deadline and was stopped, so the rejection says nothing about the
    *program* — consumers must treat it as "unknown", never cache it as
    a verdict, and surface it as a timeout (the service maps it to 504).
    """

    def __init__(
        self,
        insn_index: int,
        reason: str,
        structural: bool = False,
        timeout: bool = False,
    ) -> None:
        super().__init__(f"insn {insn_index}: {reason}")
        self.insn_index = insn_index
        self.reason = reason
        self.structural = structural
        self.timeout = timeout


@dataclass
class VerificationResult:
    """Outcome of verifying one program."""

    ok: bool
    errors: List[VerifierError] = field(default_factory=list)
    insns_processed: int = 0

    def __bool__(self) -> bool:
        return self.ok

    @property
    def timed_out(self) -> bool:
        """The walk hit its deadline — this is *not* a verdict."""
        return any(e.timeout for e in self.errors)

    def error_messages(self) -> List[str]:
        return [str(e) for e in self.errors]
