"""Verifier rejection reasons.

Mirrors the Linux verifier's error taxonomy at the granularity our subset
needs: every rejection carries the instruction index and a human-readable
reason, so tests can assert on *why* a program was rejected, not just that
it was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["VerifierError", "VerificationResult"]


class VerifierError(Exception):
    """A safety violation that makes the program unloadable.

    ``structural`` marks whole-program rejections (bad CFG: loops,
    unreachable code, fall-through) whose ``insn_index`` is synthetic
    and must not be attributed to a specific instruction.
    """

    def __init__(
        self, insn_index: int, reason: str, structural: bool = False
    ) -> None:
        super().__init__(f"insn {insn_index}: {reason}")
        self.insn_index = insn_index
        self.reason = reason
        self.structural = structural


@dataclass
class VerificationResult:
    """Outcome of verifying one program."""

    ok: bool
    errors: List[VerifierError] = field(default_factory=list)
    insns_processed: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def error_messages(self) -> List[str]:
        return [str(e) for e in self.errors]
