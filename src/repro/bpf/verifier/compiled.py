"""Compile-once abstract verifier: one specialized closure per instruction.

The reference walk (:meth:`Verifier.verify_reference`) re-dispatches every
instruction on every visit: ``cls()`` / ``BPF_OP()`` / ``uses_imm()``
classification, immediate masking, ``transfer_label`` string building,
refinement selection through an op dict.  None of that depends on the
abstract state, so — mirroring the concrete side's decode-once pipeline
(:mod:`repro.bpf.compiled`) — this module hoists all of it into a single
compile pass: each instruction becomes an *abstract-step closure*
``fn(state, note) -> None`` (or, for conditional jumps, a branch closure
``fn(state, note) -> (fall, taken)``) with its operands resolved, its
immediate pre-masked (and pre-truncated to the 32-bit subregister view
where needed), its telemetry label precomputed, and its refinement pair
builder pre-selected per jump op.  The verifier's hot loop then reduces
to one closure call per instruction.

The compiled form also freezes the CFG and its reverse post-order, so
re-verifying a cached program (shrinker predicates, campaign replays)
skips CFG construction entirely.

Semantics are byte-for-byte those of the reference walk: identical
verdicts, error indexes/messages, ``states_at`` maps, and ``on_transfer``
streams — including *lazy* errors: an unsupported opcode on a dead path
compiles to a closure that raises only when visited.  The differential
suite (``tests/bpf/test_verifier_compiled.py``) holds the two engines
equal over an opcode × width sweep and generated programs; byte-equality
is helped by construction: the closures call the same module-level
transfer primitives (:func:`repro.bpf.verifier.absint._subreg`,
``_scalar_alu``, ``_pointer_alu``, the ``_REFINERS`` table, ...) the
reference walk uses.

Monkeypatch transparency: anything tests patch at runtime
(``absint.check_mem_access``, the tnum operators behind the
``ScalarValue`` methods) is resolved through its module namespace at
*call* time, never captured at compile time.

Observability: when :mod:`repro.obs` is enabled at compile time, every
step/branch closure is wrapped in a per-operator timing shim that
accumulates wall time into the process-default metrics registry (keyed
by :func:`step_label`).  The wrapping happens *here*, at compile time,
never in the walk — with obs disabled (the default) the compiled
program contains exactly the closures above, byte-for-byte, and the
walk pays nothing.  Cached compiled programs are keyed on
``obs.compile_tag()`` (see :meth:`repro.bpf.program.Program.
compiled_verifier`), so toggling obs transparently recompiles.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro import obs as _obs
from repro.bpf import isa
from repro.bpf.cfg import build_cfg
from repro.bpf.insn import Instruction
from repro.domains.product import ScalarValue

from . import absint as _absint
from .absint import (
    U64,
    _MIRRORED_OPS,
    _REFINERS,
    _SCALAR_BINOP,
    _apply_refinement,
    _pointer_alu,
    _shift_alu,
    _shift_method,
    _subreg,
    transfer_label,
)
from .errors import VerifierError
from .state import AbstractState, RegKind, RegState, Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bpf.program import Program

__all__ = [
    "CompiledVerifierProgram", "CompiledBlock", "compile_verifier",
    "step_label",
]

#: Telemetry hook threaded through every closure (``None`` disables it).
NoteFn = Optional[Callable[[int, str, ScalarValue], None]]
#: A compiled non-terminator instruction: applies one abstract transfer.
#: ``idx`` (the instruction index) is a *call-time* argument, used only
#: for error reporting and telemetry — keeping it out of the closure
#: cells makes every closure position-independent, so compiled steps are
#: shared across programs via the instruction-keyed cache below.
StepFn = Callable[[AbstractState, NoteFn, int], None]
#: A compiled conditional jump: returns the (fall-through, taken) states.
BranchFn = Callable[[AbstractState, NoteFn, int], Tuple[AbstractState, AbstractState]]

_SCALAR = RegKind.SCALAR
_PTR = RegKind.PTR
_NOT_INIT_REG = RegState.not_init()
_UNKNOWN_REG = RegState.unknown()
_FP = isa.FP_REG
_S31_MAX = 0x7FFF_FFFF


class CompiledBlock:
    """One basic block: body closures plus the pre-resolved terminator."""

    __slots__ = (
        "block_id", "indices", "steps", "term_idx", "branch", "is_exit",
        "successors",
    )

    def __init__(
        self,
        block_id: int,
        indices: Sequence[int],
        steps: Sequence[StepFn],
        term_idx: int,
        branch: Optional[BranchFn],
        is_exit: bool,
        successors: Tuple[int, ...],
    ) -> None:
        self.block_id = block_id
        #: instruction indexes of ``steps`` (for states_at recording).
        self.indices = indices
        #: body closures — every instruction except a cond-jump terminator.
        self.steps = steps
        #: index of the block's last instruction (branch/exit reporting).
        self.term_idx = term_idx
        self.branch = branch
        self.is_exit = is_exit
        self.successors = successors


class CompiledVerifierProgram:
    """Blocks in reverse post-order, each instruction compiled once."""

    __slots__ = ("blocks", "ctx_size")

    def __init__(self, blocks: List[CompiledBlock], ctx_size: int) -> None:
        self.blocks = blocks
        self.ctx_size = ctx_size

    def __len__(self) -> int:
        return sum(len(b.steps) + (1 if b.branch is not None else 0)
                   for b in self.blocks)


# -- helpers -------------------------------------------------------------------


def step_label(insn: Instruction) -> str:
    """Operator label an instruction's verifier work is charged to.

    The transfer-function name where one exists (``mul64``,
    ``refine_jgt64``, ...), else a structural class (``load``,
    ``store``, ``lddw``, ``mov64``, a jump mnemonic, ``exit``).  Shared
    by the campaign's rejection attribution and the obs per-operator
    timing, so "which operator costs time" and "which operator loses
    precision" rank over the same label space.
    """
    label = transfer_label(insn)
    if label is not None:
        return label
    if insn.is_lddw():
        return "lddw"
    cls = insn.cls()
    if cls == isa.CLS_LDX:
        return "load"
    if cls in (isa.CLS_ST, isa.CLS_STX):
        return "store"
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        return "mov64"
    if insn.is_exit():
        return "exit"
    if insn.is_jump():
        return isa.JMP_OP_NAMES.get(isa.BPF_OP(insn.opcode), "jump")
    return "other"


def _timed_step(step: StepFn, label: str) -> StepFn:
    """Per-operator timing shim (compiled in only when obs is enabled).

    The registry is resolved through the obs module at *call* time, so
    worker-scoped registries (merge-on-return) see the samples.
    """
    clock = time.perf_counter_ns
    record = _obs.record_op_time

    def timed(state: AbstractState, note: NoteFn, idx: int) -> None:
        t0 = clock()
        try:
            step(state, note, idx)
        finally:
            record("verifier", label, clock() - t0)

    return timed


def _timed_branch(branch: BranchFn, label: str) -> BranchFn:
    clock = time.perf_counter_ns
    record = _obs.record_op_time

    def timed(
        state: AbstractState, note: NoteFn, idx: int
    ) -> Tuple[AbstractState, AbstractState]:
        t0 = clock()
        try:
            return branch(state, note, idx)
        finally:
            record("verifier", label, clock() - t0)

    return timed


def _uninit(idx: int, reg: int) -> VerifierError:
    return VerifierError(idx, f"read of uninitialized register r{reg}")


def _raiser(message: str) -> StepFn:
    """A closure raising :class:`VerifierError` only when visited."""

    def step(state: AbstractState, note: NoteFn, idx: int) -> None:
        raise VerifierError(idx, message)

    return step


def _step_noop(state: AbstractState, note: NoteFn, idx: int) -> None:
    """Shared no-op: ``exit`` (checked at propagate) and ``ja``."""


def _step_call(state: AbstractState, note: NoteFn, idx: int) -> None:
    """Helper call (shared): clobber caller-saved regs, r0 unknown."""
    regs = state.regs
    regs[0] = _UNKNOWN_REG
    regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = _NOT_INIT_REG


# -- ALU -----------------------------------------------------------------------


def _compile_mov(insn: Instruction, is64: bool) -> StepFn:
    dst_i = insn.dst
    if insn.uses_imm():
        value = RegState.const(insn.imm & U64)
        if not is64:
            value = RegState.from_scalar(_subreg(value.scalar))
        if dst_i == _FP:
            return _raiser("write to read-only frame pointer r10")
        if is64:  # mov64 has no transfer label

            def step(state: AbstractState, note: NoteFn, idx: int) -> None:
                state.set_reg(dst_i, value)

        else:
            label = transfer_label(insn)
            scalar = value.scalar

            def step(state: AbstractState, note: NoteFn, idx: int) -> None:
                state.set_reg(dst_i, value)
                if note is not None:
                    note(idx, label, scalar)

        return step

    src_i = insn.src
    if is64:
        dst_is_fp = dst_i == _FP

        def step(state: AbstractState, note: NoteFn, idx: int) -> None:
            src = state._regs[src_i]
            if src.kind is RegKind.NOT_INIT:
                raise _uninit(idx, src_i)
            if dst_is_fp:
                raise VerifierError(idx, "write to read-only frame pointer r10")
            state.set_reg(dst_i, src)

    else:
        label = transfer_label(insn)
        dst_is_fp = dst_i == _FP

        def step(state: AbstractState, note: NoteFn, idx: int) -> None:
            src = state._regs[src_i]
            if src.kind is RegKind.NOT_INIT:
                raise _uninit(idx, src_i)
            if src.kind is _PTR:
                raise VerifierError(idx, "32-bit operation on pointer")
            reg = RegState.from_scalar(_subreg(src.scalar))
            if dst_is_fp:
                raise VerifierError(idx, "write to read-only frame pointer r10")
            state.set_reg(dst_i, reg)
            if note is not None:
                note(idx, label, reg.scalar)

    return step


def _compile_neg(insn: Instruction, is64: bool) -> StepFn:
    dst_i = insn.dst
    label = transfer_label(insn)
    dst_is_fp = dst_i == _FP

    def step(state: AbstractState, note: NoteFn, idx: int) -> None:
        dst = state._regs[dst_i]
        if dst.kind is RegKind.NOT_INIT:
            raise _uninit(idx, dst_i)
        if dst.kind is _PTR:
            raise VerifierError(idx, "arithmetic negation of pointer")
        scalar = dst.scalar.neg()
        if not is64:
            scalar = _subreg(scalar)
        if dst_is_fp:
            raise VerifierError(idx, "write to read-only frame pointer r10")
        state.set_reg(dst_i, RegState.from_scalar(scalar))
        if note is not None and label is not None:
            note(idx, label, scalar)

    return step


def _compile_alu(insn: Instruction, is64: bool) -> StepFn:
    op = isa.BPF_OP(insn.opcode)
    if op == isa.ALU_MOV:
        return _compile_mov(insn, is64)
    if op == isa.ALU_NEG:
        return _compile_neg(insn, is64)

    dst_i = insn.dst
    dst_is_fp = dst_i == _FP
    label = transfer_label(insn)
    use_imm = insn.uses_imm()
    if use_imm:
        src_i: Optional[int] = None
        imm_reg: Optional[RegState] = RegState.const(insn.imm & U64)
        # Operand truncation for 32-bit ops, hoisted to compile time.
        imm_scalar = imm_reg.scalar if is64 else _subreg(imm_reg.scalar)
    else:
        src_i = insn.src
        imm_reg = None
        imm_scalar = None

    binop = _SCALAR_BINOP.get(op)
    is_shift = op in (isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH)
    width = 64 if is64 else 32
    if is_shift:
        method = _shift_method(op, is64)
        const_count = (
            imm_scalar.const_value() & (width - 1)
            if imm_scalar is not None
            else None
        )
    else:
        method = None
        const_count = None

    def step(state: AbstractState, note: NoteFn, idx: int) -> None:
        regs = state._regs
        dst = regs[dst_i]
        if dst.kind is RegKind.NOT_INIT:
            raise _uninit(idx, dst_i)
        if src_i is None:
            src = imm_reg
        else:
            src = regs[src_i]
            if src.kind is RegKind.NOT_INIT:
                raise _uninit(idx, src_i)

        # Pointer arithmetic (64-bit only, kernel rule).
        if dst.kind is _PTR or src.kind is _PTR:
            if not is64:
                raise VerifierError(idx, "32-bit arithmetic on pointer")
            result = _pointer_alu(state, dst_i, idx, op, dst, src)
            if note is not None and label is not None and result.kind is _SCALAR:
                note(idx, label, result.scalar)
            return

        dst_s = dst.scalar if is64 else _subreg(dst.scalar)
        src_s = imm_scalar if src_i is None else (
            src.scalar if is64 else _subreg(src.scalar)
        )
        if binop is not None:
            result = binop(dst_s, src_s)
        elif method is not None:
            if const_count is not None:
                result = (
                    ScalarValue.bottom()
                    if dst_s.is_bottom() or src_s.is_bottom()
                    else method(dst_s, const_count)
                )
            else:
                result = _shift_alu(method, width, dst_s, src_s)
        else:
            raise VerifierError(idx, f"unsupported ALU op {op:#04x}")
        if not is64:
            result = _subreg(result)
        if dst_is_fp:
            raise VerifierError(idx, "write to read-only frame pointer r10")
        state.set_reg(dst_i, RegState.from_scalar(result))
        if note is not None and label is not None:
            note(idx, label, result)

    return step


# -- memory --------------------------------------------------------------------


def _compile_load(insn: Instruction, ctx_size: int) -> StepFn:
    src_i = insn.src
    dst_i = insn.dst
    dst_is_fp = dst_i == _FP
    size = insn.size_bytes()
    off = insn.off
    ctx_value = (
        _UNKNOWN_REG
        if size == 8
        else RegState.from_scalar(ScalarValue.from_range(0, (1 << (8 * size)) - 1))
    )

    def step(state: AbstractState, note: NoteFn, idx: int) -> None:
        ptr = state._regs[src_i]
        if ptr.kind is RegKind.NOT_INIT:
            raise _uninit(idx, src_i)
        # Resolved through the module so runtime patches apply (tests
        # disable the bounds check to prove the oracle catches it).
        _absint.check_mem_access(state, ptr, off, size, idx, ctx_size)
        if ptr.region == Region.STACK:
            value = _absint.load_stack(state, ptr, off, size, idx)
        else:
            value = ctx_value
        if dst_is_fp:
            raise VerifierError(idx, "write to read-only frame pointer r10")
        state.set_reg(dst_i, value)

    return step


def _compile_store(insn: Instruction, ctx_size: int) -> StepFn:
    dst_i = insn.dst
    size = insn.size_bytes()
    off = insn.off
    if insn.cls() == isa.CLS_STX:
        src_i: Optional[int] = insn.src
        imm_value: Optional[RegState] = None
    else:
        src_i = None
        imm_value = RegState.const(insn.imm & U64)

    def step(state: AbstractState, note: NoteFn, idx: int) -> None:
        ptr = state._regs[dst_i]
        if ptr.kind is RegKind.NOT_INIT:
            raise _uninit(idx, dst_i)
        if src_i is None:
            value = imm_value
        else:
            value = state._regs[src_i]
            if value.kind is RegKind.NOT_INIT:
                raise _uninit(idx, src_i)
        _absint.check_mem_access(state, ptr, off, size, idx, ctx_size)
        if ptr.region == Region.CTX and value.kind is _PTR:
            raise VerifierError(idx, "pointer store to ctx would leak an address")
        if ptr.region == Region.STACK:
            _absint.store_stack(state, ptr, off, size, value, idx)

    return step


# -- branches ------------------------------------------------------------------


def _compile_branch(insn: Instruction) -> BranchFn:
    op = isa.BPF_OP(insn.opcode)
    dst_i = insn.dst
    is32 = insn.cls() != isa.CLS_JMP
    label = transfer_label(insn)
    refine = _REFINERS.get(op)
    if insn.uses_imm():
        src_i: Optional[int] = None
        imm_bound: Optional[int] = insn.imm & U64
        mirror = None
    else:
        src_i = insn.src
        imm_bound = None
        mirrored_op = _MIRRORED_OPS.get(op)
        mirror = _REFINERS.get(mirrored_op) if mirrored_op is not None else None

    def branch(
        state: AbstractState, note: NoteFn, idx: int
    ) -> Tuple[AbstractState, AbstractState]:
        regs = state._regs
        dst = regs[dst_i]
        if dst.kind is RegKind.NOT_INIT:
            raise _uninit(idx, dst_i)
        if src_i is None:
            src = None
            src_val = imm_bound
        else:
            src = regs[src_i]
            if src.kind is RegKind.NOT_INIT:
                raise _uninit(idx, src_i)
            src_val = (
                src.scalar.const_value()
                if src.kind is _SCALAR and src.scalar.is_const()
                else None
            )

        fall = state
        taken = state.copy()
        if is32:
            # A 32-bit compare agrees with the 64-bit one when both the
            # register and the bound provably sit in [0, 2^31); otherwise
            # skip refinement (sound).
            if not (
                dst.kind is _SCALAR
                and dst.scalar.umax() <= _S31_MAX
                and src_val is not None
                and src_val <= _S31_MAX
            ):
                return fall, taken

        if dst.kind is _SCALAR and src_val is not None:
            if refine is not None:
                taken_s, fall_s = refine(dst.scalar, src_val)
                _apply_refinement(
                    taken, fall, dst_i, taken_s, fall_s, note, idx, label
                )
        elif (
            mirror is not None
            and src is not None
            and src.kind is _SCALAR
            and dst.kind is _SCALAR
            and dst.scalar.is_const()
        ):
            # Constant on the left: refine the register operand with the
            # mirrored comparison (c < r ⇔ r > c, etc.).
            taken_s, fall_s = mirror(src.scalar, dst.scalar.const_value())
            _apply_refinement(
                taken, fall, src_i, taken_s, fall_s, note, idx, label
            )
        return fall, taken

    return branch


# -- per-instruction dispatch --------------------------------------------------


def _compile_insn(insn: Instruction, ctx_size: int) -> StepFn:
    if insn.is_exit():
        return _step_noop
    if insn.is_lddw():
        # Exact reference semantics: lddw writes without the r10 check.
        value = RegState.const(insn.imm & U64)
        dst_i = insn.dst

        def step(state: AbstractState, note: NoteFn, idx: int) -> None:
            state.set_reg(dst_i, value)

        return step
    cls = insn.cls()
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        return _compile_alu(insn, is64=(cls == isa.CLS_ALU64))
    if cls == isa.CLS_LDX:
        return _compile_load(insn, ctx_size)
    if cls in (isa.CLS_ST, isa.CLS_STX):
        return _compile_store(insn, ctx_size)
    if insn.is_jump():
        op = isa.BPF_OP(insn.opcode)
        if op == isa.JMP_JA:
            return _step_noop
        if op == isa.JMP_CALL:
            return _step_call
    return _raiser(f"unsupported opcode {insn.opcode:#04x}")


#: Cross-program closure caches.  A compiled closure depends only on the
#: instruction's encoding (plus ctx size for memory ops) — never on its
#: position — so identical instructions in *different* programs share one
#: closure.  Fuzz campaigns draw millions of instructions from a small
#: effective alphabet, which makes compilation almost free in steady
#: state.  Bounded: a full cache is dropped wholesale (refilling is
#: cheap, eviction bookkeeping is not).
_STEP_CACHE: dict = {}
_BRANCH_CACHE: dict = {}
_CACHE_LIMIT = 32768


def _step_for(insn: Instruction, ctx_size: int) -> StepFn:
    key = (insn.opcode, insn.dst, insn.src, insn.off, insn.imm, ctx_size)
    step = _STEP_CACHE.get(key)
    if step is None:
        if len(_STEP_CACHE) >= _CACHE_LIMIT:
            _STEP_CACHE.clear()
        step = _STEP_CACHE[key] = _compile_insn(insn, ctx_size)
    return step


def _branch_for(insn: Instruction) -> BranchFn:
    key = (insn.opcode, insn.dst, insn.src, insn.imm)
    branch = _BRANCH_CACHE.get(key)
    if branch is None:
        if len(_BRANCH_CACHE) >= _CACHE_LIMIT:
            _BRANCH_CACHE.clear()
        branch = _BRANCH_CACHE[key] = _compile_branch(insn)
    return branch


def compile_verifier(program: "Program", ctx_size: int) -> CompiledVerifierProgram:
    """Compile every instruction exactly once; freeze CFG + walk order.

    Raises :class:`~repro.bpf.cfg.CFGError` for structurally invalid
    programs, exactly like the reference walk's CFG construction.
    """
    cfg = build_cfg(program)
    insns = program.insns
    # Checked once per compile: with obs off the loop below builds the
    # exact closures of the uninstrumented design (the shared caches are
    # never polluted with timing shims either way).
    instrument = _obs.enabled()
    blocks: List[CompiledBlock] = []
    for block_id in cfg.reverse_post_order():
        blk = cfg.blocks[block_id]
        last = insns[blk.end]
        if last.is_cond_jump():
            body_end = blk.end - 1
            branch: Optional[BranchFn] = _branch_for(last)
            if instrument:
                branch = _timed_branch(branch, step_label(last))
            is_exit = False
        else:
            body_end = blk.end
            branch = None
            is_exit = last.is_exit()
        indices = range(blk.start, body_end + 1)
        steps = [_step_for(insns[i], ctx_size) for i in indices]
        if instrument:
            steps = [
                _timed_step(step, step_label(insns[i]))
                for step, i in zip(steps, indices)
            ]
        blocks.append(
            CompiledBlock(
                block_id, indices, steps, blk.end, branch, is_exit,
                tuple(blk.successors),
            )
        )
    return CompiledVerifierProgram(blocks, ctx_size)
