"""The abstract interpretation engine — a miniature BPF verifier.

Walks the (acyclic, fully reachable) CFG in reverse post-order, propagating
:class:`AbstractState` through every instruction with the tnum × interval
reduced product as the scalar domain.  Conditional jumps *refine* the
branched-on register in each successor state, which is how facts like
``r1 < 64`` flow into later bounds checks — the mechanism the paper's
introduction sketches with the ``x ≤ 8`` example.

Safety checks enforced (each mirrors a kernel check):

* no read of an uninitialized register or stack slot;
* pointer arithmetic limited to ``add``/``sub`` with scalars, and pointer
  difference within one region;
* every memory access in bounds and sufficiently aligned for all
  executions (tnum alignment, interval bounds);
* no pointer stores into the context (pointer-leak prevention);
* ``exit`` requires an initialized scalar r0 (no pointer leaks via r0);
* r10 (frame pointer) is read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.bpf import isa
from repro.bpf.cfg import CFGError, build_cfg
from repro.bpf.insn import Instruction
from repro.bpf.program import Program
from repro.domains.interval import Interval, to_signed
from repro.domains.product import ScalarValue
from repro.core.tnum import Tnum
from repro.core.lattice import meet as tnum_meet

from .errors import VerificationResult, VerifierError
from .memory import check_mem_access, load_stack, store_stack
from .state import AbstractState, RegState, Region

__all__ = ["Verifier", "verify_program", "transfer_label"]

U64 = (1 << 64) - 1


def transfer_label(insn: Instruction) -> Optional[str]:
    """Telemetry label for the tnum transfer an instruction applies.

    Scalar ALU instructions map to ``"<op><width>"`` (``mul64``,
    ``arsh32``, ...); conditional jumps map to ``"refine_<op><width>"``
    (the branch-refinement transfer).  Instructions that do not exercise
    a scalar transfer function — plain 64-bit moves, ``lddw``, loads,
    stores, ``ja``/``call``/``exit`` — return ``None``.  32-bit moves
    are labelled (``mov32``) because subregister truncation is itself a
    transfer the campaign wants attributed.
    """
    cls = insn.cls()
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        op = isa.BPF_OP(insn.opcode)
        width = 64 if cls == isa.CLS_ALU64 else 32
        if op == isa.ALU_MOV and width == 64:
            return None
        name = isa.ALU_OP_NAMES.get(op)
        return f"{name}{width}" if name else None
    if insn.is_cond_jump():
        op = isa.BPF_OP(insn.opcode)
        width = 64 if cls == isa.CLS_JMP else 32
        name = isa.JMP_OP_NAMES.get(op)
        return f"refine_{name}{width}" if name else None
    return None

#: Dispatch table for the plain binary scalar transfers — resolved once
#: at import instead of an if-chain per instruction (shift and mov/neg
#: ops need width-aware handling and stay in :meth:`Verifier._scalar_alu`).
_SCALAR_BINOP: Dict[int, Callable[[ScalarValue, ScalarValue], ScalarValue]] = {
    isa.ALU_ADD: ScalarValue.add,
    isa.ALU_SUB: ScalarValue.sub,
    isa.ALU_MUL: ScalarValue.mul,
    isa.ALU_AND: ScalarValue.and_,
    isa.ALU_OR: ScalarValue.or_,
    isa.ALU_XOR: ScalarValue.xor,
    isa.ALU_DIV: ScalarValue.div,
    isa.ALU_MOD: ScalarValue.mod,
}

#: Comparison mirroring for "constant <op> register" refinement:
#: ``c <op> r`` holds iff ``r <mirror(op)> c``.
_MIRRORED_OPS = {
    isa.JMP_JEQ: isa.JMP_JEQ,
    isa.JMP_JNE: isa.JMP_JNE,
    isa.JMP_JGT: isa.JMP_JLT,
    isa.JMP_JGE: isa.JMP_JLE,
    isa.JMP_JLT: isa.JMP_JGT,
    isa.JMP_JLE: isa.JMP_JGE,
    isa.JMP_JSGT: isa.JMP_JSLT,
    isa.JMP_JSGE: isa.JMP_JSLE,
    isa.JMP_JSLT: isa.JMP_JSGT,
    isa.JMP_JSLE: isa.JMP_JSGE,
}


@dataclass
class Verifier:
    """Verify one program; optionally retain per-instruction states.

    ``ctx_size`` is the size in bytes of the context object r1 points to
    at entry (kernel programs get a type-specific ctx; we use a flat
    blob).
    """

    ctx_size: int = 64
    collect_states: bool = False
    #: entry abstract state per instruction index (populated when
    #: ``collect_states`` is set) — used by differential tests.
    states_at: Dict[int, AbstractState] = field(default_factory=dict)
    #: per-operator attribution hook: called as ``(idx, label, scalar)``
    #: with the abstract result of every scalar transfer (ALU results and
    #: branch refinements, labelled per :func:`transfer_label`).  Used by
    #: the fuzz campaign's precision telemetry.
    on_transfer: Optional[Callable[[int, str, ScalarValue], None]] = None

    # -- public API -----------------------------------------------------------

    def verify(self, program: Program) -> VerificationResult:
        try:
            cfg = build_cfg(program)
        except CFGError as exc:
            err = VerifierError(0, f"bad control flow: {exc}", structural=True)
            return VerificationResult(False, [err])

        order = cfg.reverse_post_order()
        in_states: Dict[int, AbstractState] = {0: AbstractState.entry_state()}
        processed = 0
        try:
            for block_id in order:
                if block_id not in in_states:
                    continue  # no feasible path in (dead branch)
                state = in_states[block_id].copy()
                block = cfg.blocks[block_id]
                branch_states: Optional[Tuple[AbstractState, AbstractState]] = None
                for idx in range(block.start, block.end + 1):
                    insn = program.insns[idx]
                    if self.collect_states:
                        self._record(idx, state)
                    processed += 1
                    if insn.is_cond_jump() and idx == block.end:
                        branch_states = self._branch(state, insn, idx)
                    else:
                        self._transfer(state, insn, idx)
                self._propagate(cfg, block, state, branch_states, in_states)
        except VerifierError as exc:
            return VerificationResult(False, [exc], processed)
        return VerificationResult(True, [], processed)

    # -- state plumbing -----------------------------------------------------------

    def _record(self, idx: int, state: AbstractState) -> None:
        if idx in self.states_at:
            self.states_at[idx] = self.states_at[idx].join(state)
        else:
            self.states_at[idx] = state.copy()

    def _propagate(
        self,
        cfg,
        block,
        state: AbstractState,
        branch_states: Optional[Tuple[AbstractState, AbstractState]],
        in_states: Dict[int, AbstractState],
    ) -> None:
        last = cfg.program.insns[block.end]
        if last.is_exit():
            self._check_exit(state, block.end)
            return
        if branch_states is not None:
            fall, taken = branch_states
            targets = block.successors  # [fall-through, taken]
            # Refinement can prove an edge infeasible (a register refined
            # to ⊥); such edges are dead paths and must not be analyzed.
            if self._feasible(fall):
                self._merge_into(in_states, targets[0], fall)
            if self._feasible(taken):
                self._merge_into(in_states, targets[1], taken)
            return
        for succ in block.successors:
            self._merge_into(in_states, succ, state)

    @staticmethod
    def _feasible(state: AbstractState) -> bool:
        """A state with any ⊥ scalar register describes no execution."""
        return not any(
            r.is_scalar() and r.scalar.is_bottom() for r in state.regs
        )

    @staticmethod
    def _merge_into(
        in_states: Dict[int, AbstractState], block_id: int, state: AbstractState
    ) -> None:
        if block_id in in_states:
            in_states[block_id] = in_states[block_id].join(state)
        else:
            in_states[block_id] = state.copy()

    def _check_exit(self, state: AbstractState, idx: int) -> None:
        r0 = state.regs[0]
        if not r0.is_init():
            raise VerifierError(idx, "exit with uninitialized r0")
        if r0.is_ptr():
            raise VerifierError(idx, "exit would leak a pointer in r0")

    # -- instruction transfer ---------------------------------------------------------

    def _transfer(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        cls = insn.cls()
        if insn.is_exit():
            return  # checked by _propagate at block exit
        if insn.is_lddw():
            state.regs[insn.dst] = RegState.const(insn.imm & U64)
            return
        if cls in (isa.CLS_ALU, isa.CLS_ALU64):
            self._alu(state, insn, idx, is64=(cls == isa.CLS_ALU64))
            return
        if cls == isa.CLS_LDX:
            self._load(state, insn, idx)
            return
        if cls in (isa.CLS_ST, isa.CLS_STX):
            self._store(state, insn, idx)
            return
        if insn.is_jump():
            op = isa.BPF_OP(insn.opcode)
            if op == isa.JMP_JA:
                return
            if op == isa.JMP_CALL:
                self._call(state, insn, idx)
                return
        raise VerifierError(idx, f"unsupported opcode {insn.opcode:#04x}")

    def _read_reg(self, state: AbstractState, reg: int, idx: int) -> RegState:
        r = state.regs[reg]
        if not r.is_init():
            raise VerifierError(idx, f"read of uninitialized register r{reg}")
        return r

    def _write_reg(self, state: AbstractState, reg: int, value: RegState, idx: int) -> None:
        if reg == isa.FP_REG:
            raise VerifierError(idx, "write to read-only frame pointer r10")
        state.regs[reg] = value

    # -- ALU ------------------------------------------------------------------------

    def _note_transfer(self, idx: int, insn: Instruction, reg: RegState) -> None:
        if self.on_transfer is None or not reg.is_scalar():
            return
        label = transfer_label(insn)
        if label is not None:
            self.on_transfer(idx, label, reg.scalar)

    def _alu(self, state: AbstractState, insn: Instruction, idx: int, is64: bool) -> None:
        op = isa.BPF_OP(insn.opcode)

        if op == isa.ALU_MOV:
            src = (
                RegState.const(insn.imm & U64)
                if insn.uses_imm()
                else self._read_reg(state, insn.src, idx)
            )
            if not is64:
                src = self._truncate32(src, idx)
            self._write_reg(state, insn.dst, src, idx)
            self._note_transfer(idx, insn, src)
            return

        if op == isa.ALU_NEG:
            dst = self._read_reg(state, insn.dst, idx)
            if dst.is_ptr():
                raise VerifierError(idx, "arithmetic negation of pointer")
            result = RegState.from_scalar(dst.scalar.neg())
            if not is64:
                result = self._truncate32(result, idx)
            self._write_reg(state, insn.dst, result, idx)
            self._note_transfer(idx, insn, result)
            return

        dst = self._read_reg(state, insn.dst, idx)
        src = (
            RegState.const(insn.imm & U64)
            if insn.uses_imm()
            else self._read_reg(state, insn.src, idx)
        )

        # Pointer arithmetic (64-bit only, kernel rule).
        if dst.is_ptr() or src.is_ptr():
            if not is64:
                raise VerifierError(idx, "32-bit arithmetic on pointer")
            self._pointer_alu(state, insn, idx, op, dst, src)
            return

        dst_s, src_s = dst.scalar, src.scalar
        if not is64:
            # 32-bit ops read the zero-extended subregisters.  Operand
            # truncation (not just result truncation) is required for
            # soundness: division, modulo and right shifts do not commute
            # with truncation, so computing them on the 64-bit abstract
            # values and masking afterwards claims wrong results.
            dst_s = self._subreg(dst_s)
            src_s = self._subreg(src_s)
        result = self._scalar_alu(op, dst_s, src_s, insn, idx, is64)
        reg = RegState.from_scalar(result)
        if not is64:
            reg = self._truncate32(reg, idx)
        self._write_reg(state, insn.dst, reg, idx)
        self._note_transfer(idx, insn, reg)

    def _scalar_alu(
        self,
        op: int,
        dst: ScalarValue,
        src: ScalarValue,
        insn: Instruction,
        idx: int,
        is64: bool = True,
    ) -> ScalarValue:
        binop = _SCALAR_BINOP.get(op)
        if binop is not None:
            return binop(dst, src)
        if op in (isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH):
            if dst.is_bottom() or src.is_bottom():
                return ScalarValue.bottom()
            width = 64 if is64 else 32
            if op == isa.ALU_ARSH and not is64:
                # 32-bit arithmetic shift replicates bit 31, which the
                # 64-bit arshift transfer cannot see.  Hoist the
                # subregister into the top half, shift there (bit 31 is
                # now the sign bit), and bring it back down — each step
                # is a sound 64-bit transfer, so the composition is too.
                def method(d: ScalarValue, s: int) -> ScalarValue:
                    return d.lshift(32).arshift(s).rshift(32)
            else:
                method = {
                    isa.ALU_LSH: ScalarValue.lshift,
                    isa.ALU_RSH: ScalarValue.rshift,
                    isa.ALU_ARSH: ScalarValue.arshift,
                }[op]
            if src.is_const():
                # Concrete semantics mask the count to the op width.
                return method(dst, src.const_value() & (width - 1))
            # Unknown shift amount: join over feasible counts via tnums.
            if src.umax() < width:
                results = [method(dst, s) for s in range(src.umin(), src.umax() + 1)]
                out = results[0]
                for r in results[1:]:
                    out = out.join(r)
                return out
            return ScalarValue.top()
        raise VerifierError(idx, f"unsupported ALU op {op:#04x}")

    def _pointer_alu(
        self,
        state: AbstractState,
        insn: Instruction,
        idx: int,
        op: int,
        dst: RegState,
        src: RegState,
    ) -> None:
        if op == isa.ALU_ADD:
            if dst.is_ptr() and src.is_scalar():
                result = RegState.pointer(dst.region, dst.offset.add(src.scalar))
            elif dst.is_scalar() and src.is_ptr():
                result = RegState.pointer(src.region, src.offset.add(dst.scalar))
            else:
                raise VerifierError(idx, "addition of two pointers")
        elif op == isa.ALU_SUB:
            if dst.is_ptr() and src.is_scalar():
                result = RegState.pointer(dst.region, dst.offset.sub(src.scalar))
            elif dst.is_ptr() and src.is_ptr():
                if dst.region != src.region:
                    raise VerifierError(idx, "subtraction of cross-region pointers")
                result = RegState.from_scalar(dst.offset.sub(src.offset))
            else:
                raise VerifierError(idx, "cannot subtract pointer from scalar")
        else:
            raise VerifierError(
                idx, f"pointer arithmetic only supports add/sub, got {op:#04x}"
            )
        self._write_reg(state, insn.dst, result, idx)
        self._note_transfer(idx, insn, result)

    @staticmethod
    def _subreg(value: ScalarValue) -> ScalarValue:
        """The zero-extended 32-bit subregister view (kernel ``tnum_subreg``).

        The 64-bit interval survives truncation whenever the low 32 bits
        provably do not wrap across the range: the span must fit in 32
        bits and the low words must stay ordered (``lo32(umin) <=
        lo32(umax)``), which together rule out crossing a 2^32 boundary.
        """
        t32 = value.tnum.cast(32).cast(64)
        iv = value.interval
        if not iv.is_bottom() and iv.umax - iv.umin <= 0xFFFF_FFFF:
            lo, hi = iv.umin & 0xFFFF_FFFF, iv.umax & 0xFFFF_FFFF
            if lo <= hi:
                return ScalarValue.make(
                    t32, Interval(lo, hi, value.width)
                )
        return ScalarValue.from_tnum(t32)

    @classmethod
    def _truncate32(cls, reg: RegState, idx: int) -> RegState:
        if reg.is_ptr():
            raise VerifierError(idx, "32-bit operation on pointer")
        return RegState.from_scalar(cls._subreg(reg.scalar))

    # -- memory ---------------------------------------------------------------------

    def _load(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        ptr = self._read_reg(state, insn.src, idx)
        size = insn.size_bytes()
        check_mem_access(state, ptr, insn.off, size, idx, self.ctx_size)
        if ptr.region == Region.STACK:
            value = load_stack(state, ptr, insn.off, size, idx)
        else:
            value = RegState.unknown() if size == 8 else RegState.from_scalar(
                ScalarValue.from_range(0, (1 << (8 * size)) - 1)
            )
        self._write_reg(state, insn.dst, value, idx)

    def _store(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        ptr = self._read_reg(state, insn.dst, idx)
        size = insn.size_bytes()
        if insn.cls() == isa.CLS_STX:
            value = self._read_reg(state, insn.src, idx)
        else:
            value = RegState.const(insn.imm & U64)
        check_mem_access(state, ptr, insn.off, size, idx, self.ctx_size)
        if ptr.region == Region.CTX and value.is_ptr():
            raise VerifierError(idx, "pointer store to ctx would leak an address")
        if ptr.region == Region.STACK:
            store_stack(state, ptr, insn.off, size, value, idx)

    # -- calls --------------------------------------------------------------------------

    def _call(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        # Helpers receive r1-r5 and return an unknown scalar in r0;
        # caller-saved registers are clobbered (kernel ABI).
        state.regs[0] = RegState.unknown()
        for reg in range(1, 6):
            state.regs[reg] = RegState.not_init()

    # -- branches ------------------------------------------------------------------------

    def _branch(
        self, state: AbstractState, insn: Instruction, idx: int
    ) -> Tuple[AbstractState, AbstractState]:
        """Return (fall-through state, taken state) with refinements."""
        dst = self._read_reg(state, insn.dst, idx)
        src: Optional[RegState] = None
        if insn.uses_imm():
            src_val: Optional[int] = insn.imm & U64
        else:
            src = self._read_reg(state, insn.src, idx)
            src_val = (
                src.scalar.const_value()
                if src.is_scalar() and src.scalar.is_const()
                else None
            )

        fall = state.copy()
        taken = state.copy()
        if insn.cls() != isa.CLS_JMP:
            # A 32-bit compare agrees with the 64-bit one when both the
            # register and the bound provably sit in [0, 2^31): there the
            # 32- and 64-bit views (signed or unsigned) all coincide, so
            # the same refinement applies. Otherwise skip (sound).
            fits = (
                dst.is_scalar()
                and dst.scalar.umax() <= 0x7FFF_FFFF
                and src_val is not None
                and src_val <= 0x7FFF_FFFF
            )
            if not fits:
                return fall, taken

        def note(scalar: Optional[ScalarValue]) -> None:
            if scalar is None or self.on_transfer is None:
                return
            label = transfer_label(insn)
            if label is not None:
                self.on_transfer(idx, label, scalar)

        op = isa.BPF_OP(insn.opcode)
        if dst.is_scalar() and src_val is not None:
            taken_scalar, fall_scalar = self._refine(dst.scalar, op, src_val)
            if taken_scalar is not None:
                taken.regs[insn.dst] = RegState.from_scalar(taken_scalar)
            if fall_scalar is not None:
                fall.regs[insn.dst] = RegState.from_scalar(fall_scalar)
            note(taken_scalar)
            note(fall_scalar)
        elif (
            src is not None
            and src.is_scalar()
            and dst.is_scalar()
            and dst.scalar.is_const()
        ):
            # Constant on the left: refine the register operand with the
            # mirrored comparison (c < r ⇔ r > c, etc.).
            mirrored = _MIRRORED_OPS.get(op)
            if mirrored is not None:
                bound = dst.scalar.const_value()
                taken_scalar, fall_scalar = self._refine(
                    src.scalar, mirrored, bound
                )
                if taken_scalar is not None:
                    taken.regs[insn.src] = RegState.from_scalar(taken_scalar)
                if fall_scalar is not None:
                    fall.regs[insn.src] = RegState.from_scalar(fall_scalar)
                note(taken_scalar)
                note(fall_scalar)
        return fall, taken

    @staticmethod
    def _refine(
        value: ScalarValue, op: int, bound: int
    ) -> Tuple[Optional[ScalarValue], Optional[ScalarValue]]:
        """Refined (taken, fall-through) values for ``value <op> bound``."""
        if op == isa.JMP_JEQ:
            return value.refine_eq(bound), value.refine_ne(bound)
        if op == isa.JMP_JNE:
            return value.refine_ne(bound), value.refine_eq(bound)
        if op == isa.JMP_JGT:
            return value.refine_ugt(bound), value.refine_ule(bound)
        if op == isa.JMP_JGE:
            return value.refine_uge(bound), value.refine_ult(bound)
        if op == isa.JMP_JLT:
            return value.refine_ult(bound), value.refine_uge(bound)
        if op == isa.JMP_JLE:
            return value.refine_ule(bound), value.refine_ugt(bound)
        if op == isa.JMP_JSET:
            # Fall-through means (value & bound) == 0: those bits are 0.
            cleared = tnum_meet(
                value.tnum, Tnum(0, ~bound & U64, 64)
            )
            fall = ScalarValue.make(cleared, value.interval)
            return None, fall
        # Signed comparisons refine through the signed-interval domain and
        # the kernel-style bounds deduction maps the result back onto the
        # unsigned interval and the tnum.
        if op in (isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_JSLT, isa.JMP_JSLE):
            from repro.domains.signed_interval import (
                SignedInterval,
                deduce_bounds,
            )

            sbound = to_signed(bound, 64)
            base = SignedInterval.from_unsigned(value.interval).meet(
                SignedInterval.from_tnum(value.tnum)
            )
            taken_si, fall_si = {
                isa.JMP_JSGT: (base.refine_sgt(sbound), base.refine_sle(sbound)),
                isa.JMP_JSGE: (base.refine_sge(sbound), base.refine_slt(sbound)),
                isa.JMP_JSLT: (base.refine_slt(sbound), base.refine_sge(sbound)),
                isa.JMP_JSLE: (base.refine_sle(sbound), base.refine_sgt(sbound)),
            }[op]

            def rebuild(si: SignedInterval) -> ScalarValue:
                if si.is_bottom():
                    return ScalarValue.bottom()
                t, iv, _ = deduce_bounds(value.tnum, value.interval, si)
                return ScalarValue.make(t, iv)

            return rebuild(taken_si), rebuild(fall_si)
        return None, None


def verify_program(program: Program, ctx_size: int = 64) -> VerificationResult:
    """Convenience wrapper: verify with default settings."""
    return Verifier(ctx_size=ctx_size).verify(program)
