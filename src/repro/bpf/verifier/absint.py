"""The abstract interpretation engine — a miniature BPF verifier.

Walks the (acyclic, fully reachable) CFG in reverse post-order, propagating
:class:`AbstractState` through every instruction with the tnum × interval
reduced product as the scalar domain.  Conditional jumps *refine* the
branched-on register in each successor state, which is how facts like
``r1 < 64`` flow into later bounds checks — the mechanism the paper's
introduction sketches with the ``x ≤ 8`` example.

Safety checks enforced (each mirrors a kernel check):

* no read of an uninitialized register or stack slot;
* pointer arithmetic limited to ``add``/``sub`` with scalars, and pointer
  difference within one region;
* every memory access in bounds and sufficiently aligned for all
  executions (tnum alignment, interval bounds);
* no pointer stores into the context (pointer-leak prevention);
* ``exit`` requires an initialized scalar r0 (no pointer leaks via r0);
* r10 (frame pointer) is read-only.

Two execution engines share these semantics:

* :meth:`Verifier.verify` runs the *compiled* walk: each instruction is
  compiled exactly once (per program × ctx size) into a specialized
  abstract-step closure (:mod:`repro.bpf.verifier.compiled`), cached on
  the :class:`~repro.bpf.program.Program`, so the hot loop is one
  closure call per instruction;
* :meth:`Verifier.verify_reference` is the original decode-every-visit
  walk, retained as the differential-testing baseline
  (``tests/bpf/test_verifier_compiled.py`` holds the two byte-equal).

The transfer primitives below (register reads/writes, scalar ALU,
pointer arithmetic, subregister truncation, branch refinement) are
module-level functions used by *both* engines, so the compiled closures
cannot drift from the reference semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import faults as _faults
from repro.bpf import isa
from repro.bpf.cfg import CFGError, build_cfg
from repro.bpf.insn import Instruction
from repro.bpf.program import Program
from repro.domains.interval import Interval, to_signed
from repro.domains.product import ScalarValue
from repro.domains.signed_interval import SignedInterval, deduce_bounds
from repro.core.tnum import Tnum
from repro.core.lattice import meet as tnum_meet

from .errors import VerificationResult, VerifierError
from .memory import check_mem_access, load_stack, store_stack
from .state import AbstractState, RegState, Region

if TYPE_CHECKING:
    from repro.bpf.canon import VerdictCache

__all__ = ["Verifier", "verify_program", "transfer_label"]

U64 = (1 << 64) - 1


def transfer_label(insn: Instruction) -> Optional[str]:
    """Telemetry label for the tnum transfer an instruction applies.

    Scalar ALU instructions map to ``"<op><width>"`` (``mul64``,
    ``arsh32``, ...); conditional jumps map to ``"refine_<op><width>"``
    (the branch-refinement transfer).  Instructions that do not exercise
    a scalar transfer function — plain 64-bit moves, ``lddw``, loads,
    stores, ``ja``/``call``/``exit`` — return ``None``.  32-bit moves
    are labelled (``mov32``) because subregister truncation is itself a
    transfer the campaign wants attributed.

    The label depends only on the opcode byte, so results are memoized —
    the verifier compiler resolves one per instruction and the reference
    walk one per telemetry event.
    """
    try:
        return _LABEL_CACHE[insn.opcode]
    except KeyError:
        label = _LABEL_CACHE[insn.opcode] = _transfer_label_uncached(insn)
        return label


_LABEL_CACHE: Dict[int, Optional[str]] = {}


def _transfer_label_uncached(insn: Instruction) -> Optional[str]:
    cls = insn.cls()
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        op = isa.BPF_OP(insn.opcode)
        width = 64 if cls == isa.CLS_ALU64 else 32
        if op == isa.ALU_MOV and width == 64:
            return None
        name = isa.ALU_OP_NAMES.get(op)
        return f"{name}{width}" if name else None
    if insn.is_cond_jump():
        op = isa.BPF_OP(insn.opcode)
        width = 64 if cls == isa.CLS_JMP else 32
        name = isa.JMP_OP_NAMES.get(op)
        return f"refine_{name}{width}" if name else None
    return None

#: Dispatch table for the plain binary scalar transfers — resolved once
#: at import instead of an if-chain per instruction (shift and mov/neg
#: ops need width-aware handling and stay in :func:`_scalar_alu`).
_SCALAR_BINOP: Dict[int, Callable[[ScalarValue, ScalarValue], ScalarValue]] = {
    isa.ALU_ADD: ScalarValue.add,
    isa.ALU_SUB: ScalarValue.sub,
    isa.ALU_MUL: ScalarValue.mul,
    isa.ALU_AND: ScalarValue.and_,
    isa.ALU_OR: ScalarValue.or_,
    isa.ALU_XOR: ScalarValue.xor,
    isa.ALU_DIV: ScalarValue.div,
    isa.ALU_MOD: ScalarValue.mod,
}

#: Comparison mirroring for "constant <op> register" refinement:
#: ``c <op> r`` holds iff ``r <mirror(op)> c``.
_MIRRORED_OPS = {
    isa.JMP_JEQ: isa.JMP_JEQ,
    isa.JMP_JNE: isa.JMP_JNE,
    isa.JMP_JGT: isa.JMP_JLT,
    isa.JMP_JGE: isa.JMP_JLE,
    isa.JMP_JLT: isa.JMP_JGT,
    isa.JMP_JLE: isa.JMP_JGE,
    isa.JMP_JSGT: isa.JMP_JSLT,
    isa.JMP_JSGE: isa.JMP_JSLE,
    isa.JMP_JSLT: isa.JMP_JSGT,
    isa.JMP_JSLE: isa.JMP_JSGE,
}


# -- shared transfer primitives (reference walk + compiled closures) ----------


def _read_reg(state: AbstractState, reg: int, idx: int) -> RegState:
    r = state.get_reg(reg)
    if not r.is_init():
        raise VerifierError(idx, f"read of uninitialized register r{reg}")
    return r


def _write_reg(state: AbstractState, reg: int, value: RegState, idx: int) -> None:
    if reg == isa.FP_REG:
        raise VerifierError(idx, "write to read-only frame pointer r10")
    state.set_reg(reg, value)


def _subreg(value: ScalarValue) -> ScalarValue:
    """The zero-extended 32-bit subregister view (kernel ``tnum_subreg``).

    The 64-bit interval survives truncation whenever the low 32 bits
    provably do not wrap across the range: the span must fit in 32
    bits and the low words must stay ordered (``lo32(umin) <=
    lo32(umax)``), which together rule out crossing a 2^32 boundary.
    """
    iv = value.interval
    if iv.umin == iv.umax:
        # Reduced constants truncate exactly — skip the cast/meet chain.
        return ScalarValue.const(iv.umin & 0xFFFF_FFFF)
    t32 = value.tnum.cast(32).cast(64)
    if not iv.is_bottom() and iv.umax - iv.umin <= 0xFFFF_FFFF:
        lo, hi = iv.umin & 0xFFFF_FFFF, iv.umax & 0xFFFF_FFFF
        if lo <= hi:
            return ScalarValue.make(
                t32, Interval(lo, hi, value.width)
            )
    return ScalarValue.from_tnum(t32)


def _truncate32(reg: RegState, idx: int) -> RegState:
    if reg.is_ptr():
        raise VerifierError(idx, "32-bit operation on pointer")
    return RegState.from_scalar(_subreg(reg.scalar))


def _shift_method(op: int, is64: bool) -> Callable[[ScalarValue, int], ScalarValue]:
    """Pre-resolved shift transfer for one (op, width)."""
    if op == isa.ALU_ARSH and not is64:
        # 32-bit arithmetic shift replicates bit 31, which the 64-bit
        # arshift transfer cannot see.  Hoist the subregister into the
        # top half, shift there (bit 31 is now the sign bit), and bring
        # it back down — each step is a sound 64-bit transfer, so the
        # composition is too.
        def method(d: ScalarValue, s: int) -> ScalarValue:
            return d.lshift(32).arshift(s).rshift(32)

        return method
    return {
        isa.ALU_LSH: ScalarValue.lshift,
        isa.ALU_RSH: ScalarValue.rshift,
        isa.ALU_ARSH: ScalarValue.arshift,
    }[op]


def _shift_alu(
    method: Callable[[ScalarValue, int], ScalarValue],
    width: int,
    dst: ScalarValue,
    src: ScalarValue,
) -> ScalarValue:
    if dst.is_bottom() or src.is_bottom():
        return ScalarValue.bottom()
    if src.is_const():
        # Concrete semantics mask the count to the op width.
        return method(dst, src.const_value() & (width - 1))
    # Unknown shift amount: join over feasible counts via tnums.
    if src.umax() < width:
        results = [method(dst, s) for s in range(src.umin(), src.umax() + 1)]
        out = results[0]
        for r in results[1:]:
            out = out.join(r)
        return out
    return ScalarValue.top()


def _scalar_alu(
    op: int, dst: ScalarValue, src: ScalarValue, idx: int, is64: bool
) -> ScalarValue:
    binop = _SCALAR_BINOP.get(op)
    if binop is not None:
        return binop(dst, src)
    if op in (isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH):
        width = 64 if is64 else 32
        return _shift_alu(_shift_method(op, is64), width, dst, src)
    raise VerifierError(idx, f"unsupported ALU op {op:#04x}")


def _pointer_alu(
    state: AbstractState,
    dst_reg: int,
    idx: int,
    op: int,
    dst: RegState,
    src: RegState,
) -> RegState:
    """Pointer add/sub (64-bit only); writes the result and returns it."""
    if op == isa.ALU_ADD:
        if dst.is_ptr() and src.is_scalar():
            result = RegState.pointer(dst.region, dst.offset.add(src.scalar))
        elif dst.is_scalar() and src.is_ptr():
            result = RegState.pointer(src.region, src.offset.add(dst.scalar))
        else:
            raise VerifierError(idx, "addition of two pointers")
    elif op == isa.ALU_SUB:
        if dst.is_ptr() and src.is_scalar():
            result = RegState.pointer(dst.region, dst.offset.sub(src.scalar))
        elif dst.is_ptr() and src.is_ptr():
            if dst.region != src.region:
                raise VerifierError(idx, "subtraction of cross-region pointers")
            result = RegState.from_scalar(dst.offset.sub(src.offset))
        else:
            raise VerifierError(idx, "cannot subtract pointer from scalar")
    else:
        raise VerifierError(
            idx, f"pointer arithmetic only supports add/sub, got {op:#04x}"
        )
    _write_reg(state, dst_reg, result, idx)
    return result


# -- branch refinement builders ------------------------------------------------
#
# ``_REFINERS[op](value, bound)`` returns the refined ``(taken,
# fall-through)`` scalars for ``value <op> bound`` — the compiled walk
# pre-selects the builder per jump instruction; the reference walk
# resolves it per visit through :meth:`Verifier._refine`.


def _refine_jset(value: ScalarValue, bound: int) -> Tuple[None, ScalarValue]:
    # Fall-through means (value & bound) == 0: those bits are 0.
    cleared = tnum_meet(value.tnum, Tnum(0, ~bound & U64, 64))
    return None, ScalarValue.make(cleared, value.interval)


def _signed_refiner(
    taken_op: Callable[[SignedInterval, int], SignedInterval],
    fall_op: Callable[[SignedInterval, int], SignedInterval],
) -> Callable[[ScalarValue, int], Tuple[ScalarValue, ScalarValue]]:
    # Signed comparisons refine through the signed-interval domain and
    # the kernel-style bounds deduction maps the result back onto the
    # unsigned interval and the tnum.
    def refine(value: ScalarValue, bound: int) -> Tuple[ScalarValue, ScalarValue]:
        sbound = to_signed(bound, 64)
        base = SignedInterval.from_unsigned(value.interval).meet(
            SignedInterval.from_tnum(value.tnum)
        )

        def rebuild(si: SignedInterval) -> ScalarValue:
            if si.is_bottom():
                return ScalarValue.bottom()
            t, iv, _ = deduce_bounds(value.tnum, value.interval, si)
            return ScalarValue.make(t, iv)

        return rebuild(taken_op(base, sbound)), rebuild(fall_op(base, sbound))

    return refine


def _apply_refinement(
    taken: AbstractState,
    fall: AbstractState,
    reg: int,
    taken_scalar: Optional[ScalarValue],
    fall_scalar: Optional[ScalarValue],
    note: Optional[Callable[[int, str, ScalarValue], None]],
    idx: int,
    label: Optional[str],
) -> None:
    """Install a refinement pair into the branch successor states.

    Single source of truth for the write / infeasibility-flag /
    telemetry protocol — both engines and both operand orientations
    (register-vs-bound and mirrored constant-on-left) go through here,
    so compiled/reference parity cannot drift.
    """
    if taken_scalar is not None:
        taken.set_reg(reg, RegState.from_scalar(taken_scalar))
        if taken_scalar.is_bottom():
            taken.infeasible = True
    if fall_scalar is not None:
        fall.set_reg(reg, RegState.from_scalar(fall_scalar))
        if fall_scalar.is_bottom():
            fall.infeasible = True
    if note is not None and label is not None:
        if taken_scalar is not None:
            note(idx, label, taken_scalar)
        if fall_scalar is not None:
            note(idx, label, fall_scalar)


_REFINERS: Dict[
    int, Callable[[ScalarValue, int], Tuple[Optional[ScalarValue], Optional[ScalarValue]]]
] = {
    isa.JMP_JEQ: lambda v, b: (v.refine_eq(b), v.refine_ne(b)),
    isa.JMP_JNE: lambda v, b: (v.refine_ne(b), v.refine_eq(b)),
    isa.JMP_JGT: lambda v, b: (v.refine_ugt(b), v.refine_ule(b)),
    isa.JMP_JGE: lambda v, b: (v.refine_uge(b), v.refine_ult(b)),
    isa.JMP_JLT: lambda v, b: (v.refine_ult(b), v.refine_uge(b)),
    isa.JMP_JLE: lambda v, b: (v.refine_ule(b), v.refine_ugt(b)),
    isa.JMP_JSET: _refine_jset,
    isa.JMP_JSGT: _signed_refiner(
        SignedInterval.refine_sgt, SignedInterval.refine_sle
    ),
    isa.JMP_JSGE: _signed_refiner(
        SignedInterval.refine_sge, SignedInterval.refine_slt
    ),
    isa.JMP_JSLT: _signed_refiner(
        SignedInterval.refine_slt, SignedInterval.refine_sge
    ),
    isa.JMP_JSLE: _signed_refiner(
        SignedInterval.refine_sle, SignedInterval.refine_sgt
    ),
}


@dataclass
class Verifier:
    """Verify one program; optionally retain per-instruction states.

    ``ctx_size`` is the size in bytes of the context object r1 points to
    at entry (kernel programs get a type-specific ctx; we use a flat
    blob).

    Subclassing note: :meth:`verify` executes pre-compiled closures that
    call the *module-level* transfer primitives directly — overriding
    the per-instruction internals (``_refine``, ``_transfer``,
    ``_branch``, ``_read_reg``, ...) in a subclass affects only
    :meth:`verify_reference` (and :class:`PathSensitiveVerifier`, which
    dispatches through them).  Experiments that hook the transfer layer
    should run through ``verify_reference`` or patch the module
    functions, which both engines honor.
    """

    ctx_size: int = 64
    collect_states: bool = False
    #: entry abstract state per instruction index (populated when
    #: ``collect_states`` is set) — used by differential tests.
    states_at: Dict[int, AbstractState] = field(default_factory=dict)
    #: per-operator attribution hook: called as ``(idx, label, scalar)``
    #: with the abstract result of every scalar transfer (ALU results and
    #: branch refinements, labelled per :func:`transfer_label`).  Used by
    #: the fuzz campaign's precision telemetry.
    on_transfer: Optional[Callable[[int, str, ScalarValue], None]] = None
    #: structural verdict memo (see :mod:`repro.bpf.canon`): when set,
    #: :meth:`verify` resolves programs whose canonical form was already
    #: verified at this ``ctx_size`` from the cache, replaying the
    #: recorded transfer stream into ``on_transfer`` instead of walking.
    verdict_cache: Optional["VerdictCache"] = None
    #: wall-clock watchdog for the compiled walk: when set, the walk
    #: checks ``time.monotonic()`` once per basic block and stops with a
    #: structured timeout rejection (``VerifierError.timeout``) instead
    #: of running unbounded.  Timeout results are never cached — the
    #: deadline is a property of the *request*, not the program.
    deadline_s: Optional[float] = None

    # -- public API -----------------------------------------------------------

    def verify(self, program: Program) -> VerificationResult:
        """Compiled walk: one pre-specialized closure per instruction.

        The compiled form (closures + CFG + traversal order) is built
        once per (program, ctx_size) and cached on the program, so
        re-verifying — shrinker predicates, campaign replays — pays only
        the walk.  Semantics are byte-equal to
        :meth:`verify_reference` (differentially tested).

        With a :attr:`verdict_cache` attached, the walk itself is skipped
        for structurally identical repeats: verdict, error detail, and
        telemetry stream all come from the cached entry, byte-identical
        to a fresh walk.  ``collect_states`` bypasses the cache —
        per-instruction entry states are walk artifacts the cache does
        not carry.
        """
        cache = self.verdict_cache
        if cache is None or self.collect_states:
            return self._verify_compiled(program, self.on_transfer)
        key = (program.canonical_hash(), self.ctx_size)
        entry = cache.get(key)
        note = self.on_transfer
        if entry is not None:
            if note is not None:
                entry.replay(note)
            return entry.result()
        # Miss: record the transfer stream regardless of whether this
        # caller listens — a later hit must be able to replay telemetry
        # no matter who populated the entry.
        events: List[Tuple[int, str, ScalarValue]] = []
        record = events.append

        def recording_note(idx: int, label: str, scalar: ScalarValue) -> None:
            record((idx, label, scalar))
            if note is not None:
                note(idx, label, scalar)

        result = self._verify_compiled(program, recording_note)
        if not result.timed_out:
            cache.store(key, result, events)
        return result

    def _verify_compiled(
        self,
        program: Program,
        note: Optional[Callable[[int, str, ScalarValue], None]],
    ) -> VerificationResult:
        try:
            compiled = program.compiled_verifier(self.ctx_size)
        except CFGError as exc:
            err = VerifierError(0, f"bad control flow: {exc}", structural=True)
            return VerificationResult(False, [err])

        collect = self.collect_states
        in_states: Dict[int, AbstractState] = {0: AbstractState.entry_state()}
        merge = self._merge_into
        processed = 0
        # Watchdog + fault hooks, both hoisted: with no deadline and no
        # armed fault plan (the default) the loop pays two falsy local
        # checks per *block*, nothing per instruction.
        deadline_at: Optional[float] = None
        if self.deadline_s is not None:
            deadline_at = time.monotonic() + self.deadline_s
        hang_s = 0.0
        if _faults.enabled() and _faults.fire("verify.hang"):
            hang_s = _faults.arg("verify.hang")
        try:
            for block in compiled.blocks:
                if hang_s:
                    time.sleep(hang_s)
                if deadline_at is not None and time.monotonic() > deadline_at:
                    raise VerifierError(
                        block.indices[0] if block.indices else block.term_idx,
                        f"verification exceeded its {self.deadline_s:g}s "
                        f"deadline after {processed} instructions",
                        timeout=True,
                    )
                entry = in_states.get(block.block_id)
                if entry is None:
                    continue  # no feasible path in (dead branch)
                state = entry.copy()
                if collect:
                    record = self._record
                    for idx, step in zip(block.indices, block.steps):
                        record(idx, state)
                        processed += 1
                        step(state, note, idx)
                else:
                    for idx, step in zip(block.indices, block.steps):
                        processed += 1
                        step(state, note, idx)
                branch = block.branch
                if branch is not None:
                    if collect:
                        self._record(block.term_idx, state)
                    processed += 1
                    fall, taken = branch(state, note, block.term_idx)
                    succs = block.successors
                    # Refinement can prove an edge infeasible (a register
                    # refined to ⊥); such edges are dead paths and must
                    # not be analyzed.
                    if not fall.infeasible:
                        merge(in_states, succs[0], fall)
                    if not taken.infeasible:
                        merge(in_states, succs[1], taken)
                elif block.is_exit:
                    self._check_exit(state, block.term_idx)
                else:
                    for succ in block.successors:
                        merge(in_states, succ, state)
        except VerifierError as exc:
            return VerificationResult(False, [exc], processed)
        return VerificationResult(True, [], processed)

    def verify_reference(self, program: Program) -> VerificationResult:
        """The original decode-every-visit walk (differential baseline)."""
        try:
            cfg = build_cfg(program)
        except CFGError as exc:
            err = VerifierError(0, f"bad control flow: {exc}", structural=True)
            return VerificationResult(False, [err])

        order = cfg.reverse_post_order()
        in_states: Dict[int, AbstractState] = {0: AbstractState.entry_state()}
        processed = 0
        try:
            for block_id in order:
                if block_id not in in_states:
                    continue  # no feasible path in (dead branch)
                state = in_states[block_id].copy()
                block = cfg.blocks[block_id]
                branch_states: Optional[Tuple[AbstractState, AbstractState]] = None
                for idx in range(block.start, block.end + 1):
                    insn = program.insns[idx]
                    if self.collect_states:
                        self._record(idx, state)
                    processed += 1
                    if insn.is_cond_jump() and idx == block.end:
                        branch_states = self._branch(state, insn, idx)
                    else:
                        self._transfer(state, insn, idx)
                self._propagate(cfg, block, state, branch_states, in_states)
        except VerifierError as exc:
            return VerificationResult(False, [exc], processed)
        return VerificationResult(True, [], processed)

    # -- state plumbing -----------------------------------------------------------

    def _record(self, idx: int, state: AbstractState) -> None:
        # ``copy`` is O(1) (copy-on-write), so recording every
        # instruction shares containers within straight-line runs
        # instead of cloning the full state per visit.
        if idx in self.states_at:
            self.states_at[idx] = self.states_at[idx].join(state)
        else:
            self.states_at[idx] = state.copy()

    def _propagate(
        self,
        cfg,
        block,
        state: AbstractState,
        branch_states: Optional[Tuple[AbstractState, AbstractState]],
        in_states: Dict[int, AbstractState],
    ) -> None:
        last = cfg.program.insns[block.end]
        if last.is_exit():
            self._check_exit(state, block.end)
            return
        if branch_states is not None:
            fall, taken = branch_states
            targets = block.successors  # [fall-through, taken]
            # Refinement can prove an edge infeasible (a register refined
            # to ⊥); such edges are dead paths and must not be analyzed.
            if self._feasible(fall):
                self._merge_into(in_states, targets[0], fall)
            if self._feasible(taken):
                self._merge_into(in_states, targets[1], taken)
            return
        for succ in block.successors:
            self._merge_into(in_states, succ, state)

    @staticmethod
    def _feasible(state: AbstractState) -> bool:
        """A refined-to-⊥ state describes no execution — O(1) flag check.

        The flag is set at refinement time (the only place a ⊥ scalar
        can enter a register: transfers and joins of feasible states
        never produce one).
        """
        return not state.infeasible

    @staticmethod
    def _merge_into(
        in_states: Dict[int, AbstractState], block_id: int, state: AbstractState
    ) -> None:
        existing = in_states.get(block_id)
        if existing is None:
            in_states[block_id] = state.copy()
        elif not state.leq(existing):
            in_states[block_id] = existing.join(state)
        # else: the recorded state already covers this one — joining
        # would rebuild an equal state (join is exact at the lub when
        # one side is below the other), so keep the existing object.

    def _check_exit(self, state: AbstractState, idx: int) -> None:
        r0 = state.get_reg(0)
        if not r0.is_init():
            raise VerifierError(idx, "exit with uninitialized r0")
        if r0.is_ptr():
            raise VerifierError(idx, "exit would leak a pointer in r0")

    # -- instruction transfer ---------------------------------------------------------

    def _transfer(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        cls = insn.cls()
        if insn.is_exit():
            return  # checked by _propagate at block exit
        if insn.is_lddw():
            state.set_reg(insn.dst, RegState.const(insn.imm & U64))
            return
        if cls in (isa.CLS_ALU, isa.CLS_ALU64):
            self._alu(state, insn, idx, is64=(cls == isa.CLS_ALU64))
            return
        if cls == isa.CLS_LDX:
            self._load(state, insn, idx)
            return
        if cls in (isa.CLS_ST, isa.CLS_STX):
            self._store(state, insn, idx)
            return
        if insn.is_jump():
            op = isa.BPF_OP(insn.opcode)
            if op == isa.JMP_JA:
                return
            if op == isa.JMP_CALL:
                self._call(state, insn, idx)
                return
        raise VerifierError(idx, f"unsupported opcode {insn.opcode:#04x}")

    def _read_reg(self, state: AbstractState, reg: int, idx: int) -> RegState:
        return _read_reg(state, reg, idx)

    def _write_reg(self, state: AbstractState, reg: int, value: RegState, idx: int) -> None:
        _write_reg(state, reg, value, idx)

    # Module-level primitives re-exposed for tests/subclasses that poke
    # at the transfer machinery directly.
    _subreg = staticmethod(_subreg)
    _truncate32 = staticmethod(_truncate32)

    # -- ALU ------------------------------------------------------------------------

    def _note_transfer(self, idx: int, insn: Instruction, reg: RegState) -> None:
        if self.on_transfer is None or not reg.is_scalar():
            return
        label = transfer_label(insn)
        if label is not None:
            self.on_transfer(idx, label, reg.scalar)

    def _alu(self, state: AbstractState, insn: Instruction, idx: int, is64: bool) -> None:
        op = isa.BPF_OP(insn.opcode)

        if op == isa.ALU_MOV:
            src = (
                RegState.const(insn.imm & U64)
                if insn.uses_imm()
                else _read_reg(state, insn.src, idx)
            )
            if not is64:
                src = _truncate32(src, idx)
            _write_reg(state, insn.dst, src, idx)
            self._note_transfer(idx, insn, src)
            return

        if op == isa.ALU_NEG:
            dst = _read_reg(state, insn.dst, idx)
            if dst.is_ptr():
                raise VerifierError(idx, "arithmetic negation of pointer")
            result = RegState.from_scalar(dst.scalar.neg())
            if not is64:
                result = _truncate32(result, idx)
            _write_reg(state, insn.dst, result, idx)
            self._note_transfer(idx, insn, result)
            return

        dst = _read_reg(state, insn.dst, idx)
        src = (
            RegState.const(insn.imm & U64)
            if insn.uses_imm()
            else _read_reg(state, insn.src, idx)
        )

        # Pointer arithmetic (64-bit only, kernel rule).
        if dst.is_ptr() or src.is_ptr():
            if not is64:
                raise VerifierError(idx, "32-bit arithmetic on pointer")
            result = _pointer_alu(state, insn.dst, idx, op, dst, src)
            self._note_transfer(idx, insn, result)
            return

        dst_s, src_s = dst.scalar, src.scalar
        if not is64:
            # 32-bit ops read the zero-extended subregisters.  Operand
            # truncation (not just result truncation) is required for
            # soundness: division, modulo and right shifts do not commute
            # with truncation, so computing them on the 64-bit abstract
            # values and masking afterwards claims wrong results.
            dst_s = _subreg(dst_s)
            src_s = _subreg(src_s)
        result = _scalar_alu(op, dst_s, src_s, idx, is64)
        reg = RegState.from_scalar(result)
        if not is64:
            reg = _truncate32(reg, idx)
        _write_reg(state, insn.dst, reg, idx)
        self._note_transfer(idx, insn, reg)

    # -- memory ---------------------------------------------------------------------

    def _load(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        ptr = _read_reg(state, insn.src, idx)
        size = insn.size_bytes()
        check_mem_access(state, ptr, insn.off, size, idx, self.ctx_size)
        if ptr.region == Region.STACK:
            value = load_stack(state, ptr, insn.off, size, idx)
        else:
            value = RegState.unknown() if size == 8 else RegState.from_scalar(
                ScalarValue.from_range(0, (1 << (8 * size)) - 1)
            )
        _write_reg(state, insn.dst, value, idx)

    def _store(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        ptr = _read_reg(state, insn.dst, idx)
        size = insn.size_bytes()
        if insn.cls() == isa.CLS_STX:
            value = _read_reg(state, insn.src, idx)
        else:
            value = RegState.const(insn.imm & U64)
        check_mem_access(state, ptr, insn.off, size, idx, self.ctx_size)
        if ptr.region == Region.CTX and value.is_ptr():
            raise VerifierError(idx, "pointer store to ctx would leak an address")
        if ptr.region == Region.STACK:
            store_stack(state, ptr, insn.off, size, value, idx)

    # -- calls --------------------------------------------------------------------------

    def _call(self, state: AbstractState, insn: Instruction, idx: int) -> None:
        # Helpers receive r1-r5 and return an unknown scalar in r0;
        # caller-saved registers are clobbered (kernel ABI).
        regs = state.regs
        regs[0] = RegState.unknown()
        not_init = RegState.not_init()
        for reg in range(1, 6):
            regs[reg] = not_init

    # -- branches ------------------------------------------------------------------------

    def _branch(
        self, state: AbstractState, insn: Instruction, idx: int
    ) -> Tuple[AbstractState, AbstractState]:
        """Return (fall-through state, taken state) with refinements.

        ``fall`` reuses the incoming state and ``taken`` is a
        copy-on-write copy — the no-refinement paths (pointer compares,
        non-fitting 32-bit compares, unknown bounds) therefore share
        containers instead of cloning the full state twice.
        """
        dst = _read_reg(state, insn.dst, idx)
        src: Optional[RegState] = None
        if insn.uses_imm():
            src_val: Optional[int] = insn.imm & U64
        else:
            src = _read_reg(state, insn.src, idx)
            src_val = (
                src.scalar.const_value()
                if src.is_scalar() and src.scalar.is_const()
                else None
            )

        fall = state
        taken = state.copy()
        if insn.cls() != isa.CLS_JMP:
            # A 32-bit compare agrees with the 64-bit one when both the
            # register and the bound provably sit in [0, 2^31): there the
            # 32- and 64-bit views (signed or unsigned) all coincide, so
            # the same refinement applies. Otherwise skip (sound).
            fits = (
                dst.is_scalar()
                and dst.scalar.umax() <= 0x7FFF_FFFF
                and src_val is not None
                and src_val <= 0x7FFF_FFFF
            )
            if not fits:
                return fall, taken

        note = self.on_transfer
        label = transfer_label(insn)
        op = isa.BPF_OP(insn.opcode)
        if dst.is_scalar() and src_val is not None:
            taken_scalar, fall_scalar = self._refine(dst.scalar, op, src_val)
            _apply_refinement(
                taken, fall, insn.dst, taken_scalar, fall_scalar,
                note, idx, label,
            )
        elif (
            src is not None
            and src.is_scalar()
            and dst.is_scalar()
            and dst.scalar.is_const()
        ):
            # Constant on the left: refine the register operand with the
            # mirrored comparison (c < r ⇔ r > c, etc.).
            mirrored = _MIRRORED_OPS.get(op)
            if mirrored is not None:
                bound = dst.scalar.const_value()
                taken_scalar, fall_scalar = self._refine(
                    src.scalar, mirrored, bound
                )
                _apply_refinement(
                    taken, fall, insn.src, taken_scalar, fall_scalar,
                    note, idx, label,
                )
        return fall, taken

    @staticmethod
    def _refine(
        value: ScalarValue, op: int, bound: int
    ) -> Tuple[Optional[ScalarValue], Optional[ScalarValue]]:
        """Refined (taken, fall-through) values for ``value <op> bound``."""
        refiner = _REFINERS.get(op)
        if refiner is None:
            return None, None
        return refiner(value, bound)


def verify_program(program: Program, ctx_size: int = 64) -> VerificationResult:
    """Convenience wrapper: verify with default settings."""
    return Verifier(ctx_size=ctx_size).verify(program)
