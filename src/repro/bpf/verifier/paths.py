"""Path-sensitive verification with state pruning — the kernel's way.

The join-based engine (:class:`~repro.bpf.verifier.absint.Verifier`)
merges states at control-flow joins, which is fast but can lose facts
that only hold per-path.  The real Linux verifier instead explores
*paths* depth-first and prunes a path when its state is subsumed by a
previously-verified state at the same instruction — the check built on
``tnum_in`` / range inclusion (kernel ``states_equal`` + ``regsafe``).

:class:`PathSensitiveVerifier` reproduces that architecture on our
abstract state.  On acyclic programs it terminates unconditionally; the
pruning table bounds the blow-up exactly the way the kernel's explored-
states list does.  It is strictly more precise than the join engine:
every program the join engine accepts is accepted here, and some
programs (see the tests) only verify path-sensitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bpf.cfg import CFGError, build_cfg
from repro.bpf.program import Program

from .absint import Verifier
from .errors import VerificationResult, VerifierError
from .state import AbstractState

__all__ = ["PathSensitiveVerifier"]


@dataclass
class PathSensitiveVerifier(Verifier):
    """DFS over program paths with kernel-style state pruning.

    ``max_states`` bounds total work (the kernel similarly bounds
    "processed insns"); exceeding it rejects the program, mirroring the
    kernel's complexity limit rather than looping forever.
    """

    max_states: int = 100_000
    #: filled after a run: how many paths were pruned by subsumption.
    pruned_count: int = 0

    def verify(self, program: Program) -> VerificationResult:
        try:
            build_cfg(program)  # reuse structural checks (acyclic, reachable)
        except CFGError as exc:
            return VerificationResult(
                False, [VerifierError(0, f"bad control flow: {exc}")]
            )

        explored: Dict[int, List[AbstractState]] = {}
        stack: List[Tuple[int, AbstractState]] = [
            (0, AbstractState.entry_state())
        ]
        processed = 0
        self.pruned_count = 0

        try:
            while stack:
                idx, state = stack.pop()
                if self._is_subsumed(explored, idx, state):
                    self.pruned_count += 1
                    continue
                explored.setdefault(idx, []).append(state.copy())

                processed += 1
                if processed > self.max_states:
                    raise VerifierError(
                        idx, f"complexity limit: {self.max_states} states"
                    )
                if self.collect_states:
                    self._record(idx, state)

                insn = program.insns[idx]
                if insn.is_exit():
                    self._check_exit(state, idx)
                    continue

                if insn.is_cond_jump():
                    fall, taken = self._branch(state, insn, idx)
                    target = program.index_at_slot(program.jump_target_slot(idx))
                    if self._feasible(taken):
                        stack.append((target, taken))
                    if self._feasible(fall):
                        stack.append((idx + 1, fall))
                    continue
                if insn.is_ja():
                    target = program.index_at_slot(program.jump_target_slot(idx))
                    stack.append((target, state))
                    continue

                self._transfer(state, insn, idx)
                stack.append((idx + 1, state))
        except VerifierError as exc:
            return VerificationResult(False, [exc], processed)
        return VerificationResult(True, [], processed)

    @staticmethod
    def _is_subsumed(
        explored: Dict[int, List[AbstractState]], idx: int, state: AbstractState
    ) -> bool:
        """Kernel ``states_equal`` pruning: skip if an already-verified
        state at this instruction covers this one (state ⊑ seen)."""
        return any(state.leq(seen) for seen in explored.get(idx, ()))
