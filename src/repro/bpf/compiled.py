"""Decode-once compiled form of a BPF program.

The step-decoding interpreter pays for every instruction on every step:
``index_at_slot`` to find the instruction, ``cls()`` / ``BPF_OP()`` /
``uses_imm()`` to classify it, immediate masking, and jump-target slot
arithmetic.  None of that depends on machine state, so this module hoists
all of it to a single compile pass: each instruction becomes a *step
closure* ``fn(machine, regs) -> next_index`` with its operands resolved,
its immediate pre-masked, and its jump target translated from slot space
to instruction-index space.  The interpreter's hot loop then reduces to
``idx = code[idx](machine, regs)``.

Semantics are byte-for-byte those of the reference step decoder
(:meth:`repro.bpf.interpreter.Machine.run_reference`): identical results,
identical step counts, and identical error types/messages — including
*lazy* errors: an unsupported opcode on a never-executed path compiles to
a closure that raises only when reached, exactly like the decoder.  The
differential test suite (``tests/bpf/test_compiled.py``) holds the two
executions equal over every opcode × width and over generator-produced
programs.

Exit closures return :data:`EXIT_INDEX` (-1); the run loop treats any
negative next-index as program exit.
"""

from __future__ import annotations

from typing import Callable, List, TYPE_CHECKING

from . import isa
from .insn import Instruction
from .interpreter import (
    CTX_BASE,
    STACK_BASE,
    U32,
    U64,
    ExecutionError,
    _s32,
    _s64,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interpreter import Machine
    from .program import Program

__all__ = ["CompiledProgram", "compile_program", "StepFn", "EXIT_INDEX"]

_SIGN64 = 1 << 63
_SIGN32 = 1 << 31
_WRAP64 = 1 << 64
_WRAP32 = 1 << 32

#: Sentinel next-index returned by ``exit`` closures.
EXIT_INDEX = -1

#: A compiled instruction: advances the machine one step and returns the
#: next instruction index (or :data:`EXIT_INDEX`).
StepFn = Callable[["Machine", List[int]], int]


class CompiledProgram:
    """Dense decoded form: one step closure + source slot per instruction."""

    __slots__ = ("steps", "slots", "total_slots")

    def __init__(
        self, steps: List[StepFn], slots: List[int], total_slots: int
    ) -> None:
        self.steps = steps
        #: slot address per instruction index — error paths only.
        self.slots = slots
        self.total_slots = total_slots

    def __len__(self) -> int:
        return len(self.steps)


# -- ALU op kernels ----------------------------------------------------------
#
# Each kernel maps (dst_operand, src_operand) -> raw result; the closure
# masks the result to the op width.  Shift counts are masked inside the
# kernel because the mask differs per width (63 vs 31); division and
# modulo carry BPF's defined by-zero semantics.

_ALU64_FN = {
    isa.ALU_ADD: lambda a, b: a + b,
    isa.ALU_SUB: lambda a, b: a - b,
    isa.ALU_MUL: lambda a, b: a * b,
    isa.ALU_DIV: lambda a, b: a // b if b else 0,
    isa.ALU_MOD: lambda a, b: a % b if b else a,
    isa.ALU_AND: lambda a, b: a & b,
    isa.ALU_OR: lambda a, b: a | b,
    isa.ALU_XOR: lambda a, b: a ^ b,
    isa.ALU_LSH: lambda a, b: a << (b & 63),
    isa.ALU_RSH: lambda a, b: a >> (b & 63),
    isa.ALU_ARSH: lambda a, b: (a - _WRAP64 if a & _SIGN64 else a) >> (b & 63),
}

_ALU32_FN = {
    isa.ALU_ADD: lambda a, b: a + b,
    isa.ALU_SUB: lambda a, b: a - b,
    isa.ALU_MUL: lambda a, b: a * b,
    isa.ALU_DIV: lambda a, b: a // b if b else 0,
    isa.ALU_MOD: lambda a, b: a % b if b else a,
    isa.ALU_AND: lambda a, b: a & b,
    isa.ALU_OR: lambda a, b: a | b,
    isa.ALU_XOR: lambda a, b: a ^ b,
    isa.ALU_LSH: lambda a, b: a << (b & 31),
    isa.ALU_RSH: lambda a, b: a >> (b & 31),
    isa.ALU_ARSH: lambda a, b: (a - _WRAP32 if a & _SIGN32 else a) >> (b & 31),
}

# -- conditional-jump comparators --------------------------------------------

_UCMP = {
    isa.JMP_JEQ: lambda a, b: a == b,
    isa.JMP_JNE: lambda a, b: a != b,
    isa.JMP_JGT: lambda a, b: a > b,
    isa.JMP_JGE: lambda a, b: a >= b,
    isa.JMP_JLT: lambda a, b: a < b,
    isa.JMP_JLE: lambda a, b: a <= b,
    isa.JMP_JSET: lambda a, b: bool(a & b),
}

_SCMP = {
    isa.JMP_JSGT: lambda a, b: a > b,
    isa.JMP_JSGE: lambda a, b: a >= b,
    isa.JMP_JSLT: lambda a, b: a < b,
    isa.JMP_JSLE: lambda a, b: a <= b,
}


def _raiser(pc: int, message: str) -> StepFn:
    """A closure raising :class:`ExecutionError` only when executed."""

    def step(m: "Machine", regs: List[int]) -> int:
        raise ExecutionError(pc, message)

    return step


def _compile_alu(
    insn: Instruction, is64: bool, nxt: int, pc: int
) -> StepFn:
    op = isa.BPF_OP(insn.opcode)
    dst = insn.dst
    src = insn.src
    use_imm = insn.uses_imm()

    if op == isa.ALU_MOV:
        if use_imm:
            const = insn.imm & (U64 if is64 else U32)

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = const
                return nxt

        elif is64:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = regs[src]
                return nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = regs[src] & U32
                return nxt

        return step

    if op == isa.ALU_NEG:
        if is64:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = -regs[dst] & U64
                return nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = -(regs[dst] & U32) & U32
                return nxt

        return step

    fn = (_ALU64_FN if is64 else _ALU32_FN).get(op)
    if fn is None:
        return _raiser(pc, f"unsupported ALU op {op:#04x}")

    if is64:
        if use_imm:
            imm = insn.imm & U64

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = fn(regs[dst], imm) & U64
                return nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = fn(regs[dst], regs[src]) & U64
                return nxt

    else:
        if use_imm:
            imm = insn.imm & U32

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = fn(regs[dst] & U32, imm) & U32
                return nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                regs[dst] = fn(regs[dst] & U32, regs[src] & U32) & U32
                return nxt

    return step


def _compile_jump(
    program: "Program", insn: Instruction, idx: int, nxt: int, pc: int
) -> StepFn:
    op = isa.BPF_OP(insn.opcode)
    dst = insn.dst
    src = insn.src

    if op == isa.JMP_JA:
        target = program.index_at_slot(program.jump_target_slot(idx))

        def step(m: "Machine", regs: List[int]) -> int:
            return target

        return step

    if op == isa.JMP_CALL:
        helper_id = insn.imm

        def step(m: "Machine", regs: List[int]) -> int:
            helper = m.helpers.get(helper_id)
            if helper is None:
                raise ExecutionError(pc, f"unknown helper {helper_id}")
            regs[0] = helper(regs[1], regs[2], regs[3], regs[4], regs[5]) & U64
            regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
            return nxt

        return step

    is32 = isa.BPF_CLASS(insn.opcode) == isa.CLS_JMP32
    use_imm = insn.uses_imm()
    target = program.index_at_slot(program.jump_target_slot(idx))

    ucmp = _UCMP.get(op)
    if ucmp is not None:
        if use_imm:
            bound = insn.imm & (U32 if is32 else U64)
            if is32:

                def step(m: "Machine", regs: List[int]) -> int:
                    return target if ucmp(regs[dst] & U32, bound) else nxt

            else:

                def step(m: "Machine", regs: List[int]) -> int:
                    return target if ucmp(regs[dst], bound) else nxt

        elif is32:

            def step(m: "Machine", regs: List[int]) -> int:
                return target if ucmp(regs[dst] & U32, regs[src] & U32) else nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                return target if ucmp(regs[dst], regs[src]) else nxt

        return step

    scmp = _SCMP.get(op)
    if scmp is not None:
        if use_imm:
            sbound = _s32(insn.imm) if is32 else _s64(insn.imm & U64)
            if is32:

                def step(m: "Machine", regs: List[int]) -> int:
                    return target if scmp(_s32(regs[dst]), sbound) else nxt

            else:

                def step(m: "Machine", regs: List[int]) -> int:
                    return target if scmp(_s64(regs[dst]), sbound) else nxt

        elif is32:

            def step(m: "Machine", regs: List[int]) -> int:
                return target if scmp(_s32(regs[dst]), _s32(regs[src])) else nxt

        else:

            def step(m: "Machine", regs: List[int]) -> int:
                return target if scmp(_s64(regs[dst]), _s64(regs[src])) else nxt

        return step

    return _raiser(pc, f"unsupported jump op {op:#04x}")


def _compile_mem(insn: Instruction, cls: int, nxt: int, pc: int) -> StepFn:
    size = isa.SIZE_BYTES[isa.BPF_SIZE(insn.opcode)]
    off = insn.off
    dst = insn.dst
    src = insn.src
    stack_size = isa.STACK_SIZE

    if cls == isa.CLS_LDX:

        def step(m: "Machine", regs: List[int]) -> int:
            addr = (regs[src] + off) & U64
            o = addr - STACK_BASE
            if 0 <= o and o + size <= stack_size:
                regs[dst] = int.from_bytes(m.stack[o:o + size], "little")
                return nxt
            o = addr - CTX_BASE
            if 0 <= o and o + size <= len(m.ctx):
                regs[dst] = int.from_bytes(m.ctx[o:o + size], "little")
                return nxt
            raise ExecutionError(
                pc, f"out-of-bounds access at {addr:#x} size {size}"
            )

        return step

    value_mask = (1 << (8 * size)) - 1

    if cls == isa.CLS_STX:

        def step(m: "Machine", regs: List[int]) -> int:
            addr = (regs[dst] + off) & U64
            data = (regs[src] & value_mask).to_bytes(size, "little")
            o = addr - STACK_BASE
            if 0 <= o and o + size <= stack_size:
                m.stack[o:o + size] = data
                return nxt
            o = addr - CTX_BASE
            if 0 <= o and o + size <= len(m.ctx):
                m.ctx[o:o + size] = data
                return nxt
            raise ExecutionError(
                pc, f"out-of-bounds access at {addr:#x} size {size}"
            )

        return step

    # CLS_ST: immediate store, value fully resolved at compile time.
    data = ((insn.imm & U64) & value_mask).to_bytes(size, "little")

    def step(m: "Machine", regs: List[int]) -> int:
        addr = (regs[dst] + off) & U64
        o = addr - STACK_BASE
        if 0 <= o and o + size <= stack_size:
            m.stack[o:o + size] = data
            return nxt
        o = addr - CTX_BASE
        if 0 <= o and o + size <= len(m.ctx):
            m.ctx[o:o + size] = data
            return nxt
        raise ExecutionError(
            pc, f"out-of-bounds access at {addr:#x} size {size}"
        )

    return step


def _compile_insn(
    program: "Program", insn: Instruction, idx: int, pc: int
) -> StepFn:
    nxt = idx + 1

    if insn.is_exit():

        def step(m: "Machine", regs: List[int]) -> int:
            return EXIT_INDEX

        return step

    if insn.is_lddw():
        imm64 = insn.imm & U64
        dst = insn.dst

        def step(m: "Machine", regs: List[int]) -> int:
            regs[dst] = imm64
            return nxt

        return step

    cls = isa.BPF_CLASS(insn.opcode)
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        return _compile_alu(insn, cls == isa.CLS_ALU64, nxt, pc)
    if cls in (isa.CLS_JMP, isa.CLS_JMP32):
        return _compile_jump(program, insn, idx, nxt, pc)
    if cls in (isa.CLS_LDX, isa.CLS_ST, isa.CLS_STX):
        return _compile_mem(insn, cls, nxt, pc)
    return _raiser(pc, f"unsupported opcode {insn.opcode:#04x}")


def _concrete_label(insn: Instruction) -> str:
    """Per-op timing label for the concrete side (obs instrumentation).

    Built from the ISA name tables alone — the concrete pipeline must
    not import the verifier's transfer-label machinery.
    """
    cls = isa.BPF_CLASS(insn.opcode)
    if insn.is_exit():
        return "exit"
    if insn.is_lddw():
        return "lddw"
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        name = isa.ALU_OP_NAMES.get(isa.BPF_OP(insn.opcode), "alu")
        return f"{name}{64 if cls == isa.CLS_ALU64 else 32}"
    if cls in (isa.CLS_JMP, isa.CLS_JMP32):
        op = isa.BPF_OP(insn.opcode)
        if op == isa.JMP_JA:
            return "ja"
        if op == isa.JMP_CALL:
            return "call"
        name = isa.JMP_OP_NAMES.get(op, "jmp")
        return f"{name}{64 if cls == isa.CLS_JMP else 32}"
    if cls == isa.CLS_LDX:
        return "load"
    if cls in (isa.CLS_ST, isa.CLS_STX):
        return "store"
    return "other"


def _timed_step(step: StepFn, label: str) -> StepFn:
    """Per-op timing shim, compiled in only when obs is enabled.

    The registry is resolved through the obs module at call time so
    worker-scoped registries (merge-on-return) receive the samples.
    """
    import time

    from repro import obs as _obs

    clock = time.perf_counter_ns
    record = _obs.record_op_time

    def timed(m: "Machine", regs: List[int]) -> int:
        t0 = clock()
        try:
            return step(m, regs)
        finally:
            record("interp", label, clock() - t0)

    return timed


def compile_program(program: "Program") -> CompiledProgram:
    """Decode every instruction exactly once into step closures.

    When :mod:`repro.obs` is enabled at compile time, each closure is
    wrapped in a per-operator timing shim; with obs disabled (default)
    the compiled program is exactly the bare closures — the hot loop
    never pays for instrumentation it didn't ask for.  The cache in
    :meth:`repro.bpf.program.Program.compiled` is keyed on the obs
    compile tag, so toggling recompiles transparently.
    """
    from repro import obs as _obs

    instrument = _obs.enabled()
    steps: List[StepFn] = []
    slots: List[int] = []
    for idx, insn in enumerate(program.insns):
        pc = program.slot_of(idx)
        slots.append(pc)
        step = _compile_insn(program, insn, idx, pc)
        if instrument:
            step = _timed_step(step, _concrete_label(insn))
        steps.append(step)
    return CompiledProgram(steps, slots, program.total_slots)
