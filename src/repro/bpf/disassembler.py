"""Disassembler: instructions back to the assembler's text syntax.

``assemble(format_program(p))`` round-trips for every supported
instruction, which the test suite exercises program-by-program.
"""

from __future__ import annotations

from typing import Dict

from . import isa
from .insn import Instruction

__all__ = ["format_instruction", "format_program"]


def format_instruction(insn: Instruction, target_label: str = "") -> str:
    """Render one instruction in assembler syntax.

    ``target_label`` substitutes for the raw relative offset of jumps when
    the caller (the program-level formatter) knows the label name.
    """
    cls = insn.cls()

    if insn.is_lddw():
        return f"lddw r{insn.dst}, {insn.imm:#x}"

    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        op = isa.BPF_OP(insn.opcode)
        name = isa.ALU_OP_NAMES[op]
        if cls == isa.CLS_ALU:
            name += "32"
        if op == isa.ALU_NEG:
            return f"{name} r{insn.dst}"
        operand = f"r{insn.src}" if not insn.uses_imm() else str(insn.imm)
        return f"{name} r{insn.dst}, {operand}"

    if cls in (isa.CLS_JMP, isa.CLS_JMP32):
        op = isa.BPF_OP(insn.opcode)
        name = isa.JMP_OP_NAMES[op]
        if cls == isa.CLS_JMP32:
            name += "32"
        if op == isa.JMP_EXIT:
            return "exit"
        if op == isa.JMP_CALL:
            return f"call {insn.imm}"
        target = target_label or f"{insn.off:+d}"
        if op == isa.JMP_JA:
            return f"ja {target}"
        operand = f"r{insn.src}" if not insn.uses_imm() else str(insn.imm)
        return f"{name} r{insn.dst}, {operand}, {target}"

    if cls == isa.CLS_LDX:
        suffix = isa.SIZE_SUFFIX[isa.BPF_SIZE(insn.opcode)]
        return f"ldx{suffix} r{insn.dst}, [r{insn.src}{insn.off:+d}]"

    if cls == isa.CLS_STX:
        suffix = isa.SIZE_SUFFIX[isa.BPF_SIZE(insn.opcode)]
        return f"stx{suffix} [r{insn.dst}{insn.off:+d}], r{insn.src}"

    if cls == isa.CLS_ST:
        suffix = isa.SIZE_SUFFIX[isa.BPF_SIZE(insn.opcode)]
        return f"st{suffix} [r{insn.dst}{insn.off:+d}], {insn.imm}"

    raise ValueError(f"cannot disassemble opcode {insn.opcode:#04x}")


def format_program(program) -> str:
    """Render a whole program with labels on their own lines."""
    slot_labels: Dict[int, str] = {slot: name for name, slot in program.labels.items()}
    # Jumps to unlabeled slots get synthetic labels so output re-assembles.
    counter = 0
    for idx, insn in enumerate(program.insns):
        if insn.is_jump() and not insn.is_exit() and isa.BPF_OP(
            insn.opcode
        ) != isa.JMP_CALL:
            target = program.jump_target_slot(idx)
            if target not in slot_labels:
                slot_labels[target] = f"L{counter}"
                counter += 1
    lines = []
    for idx, insn in enumerate(program.insns):
        slot = program.slot_of(idx)
        if slot in slot_labels:
            lines.append(f"{slot_labels[slot]}:")
        if insn.is_jump() and not insn.is_exit() and isa.BPF_OP(
            insn.opcode
        ) != isa.JMP_CALL:
            label = slot_labels[program.jump_target_slot(idx)]
            lines.append("    " + format_instruction(insn, target_label=label))
        else:
            lines.append("    " + format_instruction(insn))
    return "\n".join(lines) + "\n"
