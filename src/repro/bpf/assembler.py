"""Two-pass assembler for the BPF text syntax.

Syntax, one instruction per line (``;`` or ``#`` start a comment)::

    entry:                       ; label
        mov   r1, 42             ; ALU64 immediate
        mov32 r2, r1             ; ALU32 register
        add   r1, r2
        lddw  r3, 0x1122334455667788
        jge   r1, 10, done       ; conditional jump to label
        jne   r1, r2, +2         ; or relative offset (insns to skip)
        ldxdw r4, [r10-8]        ; load  dst, [reg+off]
        stxw  [r10-16], r4       ; store [reg+off], src
        stdw  [r10-24], 7        ; store-immediate
        call  1                  ; helper call by number
    done:
        exit

Jump targets follow kernel semantics: the encoded offset is relative to
the *next* instruction.  ``lddw`` occupies two encoding slots, and label
arithmetic accounts for that.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from . import isa
from .insn import Instruction
from .program import Program

__all__ = ["assemble", "AssemblyError"]


class AssemblyError(ValueError):
    """Raised for any syntax or semantic error in assembly text."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^\[\s*r(\d+)\s*([+-]\s*\d+)?\s*\]$")

_ALU_MNEMONICS = {
    name: code
    for code, name in isa.ALU_OP_NAMES.items()
    if name not in ("neg", "mov")
}
_JMP_MNEMONICS = {
    name: code
    for code, name in isa.JMP_OP_NAMES.items()
    if name not in ("ja", "call", "exit")
}
_SIZE_BY_SUFFIX = {v: k for k, v in isa.SIZE_SUFFIX.items()}


def _parse_reg(token: str, line_no: int) -> int:
    m = _REG_RE.match(token)
    if not m:
        raise AssemblyError(line_no, f"expected register, got {token!r}")
    reg = int(m.group(1))
    if reg >= isa.MAX_REG:
        raise AssemblyError(line_no, f"register r{reg} out of range")
    return reg


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_no, f"expected integer, got {token!r}") from None


def _parse_mem(token: str, line_no: int) -> Tuple[int, int]:
    m = _MEM_RE.match(token)
    if not m:
        raise AssemblyError(line_no, f"expected [reg+off], got {token!r}")
    reg = int(m.group(1))
    if reg >= isa.MAX_REG:
        raise AssemblyError(line_no, f"register r{reg} out of range")
    off = int(m.group(2).replace(" ", "")) if m.group(2) else 0
    return reg, off


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()] if rest else []


def assemble(text: str) -> Program:
    """Assemble BPF text into a :class:`~repro.bpf.program.Program`."""
    # Pass 1: tokenize, resolve instruction slot positions for labels.
    parsed: List[Tuple[int, str, List[str]]] = []  # (line_no, mnemonic, operands)
    labels: Dict[str, int] = {}
    slot = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        m = _LABEL_RE.match(line)
        if m:
            name = m.group(1)
            if name in labels:
                raise AssemblyError(line_no, f"duplicate label {name!r}")
            labels[name] = slot
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        parsed.append((line_no, mnemonic, operands))
        slot += 2 if mnemonic == "lddw" else 1

    # Pass 2: emit instructions.
    insns: List[Instruction] = []
    slot = 0
    for line_no, mnemonic, ops in parsed:
        insn = _emit(line_no, mnemonic, ops, slot, labels)
        insns.append(insn)
        slot += insn.slots()
    return Program(insns, labels=labels)


def _emit(
    line_no: int,
    mnemonic: str,
    ops: List[str],
    slot: int,
    labels: Dict[str, int],
) -> Instruction:
    # -- exit / ja / call ---------------------------------------------------
    if mnemonic == "exit":
        _expect(ops, 0, line_no, mnemonic)
        return Instruction(isa.CLS_JMP | isa.JMP_EXIT)
    if mnemonic == "ja":
        _expect(ops, 1, line_no, mnemonic)
        off = _jump_offset(ops[0], slot, labels, line_no)
        return Instruction(isa.CLS_JMP | isa.JMP_JA, off=off)
    if mnemonic == "call":
        _expect(ops, 1, line_no, mnemonic)
        return Instruction(
            isa.CLS_JMP | isa.JMP_CALL, imm=_parse_int(ops[0], line_no)
        )

    # -- lddw -----------------------------------------------------------------
    if mnemonic == "lddw":
        _expect(ops, 2, line_no, mnemonic)
        dst = _parse_reg(ops[0], line_no)
        imm = _parse_int(ops[1], line_no)
        return Instruction(isa.CLS_LD | isa.SZ_DW | isa.MODE_IMM, dst=dst, imm=imm)

    # -- mov / mov32 ------------------------------------------------------------
    if mnemonic in ("mov", "mov32"):
        _expect(ops, 2, line_no, mnemonic)
        cls = isa.CLS_ALU64 if mnemonic == "mov" else isa.CLS_ALU
        return _alu(cls, isa.ALU_MOV, ops, line_no)

    # -- neg / neg32 --------------------------------------------------------------
    if mnemonic in ("neg", "neg32"):
        _expect(ops, 1, line_no, mnemonic)
        cls = isa.CLS_ALU64 if mnemonic == "neg" else isa.CLS_ALU
        dst = _parse_reg(ops[0], line_no)
        return Instruction(cls | isa.ALU_NEG, dst=dst)

    # -- generic ALU, 64- and 32-bit -------------------------------------------------
    base = mnemonic[:-2] if mnemonic.endswith("32") else mnemonic
    if base in _ALU_MNEMONICS:
        _expect(ops, 2, line_no, mnemonic)
        cls = isa.CLS_ALU if mnemonic.endswith("32") else isa.CLS_ALU64
        return _alu(cls, _ALU_MNEMONICS[base], ops, line_no)

    # -- conditional jumps (64-bit and 32-bit compare) ----------------------------------
    jbase = mnemonic[:-2] if mnemonic.endswith("32") else mnemonic
    if jbase in _JMP_MNEMONICS:
        _expect(ops, 3, line_no, mnemonic)
        cls = isa.CLS_JMP32 if mnemonic.endswith("32") else isa.CLS_JMP
        dst = _parse_reg(ops[0], line_no)
        off = _jump_offset(ops[2], slot, labels, line_no)
        opbits = cls | _JMP_MNEMONICS[jbase]
        if _REG_RE.match(ops[1]):
            return Instruction(
                opbits | isa.SRC_X, dst=dst, src=_parse_reg(ops[1], line_no), off=off
            )
        return Instruction(
            opbits | isa.SRC_K, dst=dst, imm=_parse_int(ops[1], line_no), off=off
        )

    # -- loads: ldxdw r1, [r2+8] ----------------------------------------------------------
    if mnemonic.startswith("ldx") and mnemonic[3:] in _SIZE_BY_SUFFIX:
        _expect(ops, 2, line_no, mnemonic)
        dst = _parse_reg(ops[0], line_no)
        src, off = _parse_mem(ops[1], line_no)
        size = _SIZE_BY_SUFFIX[mnemonic[3:]]
        return Instruction(
            isa.CLS_LDX | size | isa.MODE_MEM, dst=dst, src=src, off=off
        )

    # -- register stores: stxdw [r10-8], r1 -------------------------------------------------
    if mnemonic.startswith("stx") and mnemonic[3:] in _SIZE_BY_SUFFIX:
        _expect(ops, 2, line_no, mnemonic)
        dst, off = _parse_mem(ops[0], line_no)
        src = _parse_reg(ops[1], line_no)
        size = _SIZE_BY_SUFFIX[mnemonic[3:]]
        return Instruction(
            isa.CLS_STX | size | isa.MODE_MEM, dst=dst, src=src, off=off
        )

    # -- immediate stores: stdw [r10-8], 42 ---------------------------------------------------
    if mnemonic.startswith("st") and mnemonic[2:] in _SIZE_BY_SUFFIX:
        _expect(ops, 2, line_no, mnemonic)
        dst, off = _parse_mem(ops[0], line_no)
        imm = _parse_int(ops[1], line_no)
        size = _SIZE_BY_SUFFIX[mnemonic[2:]]
        return Instruction(
            isa.CLS_ST | size | isa.MODE_MEM, dst=dst, off=off, imm=imm
        )

    raise AssemblyError(line_no, f"unknown mnemonic {mnemonic!r}")


def _alu(cls: int, op: int, ops: List[str], line_no: int) -> Instruction:
    dst = _parse_reg(ops[0], line_no)
    if _REG_RE.match(ops[1]):
        return Instruction(cls | op | isa.SRC_X, dst=dst, src=_parse_reg(ops[1], line_no))
    return Instruction(cls | op | isa.SRC_K, dst=dst, imm=_parse_int(ops[1], line_no))


def _jump_offset(
    token: str, slot: int, labels: Dict[str, int], line_no: int
) -> int:
    """Resolve a jump target (label or ±N) into a next-pc-relative offset."""
    if token.startswith(("+", "-")):
        return _parse_int(token, line_no)
    if token not in labels:
        raise AssemblyError(line_no, f"undefined label {token!r}")
    return labels[token] - (slot + 1)


def _expect(ops: List[str], count: int, line_no: int, mnemonic: str) -> None:
    if len(ops) != count:
        raise AssemblyError(
            line_no, f"{mnemonic} expects {count} operand(s), got {len(ops)}"
        )
