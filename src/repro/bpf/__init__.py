"""BPF substrate: ISA, assembler, interpreter, CFG, and the verifier.

This package rebuilds the system the paper's abstract domain serves: a
BPF-like virtual machine (bit-compatible instruction encoding, concrete
interpreter with real wraparound semantics) and a static verifier that
proves memory safety through abstract interpretation with tnums.
"""

from .assembler import AssemblyError, assemble
from .canon import CachedVerdict, VerdictCache, canonical_hash, canonicalize
from .cfg import CFGError, ControlFlowGraph, build_cfg
from .compiled import CompiledProgram, compile_program
from .disassembler import format_instruction, format_program
from .insn import Instruction, decode, decode_program, encode, encode_program
from .interpreter import (
    CTX_BASE,
    STACK_BASE,
    ExecutionError,
    ExecutionResult,
    Machine,
)
from .program import Program, ProgramError

__all__ = [
    "assemble",
    "AssemblyError",
    "Instruction",
    "encode",
    "decode",
    "encode_program",
    "decode_program",
    "Program",
    "ProgramError",
    "canonical_hash",
    "canonicalize",
    "CachedVerdict",
    "VerdictCache",
    "format_instruction",
    "format_program",
    "build_cfg",
    "ControlFlowGraph",
    "CFGError",
    "CompiledProgram",
    "compile_program",
    "Machine",
    "ExecutionError",
    "ExecutionResult",
    "STACK_BASE",
    "CTX_BASE",
]
