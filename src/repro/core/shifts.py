"""Abstract shift operators over tnums.

Constant-amount shifts are bit-parallel on ``(value, mask)`` and are sound
and optimal (Miné 2012); the paper verified the kernel's versions to 64
bits.  Arithmetic right shift follows the kernel's ``tnum_arshift``:
shifting the value and the mask as *signed* quantities propagates a known
sign bit into the vacated positions of the value, and an unknown sign bit
into the vacated positions of the mask — both are exactly what soundness
requires.

BPF shift instructions take a register shift amount, which the analyzer
sees as a tnum.  The ``*_tnum`` variants here join the results over every
feasible effective shift amount (there are at most ``width`` of them, since
hardware masks the count), matching how an analyzer can stay precise for
partially-known shift counts.
"""

from __future__ import annotations

from .lattice import join_all
from .tnum import Tnum, mask_for_width

__all__ = [
    "tnum_lshift",
    "tnum_rshift",
    "tnum_arshift",
    "tnum_lshift_tnum",
    "tnum_rshift_tnum",
    "tnum_arshift_tnum",
    "effective_shift_amounts",
]


def _check_shift(p: Tnum, shift: int) -> None:
    if shift < 0:
        raise ValueError(f"negative shift {shift}")
    if shift >= p.width:
        raise ValueError(
            f"shift {shift} out of range for width {p.width}; "
            "mask the amount first (BPF semantics: count mod width)"
        )


def tnum_lshift(p: Tnum, shift: int) -> Tnum:
    """Kernel ``tnum_lshift``: shift value and mask left, truncate."""
    _check_shift(p, shift)
    if p.is_bottom():
        return p
    limit = mask_for_width(p.width)
    return Tnum((p.value << shift) & limit, (p.mask << shift) & limit, p.width)


def tnum_rshift(p: Tnum, shift: int) -> Tnum:
    """Kernel ``tnum_rshift``: logical right shift of value and mask."""
    _check_shift(p, shift)
    if p.is_bottom():
        return p
    return Tnum(p.value >> shift, p.mask >> shift, p.width)


def _as_signed(x: int, width: int) -> int:
    """Reinterpret an unsigned ``width``-bit pattern as two's complement."""
    sign = 1 << (width - 1)
    return x - (1 << width) if x & sign else x


def tnum_arshift(p: Tnum, shift: int) -> Tnum:
    """Kernel ``tnum_arshift``: arithmetic right shift.

    Value and mask are each shifted as signed numbers.  A known-1 sign bit
    replicates into the value (result bits known 1); an unknown sign bit
    replicates into the mask (result bits unknown).
    """
    _check_shift(p, shift)
    if p.is_bottom():
        return p
    limit = mask_for_width(p.width)
    v = (_as_signed(p.value, p.width) >> shift) & limit
    m = (_as_signed(p.mask, p.width) >> shift) & limit
    # If the sign bit is unknown, replicated mask bits overlap the
    # (zero) replicated value bits, staying well-formed; if the sign is a
    # known 1, replicated value bits overlap zero mask bits. Either way
    # v & m == 0 holds, but guard for safety via the Tnum constructor.
    return Tnum(v & ~m, m, p.width)


def effective_shift_amounts(shift: Tnum) -> set:
    """All feasible effective shift counts for a tnum-valued amount.

    Hardware (and BPF) reduce the count modulo the width, so only the low
    ``log2(width)`` bits matter.  ``width`` must be a power of two.
    """
    width = shift.width
    if width & (width - 1):
        raise ValueError("effective shifts require power-of-two width")
    bits = width.bit_length() - 1
    low = shift.cast(max(bits, 1))
    return set(low.concretize())


def _shift_by_tnum(p: Tnum, shift: Tnum, op) -> Tnum:
    if p.width != shift.width:
        raise ValueError(f"width mismatch: {p.width} vs {shift.width}")
    if p.is_bottom() or shift.is_bottom():
        return Tnum.bottom(p.width)
    amounts = effective_shift_amounts(shift)
    return join_all((op(p, a) for a in amounts), width=p.width)


def tnum_lshift_tnum(p: Tnum, shift: Tnum) -> Tnum:
    """Left shift by a tnum amount: join over feasible counts."""
    return _shift_by_tnum(p, shift, tnum_lshift)


def tnum_rshift_tnum(p: Tnum, shift: Tnum) -> Tnum:
    """Logical right shift by a tnum amount: join over feasible counts."""
    return _shift_by_tnum(p, shift, tnum_rshift)


def tnum_arshift_tnum(p: Tnum, shift: Tnum) -> Tnum:
    """Arithmetic right shift by a tnum amount: join over feasible counts."""
    return _shift_by_tnum(p, shift, tnum_arshift)
