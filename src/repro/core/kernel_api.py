"""Drop-in facade matching the Linux kernel's ``tnum.h`` API.

For readers coming from ``kernel/bpf/tnum.c``, this module exposes the
exact kernel names and calling conventions on top of the library's
operators, including the handful of utilities the paper does not discuss
(``tnum_in``, ``tnum_strn``, subregister helpers).  Everything operates
on 64-bit tnums, as in the kernel.

======================  =========================================
kernel                  here
======================  =========================================
``TNUM(v, m)``          :func:`TNUM`
``tnum_const(v)``       :func:`tnum_const`
``tnum_unknown``        :data:`tnum_unknown`
``tnum_range(lo, hi)``  :func:`tnum_range`
``tnum_add/sub/...``    re-exported from :mod:`repro.core`
``tnum_intersect``      :func:`tnum_intersect` (lattice meet)
``tnum_union``          :func:`tnum_union` (lattice join)
``tnum_in(a, b)``       :func:`tnum_in` (b refines a?)
``tnum_is_const``       :func:`tnum_is_const`
``tnum_is_aligned``     :func:`tnum_is_aligned`
``tnum_cast``           :func:`tnum_cast`
``tnum_subreg``         :func:`tnum_subreg`
``tnum_clear_subreg``   :func:`tnum_clear_subreg`
``tnum_const_subreg``   :func:`tnum_const_subreg`
``tnum_strn``           :func:`tnum_strn`
======================  =========================================
"""

from __future__ import annotations

from .arithmetic import tnum_add, tnum_neg, tnum_sub  # noqa: F401 (re-export)
from .bitwise import tnum_and, tnum_or, tnum_xor  # noqa: F401
from .lattice import join, leq, meet
from .multiply import our_mul as tnum_mul  # noqa: F401 — the merged algorithm
from .shifts import tnum_arshift, tnum_lshift, tnum_rshift  # noqa: F401
from .tnum import Tnum, mask_for_width

__all__ = [
    "TNUM",
    "tnum_const",
    "tnum_unknown",
    "tnum_range",
    "tnum_intersect",
    "tnum_union",
    "tnum_in",
    "tnum_is_const",
    "tnum_is_aligned",
    "tnum_cast",
    "tnum_subreg",
    "tnum_clear_subreg",
    "tnum_const_subreg",
    "tnum_strn",
    # re-exported operators
    "tnum_add",
    "tnum_sub",
    "tnum_neg",
    "tnum_and",
    "tnum_or",
    "tnum_xor",
    "tnum_mul",
    "tnum_lshift",
    "tnum_rshift",
    "tnum_arshift",
]

_U64 = mask_for_width(64)


def TNUM(value: int, mask: int) -> Tnum:
    """The kernel's ``TNUM(value, mask)`` constructor macro (64-bit)."""
    return Tnum(value & _U64, mask & _U64, 64)


def tnum_const(value: int) -> Tnum:
    """Kernel ``tnum_const``: exact abstraction of one u64."""
    return Tnum.const(value, 64)


#: Kernel ``tnum_unknown``: every bit unknown.
tnum_unknown: Tnum = Tnum.unknown(64)


def tnum_range(lo: int, hi: int) -> Tnum:
    """Kernel ``tnum_range``: tightest tnum covering ``[lo, hi]``."""
    return Tnum.range(lo & _U64, hi & _U64, 64)


def tnum_intersect(a: Tnum, b: Tnum) -> Tnum:
    """Kernel ``tnum_intersect``: greatest lower bound.

    Unlike the raw kernel code, a contradictory intersection canonicalizes
    to ⊥ instead of returning an ill-formed pair.
    """
    return meet(a, b)


def tnum_union(a: Tnum, b: Tnum) -> Tnum:
    """Kernel ``tnum_union``: least upper bound."""
    return join(a, b)


def tnum_in(a: Tnum, b: Tnum) -> bool:
    """Kernel ``tnum_in(a, b)``: does ``b`` refine ``a`` (``b ⊑ a``)?

    The kernel uses this to decide whether a tracked register state is
    subsumed by a previously-verified one (state pruning).
    """
    return leq(b, a)


def tnum_is_const(a: Tnum) -> bool:
    """Kernel ``tnum_is_const``: no unknown bits."""
    return a.is_const()


def tnum_is_aligned(a: Tnum, size: int) -> bool:
    """Kernel ``tnum_is_aligned``: provably ``size``-aligned everywhere."""
    return a.is_aligned(size)


def tnum_cast(a: Tnum, size: int) -> Tnum:
    """Kernel ``tnum_cast``: truncate to ``size`` *bytes*, zero-extend.

    Note the kernel API takes bytes (1, 2, 4, 8), not bits.
    """
    if size not in (1, 2, 4, 8):
        raise ValueError(f"size {size} bytes unsupported (kernel uses 1/2/4/8)")
    return a.cast(8 * size).cast(64)


def tnum_subreg(a: Tnum) -> Tnum:
    """Kernel ``tnum_subreg``: the low 32 bits, zero-extended."""
    return a.subreg()


def tnum_clear_subreg(a: Tnum) -> Tnum:
    """Kernel ``tnum_clear_subreg``: zero the low 32 bits."""
    high_v = a.value & ~0xFFFF_FFFF & _U64
    high_m = a.mask & ~0xFFFF_FFFF & _U64
    return Tnum(high_v, high_m, 64)


def tnum_const_subreg(a: Tnum, value: int) -> Tnum:
    """Kernel ``tnum_const_subreg``: set the low 32 bits to a constant."""
    cleared = tnum_clear_subreg(a)
    return Tnum(
        cleared.value | (value & 0xFFFF_FFFF), cleared.mask, 64
    )


def tnum_strn(a: Tnum, length: int = 64) -> str:
    """Kernel ``tnum_strn``: render as a trit string of up to ``length``.

    The kernel prints msb-first with 'x' for unknown trits; we keep that
    convention here (``µ`` rendering lives on ``Tnum.__str__``).
    """
    full = a.to_trits().replace("µ", "x")
    return full[-length:] if length < 64 else full
