"""Core tnum abstract domain: the paper's primary contribution.

Exports the :class:`Tnum` value type, the lattice operations, the Galois
connection, and every abstract operator — including the paper's novel
multiplication ``our_mul`` that was merged into the Linux kernel.
"""

from .arithmetic import tnum_add, tnum_neg, tnum_sub
from .bitwise import tnum_and, tnum_not, tnum_or, tnum_xor
from .division import tnum_div, tnum_mod
from .galois import (
    abstract,
    best_transformer_binary,
    best_transformer_unary,
    gamma,
)
from .lattice import (
    comparable,
    enumerate_tnums,
    is_more_precise,
    join,
    join_all,
    leq,
    lt,
    meet,
)
from .multiply import our_mul, our_mul_simplified, tnum_mul
from .ops import BINARY_OPS, SHIFT_OPS, UNARY_OPS, OpSpec, get_op
from .shifts import (
    tnum_arshift,
    tnum_arshift_tnum,
    tnum_lshift,
    tnum_lshift_tnum,
    tnum_rshift,
    tnum_rshift_tnum,
)
from .tnum import DEFAULT_WIDTH, Tnum, mask_for_width

__all__ = [
    "Tnum",
    "DEFAULT_WIDTH",
    "mask_for_width",
    # lattice
    "leq",
    "lt",
    "comparable",
    "join",
    "meet",
    "join_all",
    "is_more_precise",
    "enumerate_tnums",
    # galois
    "abstract",
    "gamma",
    "best_transformer_unary",
    "best_transformer_binary",
    # arithmetic
    "tnum_add",
    "tnum_sub",
    "tnum_neg",
    # bitwise
    "tnum_and",
    "tnum_or",
    "tnum_xor",
    "tnum_not",
    # shifts
    "tnum_lshift",
    "tnum_rshift",
    "tnum_arshift",
    "tnum_lshift_tnum",
    "tnum_rshift_tnum",
    "tnum_arshift_tnum",
    # multiplication
    "our_mul",
    "our_mul_simplified",
    "tnum_mul",
    # division
    "tnum_div",
    "tnum_mod",
    # registry
    "OpSpec",
    "BINARY_OPS",
    "UNARY_OPS",
    "SHIFT_OPS",
    "get_op",
]
