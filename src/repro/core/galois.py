"""Abstraction (α) and concretization (γ) for the tnum domain.

The Galois connection (Thm. 28 of the paper) between the concrete poset
``(2^Zn, ⊆)`` and the abstract poset ``(Tn, ⊑A)``:

* ``α(C) = (AND of C, AND of C ⊕ OR of C)`` — Eqn. 5.  The AND collects bits
  set in every member; ``AND ⊕ OR`` marks bits that differ across members.
* ``γ(P) = {c : c & ~P.mask == P.value}`` — Eqn. 7.

``γ`` lives on :class:`~repro.core.tnum.Tnum` as :meth:`concretize`,
:meth:`contains` and :meth:`cardinality`; this module provides ``α``, set
helpers and the optimal ("best") abstract transformer ``α ∘ f ∘ γ`` used as
the precision oracle in tests and the optimality checker.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Iterable, List, Set

from .tnum import Tnum, mask_for_width

__all__ = [
    "abstract",
    "concretize_set",
    "gamma",
    "best_transformer_unary",
    "best_transformer_binary",
    "is_exact_abstraction",
]


def abstract(values: Iterable[int], width: int) -> Tnum:
    """The abstraction function α over a concrete set (Eqn. 5).

    Returns ⊥ for the empty set.  Input values are reduced mod ``2**width``.
    """
    limit = mask_for_width(width)
    all_and = None
    all_or = 0
    for raw in values:
        c = raw & limit
        all_and = c if all_and is None else all_and & c
        all_or |= c
    if all_and is None:
        return Tnum.bottom(width)
    mask = all_and ^ all_or
    return Tnum(all_and & ~mask, mask, width)


def gamma(t: Tnum) -> Set[int]:
    """γ as an explicit Python set.  Only sensible for small widths."""
    return set(t.concretize())


def concretize_set(tnums: Iterable[Tnum]) -> Set[int]:
    """Union of γ over several tnums."""
    return reduce(lambda acc, t: acc | gamma(t), tnums, set())


def best_transformer_unary(
    op: Callable[[int], int], t: Tnum
) -> Tnum:
    """The optimal abstraction ``α ∘ op ∘ γ`` of a unary concrete operator.

    Exponential in the number of unknown bits — use only at small widths.
    This is the maximal-precision oracle from §II ("Optimality").
    """
    width = t.width
    limit = mask_for_width(width)
    return abstract((op(x) & limit for x in t.concretize()), width)


def best_transformer_binary(
    op: Callable[[int, int], int], p: Tnum, q: Tnum
) -> Tnum:
    """The optimal abstraction ``α ∘ op ∘ (γ × γ)`` of a binary operator.

    The paper notes this is infeasible at scale (up to 2^2n concrete
    evaluations); we use it as the ground-truth oracle for optimality
    checks at small widths.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    limit = mask_for_width(width)
    outputs: List[int] = []
    for x in p.concretize():
        for y in q.concretize():
            outputs.append(op(x, y) & limit)
    return abstract(outputs, width)


def is_exact_abstraction(t: Tnum, values: Iterable[int]) -> bool:
    """True iff ``γ(t)`` equals the given concrete set exactly.

    Fig. 1's example: α({2,3}) = 1µ is exact, α({1,2,3}) = µµ is not.
    """
    return gamma(t) == {v & mask_for_width(t.width) for v in values}
