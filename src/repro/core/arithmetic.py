"""Abstract addition, subtraction and negation over tnums.

These are faithful ports of the Linux kernel's ``tnum_add`` (Listing 1 of
the paper) and ``tnum_sub`` (Listing 6), which the paper proves sound *and
optimal* (maximally precise) for unbounded bitwidths — remarkable because
they run in O(1) machine operations despite carries rippling between bits.

The intuition (§III-B): ``sv = P.v + Q.v`` produces the carry sequence with
the *fewest* 1s over all concrete additions (minimum-carries lemma), and
``Σ = (P.v + P.m) + (Q.v + Q.m)`` produces the one with the *most* 1s
(maximum-carries lemma).  Bits where the two carry sequences differ are
exactly the carries that depend on the choice of concrete operands, so they
— together with the operands' own unknown bits — form the result's mask.
"""

from __future__ import annotations

from ._raw import add_raw, sub_raw
from .tnum import Tnum, mask_for_width

__all__ = ["tnum_add", "tnum_sub", "tnum_neg"]


def tnum_add(p: Tnum, q: Tnum) -> Tnum:
    """Kernel tnum addition (Listing 1) — sound and optimal.

    The word-level computation (``sv``, ``sm``, ``Σ``, ``χ``, ``η`` in the
    paper's naming) lives in :func:`repro.core._raw.add_raw`.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    v, m = add_raw(p.value, p.mask, q.value, q.mask, mask_for_width(width))
    return Tnum(v, m, width)


def tnum_sub(p: Tnum, q: Tnum) -> Tnum:
    """Kernel tnum subtraction (Listing 6) — sound and optimal.

    ``dv`` is the difference of values; ``α = dv + P.m`` realizes the
    fewest borrows and ``β = dv - Q.m`` the most (min/max borrows lemmas,
    Thm. 22), so ``α ⊕ β`` marks the borrow bits that vary across concrete
    subtractions.  The word-level computation lives in
    :func:`repro.core._raw.sub_raw`.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    v, m = sub_raw(p.value, p.mask, q.value, q.mask, mask_for_width(width))
    return Tnum(v, m, width)


def tnum_neg(p: Tnum) -> Tnum:
    """Abstract two's-complement negation, as ``0 - p``.

    The kernel has no dedicated ``tnum_neg``; the verifier computes
    ``BPF_NEG`` through subtraction from the constant zero, which is what
    we do here.  Sound and optimal because :func:`tnum_sub` is.
    """
    return tnum_sub(Tnum.const(0, p.width), p)
