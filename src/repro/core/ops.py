"""Operator registry pairing abstract tnum operators with their concrete
counterparts.

The verification substrate (:mod:`repro.verify`) and the BPF abstract
interpreter both need to map an operation name to (a) the abstract
transformer over tnums and (b) the concrete n-bit semantics it abstracts.
Keeping that pairing in one table guarantees every component checks the
same correspondence the paper's soundness predicate (Eqn. 11) quantifies
over.

Shift counts follow BPF semantics: the concrete count is reduced modulo
the width, and the abstract operator receives a *constant* shift (the
tnum-valued shift variants live in :mod:`repro.core.shifts`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .arithmetic import tnum_add, tnum_neg, tnum_sub
from .bitwise import tnum_and, tnum_not, tnum_or, tnum_xor
from .division import concrete_div, concrete_mod, tnum_div, tnum_mod
from .multiply import our_mul
from .shifts import tnum_arshift, tnum_lshift, tnum_rshift
from .tnum import Tnum, mask_for_width

__all__ = ["OpSpec", "BINARY_OPS", "UNARY_OPS", "SHIFT_OPS", "get_op"]


@dataclass(frozen=True)
class OpSpec:
    """One operation: its abstract transformer and concrete semantics."""

    name: str
    arity: int
    abstract: Callable[..., Tnum]
    concrete: Callable[..., int]  # takes ints plus a trailing width kwarg


def _wrap(width: int, x: int) -> int:
    return x & mask_for_width(width)


def _c_add(x: int, y: int, width: int) -> int:
    return _wrap(width, x + y)


def _c_sub(x: int, y: int, width: int) -> int:
    return _wrap(width, x - y)


def _c_mul(x: int, y: int, width: int) -> int:
    return _wrap(width, x * y)


def _c_and(x: int, y: int, width: int) -> int:
    return x & y


def _c_or(x: int, y: int, width: int) -> int:
    return x | y


def _c_xor(x: int, y: int, width: int) -> int:
    return x ^ y


def _c_div(x: int, y: int, width: int) -> int:
    return _wrap(width, concrete_div(x, y))


def _c_mod(x: int, y: int, width: int) -> int:
    return _wrap(width, concrete_mod(x, y))


def _c_neg(x: int, width: int) -> int:
    return _wrap(width, -x)


def _c_not(x: int, width: int) -> int:
    return _wrap(width, ~x)


def _c_lsh(x: int, shift: int, width: int) -> int:
    return _wrap(width, x << (shift % width))


def _c_rsh(x: int, shift: int, width: int) -> int:
    return _wrap(width, x >> (shift % width))


def _c_arsh(x: int, shift: int, width: int) -> int:
    shift %= width
    sign = 1 << (width - 1)
    signed = x - (1 << width) if x & sign else x
    return _wrap(width, signed >> shift)


#: Binary tnum × tnum → tnum operators and their concrete semantics.
BINARY_OPS: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("add", 2, tnum_add, _c_add),
        OpSpec("sub", 2, tnum_sub, _c_sub),
        OpSpec("mul", 2, our_mul, _c_mul),
        OpSpec("and", 2, tnum_and, _c_and),
        OpSpec("or", 2, tnum_or, _c_or),
        OpSpec("xor", 2, tnum_xor, _c_xor),
        OpSpec("div", 2, tnum_div, _c_div),
        OpSpec("mod", 2, tnum_mod, _c_mod),
    )
}

#: Unary tnum → tnum operators.
UNARY_OPS: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("neg", 1, tnum_neg, _c_neg),
        OpSpec("not", 1, tnum_not, _c_not),
    )
}

#: Shift operators: tnum × constant-count → tnum.
SHIFT_OPS: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("lsh", 2, tnum_lshift, _c_lsh),
        OpSpec("rsh", 2, tnum_rshift, _c_rsh),
        OpSpec("arsh", 2, tnum_arshift, _c_arsh),
    )
}


def get_op(name: str) -> Tuple[str, OpSpec]:
    """Look up an operator by name across all tables.

    Returns a ``(kind, spec)`` pair where kind is one of ``"binary"``,
    ``"unary"``, ``"shift"``.
    """
    if name in BINARY_OPS:
        return "binary", BINARY_OPS[name]
    if name in UNARY_OPS:
        return "unary", UNARY_OPS[name]
    if name in SHIFT_OPS:
        return "shift", SHIFT_OPS[name]
    raise KeyError(f"unknown tnum operator {name!r}")
