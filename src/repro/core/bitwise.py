"""Abstract bitwise operators over tnums.

These mirror the Linux kernel's ``tnum_and``, ``tnum_or``, ``tnum_xor`` and
a derived bitwise-not.  Prior work (Miné 2012; Regehr & Duongsaa 2006)
showed these per-bit transformers are sound and *optimal* for the bitfield
/ known-bits family of domains; the paper verified the kernel's versions by
bounded model checking up to 64 bits (§III-A).

Each operator works bit-parallel on the ``(value, mask)`` pair:

* ``and``: a result bit is known-1 only if both inputs are known-1; it is
  known-0 if either input is known-0 (a known 0 annihilates an unknown).
* ``or``: dually, known-1 absorbs unknown.
* ``xor``: any unknown input bit makes the output bit unknown.
"""

from __future__ import annotations

from .tnum import Tnum, mask_for_width

__all__ = ["tnum_and", "tnum_or", "tnum_xor", "tnum_not"]


def _check(p: Tnum, q: Tnum) -> None:
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")


def tnum_and(p: Tnum, q: Tnum) -> Tnum:
    """Kernel ``tnum_and`` — sound and optimal abstract bitwise AND."""
    _check(p, q)
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    alpha = p.value | p.mask  # bits that may be 1 in p
    beta = q.value | q.mask   # bits that may be 1 in q
    v = p.value & q.value     # bits certainly 1 in both
    return Tnum(v, (alpha & beta) & ~v & mask_for_width(p.width), p.width)


def tnum_or(p: Tnum, q: Tnum) -> Tnum:
    """Kernel ``tnum_or`` — sound and optimal abstract bitwise OR."""
    _check(p, q)
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    v = p.value | q.value     # bits certainly 1 in either
    mu = p.mask | q.mask      # bits unknown in either
    return Tnum(v, mu & ~v & mask_for_width(p.width), p.width)


def tnum_xor(p: Tnum, q: Tnum) -> Tnum:
    """Kernel ``tnum_xor`` — sound and optimal abstract bitwise XOR."""
    _check(p, q)
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    v = p.value ^ q.value
    mu = p.mask | q.mask
    return Tnum(v & ~mu & mask_for_width(p.width), mu, p.width)


def tnum_not(p: Tnum) -> Tnum:
    """Abstract bitwise NOT: flip every known trit, keep µ trits µ.

    Not in kernel ``tnum.c`` (the verifier lowers ``~x`` to ``x ^ -1``);
    equivalent to ``tnum_xor(p, const(-1))`` but computed directly.
    """
    if p.is_bottom():
        return Tnum.bottom(p.width)
    limit = mask_for_width(p.width)
    v = ~(p.value | p.mask) & limit
    return Tnum(v, p.mask, p.width)
