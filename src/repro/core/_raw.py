"""Raw ``(value, mask)`` kernels for the hot loops.

The kernel's ``tnum.c`` operates on bare ``u64`` pairs with no allocation;
the multiplication algorithms' relative performance (Fig. 5) depends on
that.  These helpers mirror that style for the inner loops of the three
multiplication algorithms, so the Python reproduction preserves the
paper's cost model (counting word operations, not object constructions).

Each function takes and returns plain integers; ``limit`` is the all-ones
mask for the working width.  Callers are responsible for passing
well-formed inputs (``v & m == 0``).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["add_raw", "sub_raw"]


def add_raw(v1: int, m1: int, v2: int, m2: int, limit: int) -> Tuple[int, int]:
    """Listing 1 (``tnum_add``) on bare value/mask words."""
    sm = (m1 + m2) & limit
    sv = (v1 + v2) & limit
    sigma = (sv + sm) & limit
    chi = sigma ^ sv
    eta = chi | m1 | m2
    return sv & ~eta & limit, eta


def sub_raw(v1: int, m1: int, v2: int, m2: int, limit: int) -> Tuple[int, int]:
    """Listing 6 (``tnum_sub``) on bare value/mask words."""
    dv = (v1 - v2) & limit
    alpha = (dv + m1) & limit
    beta = (dv - m2) & limit
    chi = alpha ^ beta
    eta = chi | m1 | m2
    return dv & ~eta & limit, eta
