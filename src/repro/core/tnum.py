"""The tristate-number (tnum) abstract value.

A tnum tracks, for each bit of an n-bit machine word, whether that bit is
known to be 0, known to be 1, or unknown (written ``µ`` / ``mu``) across all
executions of a program.  Following the Linux kernel's ``struct tnum``, a
tnum is stored as a pair of n-bit integers ``(value, mask)``:

=============  =============  ==========
value bit      mask bit       trit
=============  =============  ==========
0              0              known 0
1              0              known 1
0              1              unknown µ
1              1              ill-formed (⊥ / empty set)
=============  =============  ==========

A tnum with any position where both ``value`` and ``mask`` are set does not
describe any concrete value; all such pairs represent bottom (the empty
concrete set).  This module canonicalizes them to a single :data:`bottom`
representative per width.

The concrete values described by a tnum ``t`` are exactly
``{c : c & ~t.mask == t.value}`` (the paper's γ, Eqn. 7); see
:mod:`repro.core.galois` for the abstraction/concretization functions.

Tnums here are immutable and hashable, so they can live in sets and dicts
(useful for fixpoint computations in the verifier).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

__all__ = [
    "Tnum",
    "DEFAULT_WIDTH",
    "mask_for_width",
]

#: The bit width used by the Linux BPF verifier (and by default here).
DEFAULT_WIDTH = 64


def mask_for_width(width: int) -> int:
    """Return the all-ones bit mask for an n-bit word, e.g. ``0xff`` for 8."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (1 << width) - 1


class Tnum:
    """An immutable tristate number over ``width``-bit words.

    Parameters
    ----------
    value:
        The known-one bits.  Bits outside ``width`` are rejected.
    mask:
        The unknown bits.  Bits outside ``width`` are rejected.
    width:
        Bit width of the underlying machine word (default 64, as in the
        kernel).

    A ``Tnum`` with overlapping ``value`` and ``mask`` bits is *ill-formed*:
    it concretizes to the empty set.  Construction canonicalizes all
    ill-formed pairs to the unique bottom element of the given width
    (``value == mask == all-ones``), so equality and hashing treat every
    empty tnum identically.
    """

    __slots__ = ("value", "mask", "width")

    def __init__(self, value: int, mask: int, width: int = DEFAULT_WIDTH) -> None:
        # ``width < 1`` is rejected by the limit computation's callers;
        # the limit is inlined (not mask_for_width) because construction
        # is the single hottest allocation in the verifier pipeline.
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        limit = (1 << width) - 1
        if not 0 <= value <= limit:
            raise ValueError(
                f"value {value:#x} out of range for width {width}"
            )
        if not 0 <= mask <= limit:
            raise ValueError(f"mask {mask:#x} out of range for width {width}")
        if value & mask:
            # Ill-formed: canonicalize every empty tnum to one bottom value.
            value = limit
            mask = limit
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "width", width)

    # ``value`` / ``mask`` / ``width`` are plain (read-only) slots: the
    # kernel's field names, without property-descriptor overhead.

    # -- constructors ------------------------------------------------------

    @classmethod
    def const(cls, value: int, width: int = DEFAULT_WIDTH) -> "Tnum":
        """The exact abstraction of a single concrete value.

        Mirrors the kernel's ``TNUM(value, 0)`` / ``tnum_const``.  ``value``
        is truncated to ``width`` bits (two's-complement wrap), so negative
        Python ints are accepted.
        """
        return cls(value & mask_for_width(width), 0, width)

    @classmethod
    def unknown(cls, width: int = DEFAULT_WIDTH) -> "Tnum":
        """The top element ⊤: every bit unknown (kernel ``tnum_unknown``)."""
        return cls(0, mask_for_width(width), width)

    # ``top`` is the conventional abstract-interpretation name.
    top = unknown

    @classmethod
    def bottom(cls, width: int = DEFAULT_WIDTH) -> "Tnum":
        """The bottom element ⊥, concretizing to the empty set."""
        limit = mask_for_width(width)
        return cls(limit, limit, width)

    @classmethod
    def range(cls, lo: int, hi: int, width: int = DEFAULT_WIDTH) -> "Tnum":
        """Abstract the contiguous unsigned range ``[lo, hi]``.

        This is the kernel's ``tnum_range``: all bits above the highest bit
        in which ``lo`` and ``hi`` differ become unknown only if they differ;
        the shared high prefix stays known.
        """
        limit = mask_for_width(width)
        if not 0 <= lo <= limit or not 0 <= hi <= limit:
            raise ValueError(f"range [{lo}, {hi}] out of width-{width} bounds")
        if lo > hi:
            return cls.bottom(width)
        chi = lo ^ hi
        bits = chi.bit_length()
        if bits > width:
            return cls.unknown(width)
        delta = (1 << bits) - 1
        return cls(lo & ~delta, delta, width)

    @classmethod
    def from_trits(cls, text: str, width: Optional[int] = None) -> "Tnum":
        """Parse a trit string like ``"10µ0"`` (msb first) into a tnum.

        Accepts ``µ``, ``u``, ``x``, and ``?`` for unknown trits, and ``_``
        as an ignored separator.  The paper writes tnums this way (e.g.
        ``01µ0``).  If ``width`` exceeds the string length, the string is
        zero-extended on the left.
        """
        trits = [ch for ch in text if ch != "_"]
        if width is None:
            width = len(trits)
        if len(trits) > width:
            raise ValueError(
                f"trit string {text!r} longer than width {width}"
            )
        value = 0
        mask = 0
        for ch in trits:
            value <<= 1
            mask <<= 1
            if ch == "1":
                value |= 1
            elif ch == "0":
                pass
            elif ch in ("µ", "u", "x", "?", "m"):
                mask |= 1
            else:
                raise ValueError(f"invalid trit {ch!r} in {text!r}")
        return cls(value, mask, width)

    # -- predicates ----------------------------------------------------------

    def is_bottom(self) -> bool:
        """True iff this tnum concretizes to the empty set.

        Construction canonicalizes every ill-formed pair to bottom, so a
        nonzero ``value & mask`` overlap is an exact (and allocation-free)
        bottom test.
        """
        return (self.value & self.mask) != 0

    def is_top(self) -> bool:
        """True iff every bit is unknown."""
        return self.value == 0 and self.mask == mask_for_width(self.width)

    def is_const(self) -> bool:
        """True iff exactly one concrete value is represented.

        Matches the kernel's ``tnum_is_const``: no unknown bits.  Bottom is
        not a constant.
        """
        return self.mask == 0

    def is_aligned(self, size: int) -> bool:
        """True iff every concrete value is a multiple of ``size``.

        ``size`` must be a power of two (kernel ``tnum_is_aligned``).
        """
        if size == 0:
            return True
        if size & (size - 1):
            raise ValueError(f"alignment {size} is not a power of two")
        return ((self.value | self.mask) & (size - 1)) == 0

    def contains(self, concrete: int) -> bool:
        """Membership test ``concrete ∈ γ(self)`` (Eqn. 9 of the paper)."""
        if self.is_bottom():
            return False
        concrete &= mask_for_width(self.width)
        return (concrete & ~self.mask) & mask_for_width(self.width) == self.value

    def trit(self, position: int) -> str:
        """Return the trit at ``position`` (0 = lsb) as ``"0"``, ``"1"`` or ``"µ"``."""
        if not 0 <= position < self.width:
            raise IndexError(f"bit {position} out of range for width {self.width}")
        v = (self.value >> position) & 1
        m = (self.mask >> position) & 1
        if m:
            return "⊥-trit" if v else "µ"
        return "1" if v else "0"

    def known_bits(self) -> int:
        """Bit mask of positions whose trit is certain (0 or 1)."""
        return ~self.mask & mask_for_width(self.width)

    def unknown_count(self) -> int:
        """Number of unknown (µ) trits."""
        return bin(self.mask).count("1")

    def cardinality(self) -> int:
        """``|γ(self)|`` — the number of concrete values represented."""
        if self.is_bottom():
            return 0
        return 1 << self.unknown_count()

    def concretize(self) -> Iterator[int]:
        """Yield every concrete value in γ(self), in increasing order.

        The iteration enumerates all assignments to unknown bits using the
        standard subset-enumeration trick over the mask.
        """
        if self.is_bottom():
            return
        value, mask = self.value, self.mask
        subset = 0
        while True:
            yield value | subset
            if subset == mask:
                return
            # Next subset of `mask` in increasing numeric order.
            subset = (subset - mask) & mask

    def min_value(self) -> int:
        """Smallest concrete value in γ(self) (unknown bits as 0)."""
        if self.is_bottom():
            raise ValueError("bottom tnum has no concrete values")
        return self.value

    def max_value(self) -> int:
        """Largest concrete value in γ(self) (unknown bits as 1)."""
        if self.is_bottom():
            raise ValueError("bottom tnum has no concrete values")
        return self.value | self.mask

    # -- width adjustment ----------------------------------------------------

    def cast(self, width: int) -> "Tnum":
        """Truncate (or zero-extend) to ``width`` bits (kernel ``tnum_cast``).

        Truncation keeps the low bits; extension adds known-0 high bits.
        This mirrors BPF's 32-bit subregister semantics.
        """
        if self.is_bottom():
            return Tnum.bottom(width)
        limit = mask_for_width(width)
        return Tnum(self.value & limit, self.mask & limit, width)

    def subreg(self) -> "Tnum":
        """Low 32 bits zero-extended back to 64 (kernel ``tnum_subreg``)."""
        if self.width != 64:
            raise ValueError("subreg is only defined for 64-bit tnums")
        return self.cast(32).cast(64)

    # -- dunder plumbing -----------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Tnum instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tnum):
            return NotImplemented
        return (
            self.width == other.width
            and self.value == other.value
            and self.mask == other.mask
        )

    def __hash__(self) -> int:
        return hash((self.value, self.mask, self.width))

    def __iter__(self) -> Iterator[int]:
        return self.concretize()

    def __contains__(self, concrete: object) -> bool:
        if not isinstance(concrete, int):
            return False
        return self.contains(concrete)

    def __len__(self) -> int:
        return self.cardinality()

    def to_trits(self) -> str:
        """Render as a trit string, msb first, e.g. ``"10µ0"``."""
        if self.is_bottom():
            return "⊥" * self.width
        chars = []
        for position in reversed(range(self.width)):
            chars.append(self.trit(position))
        return "".join(chars)

    def as_pair(self) -> Tuple[int, int]:
        """Return the kernel representation ``(value, mask)``."""
        return (self.value, self.mask)

    def __repr__(self) -> str:
        if self.is_bottom():
            return f"Tnum.bottom(width={self.width})"
        return (
            f"Tnum(value={self.value:#x}, mask={self.mask:#x}, "
            f"width={self.width})"
        )

    def __str__(self) -> str:
        return self.to_trits()
