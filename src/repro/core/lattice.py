"""Lattice structure of the tnum abstract domain.

The abstract poset is ``(Tn, ⊑A)`` where ``P ⊑A Q`` iff every trit that is
certain in ``Q`` is identical in ``P``, and every µ trit of ``P`` is µ in
``Q`` (Eqn. 2 of the paper).  Equivalently, on the ``(value, mask)``
implementation: ``P``'s unknown bits are a subset of ``Q``'s and they agree
on ``Q``'s known bits.

This module supplies the order relation, the least upper bound (join — the
kernel's ``tnum_union``), the greatest lower bound (meet — the kernel's
``tnum_intersect``), and comparability helpers used by the precision
experiments (§IV.A of the paper compares multiplication outputs under ⊑A).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .tnum import Tnum, mask_for_width

__all__ = [
    "leq",
    "lt",
    "comparable",
    "join",
    "meet",
    "join_all",
    "is_more_precise",
    "enumerate_tnums",
]


def _check_widths(p: Tnum, q: Tnum) -> None:
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")


def leq(p: Tnum, q: Tnum) -> bool:
    """The abstract order ``p ⊑A q`` (``γ(p) ⊆ γ(q)``).

    Bottom is below everything; top is above everything.
    """
    _check_widths(p, q)
    if p.is_bottom():
        return True
    if q.is_bottom():
        return False
    # p's unknowns must be a subset of q's unknowns...
    if p.mask & ~q.mask:
        return False
    # ...and p must agree with q wherever q is certain.
    known_q = ~q.mask & mask_for_width(q.width)
    return (p.value & known_q) == q.value


def lt(p: Tnum, q: Tnum) -> bool:
    """Strict order ``p ⊏A q``."""
    return p != q and leq(p, q)


def comparable(p: Tnum, q: Tnum) -> bool:
    """True iff ``p ⊑A q`` or ``q ⊑A p``.

    The paper observes (§IV.A) that at bitwidth 8 the outputs of the three
    multiplication algorithms are always pairwise comparable, but gives a
    width-9 counterexample; this predicate is what that study uses.
    """
    return leq(p, q) or leq(q, p)


def join(p: Tnum, q: Tnum) -> Tnum:
    """Least upper bound ``p ⊔ q`` (kernel ``tnum_union``).

    The result's unknown bits are those unknown in either input plus those
    where the inputs' known values disagree.
    """
    _check_widths(p, q)
    if p.is_bottom():
        return q
    if q.is_bottom():
        return p
    v = p.value ^ q.value
    mu = p.mask | q.mask | v
    return Tnum(p.value & ~mu & mask_for_width(p.width), mu, p.width)


def meet(p: Tnum, q: Tnum) -> Tnum:
    """Greatest lower bound ``p ⊓ q`` (kernel ``tnum_intersect``).

    Bits known in either input become known in the result.  If the inputs
    disagree on a known bit, the meet is bottom (empty intersection) —
    note the kernel's own ``tnum_intersect`` does *not* detect this and can
    return an ill-formed tnum; we canonicalize to ⊥.

    This is the single hottest tnum operation (every reduced-product
    rebuild calls it), so the bottom tests and the width limit are
    inlined rather than going through the predicate methods.
    """
    width = p.width
    if width != q.width:
        raise ValueError(f"width mismatch: {width} vs {q.width}")
    pv, pm = p.value, p.mask
    qv, qm = q.value, q.mask
    if pv & pm or qv & qm:  # canonical bottoms have overlapping bits
        return Tnum.bottom(width)
    limit = (1 << width) - 1
    # Conflict: a bit known 1 in one and known 0 in the other.
    if (pv ^ qv) & ~pm & ~qm & limit:
        return Tnum.bottom(width)
    mu = pm & qm
    # Bits known in only one input adopt that input's value; value | value
    # already collects all known-1 bits and mu keeps only bits unknown in
    # both.
    return Tnum((pv | qv) & ~mu & limit, mu, width)


def join_all(tnums: Iterable[Tnum], width: Optional[int] = None) -> Tnum:
    """Join of an iterable of tnums; ⊥ for an empty iterable.

    ``width`` is required when the iterable may be empty.
    """
    result: Optional[Tnum] = None
    for t in tnums:
        result = t if result is None else join(result, t)
    if result is None:
        if width is None:
            raise ValueError("width required for empty join")
        return Tnum.bottom(width)
    return result


def is_more_precise(p: Tnum, q: Tnum) -> bool:
    """True iff ``p`` is strictly more precise than ``q`` (``p ⊏A q``).

    This is the relation used in §IV.A: ``R1`` is more precise than ``R2``
    when ``R1 != R2`` and ``γ(R1) ⊆ γ(R2)``.
    """
    return lt(p, q)


def enumerate_tnums(width: int, include_bottom: bool = False) -> List[Tnum]:
    """All well-formed tnums of the given width (3^width of them).

    The precision experiments (Fig. 4, Table I) iterate over all pairs from
    this list.  Order: lexicographic over trits with lsb varying fastest,
    which is deterministic across runs.
    """
    result: List[Tnum] = []
    if include_bottom:
        result.append(Tnum.bottom(width))
    # Each trit independently ranges over {0, 1, µ}; encode in base 3.
    total = 3 ** width
    for code in range(total):
        value = 0
        mask = 0
        c = code
        for bit in range(width):
            trit = c % 3
            c //= 3
            if trit == 1:
                value |= 1 << bit
            elif trit == 2:
                mask |= 1 << bit
        result.append(Tnum(value, mask, width))
    return result
