"""The paper's novel tnum multiplication (``our_mul``) — §III-C.

``our_mul`` (Listing 4) is the algorithm contributed to the Linux kernel.
It follows long multiplication over the multiplier's trits, but — unlike
``kern_mul`` and ``bitwise_mul`` — it *value-mask decomposes* the partial
products: all fully-known contributions are accumulated as one exact
product ``P.v * Q.v``, while uncertain contributions accumulate in a
separate mask-only tnum ``ACC_M``.  The two accumulators are combined with
a single ``tnum_add`` at the very end.  Because tnum addition loses
precision whenever *both* operands carry uncertainty, postponing the mixing
of certain and uncertain bits to one final addition is what makes
``our_mul`` empirically more precise (and with n+1 abstract additions
instead of 2n, faster) than the alternatives.

``our_mul_simplified`` (Listing 3) is the proof-friendly equivalent that
builds ``ACC_V`` iteratively; Lemma 11 shows the two agree, and our test
suite checks that exhaustively at small widths.
"""

from __future__ import annotations

from ._raw import add_raw
from .arithmetic import tnum_add
from .shifts import tnum_lshift, tnum_rshift
from .tnum import Tnum, mask_for_width

__all__ = ["our_mul", "our_mul_simplified", "tnum_mul"]


def our_mul(p: Tnum, q: Tnum) -> Tnum:
    """The paper's final multiplication algorithm (Listing 4).

    Provably sound for unbounded widths (Thm. 10 + Lemma 11); not optimal.
    Runs the loop only while ``P`` has any possibly-set bit left, which is
    the strength-reduced early exit noted in §III-C.

    The loop works on bare value/mask words, exactly like the kernel's C —
    see :mod:`repro.core._raw` — so the Fig. 5 performance comparison
    measures the algorithms, not Python object allocation.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    limit = mask_for_width(width)
    acc_v = (p.value * q.value) & limit
    acc_mv = 0
    acc_mm = 0
    pv, pm = p.value, p.mask
    qv, qm = q.value, q.mask
    while pv or pm:
        if (pv & 1) and not (pm & 1):
            # LSB of P is a certain 1: Q's uncertainty joins the product.
            acc_mv, acc_mm = add_raw(acc_mv, acc_mm, 0, qm, limit)
        elif pm & 1:
            # LSB of P is unknown: any bit possibly set in Q may appear.
            acc_mv, acc_mm = add_raw(
                acc_mv, acc_mm, 0, (qv | qm) & limit, limit
            )
        # A certain-0 LSB contributes nothing.
        pv >>= 1
        pm >>= 1
        qv = (qv << 1) & limit
        qm = (qm << 1) & limit
    rv, rm = add_raw(acc_v, 0, acc_mv, acc_mm, limit)
    return Tnum(rv, rm, width)


def our_mul_simplified(p: Tnum, q: Tnum) -> Tnum:
    """The proof-oriented formulation (Listing 3).

    Semantically identical to :func:`our_mul` (Lemma 11) but accumulates
    the value part iteratively and always loops ``width`` times.  Kept as
    a cross-check target and for readers following the soundness proof.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    limit = mask_for_width(width)
    acc_v = Tnum(0, 0, width)
    acc_m = Tnum(0, 0, width)
    for _ in range(width):
        if (p.value & 1) and not (p.mask & 1):
            acc_v = tnum_add(acc_v, Tnum(q.value, 0, width))
            acc_m = tnum_add(acc_m, Tnum(0, q.mask, width))
        elif p.mask & 1:
            acc_m = tnum_add(acc_m, Tnum(0, (q.value | q.mask) & limit, width))
        p = tnum_rshift(p, 1)
        q = tnum_lshift(q, 1)
    return tnum_add(acc_v, acc_m)


#: The multiplication the library exports by default — the merged-in-Linux
#: algorithm from the paper.
tnum_mul = our_mul
