"""Conservative abstract division and modulo.

The paper (§II-B) notes that for ``div`` and ``mod`` "defining a precise
abstract operator is challenging.  In such cases, the BPF static analyzer
conservatively and soundly sets all the output trits to unknown."  We do
the same, with two sound refinements the conservative story permits:

* constant ÷ constant folds exactly (both operands singletons);
* BPF semantics define division by zero as 0 and modulo by zero as the
  dividend, so a known-zero divisor also folds.

Everything else returns ⊤, which is trivially sound.
"""

from __future__ import annotations

from .tnum import Tnum

__all__ = ["tnum_div", "tnum_mod", "concrete_div", "concrete_mod"]


def concrete_div(x: int, y: int) -> int:
    """BPF unsigned division: x / y, with x / 0 == 0."""
    return 0 if y == 0 else x // y


def concrete_mod(x: int, y: int) -> int:
    """BPF unsigned modulo: x % y, with x % 0 == x."""
    return x if y == 0 else x % y


def tnum_div(p: Tnum, q: Tnum) -> Tnum:
    """Abstract unsigned division (conservative, kernel-style)."""
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    if p.is_const() and q.is_const():
        return Tnum.const(concrete_div(p.value, q.value), p.width)
    if q.is_const() and q.value == 0:
        return Tnum.const(0, p.width)
    return Tnum.unknown(p.width)


def tnum_mod(p: Tnum, q: Tnum) -> Tnum:
    """Abstract unsigned modulo (conservative, kernel-style)."""
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(p.width)
    if p.is_const() and q.is_const():
        return Tnum.const(concrete_mod(p.value, q.value), p.width)
    if q.is_const() and q.value == 0:
        return p
    return Tnum.unknown(p.width)
