"""``repro.faults`` — deterministic, scope-keyed fault injection.

Chaos testing only proves something when the chaos is *reproducible*: a
campaign that survives "random worker kills" once tells you nothing a
rerun can confirm.  This module injects faults from a seeded
:class:`FaultPlan` at **named sites** threaded through the stack —
worker crashes, verification hangs, torn cache saves, corrupt worker
shards, slow/failed store I/O — so the exact same faults fire at the
exact same points on every run with the same plan.

The arming contract mirrors :mod:`repro.obs`'s zero-overhead switch:

* injection is **off by default**, and the disabled path is a single
  module-attribute read (:func:`enabled`) — hot loops hoist even that
  (see the deadline/hang handling in
  :meth:`repro.bpf.verifier.absint.Verifier._verify_compiled`);
* a plan is armed explicitly (:func:`arm`), via the ``--faults`` CLI
  flag, or via the ``REPRO_FAULTS`` environment variable (read at
  import time, so subprocesses — campaign workers under ``spawn``,
  ``repro serve`` under a chaos harness — inherit the plan for free).

Determinism
-----------
:meth:`FaultPlan.fire` hashes ``(seed, site, key)`` — never wall clock,
never a shared RNG — so whether a fault fires at a site is a pure
function of the plan and the caller-supplied key.  Each site documents
its key contract (see ``docs/resilience.md``); recovery-sensitive sites
include the *attempt number* in the key, so a retried batch does not
deterministically re-crash forever.  Sites called without a key fall
back to a per-process invocation counter (deterministic within one
process's call sequence).

Spec grammar
------------
A plan is one comma-separated string::

    seed=42,campaign.worker.crash=0.5,verify.hang=1.0:0.05

Each entry is ``site=probability`` with an optional ``:arg`` carrying a
site-specific parameter (hang/slow sites: the delay in seconds; corrupt
sites: unused).  Unknown sites are an error — a typo'd site silently
injecting nothing would be the worst possible chaos-test outcome.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, Iterable, Optional, Tuple

from repro import obs as _obs

__all__ = [
    "SITES",
    "WORKER_CRASH_EXIT_CODE",
    "FaultRule",
    "FaultPlan",
    "enabled",
    "arm",
    "disarm",
    "active_plan",
    "fire",
    "arg",
    "sleep_if",
    "crash_point",
    "corrupt_payload",
    "worker_init_state",
    "init_worker",
]

#: Exit code an injected worker crash dies with — distinguishable from
#: real crashes in logs and in quarantine fingerprints.
WORKER_CRASH_EXIT_CODE = 86

#: Every named injection site, with what firing there does.  The key
#: contract per site is documented in ``docs/resilience.md``.
SITES: Dict[str, str] = {
    "campaign.worker.crash":
        "a campaign/driver lease worker dies with os._exit mid-batch",
    "campaign.shard.corrupt":
        "a worker's verdict-cache shard is mangled before shipping",
    "campaign.checkpoint.torn":
        "a campaign --state checkpoint write dies after the temp write",
    "cache.save.torn":
        "VerdictCache.save dies mid-write (partial temp file, no rename)",
    "cache.save.slow":
        "VerdictCache.save sleeps between write chunks (arg: seconds)",
    "verify.hang":
        "the abstract walk sleeps per basic block (arg: seconds/block)",
    "service.verify.hang":
        "a service verification sleeps before walking (arg: seconds)",
    "store.io.fail":
        "a store read/write raises OSError",
    "store.io.slow":
        "a store read/write sleeps first (arg: seconds)",
    "dist.rpc.slow":
        "a dist worker RPC sleeps before being sent (arg: seconds)",
    "dist.result.drop":
        "a dist worker result POST is dropped before the send; the "
        "worker retries with backoff",
    "dist.result.duplicate":
        "a dist worker result POST is sent twice; the coordinator "
        "must deduplicate on the batch fingerprint",
    "dist.heartbeat.stale":
        "a dist worker sleeps before its next lease poll, so the "
        "coordinator sees its heartbeat go stale (arg: seconds)",
}

_DEFAULT_ARGS: Dict[str, float] = {
    "cache.save.slow": 0.05,
    "verify.hang": 0.05,
    "service.verify.hang": 0.25,
    "store.io.slow": 0.05,
    "dist.rpc.slow": 0.05,
    "dist.heartbeat.stale": 1.0,
}


class FaultRule:
    """One armed site: firing probability plus a site-specific argument."""

    __slots__ = ("p", "arg")

    def __init__(self, p: float, arg: Optional[float] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {p}")
        self.p = p
        self.arg = arg

    def to_spec(self) -> str:
        if self.arg is None:
            return f"{self.p:g}"
        return f"{self.p:g}:{self.arg:g}"


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s over the known sites.

    The plan is pure data: picklable, round-trippable through
    :meth:`to_spec`/:meth:`parse` (which is how it travels to worker
    processes and subprocesses), and deterministic — :meth:`fire` is a
    hash of ``(seed, site, key)``, nothing else.
    """

    def __init__(
        self, seed: int = 0, rules: Optional[Dict[str, FaultRule]] = None
    ) -> None:
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for site, rule in (rules or {}).items():
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{', '.join(sorted(SITES))}"
                )
            self.rules[site] = rule
        self._counters: Dict[str, int] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``seed=N,site=p[:arg],...`` spec grammar."""
        seed = 0
        rules: Dict[str, FaultRule] = {}
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected site=probability"
                )
            site, _, value = entry.partition("=")
            site = site.strip()
            value = value.strip()
            if site == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ValueError(
                        f"bad fault seed {value!r}: expected an integer"
                    ) from None
                continue
            prob_text, _, arg_text = value.partition(":")
            try:
                p = float(prob_text)
                arg = float(arg_text) if arg_text else None
            except ValueError:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected "
                    f"site=probability[:arg]"
                ) from None
            rules[site] = FaultRule(p, arg)   # site validated by __init__
        return cls(seed=seed, rules=rules)

    def to_spec(self) -> str:
        parts = [f"seed={self.seed}"]
        parts.extend(
            f"{site}={rule.to_spec()}"
            for site, rule in sorted(self.rules.items())
        )
        return ",".join(parts)

    # -- the decision ------------------------------------------------------

    def fire(self, site: str, key: Iterable[object] = ()) -> bool:
        """Should the fault at ``site`` fire for ``key``?  Deterministic.

        ``key`` scopes the decision (batch id, attempt, item index, ...);
        an empty key uses a per-process invocation counter for the site,
        so repeated keyless calls still spread fires at the configured
        rate instead of all-or-nothing.
        """
        rule = self.rules.get(site)
        if rule is None or rule.p <= 0.0:
            return False
        if rule.p >= 1.0:
            return True
        key_tuple = tuple(key)
        if not key_tuple:
            n = self._counters.get(site, 0)
            self._counters[site] = n + 1
            key_tuple = (n,)
        digest = hashlib.blake2b(
            f"{self.seed}|{site}|{key_tuple!r}".encode(),
            digest_size=8,
        ).digest()
        fraction = int.from_bytes(digest, "big") / float(1 << 64)
        return fraction < rule.p

    def arg_for(self, site: str) -> float:
        rule = self.rules.get(site)
        if rule is not None and rule.arg is not None:
            return rule.arg
        return _DEFAULT_ARGS.get(site, 0.0)


# -- the armed plan ---------------------------------------------------------

_plan: Optional[FaultPlan] = None


def enabled() -> bool:
    """The single hot-path predicate: is a fault plan armed?"""
    return _plan is not None


def arm(plan: "FaultPlan | str") -> FaultPlan:
    """Arm a plan (or spec string) process-wide; returns the plan."""
    global _plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _plan = plan
    return plan


def disarm() -> None:
    global _plan
    _plan = None


def active_plan() -> Optional[FaultPlan]:
    return _plan


def fire(site: str, key: Iterable[object] = ()) -> bool:
    """Fire the armed plan at ``site``; counts injections in obs.

    Call sites should guard on :func:`enabled` first when they sit on a
    hot path — this function is the slow half of the check.
    """
    plan = _plan
    if plan is None:
        return False
    if not plan.fire(site, key):
        return False
    if _obs.enabled():
        registry = _obs.default_registry()
        registry.counter("faults.injected").inc()
        registry.counter(f"faults.injected.{site}").inc()
    return True


def arg(site: str) -> float:
    plan = _plan
    if plan is None:
        return _DEFAULT_ARGS.get(site, 0.0)
    return plan.arg_for(site)


def sleep_if(site: str, key: Iterable[object] = ()) -> bool:
    """Sleep ``arg(site)`` seconds when the site fires (hang/slow sites)."""
    if not fire(site, key):
        return False
    time.sleep(arg(site))
    return True


def crash_point(site: str, key: Iterable[object] = ()) -> None:
    """Die like a SIGKILLed process when the site fires.

    ``os._exit`` skips every ``finally``, ``atexit``, and buffered
    flush — exactly what a preempted or OOM-killed worker looks like to
    its parent.
    """
    if fire(site, key):
        os._exit(WORKER_CRASH_EXIT_CODE)


def corrupt_payload(payload: Dict) -> Dict:
    """A deterministically mangled stand-in for a worker shard.

    The shape a parent sees when a worker's result was truncated or
    bit-flipped in flight: entries replaced by garbage the absorb path
    must reject without poisoning the merged state.
    """
    return {
        "entries": [["\x00corrupt", "not-an-int", {"truncated": True}]],
        "hits": payload.get("hits", 0),
        "misses": "NaN",
    }


# -- worker propagation -----------------------------------------------------


def worker_init_state() -> Optional[str]:
    """Picklable plan state shipped to pool workers (None = disarmed)."""
    if _plan is None:
        return None
    return _plan.to_spec()


def init_worker(state: Optional[str]) -> None:
    """Install shipped plan state in a worker (inverse of
    :func:`worker_init_state`)."""
    global _plan
    if state is None:
        _plan = None
    else:
        _plan = FaultPlan.parse(state)


# -- environment arming -----------------------------------------------------

_ENV_VAR = "REPRO_FAULTS"

if os.environ.get(_ENV_VAR):
    # Import-time arming so subprocess trees (spawned workers, serve
    # under a chaos harness, the SIGKILL-mid-save regression test)
    # inherit the plan without plumbing.  A bad spec here must fail
    # loudly — silently running un-chaosed would defeat the test.
    arm(os.environ[_ENV_VAR])
