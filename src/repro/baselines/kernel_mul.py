"""The pre-paper Linux kernel tnum multiplication (Listing 2).

``kern_mul`` is the algorithm the paper's ``our_mul`` replaced.  It seeds
the accumulator with the exact product of the values, then runs the
half-multiply-accumulate helper ``hma`` twice:

1. ``hma(π, P.m, Q.m | Q.v)`` — for every set bit in ``P.m`` (an unknown
   multiplier trit), add the mask of everything possibly set in ``Q``;
2. ``hma(ACC, Q.m, P.v)`` — for every set bit in ``Q.m``, add ``P``'s known
   value as a mask.

The paper could verify its soundness only up to 8 bits (SMT verification at
16 bits did not finish in 24h) and found it less precise than ``our_mul``
on ~80% of differing 8-bit inputs, chiefly because it performs up to ``2n``
tnum additions whose operands mix certain and uncertain trits.
"""

from __future__ import annotations

from repro.core._raw import add_raw
from repro.core.tnum import Tnum, mask_for_width

__all__ = ["kern_mul", "hma"]


def _hma_raw(av: int, am: int, x: int, y: int, limit: int):
    """``hma`` on bare value/mask words (the kernel's own style)."""
    while y:
        if y & 1:
            av, am = add_raw(av, am, 0, x, limit)
        y >>= 1
        x = (x << 1) & limit
    return av, am


def hma(acc: Tnum, x: int, y: int) -> Tnum:
    """Kernel ``hma`` (half-multiply-accumulate).

    For every set bit of ``y`` (scanned lsb-first), accumulate the mask
    ``x`` shifted to that position into ``acc`` via tnum addition.
    """
    limit = mask_for_width(acc.width)
    av, am = _hma_raw(acc.value, acc.mask, x & limit, y & limit, limit)
    return Tnum(av, am, acc.width)


def kern_mul(p: Tnum, q: Tnum) -> Tnum:
    """The Linux kernel's pre-2021 tnum multiplication (Listing 2)."""
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    limit = mask_for_width(width)
    av = (p.value * q.value) & limit
    av, am = _hma_raw(av, 0, p.mask, (q.mask | q.value) & limit, limit)
    av, am = _hma_raw(av, am, q.mask, p.value, limit)
    return Tnum(av, am, width)
