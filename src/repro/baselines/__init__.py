"""Baseline algorithms the paper compares against.

* :func:`kern_mul` — the Linux kernel's pre-2021 tnum multiplication
  (Listing 2), replaced by the paper's ``our_mul``.
* :func:`bitwise_mul_naive` / :func:`bitwise_mul_opt` — Regehr & Duongsaa's
  long multiplication for the bitwise domain (Listing 5), literal and with
  the paper's machine-arithmetic optimization.
* :func:`ripple_add` / :func:`ripple_sub` — O(n) ripple-carry arithmetic
  composed from three-valued full adders, the prior state of the art that
  the kernel's O(1) operators improve on.
"""

from .bitwise_mul import bitwise_mul_naive, bitwise_mul_opt, multiply_bit_naive
from .kernel_mul import hma, kern_mul
from .ripple import ripple_add, ripple_sub, trit_and, trit_not, trit_or, trit_xor

__all__ = [
    "kern_mul",
    "hma",
    "bitwise_mul_naive",
    "bitwise_mul_opt",
    "multiply_bit_naive",
    "ripple_add",
    "ripple_sub",
    "trit_xor",
    "trit_and",
    "trit_or",
    "trit_not",
]
