"""O(n) ripple-carry abstract addition/subtraction baseline.

Regehr & Duongsaa (2006) derive abstract arithmetic for the bitwise domain
by composing per-bit three-valued full adders: each result trit is
``p ⊕ q ⊕ carry-in`` and each carry-out is the three-valued majority
``(p ∧ q) ∨ (cin ∧ (p ⊕ q))``, rippled across the word.  This runs in
O(n) trit steps, versus the kernel's O(1) machine-arithmetic ``tnum_add``.

The paper cites these as the only previously-known arithmetic transformers
in this domain and notes they are *sound but not optimal* as well as
"much slower than the kernel's algorithms".  Both halves are observable
here: the per-trit majority ``(p ∧ q) ∨ (cin ∧ (p ⊕ q))`` composed from
three-valued gates loses correlations (e.g. maj(1, µ, 1) comes out µ even
though any majority with two known 1s is 1), so e.g. ``011 + 0µ1`` yields
``µµ0`` where the optimal ``tnum_add`` yields ``1µ0``; and the benchmarks
quantify the O(n)-vs-O(1) speed gap.

Trits are encoded as ``(v, m)`` bit pairs exactly like whole tnums:
``(0,0)=0, (1,0)=1, (0,1)=µ``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.tnum import Tnum

__all__ = ["ripple_add", "ripple_sub", "trit_xor", "trit_and", "trit_or", "trit_not"]

Trit = Tuple[int, int]

_ZERO: Trit = (0, 0)


def trit_xor(a: Trit, b: Trit) -> Trit:
    """Three-valued XOR: any µ input makes the output µ."""
    if a[1] or b[1]:
        return (0, 1)
    return (a[0] ^ b[0], 0)


def trit_and(a: Trit, b: Trit) -> Trit:
    """Three-valued AND: a known 0 annihilates µ."""
    if (a == _ZERO) or (b == _ZERO):
        return _ZERO
    if a[1] or b[1]:
        return (0, 1)
    return (1, 0)


def trit_or(a: Trit, b: Trit) -> Trit:
    """Three-valued OR: a known 1 absorbs µ."""
    if a == (1, 0) or b == (1, 0):
        return (1, 0)
    if a[1] or b[1]:
        return (0, 1)
    return (0, 0)


def trit_not(a: Trit) -> Trit:
    """Three-valued NOT: flips known trits, keeps µ."""
    if a[1]:
        return (0, 1)
    return (a[0] ^ 1, 0)


def _trit_at(t: Tnum, i: int) -> Trit:
    return ((t.value >> i) & 1, (t.mask >> i) & 1)


def _assemble(trits, width: int) -> Tnum:
    value = 0
    mask = 0
    for i, (v, m) in enumerate(trits):
        value |= v << i
        mask |= m << i
    return Tnum(value, mask, width)


def ripple_add(p: Tnum, q: Tnum) -> Tnum:
    """Ripple-carry abstract addition: O(n) three-valued full adders."""
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    carry: Trit = _ZERO
    out = []
    for i in range(width):
        a = _trit_at(p, i)
        b = _trit_at(q, i)
        axb = trit_xor(a, b)
        out.append(trit_xor(axb, carry))
        carry = trit_or(trit_and(a, b), trit_and(carry, axb))
    return _assemble(out, width)


def ripple_sub(p: Tnum, q: Tnum) -> Tnum:
    """Ripple-borrow abstract subtraction: O(n) three-valued full subtractors.

    Borrow-out follows Definition 23 of the paper:
    ``bout = (~p ∧ q) ∨ (bin ∧ ~(p ⊕ q))``.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    borrow: Trit = _ZERO
    out = []
    for i in range(width):
        a = _trit_at(p, i)
        b = _trit_at(q, i)
        axb = trit_xor(a, b)
        out.append(trit_xor(axb, borrow))
        borrow = trit_or(
            trit_and(trit_not(a), b),
            trit_and(borrow, trit_not(axb)),
        )
    return _assemble(out, width)
