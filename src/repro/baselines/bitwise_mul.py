"""Regehr–Duongsaa multiplication for the bitwise domain (Listing 5).

This is the only pre-kernel published abstract multiplication for the
bitfield/known-bits family (Regehr & Duongsaa 2006).  It is classic long
multiplication: for every trit position ``i`` of the multiplier ``P`` it
forms a partial product with ``multiply_bit`` and accumulates it, shifted,
with ``tnum_add``.

Two variants are provided, matching the paper's evaluation:

* :func:`bitwise_mul_naive` — the literal Listing 5, where an unknown
  multiplier trit "kills" the certain-1 trits of ``Q`` one at a time in a
  per-bit loop (the paper measured this at ~4921 cycles on 64-bit inputs);
* :func:`bitwise_mul_opt` — the paper's optimization replacing that inner
  loop with a single machine-arithmetic rewrite ``(0, Q.value | Q.mask)``
  (~387 cycles; the version plotted in Fig. 5).
"""

from __future__ import annotations

from repro.core._raw import add_raw
from repro.core.arithmetic import tnum_add
from repro.core.shifts import tnum_lshift
from repro.core.tnum import Tnum, mask_for_width

__all__ = ["bitwise_mul_naive", "bitwise_mul_opt", "multiply_bit_naive"]


def multiply_bit_naive(p: Tnum, q: Tnum, i: int) -> Tnum:
    """Partial product for trit ``i`` of ``P`` (literal Listing 5).

    A certain 0 trit yields the zero tnum; a certain 1 yields ``Q``
    unchanged; an unknown trit yields ``Q`` with every certain-1 trit
    degraded to µ, computed here — as in the original paper — by a per-bit
    loop.
    """
    width = p.width
    pv = (p.value >> i) & 1
    pm = (p.mask >> i) & 1
    if pv == 0 and pm == 0:
        return Tnum(0, 0, width)
    if pv == 1 and pm == 0:
        return q
    # Unknown trit: kill all certain-1 bits of Q, one bit at a time.
    qv, qm = q.value, q.mask
    for j in range(width):
        if (qv >> j) & 1 and not (qm >> j) & 1:
            qv &= ~(1 << j)
            qm |= 1 << j
    return Tnum(qv & mask_for_width(width), qm, width)


def bitwise_mul_naive(p: Tnum, q: Tnum) -> Tnum:
    """Listing 5 verbatim: per-trit partial products, per-bit µ-kill loop."""
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    total = Tnum(0, 0, width)
    for i in range(width):
        product = multiply_bit_naive(p, q, i)
        total = tnum_add(total, tnum_lshift(product, i))
    return total


def bitwise_mul_opt(p: Tnum, q: Tnum) -> Tnum:
    """Listing 5 with the paper's machine-arithmetic optimization.

    The unknown-trit case builds ``(0, Q.value | Q.mask)`` directly, and
    certain-0 positions skip the (no-op) accumulate.  This is the
    ``bitwise_mul`` measured in Fig. 5; like the other contenders its hot
    loop runs on bare value/mask words.
    """
    if p.width != q.width:
        raise ValueError(f"width mismatch: {p.width} vs {q.width}")
    width = p.width
    if p.is_bottom() or q.is_bottom():
        return Tnum.bottom(width)
    limit = mask_for_width(width)
    tv = tm = 0
    pv, pm = p.value, p.mask
    qv, qm = q.value, q.mask
    killed_m = (qv | qm) & limit
    # Faithful to Listing 5: the accumulate runs on every iteration, even
    # when the partial product is the zero tnum (certain-0 trit of P).
    for i in range(width):
        bit_v = (pv >> i) & 1
        bit_m = (pm >> i) & 1
        if bit_v and not bit_m:
            prod_v, prod_m = (qv << i) & limit, (qm << i) & limit
        elif bit_m:
            prod_v, prod_m = 0, (killed_m << i) & limit
        else:
            prod_v, prod_m = 0, 0
        tv, tm = add_raw(tv, tm, prod_v, prod_m, limit)
    return Tnum(tv, tm, width)
