"""Mutation engine: feed corpus seeds back into the campaign.

A precision campaign keeps a pool of *seeds* — rejected-but-clean
programs (the verifier's false positives) and accepted programs with
large tightness deltas (near-misses), both shrunk to the smallest
program that keeps the property.  Each mutation derives a new program
from a seed:

* **splice** — a prefix of the seed joined to a suffix of a freshly
  generated donor program, with every surviving jump retargeted (or
  clamped to the trailing ``exit``) so the result stays structurally
  valid;
* **opcode tweak** — swap one scalar ALU op for another in the same
  family (``add`` → ``mul``), flip an instruction's 32/64-bit width, or
  swap a conditional-jump predicate (``jlt`` → ``jsle``);
* **constant nudge** — perturb one immediate: off-by-one, single bit
  flip, sign flip, or replacement with a boundary constant from
  :data:`~repro.fuzz.generator.INTERESTING_IMMS`.

Mutants stay near the imprecision frontier the seed found, which is what
makes the feedback loop productive: programs that *almost* verified
probe the same transfer functions from new angles.  Every mutation is
deterministic in the supplied RNG, preserving campaign reproducibility.
Mutants are always constructible :class:`Program` objects but are *not*
guaranteed acyclic — the verifier rejects any loop the splice created,
and campaign replays run under a small step limit.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.bpf import isa
from repro.bpf.insn import Instruction
from repro.bpf.program import Program, ProgramError

from .generator import INTERESTING_IMM64, INTERESTING_IMMS
from .shrink import slot_prefix

__all__ = ["MUTATION_KINDS", "mutate_program"]

U64 = (1 << 64) - 1

MUTATION_KINDS = ("splice", "opcode", "constant")

_EXIT = Instruction(isa.CLS_JMP | isa.JMP_EXIT)

_ALU_FAMILY = [
    isa.ALU_ADD, isa.ALU_SUB, isa.ALU_MUL, isa.ALU_DIV, isa.ALU_MOD,
    isa.ALU_AND, isa.ALU_OR, isa.ALU_XOR, isa.ALU_LSH, isa.ALU_RSH,
    isa.ALU_ARSH,
]
_JMP_FAMILY = [
    isa.JMP_JEQ, isa.JMP_JNE, isa.JMP_JGT, isa.JMP_JGE, isa.JMP_JLT,
    isa.JMP_JLE, isa.JMP_JSET, isa.JMP_JSGT, isa.JMP_JSGE, isa.JMP_JSLT,
    isa.JMP_JSLE,
]


def _is_retargetable_jump(insn: Instruction) -> bool:
    return (
        insn.is_jump()
        and not insn.is_exit()
        and isa.BPF_OP(insn.opcode) != isa.JMP_CALL
    )


def _normalize(
    insns: List[Instruction], max_insns: int
) -> Optional[Program]:
    """Make an instruction soup structurally valid.

    Truncates to ``max_insns``, guarantees a trailing ``exit``, and
    clamps any jump whose target is no longer an instruction boundary to
    that trailing ``exit``.  Returns ``None`` if a valid program cannot
    be built.
    """
    insns = list(insns[: max(1, max_insns)])
    if not insns[-1].is_exit():
        if len(insns) >= max_insns:
            insns[-1] = _EXIT
        else:
            insns.append(_EXIT)

    slots = slot_prefix(insns)
    boundaries = set(slots)
    exit_slot = slots[-1]
    for k, insn in enumerate(insns):
        if not _is_retargetable_jump(insn):
            continue
        target = slots[k] + insn.slots() + insn.off
        if target not in boundaries:
            off = exit_slot - (slots[k] + insn.slots())
            if not -(1 << 15) <= off < (1 << 15):
                return None
            insns[k] = dataclasses.replace(insn, off=off)
    try:
        return Program(insns)
    except (ProgramError, ValueError):
        return None


def _splice(
    base: Program, donor: Program, rng: random.Random, max_insns: int
) -> Optional[Program]:
    a, b = list(base.insns), list(donor.insns)
    cut_a = rng.randint(1, len(a))
    cut_b = rng.randint(0, max(0, len(b) - 1))
    return _normalize(a[:cut_a] + b[cut_b:], max_insns)


def _opcode_tweak(
    base: Program, rng: random.Random, max_insns: int
) -> Optional[Program]:
    insns = list(base.insns)
    candidates = [
        k for k, insn in enumerate(insns)
        if (insn.is_alu() and isa.BPF_OP(insn.opcode) in _ALU_FAMILY)
        or (insn.is_cond_jump() and isa.BPF_OP(insn.opcode) in _JMP_FAMILY)
    ]
    if not candidates:
        return None
    k = rng.choice(candidates)
    insn = insns[k]
    op = isa.BPF_OP(insn.opcode)
    if insn.is_alu():
        if rng.random() < 0.25:
            # Flip the 32/64-bit width; op and operands survive as-is.
            opcode = insn.opcode ^ (isa.CLS_ALU ^ isa.CLS_ALU64)
        else:
            new_op = rng.choice([o for o in _ALU_FAMILY if o != op])
            opcode = (insn.opcode & 0x0F) | new_op
    else:
        new_op = rng.choice([o for o in _JMP_FAMILY if o != op])
        opcode = (insn.opcode & 0x0F) | new_op
    insns[k] = dataclasses.replace(insn, opcode=opcode)
    return _normalize(insns, max_insns)


def _nudged_imm(insn: Instruction, rng: random.Random) -> int:
    imm = insn.imm
    if insn.is_lddw():
        choice = rng.randrange(4)
        if choice == 0:
            value = rng.choice(INTERESTING_IMM64)
        elif choice == 1:
            value = imm + rng.choice((-1, 1))
        elif choice == 2:
            value = imm ^ (1 << rng.randrange(64))
        else:
            value = -imm
        return value & U64
    choice = rng.randrange(4)
    if choice == 0:
        value = rng.choice(INTERESTING_IMMS)
    elif choice == 1:
        value = imm + rng.choice((-1, 1))
    elif choice == 2:
        # Bit 31 included: the mask-and-sign-wrap below folds a flipped
        # sign bit back into s32 range.
        value = imm ^ (1 << rng.randrange(32))
    else:
        value = -imm
    value &= 0xFFFF_FFFF
    return value - (1 << 32) if value >= (1 << 31) else value


def _constant_nudge(
    base: Program, rng: random.Random, max_insns: int
) -> Optional[Program]:
    insns = list(base.insns)
    candidates = [
        k for k, insn in enumerate(insns)
        if insn.is_lddw()
        or insn.cls() == isa.CLS_ST
        or (insn.is_alu() and insn.uses_imm()
            and isa.BPF_OP(insn.opcode) != isa.ALU_NEG)
        or (insn.is_cond_jump() and insn.uses_imm())
    ]
    if not candidates:
        return None
    k = rng.choice(candidates)
    insns[k] = dataclasses.replace(insns[k], imm=_nudged_imm(insns[k], rng))
    return _normalize(insns, max_insns)


def mutate_program(
    base: Program,
    donor: Program,
    rng: random.Random,
    max_insns: int = 32,
) -> Program:
    """Derive one mutant of ``base``; falls back to ``base`` unchanged.

    ``donor`` supplies splice material (campaigns pass the freshly
    generated program for the same index, so determinism is preserved).
    """
    order = list(MUTATION_KINDS)
    rng.shuffle(order)
    for kind in order:
        if kind == "splice":
            mutant = _splice(base, donor, rng, max_insns)
        elif kind == "opcode":
            mutant = _opcode_tweak(base, rng, max_insns)
        else:
            mutant = _constant_nudge(base, rng, max_insns)
        if mutant is not None:
            return mutant
    return base
