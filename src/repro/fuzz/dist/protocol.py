"""Wire-level contract between the dist coordinator and its workers.

Everything here is pure data — hashable identifiers and JSON shapes —
shared by :mod:`repro.fuzz.dist.coordinator`,
:mod:`repro.fuzz.dist.worker`, and the HTTP layer
(:mod:`repro.api.dist`), so the three cannot drift.

Two identifiers carry the protocol's safety story:

* the **campaign id** hashes the :class:`~repro.fuzz.campaign.
  CampaignSpec` (minus the outcome-neutral ``workers`` field), so a
  worker pointed at the wrong coordinator — or a coordinator restarted
  with a different spec — is rejected structurally instead of merging
  foreign results;
* the **batch fingerprint** hashes ``(campaign_id, round, batch_id,
  indices)`` and deliberately *excludes* the attempt number: a
  re-issued batch computes the same fingerprint as the original grant,
  which is exactly what makes result ingestion idempotent — whichever
  worker reports first wins, every later report for the same
  fingerprint is a counted duplicate, and the merge order (campaign
  index order) never depends on who won.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, List, Sequence

from repro.fuzz.campaign import CampaignSpec

__all__ = [
    "DIST_SCHEMA_VERSION",
    "campaign_id",
    "batch_fingerprint",
    "slice_batches",
    "validate_batch_results",
]

#: Version of the coordinator/worker JSON protocol; both sides send it
#: and refuse mismatches, so a mixed-version fleet fails loudly.
DIST_SCHEMA_VERSION = 1


def campaign_id(spec: CampaignSpec) -> str:
    """Stable identifier of everything that determines the outcome.

    ``workers`` is excluded — reports are byte-identical for any worker
    count, so a coordinator may resume with a different fleet size.
    """
    payload = asdict(spec)
    payload.pop("workers", None)
    digest = hashlib.blake2b(
        json.dumps(payload, sort_keys=True).encode(), digest_size=12
    )
    return digest.hexdigest()


def batch_fingerprint(
    cid: str, rnd: int, batch_id: int, indices: Sequence[int]
) -> str:
    """The idempotency key one leased batch reports under.

    A pure function of *what* is computed, never of who computes it or
    on which attempt — see the module docstring.
    """
    digest = hashlib.blake2b(
        f"{cid}|{rnd}|{batch_id}|{tuple(indices)!r}".encode(),
        digest_size=12,
    )
    return digest.hexdigest()


def slice_batches(
    indices: Sequence[int], batch_size: int
) -> List[List[int]]:
    """Slice a round's campaign indices into lease-sized batches.

    Unlike :func:`repro.fuzz.resilience.batch_indices` the size is
    explicit, not derived from a worker count: the coordinator fixes the
    batch layout at round start and the fleet can grow or shrink under
    it without changing fingerprints.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    seq = list(indices)
    return [seq[i:i + batch_size] for i in range(0, len(seq), batch_size)]


def validate_batch_results(
    indices: Sequence[int], results: object
) -> List[Dict]:
    """Check a reported result set covers its batch exactly once.

    Raises ``ValueError`` on any shape the merge cannot trust — the
    coordinator records that as a failed attempt (the batch re-runs)
    rather than letting a truncated or duplicated POST skew the report.
    """
    if not isinstance(results, list):
        raise ValueError("results must be a list")
    seen = []
    for res in results:
        if not isinstance(res, dict) or "index" not in res:
            raise ValueError("each result must be a dict with an index")
        seen.append(res["index"])
    if sorted(seen) != sorted(indices):
        raise ValueError(
            f"results cover indices {sorted(seen)}, lease covers "
            f"{sorted(indices)}"
        )
    return results
