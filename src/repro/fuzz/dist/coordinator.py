"""The coordinator: authoritative owner of one distributed campaign.

Exactly one coordinator owns the corpus, the round schedule, and the
merged :class:`~repro.eval.precision.PrecisionReport`.  Workers are
stateless and expendable: they lease batches (:meth:`Coordinator.
lease`), fuzz them locally, and report results (:meth:`Coordinator.
ingest`).  Three invariants carry the design — see
``docs/distributed.md`` for the full failure matrix:

* **Leases expire, work never leaks.**  Every grant carries an
  epoch-time deadline (`time.time`, so it survives a coordinator
  restart).  A batch whose deadline passes — or whose worker's
  heartbeat goes stale — is re-issued to the next worker that asks,
  with the failed attempt counted against the batch exactly like the
  single-machine lease runner counts it; a batch that keeps failing
  quarantines to the same poison-corpus format.

* **Ingest is idempotent.**  Results are keyed on the batch
  fingerprint (:func:`~repro.fuzz.dist.protocol.batch_fingerprint`),
  which excludes the attempt number: when a re-issued batch and its
  presumed-dead original worker both report, the first report wins and
  every later one is a counted duplicate.  Merge order is campaign
  index order (:func:`~repro.fuzz.campaign.merge_round_results`, the
  exact code path the single-machine campaign runs), so the merged
  report is byte-identical for any worker count or kill schedule.

* **Checkpoints are crash-proof.**  The coordinator writes its
  in-round ledger (``round.json``) atomically after every lease grant
  and every result merge, and the cross-round campaign state
  (``state.json``/``corpus.json``) after every merged round — all via
  the campaign's temp+rename writer.  A SIGKILLed coordinator resumes
  from those files without double-granting a live lease (deadlines are
  epoch time) and without losing a completed batch (done results live
  in the ledger).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import obs as _obs
from repro.eval.precision import PrecisionReport
from repro.fuzz.campaign import (
    CampaignSpec,
    PrecisionCampaignResult,
    PrecisionCampaignStats,
    _atomic_write,
    _load_state,
    _record_quarantine,
    _round_budgets,
    _save_state,
    merge_round_results,
)
from repro.fuzz.corpus import Corpus
from repro.fuzz.resilience import QuarantinedBatch, RetryPolicy, lease_expired

from .protocol import (
    DIST_SCHEMA_VERSION,
    batch_fingerprint,
    campaign_id,
    slice_batches,
    validate_batch_results,
)

__all__ = ["CoordinatorConfig", "Coordinator"]

_ROUND_FILE = "round.json"
_ROUND_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CoordinatorConfig:
    """Runtime knobs of one coordinator — deliberately *outside* the
    :class:`~repro.fuzz.campaign.CampaignSpec`: none of these change
    the report, so a campaign may resume under a different config.

    ``retry`` reuses the single-machine :class:`RetryPolicy` for the
    attempt budget, backoff-with-jitter schedule, and the fault-free
    final attempt that bounds injected chaos; only the lease timeout is
    dist-specific (wall-clock seconds a worker gets per batch, where
    the local runner's timeout is per in-process lease).
    """

    batch_size: int = 8
    lease_timeout_s: float = 30.0
    #: a worker silent this long has its leases treated as failed even
    #: before they expire — a stale heartbeat is a cheaper signal than
    #: a full lease timeout when batches are long.
    heartbeat_timeout_s: float = 60.0
    #: advisory wait returned to a worker when no batch is grantable.
    poll_interval_s: float = 0.25
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")


@dataclass
class _Batch:
    """One ledger row: a batch and everything its lease history did."""

    batch_id: int
    indices: List[int]
    fingerprint: str
    status: str = "pending"   # pending | leased | done | quarantined
    attempt: int = 0
    worker: Optional[str] = None
    #: epoch seconds (``time.time``) — survives a coordinator restart.
    deadline: Optional[float] = None
    not_before: float = 0.0
    failures: List[Dict] = field(default_factory=list)
    results: Optional[List[Dict]] = None

    def to_payload(self) -> Dict:
        return {
            "batch_id": self.batch_id,
            "indices": list(self.indices),
            "fingerprint": self.fingerprint,
            "status": self.status,
            "attempt": self.attempt,
            "worker": self.worker,
            "deadline": self.deadline,
            "not_before": self.not_before,
            "failures": list(self.failures),
            "results": self.results,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "_Batch":
        return cls(
            batch_id=int(payload["batch_id"]),
            indices=[int(i) for i in payload["indices"]],
            fingerprint=str(payload["fingerprint"]),
            status=str(payload["status"]),
            attempt=int(payload["attempt"]),
            worker=payload.get("worker"),
            deadline=payload.get("deadline"),
            not_before=float(payload.get("not_before", 0.0)),
            failures=list(payload.get("failures", [])),
            results=payload.get("results"),
        )


class Coordinator:
    """Lease scheduler + idempotent ingest + crash-proof checkpoints.

    Thread-safe: every public method takes the coordinator lock, so the
    HTTP layer (:class:`repro.api.dist.CoordinatorApi`) can call in
    from many handler threads.  ``clock`` is injectable (epoch seconds)
    so tests drive lease expiry and heartbeat staleness without
    sleeping; the default is ``time.time`` precisely because epoch
    deadlines survive a coordinator restart where monotonic ones
    would not.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        state_dir: "str | Path",
        config: Optional[CoordinatorConfig] = None,
        corpus: Optional[Corpus] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.spec = spec
        self.config = config or CoordinatorConfig()
        self.clock = clock
        self.cid = campaign_id(spec)
        self.state_path = Path(state_dir)
        self.state_path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._workers: Dict[str, float] = {}
        self._counters: Dict[str, int] = {}
        self._quarantined_payloads: List[Dict] = []
        self._started = time.perf_counter()

        loaded = _load_state(self.state_path, spec)
        if loaded is not None:
            self.stats, self.report, self.pool, self.corpus = loaded
        else:
            self.stats = PrecisionCampaignStats(budget=spec.budget)
            self.report = PrecisionReport()
            self.pool: List[str] = []
            self.corpus = corpus if corpus is not None else Corpus()

        self._batches: List[_Batch] = []
        self._by_fp: Dict[str, _Batch] = {}
        self._round = self.stats.rounds_completed
        if not self.finished and not self._load_round():
            self._new_round()

    # -- round lifecycle ---------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.stats.rounds_completed >= self.spec.rounds

    def _new_round(self) -> None:
        rnd = self.stats.rounds_completed
        budgets = _round_budgets(self.spec)
        start = sum(budgets[:rnd])
        indices = range(start, start + budgets[rnd])
        self._round = rnd
        self._batches = [
            _Batch(
                batch_id=bid,
                indices=batch,
                fingerprint=batch_fingerprint(self.cid, rnd, bid, batch),
            )
            for bid, batch in enumerate(
                slice_batches(indices, self.config.batch_size)
            )
        ]
        self._by_fp = {b.fingerprint: b for b in self._batches}
        self._checkpoint_round()

    def _load_round(self) -> bool:
        """Restore the in-round ledger; False means rebuild from scratch.

        The ledger is *derived* state: discarding a corrupt or stale one
        only re-runs work (deterministically — same indices, same
        streams), it can never change the report.  A loaded ledger keeps
        its own batch layout even if ``batch_size`` changed since: the
        fingerprints already granted must keep matching.
        """
        path = self.state_path / _ROUND_FILE
        if not path.exists():
            return False
        rnd = self.stats.rounds_completed
        try:
            payload = json.loads(path.read_text())
            if payload.get("format_version") != _ROUND_FORMAT_VERSION:
                return False
            if payload.get("campaign_id") != self.cid:
                return False
            if payload.get("round") != rnd:
                return False
            batches = [_Batch.from_payload(b) for b in payload["batches"]]
        except (ValueError, KeyError, TypeError):
            return False
        budgets = _round_budgets(self.spec)
        start = sum(budgets[:rnd])
        expected = list(range(start, start + budgets[rnd]))
        covered = sorted(i for b in batches for i in b.indices)
        if covered != expected:
            return False
        for b in batches:
            if b.fingerprint != batch_fingerprint(
                self.cid, rnd, b.batch_id, b.indices
            ):
                return False
        self._round = rnd
        self._batches = batches
        self._by_fp = {b.fingerprint: b for b in batches}
        now = self.clock()
        for b in batches:
            if b.status == "leased" and b.worker is not None:
                # Start the absent worker's heartbeat clock at resume:
                # if it is alive it will poll and refresh; if it died
                # with the coordinator, staleness (or the persisted
                # epoch deadline) reclaims the lease.
                self._workers.setdefault(b.worker, now)
            elif b.status == "quarantined":
                # Re-count in-round quarantines lost with the in-memory
                # stats (state.json only reflects merged rounds).  The
                # poison artifact was already written pre-crash, so the
                # payload regenerates with no state path — no duplicate
                # file, no suffix bump.
                self.stats.quarantined += 1
                self._quarantined_payloads.extend(_record_quarantine(
                    None, rnd, self.spec, tuple(self.pool),
                    [QuarantinedBatch(
                        batch_id=b.batch_id,
                        indices=list(b.indices),
                        attempts=b.attempt,
                        fingerprints=list(b.failures),
                    )],
                ))
        return True

    def _checkpoint_round(self) -> None:
        payload = {
            "format_version": _ROUND_FORMAT_VERSION,
            "campaign_id": self.cid,
            "round": self._round,
            "batches": [b.to_payload() for b in self._batches],
        }
        _atomic_write(
            self.state_path / _ROUND_FILE,
            json.dumps(payload, sort_keys=True) + "\n",
        )
        self._count("checkpoints")

    def _maybe_finish_round(self) -> None:
        """Merge a fully-settled round; idempotent across crashes.

        If the coordinator dies between marking the last batch done and
        writing ``state.json``, the resume reloads the done ledger and
        re-merges — same results in the same index order, so the same
        bytes."""
        if self.finished or not self._batches:
            return
        if any(b.status in ("pending", "leased") for b in self._batches):
            return
        results = [
            res
            for b in self._batches if b.status == "done"
            for res in b.results or ()
        ]
        merge_round_results(
            self.spec, self.stats, self.report, self.pool, self.corpus,
            results,
        )
        self.stats.rounds_completed = self._round + 1
        now_pc = time.perf_counter()
        self.stats.elapsed_seconds += now_pc - self._started
        self._started = now_pc
        _save_state(
            self.state_path, self.spec, self.stats, self.report, self.pool,
            self.corpus,
        )
        self._count("rounds_merged")
        if _obs.enabled():
            _obs.publish_heartbeat({
                "phase": "dist-coordinator",
                "round": self.stats.rounds_completed,
                "rounds": self.spec.rounds,
                "budget": self.spec.budget,
                "executed": self.stats.executed,
                "violations": self.stats.violations,
                "retries": self.stats.retries,
                "quarantined": self.stats.quarantined,
                "workers": len(self._workers),
            }, force=True)
        if self.finished:
            # The stale round.json self-invalidates on load (its round
            # number is behind rounds_completed), so nothing to delete.
            self._batches = []
            self._by_fp = {}
        else:
            self._new_round()

    # -- the lease side ----------------------------------------------------

    def lease(self, worker: str) -> Dict:
        """Grant the next batch to ``worker`` (its heartbeat refreshes).

        Expired and heartbeat-stale leases are reclaimed here, lazily —
        the coordinator needs no timer thread because nothing can
        progress without some worker asking for work anyway (the CLI
        loop also calls :meth:`tick` as a belt-and-braces sweep).
        """
        with self._lock:
            now = self.clock()
            self._workers[worker] = now
            base = {
                "schema_version": DIST_SCHEMA_VERSION,
                "campaign_id": self.cid,
            }
            while True:
                self._maybe_finish_round()
                if self.finished:
                    return {**base, "done": True}
                batch = self._next_ready(now, worker)
                if batch is not None:
                    batch.status = "leased"
                    batch.worker = worker
                    batch.deadline = now + self.config.lease_timeout_s
                    self._count("leases_granted")
                    self._checkpoint_round()
                    retry = self.config.retry
                    inject = not (
                        retry.fault_free_final_attempt
                        and batch.attempt == retry.max_attempts - 1
                    )
                    return {
                        **base,
                        "round": self._round,
                        "batch": {
                            "batch_id": batch.batch_id,
                            "indices": list(batch.indices),
                            "attempt": batch.attempt,
                            "fingerprint": batch.fingerprint,
                            "inject": inject,
                        },
                    }
                if not self._reclaim_one(now):
                    return {**base, "wait": self.config.poll_interval_s}

    def _next_ready(self, now: float, worker: str) -> Optional[_Batch]:
        """First grantable batch, preferring one this worker has not
        already failed — repeated failures should cross distinct workers
        before a batch quarantines, when the fleet allows it."""
        ready = [
            b for b in self._batches
            if b.status == "pending" and b.not_before <= now
        ]
        for b in ready:
            last = b.failures[-1].get("worker") if b.failures else None
            if last != worker:
                return b
        return ready[0] if ready else None

    def _reclaim_one(self, now: float) -> bool:
        """Fail one expired or heartbeat-stale lease; True if any was."""
        for b in self._batches:
            if b.status != "leased":
                continue
            if lease_expired(b.deadline, now):
                self._count("leases_expired")
                self._fail(
                    b, "timeout",
                    f"lease exceeded {self.config.lease_timeout_s}s", now,
                )
                return True
            last_seen = self._workers.get(b.worker or "", now)
            if now - last_seen > self.config.heartbeat_timeout_s:
                self._count("heartbeats_stale")
                self._fail(
                    b, "stale",
                    f"worker {b.worker} silent for "
                    f"{now - last_seen:.1f}s", now,
                )
                return True
        return False

    def _fail(
        self, batch: _Batch, kind: str, detail: object, now: float
    ) -> None:
        """One lease attempt failed: retry with backoff or quarantine.

        Mirrors the single-machine runner's ``fail_lease`` — same
        attempt arithmetic, same fingerprint shape (plus the worker
        name), same poison-corpus artifact on exhaustion."""
        batch.failures.append(
            {"kind": kind, "detail": detail, "worker": batch.worker}
        )
        batch.worker = None
        batch.deadline = None
        retry = self.config.retry
        next_attempt = batch.attempt + 1
        if next_attempt >= retry.max_attempts:
            batch.status = "quarantined"
            batch.attempt = next_attempt
            batch.results = None
            self.stats.quarantined += 1
            self._count("batches_quarantined")
            self._quarantined_payloads.extend(_record_quarantine(
                self.state_path, self._round, self.spec, tuple(self.pool),
                [QuarantinedBatch(
                    batch_id=batch.batch_id,
                    indices=list(batch.indices),
                    attempts=next_attempt,
                    fingerprints=list(batch.failures),
                )],
            ))
        else:
            batch.status = "pending"
            batch.attempt = next_attempt
            batch.not_before = now + retry.backoff_s(
                next_attempt, key=(batch.batch_id,)
            )
            self.stats.retries += 1
            self._count("leases_retried")
        self._checkpoint_round()

    # -- the ingest side ---------------------------------------------------

    def ingest(self, payload: Dict) -> Dict:
        """Idempotently absorb one worker report; returns a status dict.

        Statuses: ``accepted`` (first valid report for the
        fingerprint), ``duplicate`` (the batch is already done —
        the re-issue/late-report race, resolved first-wins),
        ``stale`` (unknown fingerprint, quarantined batch, or a
        failure report for a superseded attempt — counted and
        ignored), ``retrying``/``quarantined`` (a failure or invalid
        result set, charged against the batch's attempts).
        """
        with self._lock:
            now = self.clock()
            worker = payload.get("worker")
            if isinstance(worker, str) and worker:
                self._workers[worker] = now
            base = {
                "schema_version": DIST_SCHEMA_VERSION,
                "campaign_id": self.cid,
            }
            batch = self._by_fp.get(payload.get("fingerprint"))
            if batch is None or batch.status == "quarantined":
                self._count("results_stale")
                return {**base, "status": "stale"}
            if batch.status == "done":
                self._count("results_duplicate")
                return {**base, "status": "duplicate"}
            if not payload.get("ok", False):
                # A failure report only counts against the *current*
                # lease: a late error from a superseded attempt is
                # stale (its expiry was already charged), and failing
                # the batch now would clobber the live re-issue.
                if (
                    batch.status == "leased"
                    and payload.get("attempt") == batch.attempt
                ):
                    self._count("results_failed")
                    self._fail(batch, "error", payload.get("error"), now)
                    return {**base, "status": (
                        "quarantined" if batch.status == "quarantined"
                        else "retrying"
                    )}
                self._count("results_stale")
                return {**base, "status": "stale"}
            try:
                results = validate_batch_results(
                    batch.indices, payload.get("results")
                )
            except ValueError as exc:
                self._count("results_rejected")
                self._fail(batch, "error", f"rejected result set: {exc}", now)
                return {**base, "status": (
                    "quarantined" if batch.status == "quarantined"
                    else "retrying"
                )}
            # First valid report wins — even from a worker whose lease
            # expired (its work is correct; the attempt bookkeeping is
            # not report-bearing), even while a re-issue is in flight
            # (the re-issued worker's report will be the duplicate).
            batch.status = "done"
            batch.results = results
            batch.worker = None
            batch.deadline = None
            self._count("results_merged")
            self._checkpoint_round()
            self._maybe_finish_round()
            return {**base, "status": "accepted"}

    # -- observation and driving -------------------------------------------

    def tick(self) -> None:
        """Reclaim expired/stale leases and merge a settled round.

        The CLI loop calls this periodically so a fully dead fleet
        still gets its leases reclaimed (and its quarantines recorded)
        without any worker polling."""
        with self._lock:
            now = self.clock()
            while self._reclaim_one(now):
                pass
            self._maybe_finish_round()

    def round_info(self) -> Dict:
        """What a worker needs to execute this round's leases: the spec
        and the round's mutation-seed pool (refetched per round)."""
        with self._lock:
            return {
                "schema_version": DIST_SCHEMA_VERSION,
                "campaign_id": self.cid,
                "finished": self.finished,
                "round": self._round,
                "rounds": self.spec.rounds,
                "spec": asdict(self.spec),
                "pool": list(self.pool),
            }

    def stats_payload(self) -> Dict:
        with self._lock:
            now = self.clock()
            by_status: Dict[str, int] = {
                "pending": 0, "leased": 0, "done": 0, "quarantined": 0,
            }
            for b in self._batches:
                by_status[b.status] = by_status.get(b.status, 0) + 1
            return {
                "schema_version": DIST_SCHEMA_VERSION,
                "campaign_id": self.cid,
                "finished": self.finished,
                "round": self._round,
                "rounds": self.spec.rounds,
                "budget": self.spec.budget,
                "batches": by_status,
                "workers": {
                    name: round(now - seen, 3)
                    for name, seen in sorted(self._workers.items())
                },
                "counters": dict(sorted(self._counters.items())),
                "stats": {
                    "executed": self.stats.executed,
                    "violations": self.stats.violations,
                    "retries": self.stats.retries,
                    "quarantined": self.stats.quarantined,
                    "rounds_completed": self.stats.rounds_completed,
                },
            }

    def result(self) -> PrecisionCampaignResult:
        with self._lock:
            return PrecisionCampaignResult(
                self.stats, self.corpus, self.report, self.pool,
                quarantined=list(self._quarantined_payloads),
            )

    def _count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n
        if _obs.enabled():
            _obs.default_registry().counter(f"dist.{name}").inc(n)
