"""The worker: a stateless lease-executing loop over HTTP.

A worker owns nothing a crash could lose: it fetches the campaign spec
and the round's mutation-seed pool from the coordinator, leases one
batch at a time, fuzzes it with the exact same module-level batch task
the single-machine campaign uses (:func:`repro.fuzz.campaign.
_fuzz_batch`, crash injection included), and POSTs the results back
keyed on the lease's batch fingerprint.  Kill a worker at any point and
the only cost is one lease timeout on the coordinator.

Coordinator RPCs retry with the same jittered exponential backoff the
lease runner uses (:meth:`~repro.fuzz.resilience.RetryPolicy.
backoff_s`), so a worker rides out a coordinator restart — leases
survive the restart (epoch deadlines in the checkpoint), so a result
computed across one is still accepted.

Chaos sites on the network half (``repro.faults``):

* ``dist.rpc.slow`` — an RPC sleeps before being sent;
* ``dist.result.drop`` — a result POST is "lost" and retried with
  backoff (bounded; the coordinator's lease timeout covers the rest);
* ``dist.result.duplicate`` — a result POST is sent twice, proving
  ingest idempotency end to end;
* ``dist.heartbeat.stale`` — the worker sleeps before its next lease
  poll, so the coordinator sees its heartbeat go stale.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro import faults as _faults
from repro import obs as _obs
from repro.fuzz.campaign import CampaignSpec, _fuzz_batch, _set_worker_state
from repro.fuzz.resilience import RetryPolicy

from .protocol import DIST_SCHEMA_VERSION

__all__ = [
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "DistProtocolError",
    "run_worker",
]


class CoordinatorUnreachable(RuntimeError):
    """Every RPC attempt failed — the coordinator is gone, not restarting."""


class DistProtocolError(RuntimeError):
    """The coordinator answered, but with a client-error status —
    retrying the same request cannot help (wrong campaign, bad body)."""


class CoordinatorClient:
    """JSON-over-HTTP client with jittered-backoff retries.

    Transport failures (connection refused, timeouts, 5xx) retry up to
    ``rpc_attempts`` times — generous on purpose: with the default
    backoff cap this rides out roughly a minute of coordinator
    downtime, which is what "workers survive coordinator restarts"
    means in practice.  4xx responses raise :class:`DistProtocolError`
    immediately.
    """

    def __init__(
        self,
        base_url: str,
        name: str,
        policy: Optional[RetryPolicy] = None,
        timeout_s: float = 30.0,
        rpc_attempts: int = 30,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.name = name
        self.policy = policy or RetryPolicy()
        self.timeout_s = timeout_s
        self.rpc_attempts = rpc_attempts

    def get(self, path: str) -> Dict:
        return self._call("GET", path)

    def post(self, path: str, payload: Dict) -> Dict:
        return self._call("POST", path, payload)

    def _call(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        attempt = 0
        while True:
            if _faults.enabled():
                _faults.sleep_if("dist.rpc.slow", (self.name, path, attempt))
            try:
                data = (
                    json.dumps(payload).encode()
                    if payload is not None else None
                )
                request = urllib.request.Request(
                    self.base_url + path,
                    data=data,
                    method=method,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return json.loads(response.read().decode())
            except urllib.error.HTTPError as exc:
                if 400 <= exc.code < 500:
                    raise DistProtocolError(
                        f"{method} {path} -> HTTP {exc.code}"
                    ) from exc
                detail = f"HTTP {exc.code}"
            except (urllib.error.URLError, OSError, ValueError) as exc:
                detail = repr(exc)
            attempt += 1
            if attempt >= self.rpc_attempts:
                raise CoordinatorUnreachable(
                    f"{method} {path} failed {attempt} times "
                    f"(last: {detail})"
                )
            time.sleep(self.policy.backoff_s(
                min(attempt, 6), key=(self.name, path)
            ))


def _post_result(client: CoordinatorClient, payload: Dict) -> Dict:
    """POST one result, through the drop/duplicate chaos sites."""
    fingerprint = payload["fingerprint"]
    attempt = payload["attempt"]
    if _faults.enabled():
        # A "dropped" POST never reaches the wire; the worker notices
        # (no response) and retries with backoff.  Bounded so an
        # always-drop plan degrades to a lease timeout, not a hang.
        drops = 0
        while drops < client.policy.max_attempts and _faults.fire(
            "dist.result.drop", (fingerprint, attempt, drops)
        ):
            drops += 1
            time.sleep(client.policy.backoff_s(
                drops, key=(fingerprint, "drop")
            ))
    out = client.post("/result", payload)
    if _faults.enabled() and _faults.fire(
        "dist.result.duplicate", (fingerprint, attempt)
    ):
        # The retry-after-lost-ACK shape: same bytes, sent again.  The
        # coordinator must answer "duplicate", never merge twice.
        client.post("/result", payload)
    return out


def run_worker(
    coordinator_url: str,
    name: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    stop: Optional[threading.Event] = None,
    poll_interval_s: float = 0.2,
) -> Dict:
    """Lease-execute-report until the campaign finishes (or ``stop``).

    Returns a small stats dict (batches executed, duplicates observed,
    soft errors reported).  Raises :class:`CoordinatorUnreachable` only
    after the RPC retry budget is exhausted.
    """
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    client = CoordinatorClient(coordinator_url, worker_name, policy=policy)
    out = {
        "worker": worker_name, "batches": 0, "programs": 0,
        "errors": 0, "duplicates": 0,
    }
    cached_round: Optional[int] = None
    cached: Optional[Tuple[CampaignSpec, Tuple[str, ...]]] = None
    polls = 0
    while not (stop is not None and stop.is_set()):
        if _faults.enabled():
            _faults.sleep_if(
                "dist.heartbeat.stale", (worker_name, polls)
            )
        polls += 1
        grant = client.post("/lease", {
            "schema_version": DIST_SCHEMA_VERSION,
            "worker": worker_name,
        })
        if grant.get("done"):
            break
        batch = grant.get("batch")
        if batch is None:
            time.sleep(float(grant.get("wait", poll_interval_s)))
            continue
        rnd = grant["round"]
        if rnd != cached_round or cached is None:
            info = client.get("/round")
            if info.get("finished") or info.get("round") != rnd:
                # The round settled (or moved) between the grant and
                # the fetch — our lease is already superseded; any
                # report we could produce would be stale.  Re-poll.
                continue
            cached = (
                CampaignSpec(**info["spec"]), tuple(info["pool"]),
            )
            cached_round = rnd
            _set_worker_state(cached[0], cached[1])
        payload = {
            "schema_version": DIST_SCHEMA_VERSION,
            "campaign_id": grant["campaign_id"],
            "worker": worker_name,
            "round": rnd,
            "batch_id": batch["batch_id"],
            "fingerprint": batch["fingerprint"],
            "attempt": batch["attempt"],
        }
        try:
            results = _fuzz_batch(
                batch["indices"], batch["attempt"], batch["inject"]
            )
        except Exception as exc:  # noqa: BLE001 - forwarded, not hidden
            payload.update(ok=False, error=repr(exc))
            out["errors"] += 1
        else:
            payload.update(ok=True, results=results)
            out["programs"] += len(results)
        verdict = _post_result(client, payload)
        out["batches"] += 1
        if verdict.get("status") == "duplicate":
            out["duplicates"] += 1
        if _obs.enabled():
            _obs.default_registry().counter("dist.worker.batches").inc()
    return out
