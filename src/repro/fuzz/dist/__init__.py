"""``repro.fuzz.dist`` — fault-tolerant coordinator/worker campaigns.

The ROADMAP's scale-out item, built on the single-machine recovery
layer: a :class:`Coordinator` owns the corpus, round schedule, and
merged report; stateless workers (:func:`run_worker`) lease seed
batches over HTTP, fuzz them locally, and POST results back.  Leases
expire and re-issue, ingest is idempotent on batch fingerprints,
checkpoints are atomic — and the merged
:class:`~repro.eval.precision.PrecisionReport` is byte-identical to a
single-machine fault-free campaign for any worker count or kill
schedule.  See ``docs/distributed.md``.
"""

from .coordinator import Coordinator, CoordinatorConfig
from .protocol import (
    DIST_SCHEMA_VERSION,
    batch_fingerprint,
    campaign_id,
    slice_batches,
    validate_batch_results,
)
from .worker import (
    CoordinatorClient,
    CoordinatorUnreachable,
    DistProtocolError,
    run_worker,
)

__all__ = [
    "DIST_SCHEMA_VERSION",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "DistProtocolError",
    "batch_fingerprint",
    "campaign_id",
    "run_worker",
    "slice_batches",
    "validate_batch_results",
]
