"""JSON corpus persistence for fuzzing campaigns.

A corpus stores *replayable* artifacts: failing programs (with their
shrunk witnesses and violation details), interesting seeds worth
re-fuzzing (e.g. programs that were accepted and exercised unusual
instruction mixes), and mutation seeds — shrunk near-miss and
rejected-but-clean programs a precision campaign feeds back into the
generator.  Programs are stored as kernel-wire-format bytecode hex via
the shared ingestion layer (:mod:`repro.api.ingest`), so entries
round-trip exactly, can be replayed by any later build or external BPF
tooling — and can be POSTed verbatim to the service's ``/verify``
endpoint (which accepts the corpus-entry ``bytecode_hex`` spelling).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.ingest import program_from_hex, program_to_hex
from repro.bpf.program import Program

__all__ = ["CorpusEntry", "Corpus"]

_FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One persisted program plus the recipe that produced it."""

    kind: str                       # "violation" | "interesting" | "seed"
    seed: int                       # generator seed
    profile: str
    bytecode_hex: str
    shrunk_hex: Optional[str] = None
    violation: Optional[Dict] = None   # Violation fields, JSON-friendly
    note: str = ""

    def program(self) -> Program:
        return program_from_hex(self.bytecode_hex)

    def shrunk_program(self) -> Optional[Program]:
        if self.shrunk_hex is None:
            return None
        return program_from_hex(self.shrunk_hex)


@dataclass
class Corpus:
    """An append-only set of corpus entries with JSON round-tripping."""

    entries: List[CorpusEntry] = field(default_factory=list)

    def add_violation(
        self,
        program: Program,
        seed: int,
        profile: str,
        violation: Dict,
        shrunk: Optional[Program] = None,
        note: str = "",
    ) -> CorpusEntry:
        entry = CorpusEntry(
            kind="violation",
            seed=seed,
            profile=profile,
            bytecode_hex=program_to_hex(program),
            shrunk_hex=program_to_hex(shrunk) if shrunk else None,
            violation=violation,
            note=note,
        )
        self.entries.append(entry)
        return entry

    def add_interesting(
        self, program: Program, seed: int, profile: str, note: str = ""
    ) -> CorpusEntry:
        entry = CorpusEntry(
            kind="interesting",
            seed=seed,
            profile=profile,
            bytecode_hex=program_to_hex(program),
            note=note,
        )
        self.entries.append(entry)
        return entry

    def add_seed(
        self, program: Program, seed: int, profile: str, note: str = ""
    ) -> CorpusEntry:
        """Record a mutation seed (near-miss / rejected-but-clean program)."""
        entry = CorpusEntry(
            kind="seed",
            seed=seed,
            profile=profile,
            bytecode_hex=program_to_hex(program),
            note=note,
        )
        self.entries.append(entry)
        return entry

    def violations(self) -> List[CorpusEntry]:
        return [e for e in self.entries if e.kind == "violation"]

    def seeds(self) -> List[CorpusEntry]:
        return [e for e in self.entries if e.kind == "seed"]

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "entries": [asdict(e) for e in self.entries],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Corpus":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported corpus format {version!r}")
        return cls([CorpusEntry(**e) for e in payload["entries"]])

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "Corpus":
        return cls.from_json(Path(path).read_text())
