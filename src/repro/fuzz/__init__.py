"""``repro.fuzz`` — differential fuzzing of whole BPF programs.

The rest of the repository validates *individual* tnum transfer
functions (SAT at small widths, exhaustive enumeration, randomized
spot-checks).  This package closes the loop at the *system* level: it
generates whole BPF programs, runs each one concretely on the
interpreter (the declared ground truth) across many random inputs, and
checks that every concrete register value is contained in the verifier's
abstract state at the same program point — end-to-end soundness of the
abstract interpretation, including the plumbing the per-operator checks
can't see (branch refinement, state joins, pointer offset tracking,
stack slot typing, 32-bit truncation).

Pipeline
--------
:mod:`~repro.fuzz.generator`
    Seeded, typed random program generator with tunable opcode-mix
    profiles (``mixed``, ``alu``, ``memory``, ``branchy``).  Programs
    are acyclic, structurally valid, and mostly verifier-acceptable.
:mod:`~repro.fuzz.oracle`
    The differential oracle: concrete-vs-abstract containment at every
    executed instruction plus accept/crash cross-checking.
:mod:`~repro.fuzz.shrink`
    Delta-debugging minimizer producing a small failing witness from any
    counterexample (jump offsets are retargeted across deletions).
:mod:`~repro.fuzz.corpus`
    JSON persistence for failures (original + shrunk bytecode) and
    interesting seeds; entries replay exactly via the wire format.
:mod:`~repro.fuzz.driver`
    Budgeted multiprocessing campaign driver with per-program RNG
    streams (deterministic for a given seed regardless of worker count)
    and throughput reporting.
:mod:`~repro.fuzz.mutate`
    Mutation engine (splice, opcode tweak, constant nudge) turning
    corpus seeds back into fresh inputs.
:mod:`~repro.fuzz.campaign`
    Precision campaigns: multi-round, resumable runs that attribute
    rejected-but-clean rates, γ-size histograms, and tightness deltas to
    individual transfer functions, and feed shrunk near-miss programs
    back in as mutation seeds.  Results merge into a deterministic
    :class:`~repro.eval.precision.PrecisionReport`.
:mod:`~repro.fuzz.resilience`
    Crash recovery for multi-worker runs: per-batch leases with bounded
    retry and exponential backoff, lease timeouts for wedged workers,
    and quarantine for batches that keep failing (see
    ``docs/resilience.md``).
:mod:`~repro.fuzz.dist`
    The same lease semantics across machines: a coordinator owns the
    corpus and merged report; stateless workers lease batches over
    HTTP.  Idempotent ingest and crash-proof checkpoints keep the
    report byte-identical to a single-machine run (see
    ``docs/distributed.md``).

Quick start
-----------
>>> from repro.fuzz import CampaignConfig, run_campaign
>>> result = run_campaign(CampaignConfig(budget=100, seed=42))
>>> result.ok
True

Or from the command line::

    repro fuzz --budget 1000 --seed 42 --workers 4
    repro campaign --budget 1000 --rounds 4 --seed 42 --workers 4
"""

from .campaign import (
    CampaignSpec,
    CampaignStateError,
    PrecisionCampaignResult,
    PrecisionCampaignStats,
    run_precision_campaign,
)
from .corpus import Corpus, CorpusEntry
from .dist import Coordinator, CoordinatorConfig, run_worker
from .driver import (
    CampaignConfig,
    CampaignResult,
    CampaignStats,
    program_seed,
    run_campaign,
)
from .generator import (
    INTERESTING_IMM64,
    INTERESTING_IMMS,
    PROFILES,
    GeneratedProgram,
    OpcodeProfile,
    ProgramGenerator,
    generate_program,
)
from .mutate import MUTATION_KINDS, mutate_program
from .oracle import DifferentialOracle, OracleReport, Violation
from .resilience import (
    LeaseOutcome,
    QuarantinedBatch,
    RetryPolicy,
    batch_indices,
    run_leased_batches,
)
from .shrink import ShrinkStats, shrink_program

__all__ = [
    "PROFILES",
    "INTERESTING_IMMS",
    "INTERESTING_IMM64",
    "OpcodeProfile",
    "GeneratedProgram",
    "ProgramGenerator",
    "generate_program",
    "DifferentialOracle",
    "OracleReport",
    "Violation",
    "shrink_program",
    "ShrinkStats",
    "Corpus",
    "CorpusEntry",
    "CampaignConfig",
    "CampaignStats",
    "CampaignResult",
    "run_campaign",
    "program_seed",
    "MUTATION_KINDS",
    "mutate_program",
    "CampaignSpec",
    "CampaignStateError",
    "PrecisionCampaignStats",
    "PrecisionCampaignResult",
    "run_precision_campaign",
    "RetryPolicy",
    "QuarantinedBatch",
    "LeaseOutcome",
    "run_leased_batches",
    "batch_indices",
    "Coordinator",
    "CoordinatorConfig",
    "run_worker",
]
