"""Differential oracle: concrete execution vs. abstract verification.

The interpreter is the ground truth.  For every program the verifier
*accepts*, the oracle replays it concretely on many random inputs and
checks two soundness properties at every executed instruction:

* **containment** — each concrete register value is a member of the
  verifier's abstract value at the same program point (scalar values via
  ``γ(tnum × interval)``; pointers via their region and abstract offset);
* **no accepted crashes** — a concrete run of an accepted program never
  faults (no out-of-bounds access, no bad opcode, no divergence).

Rejection is conservative and therefore never *unsound*; the oracle
still executes rejected programs once and records whether the run was
clean, which measures the verifier's false-positive (imprecision) rate
without flagging it as a bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.bpf import isa
from repro.bpf.canon import VerdictCache
from repro.bpf.interpreter import CTX_BASE, STACK_BASE, ExecutionError, Machine
from repro.bpf.program import Program, ProgramError
from repro.bpf.verifier import Verifier
from repro.bpf.verifier.state import AbstractState, RegKind
from repro.domains.product import ScalarValue

__all__ = ["Violation", "OracleReport", "DifferentialOracle"]

U64 = (1 << 64) - 1

#: Concrete base address of each abstract pointer region.  Stack offsets
#: are relative to the frame *top* (r10's address), matching
#: ``RegState.stack_ptr``.
_REGION_BASE = {
    "stack": STACK_BASE + isa.STACK_SIZE,
    "ctx": CTX_BASE,
}


@dataclass(frozen=True)
class Violation:
    """One observed soundness failure."""

    kind: str               # "containment" | "pointer" | "accepted_crash"
    #: "unverified_pc" when execution reaches a pc the verifier pruned
    pc: Optional[int]       # instruction index, if known
    register: Optional[int]
    concrete: Optional[int]
    input_seed: int
    message: str

    def __str__(self) -> str:
        where = f"pc {self.pc}" if self.pc is not None else "?"
        return f"[{self.kind}] {where}: {self.message}"


@dataclass
class OracleReport:
    """Outcome of differentially testing one program."""

    verdict: str                      # "accepted" | "rejected"
    runs: int = 0
    checks: int = 0                   # register containment checks done
    violations: List[Violation] = field(default_factory=list)
    #: for rejected programs: True when a concrete replay ran cleanly,
    #: i.e. the rejection was (at least on that input) imprecision.
    rejected_but_clean: Optional[bool] = None
    reject_reason: Optional[str] = None
    #: instruction index the verifier rejected at (None when accepted or
    #: when the rejection was structural, e.g. a CFG error).
    reject_pc: Optional[int] = None
    #: when range collection is on: per ALU instruction index, the
    #: [min, max] concrete result observed across every replay — the
    #: ground-truth range the campaign compares abstract ranges against.
    concrete_ranges: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        tag = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return f"{self.verdict} runs={self.runs} checks={self.checks}: {tag}"


class DifferentialOracle:
    """Runs whole programs through verifier and interpreter and compares.

    ``inputs_per_program`` concrete replays are made per accepted
    program, each with context bytes drawn from a per-input RNG stream
    derived from ``(input_seed_base, i)`` — deterministic and
    independent of execution order.
    """

    def __init__(
        self,
        ctx_size: int = 64,
        inputs_per_program: int = 8,
        max_violations: int = 4,
        on_transfer: Optional[Callable] = None,
        collect_ranges: bool = False,
        step_limit: int = 1_000_000,
        verdict_cache: Optional[VerdictCache] = None,
    ) -> None:
        self.ctx_size = ctx_size
        self.inputs_per_program = inputs_per_program
        self.max_violations = max_violations
        #: forwarded to :class:`Verifier` — per-operator attribution for
        #: the campaign's precision telemetry.
        self.on_transfer = on_transfer
        #: track per-ALU-instruction concrete result ranges during replay.
        self.collect_ranges = collect_ranges
        #: interpreter step budget; campaigns lower it so mutated programs
        #: with (verifier-rejected) loops cannot stall a replay.
        self.step_limit = step_limit
        #: structural verdict memo (see :mod:`repro.bpf.canon`).  The
        #: oracle manages the cache itself rather than handing it to the
        #: verifier: an oracle entry also carries the containment plans,
        #: so a hit skips both the abstract walk *and* plan construction
        #: while the concrete replays (seed-dependent) still run.
        self.verdict_cache = verdict_cache
        #: one verifier reused across every checked program (its per-run
        #: ``states_at`` is reset per call) — together with the compiled
        #: abstract form cached on each :class:`Program`, re-checking a
        #: program (shrinker predicates, campaign rounds) pays only the
        #: walk, never re-dispatch or re-compilation.
        self._verifier = Verifier(
            ctx_size=self.ctx_size,
            collect_states=True,
            on_transfer=self.on_transfer,
        )

    # -- public API ---------------------------------------------------------

    def check_program(
        self, program: Program, input_seed_base: int = 0
    ) -> OracleReport:
        # One predicate check when obs is off; when on, the whole check
        # runs under a (sampled) span and tallies its counters on exit.
        if not _obs.enabled():
            return self._check_program(program, input_seed_base)
        with _obs.tracer().sampled_span(
            "oracle.check_program", insns=len(program)
        ):
            report = self._check_program(program, input_seed_base)
        reg = _obs.default_registry()
        reg.counter("oracle.programs").inc()
        reg.counter(f"oracle.{report.verdict}").inc()
        reg.counter("oracle.replays").inc(report.runs)
        reg.counter("oracle.containment_checks").inc(report.checks)
        if report.violations:
            reg.counter("oracle.violations").inc(len(report.violations))
            reg.counter("oracle.containment_failures").inc(sum(
                1 for v in report.violations
                if v.kind in ("containment", "pointer")
            ))
        if report.rejected_but_clean:
            reg.counter("oracle.rejected_clean").inc()
        return report

    def _check_program(
        self, program: Program, input_seed_base: int = 0
    ) -> OracleReport:
        # Re-read per call: callers may (re)wire the telemetry hook on
        # the oracle after construction.
        note = self.on_transfer
        cache = self.verdict_cache
        plans: Optional[List[Optional[List[Tuple]]]] = None
        if cache is not None:
            key = (program.canonical_hash(), self.ctx_size)
            # require_plans: an accepted entry stored by a plain verifier
            # has no containment plans — treat it as a miss and upgrade
            # it below.
            entry = cache.get(key, require_plans=True)
            if entry is not None:
                if note is not None:
                    entry.replay(note)
                result = entry.result()
                plans = entry.plans
            else:
                verifier = self._verifier
                verifier.states_at = {}
                events: List[Tuple[int, str, ScalarValue]] = []
                record = events.append

                def recording_note(
                    idx: int, label: str, scalar: ScalarValue
                ) -> None:
                    record((idx, label, scalar))
                    if note is not None:
                        note(idx, label, scalar)

                verifier.on_transfer = recording_note
                result = verifier.verify(program)
                if result.ok:
                    plans = self._build_plans(program, verifier.states_at)
                cache.store(key, result, events, plans=plans)
        else:
            verifier = self._verifier
            verifier.states_at = {}
            verifier.on_transfer = note
            result = verifier.verify(program)
            if result.ok:
                plans = self._build_plans(program, verifier.states_at)

        if not result.ok:
            report = OracleReport(
                verdict="rejected",
                reject_reason="; ".join(result.error_messages()) or None,
            )
            structural = bool(result.errors) and result.errors[0].structural
            if structural:
                # A CFG rejection (loops, dead code) is policy, not
                # imprecision — replaying tells us nothing and can burn
                # the whole step limit on a looping mutant.
                report.rejected_but_clean = False
            else:
                if result.errors:
                    report.reject_pc = result.errors[0].insn_index
                report.rejected_but_clean = self._replay_clean(
                    program, input_seed_base
                )
                report.runs = 1
            return report

        report = OracleReport(verdict="accepted")
        # Replay batching: everything that is per-program (not per-input)
        # was computed exactly once above — the observation plan derived
        # from the verifier's states (or fetched from the verdict cache),
        # and below the ALU destination map for range tracking and the
        # per-input seeds and their context buffers — and a single
        # Machine is reset per input instead of reallocated.
        assert plans is not None
        # Destination register per ALU instruction, shared by every
        # replay — the result written by instruction i is observable in
        # the registers at the *next* step.  -1 marks untracked slots.
        dst_arr: Optional[List[int]] = None
        if self.collect_ranges:
            dst_arr = [
                insn.dst if insn.is_alu() else -1 for insn in program.insns
            ]
        seeds = [
            (input_seed_base * 1_000_003 + i) & U64
            for i in range(self.inputs_per_program)
        ]
        ctxs = [self._make_ctx(seed) for seed in seeds]
        machine = Machine(step_limit=self.step_limit)
        for seed, ctx in zip(seeds, ctxs):
            machine.reset(ctx)
            self._run_one(machine, program, plans, seed, report, dst_arr)
            report.runs += 1
            if len(report.violations) >= self.max_violations:
                break
        return report

    # -- observation plan -----------------------------------------------------

    def _build_plans(
        self, program: Program, states_at: Dict[int, AbstractState]
    ) -> List[Optional[List[Tuple]]]:
        """Per-instruction containment plan, computed once per program.

        Every replay checks the same abstract state at the same program
        point, so the per-register work — skipping NOT_INIT registers,
        unpacking the tnum/interval pair, resolving the pointer region
        base — is hoisted out of the replay loop.  A plan entry is
        ``(reg, tnum_notmask, tnum_value, umin, umax, base, obj,
        region)``: membership of a concrete value ``c`` reduces to two
        integer comparisons (``c & notmask == value`` and ``umin <= c <=
        umax``), applied to ``(c - base) & U64`` for pointers.  ``obj``
        (the abstract scalar) and ``region`` are kept only for violation
        messages.  ``None`` marks a program point the verifier never
        reached.
        """
        plans: List[Optional[List[Tuple]]] = []
        for idx in range(len(program.insns)):
            state = states_at.get(idx)
            if state is None:
                plans.append(None)
                continue
            entries: List[Tuple] = []
            for r in range(isa.MAX_REG):
                # get_reg: a plain read must not un-share the COW state's
                # register list (the ``regs`` property materializes
                # ownership because its callers may mutate in place).
                abstract = state.get_reg(r)
                if abstract.kind == RegKind.NOT_INIT:
                    continue  # no claim made; nothing to contradict
                if abstract.kind == RegKind.SCALAR:
                    scalar = abstract.scalar
                    base = None
                    region = None
                else:
                    scalar = abstract.offset
                    base = _REGION_BASE[abstract.region.value]
                    region = abstract.region.value
                t, iv = scalar.tnum, scalar.interval
                entries.append((
                    r, ~t.mask & U64, t.value, iv.umin, iv.umax,
                    base, scalar, region,
                ))
            plans.append(entries)
        return plans

    # -- concrete replay ------------------------------------------------------

    def _make_ctx(self, seed: int) -> bytes:
        return random.Random(seed).randbytes(self.ctx_size)

    def _replay_clean(self, program: Program, seed: int) -> bool:
        machine = Machine(ctx=self._make_ctx(seed), step_limit=self.step_limit)
        try:
            machine.run(program)
            return True
        except (ExecutionError, ProgramError):
            # ProgramError here means control fell off the end or landed
            # mid-lddw — a crash for cross-checking purposes.
            return False

    def _run_one(
        self,
        machine: Machine,
        program: Program,
        plans: List[Optional[List[Tuple]]],
        seed: int,
        report: OracleReport,
        dst_arr: Optional[List[int]] = None,
    ) -> None:
        # Range tracking remembers the previously executed index: the
        # result instruction p wrote is read from the registers at the
        # step that follows it.  Interpreter registers are already masked
        # to 64 bits.
        prev: List[int] = [-1]
        ranges = report.concrete_ranges
        violations = report.violations
        max_violations = self.max_violations

        def on_step(idx: int, regs: List[int]) -> None:
            if dst_arr is not None:
                p = prev[0]
                prev[0] = idx
                if p >= 0:
                    dst = dst_arr[p]
                    if dst >= 0:
                        value = regs[dst]
                        span = ranges.get(p)
                        if span is None:
                            ranges[p] = [value, value]
                        elif value < span[0]:
                            span[0] = value
                        elif value > span[1]:
                            span[1] = value
            plan = plans[idx]
            if plan is None:
                violations.append(Violation(
                    "unverified_pc", idx, None, None, seed,
                    "execution reached an instruction the verifier "
                    "considered unreachable",
                ))
                return
            checks = 0
            for r, notmask, value, umin, umax, base, obj, region in plan:
                concrete = regs[r]
                checks += 1
                if base is None:
                    if not (
                        concrete & notmask == value
                        and umin <= concrete <= umax
                    ):
                        violations.append(Violation(
                            "containment", idx, r, concrete, seed,
                            f"r{r} = {concrete:#x} escapes abstract {obj}",
                        ))
                else:  # pointer: base + offset must account for the address
                    offset = (concrete - base) & U64
                    if not (
                        offset & notmask == value
                        and umin <= offset <= umax
                    ):
                        violations.append(Violation(
                            "pointer", idx, r, concrete, seed,
                            f"r{r} = {concrete:#x} has {region} "
                            f"offset {offset:#x} outside {obj}",
                        ))
                if len(violations) >= max_violations:
                    break
            report.checks += checks

        try:
            machine.run(program, on_step=on_step)
        except ExecutionError as exc:
            violations.append(Violation(
                "accepted_crash", exc.pc, None, None, seed,
                f"accepted program crashed concretely: {exc}",
            ))
        except ProgramError as exc:
            violations.append(Violation(
                "accepted_crash", None, None, None, seed,
                f"accepted program fell off the instruction stream: {exc}",
            ))
