"""Differential oracle: concrete execution vs. abstract verification.

The interpreter is the ground truth.  For every program the verifier
*accepts*, the oracle replays it concretely on many random inputs and
checks two soundness properties at every executed instruction:

* **containment** — each concrete register value is a member of the
  verifier's abstract value at the same program point (scalar values via
  ``γ(tnum × interval)``; pointers via their region and abstract offset);
* **no accepted crashes** — a concrete run of an accepted program never
  faults (no out-of-bounds access, no bad opcode, no divergence).

Rejection is conservative and therefore never *unsound*; the oracle
still executes rejected programs once and records whether the run was
clean, which measures the verifier's false-positive (imprecision) rate
without flagging it as a bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bpf import isa
from repro.bpf.interpreter import CTX_BASE, STACK_BASE, ExecutionError, Machine
from repro.bpf.program import Program, ProgramError
from repro.bpf.verifier import Verifier
from repro.bpf.verifier.state import AbstractState, RegKind

__all__ = ["Violation", "OracleReport", "DifferentialOracle"]

U64 = (1 << 64) - 1

#: Concrete base address of each abstract pointer region.  Stack offsets
#: are relative to the frame *top* (r10's address), matching
#: ``RegState.stack_ptr``.
_REGION_BASE = {
    "stack": STACK_BASE + isa.STACK_SIZE,
    "ctx": CTX_BASE,
}


@dataclass(frozen=True)
class Violation:
    """One observed soundness failure."""

    kind: str               # "containment" | "pointer" | "accepted_crash"
    #: "unverified_pc" when execution reaches a pc the verifier pruned
    pc: Optional[int]       # instruction index, if known
    register: Optional[int]
    concrete: Optional[int]
    input_seed: int
    message: str

    def __str__(self) -> str:
        where = f"pc {self.pc}" if self.pc is not None else "?"
        return f"[{self.kind}] {where}: {self.message}"


@dataclass
class OracleReport:
    """Outcome of differentially testing one program."""

    verdict: str                      # "accepted" | "rejected"
    runs: int = 0
    checks: int = 0                   # register containment checks done
    violations: List[Violation] = field(default_factory=list)
    #: for rejected programs: True when a concrete replay ran cleanly,
    #: i.e. the rejection was (at least on that input) imprecision.
    rejected_but_clean: Optional[bool] = None
    reject_reason: Optional[str] = None
    #: instruction index the verifier rejected at (None when accepted or
    #: when the rejection was structural, e.g. a CFG error).
    reject_pc: Optional[int] = None
    #: when range collection is on: per ALU instruction index, the
    #: [min, max] concrete result observed across every replay — the
    #: ground-truth range the campaign compares abstract ranges against.
    concrete_ranges: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        tag = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return f"{self.verdict} runs={self.runs} checks={self.checks}: {tag}"


class DifferentialOracle:
    """Runs whole programs through verifier and interpreter and compares.

    ``inputs_per_program`` concrete replays are made per accepted
    program, each with context bytes drawn from a per-input RNG stream
    derived from ``(input_seed_base, i)`` — deterministic and
    independent of execution order.
    """

    def __init__(
        self,
        ctx_size: int = 64,
        inputs_per_program: int = 8,
        max_violations: int = 4,
        on_transfer: Optional[Callable] = None,
        collect_ranges: bool = False,
        step_limit: int = 1_000_000,
    ) -> None:
        self.ctx_size = ctx_size
        self.inputs_per_program = inputs_per_program
        self.max_violations = max_violations
        #: forwarded to :class:`Verifier` — per-operator attribution for
        #: the campaign's precision telemetry.
        self.on_transfer = on_transfer
        #: track per-ALU-instruction concrete result ranges during replay.
        self.collect_ranges = collect_ranges
        #: interpreter step budget; campaigns lower it so mutated programs
        #: with (verifier-rejected) loops cannot stall a replay.
        self.step_limit = step_limit

    # -- public API ---------------------------------------------------------

    def check_program(
        self, program: Program, input_seed_base: int = 0
    ) -> OracleReport:
        verifier = Verifier(
            ctx_size=self.ctx_size,
            collect_states=True,
            on_transfer=self.on_transfer,
        )
        result = verifier.verify(program)

        if not result.ok:
            report = OracleReport(
                verdict="rejected",
                reject_reason="; ".join(result.error_messages()) or None,
            )
            structural = bool(result.errors) and result.errors[0].structural
            if structural:
                # A CFG rejection (loops, dead code) is policy, not
                # imprecision — replaying tells us nothing and can burn
                # the whole step limit on a looping mutant.
                report.rejected_but_clean = False
            else:
                if result.errors:
                    report.reject_pc = result.errors[0].insn_index
                report.rejected_but_clean = self._replay_clean(
                    program, input_seed_base
                )
                report.runs = 1
            return report

        report = OracleReport(verdict="accepted")
        # Destination register per ALU instruction, shared by every
        # replay — the result written by instruction i is observable in
        # the registers at the *next* step.
        alu_dst: Optional[Dict[int, int]] = None
        if self.collect_ranges:
            alu_dst = {
                i: insn.dst
                for i, insn in enumerate(program.insns)
                if insn.is_alu()
            }
        for i in range(self.inputs_per_program):
            seed = (input_seed_base * 1_000_003 + i) & U64
            self._run_one(program, verifier.states_at, seed, report, alu_dst)
            report.runs += 1
            if len(report.violations) >= self.max_violations:
                break
        return report

    # -- concrete replay ------------------------------------------------------

    def _make_ctx(self, seed: int) -> bytes:
        return random.Random(seed).randbytes(self.ctx_size)

    def _replay_clean(self, program: Program, seed: int) -> bool:
        machine = Machine(ctx=self._make_ctx(seed), step_limit=self.step_limit)
        try:
            machine.run(program)
            return True
        except (ExecutionError, ProgramError):
            # ProgramError here means control fell off the end or landed
            # mid-lddw — a crash for cross-checking purposes.
            return False

    def _run_one(
        self,
        program: Program,
        states_at: Dict[int, AbstractState],
        seed: int,
        report: OracleReport,
        alu_dst: Optional[Dict[int, int]] = None,
    ) -> None:
        machine = Machine(ctx=self._make_ctx(seed), step_limit=self.step_limit)
        # Range tracking remembers the previously executed index: the
        # result instruction p wrote is read from the registers at the
        # step that follows it.  Interpreter registers are already masked
        # to 64 bits.
        prev: List[Optional[int]] = [None]
        dst_of = alu_dst.get if alu_dst is not None else None
        ranges = report.concrete_ranges

        def on_step(idx: int, regs: List[int]) -> None:
            if dst_of is not None:
                p = prev[0]
                prev[0] = idx
                dst = dst_of(p)
                if dst is not None:
                    value = regs[dst]
                    span = ranges.get(p)
                    if span is None:
                        ranges[p] = [value, value]
                    elif value < span[0]:
                        span[0] = value
                    elif value > span[1]:
                        span[1] = value
            state = states_at.get(idx)
            if state is None:
                report.violations.append(Violation(
                    "unverified_pc", idx, None, None, seed,
                    "execution reached an instruction the verifier "
                    "considered unreachable",
                ))
                return
            self._check_state(idx, regs, state, seed, report)

        try:
            machine.run(program, on_step=on_step)
        except ExecutionError as exc:
            report.violations.append(Violation(
                "accepted_crash", exc.pc, None, None, seed,
                f"accepted program crashed concretely: {exc}",
            ))
        except ProgramError as exc:
            report.violations.append(Violation(
                "accepted_crash", None, None, None, seed,
                f"accepted program fell off the instruction stream: {exc}",
            ))

    # -- containment ----------------------------------------------------------

    def _check_state(
        self,
        idx: int,
        regs: List[int],
        state: AbstractState,
        seed: int,
        report: OracleReport,
    ) -> None:
        for r in range(isa.MAX_REG):
            abstract = state.regs[r]
            if abstract.kind == RegKind.NOT_INIT:
                continue  # no claim made; nothing to contradict
            concrete = regs[r] & U64
            report.checks += 1
            if abstract.kind == RegKind.SCALAR:
                if not abstract.scalar.contains(concrete):
                    report.violations.append(Violation(
                        "containment", idx, r, concrete, seed,
                        f"r{r} = {concrete:#x} escapes abstract "
                        f"{abstract.scalar}",
                    ))
            else:  # pointer: base + offset must account for the address
                base = _REGION_BASE[abstract.region.value]
                offset = (concrete - base) & U64
                if not abstract.offset.contains(offset):
                    report.violations.append(Violation(
                        "pointer", idx, r, concrete, seed,
                        f"r{r} = {concrete:#x} has {abstract.region.value} "
                        f"offset {offset:#x} outside {abstract.offset}",
                    ))
            if len(report.violations) >= self.max_violations:
                return
